/**
 * @file
 * Prediction tests: the PAs two-level task predictor (pattern
 * learning, hysteresis, multi-target patterns), the simpler ablation
 * predictors, the checkpointable return address stack, and the task
 * descriptor cache timing.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "mem/bus.hh"
#include "predict/descriptor_cache.hh"
#include "predict/return_stack.hh"
#include "predict/task_predictor.hh"

namespace msim {
namespace {

TaskDescriptor
desc(Addr start, unsigned ntargets)
{
    TaskDescriptor d;
    d.start = start;
    for (unsigned i = 0; i < ntargets; ++i)
        d.targets.push_back({start + 0x100 * (i + 1),
                             TargetSpec::kNormal, 0});
    return d;
}

TEST(PAsPredictor, LearnsASteadyTarget)
{
    PAsTaskPredictor p;
    TaskDescriptor d = desc(0x400000, 2);
    for (int i = 0; i < 10; ++i)
        p.update(d.start, d, 1);
    EXPECT_EQ(p.predict(d.start, d), 1u);
}

TEST(PAsPredictor, LearnsAnAlternatingPattern)
{
    // A two-level predictor captures patterns a saturating counter
    // cannot: alternate targets 0 and 1.
    PAsTaskPredictor p;
    TaskDescriptor d = desc(0x400000, 2);
    unsigned actual = 0;
    for (int i = 0; i < 64; ++i) {
        p.update(d.start, d, actual);
        actual ^= 1;
    }
    unsigned correct = 0;
    for (int i = 0; i < 32; ++i) {
        if (p.predict(d.start, d) == actual)
            ++correct;
        p.update(d.start, d, actual);
        actual ^= 1;
    }
    EXPECT_GE(correct, 30u);
}

TEST(PAsPredictor, LearnsAPeriodicPattern)
{
    // Period-3 pattern 0,0,1 (e.g. an inner loop of 3 iterations).
    PAsTaskPredictor p;
    TaskDescriptor d = desc(0x400100, 2);
    const unsigned pattern[3] = {0, 0, 1};
    for (int i = 0; i < 120; ++i)
        p.update(d.start, d, pattern[i % 3]);
    unsigned correct = 0;
    for (int i = 0; i < 30; ++i) {
        if (p.predict(d.start, d) == pattern[i % 3])
            ++correct;
        p.update(d.start, d, pattern[i % 3]);
    }
    EXPECT_GE(correct, 28u);
}

TEST(PAsPredictor, HysteresisResistsOneOff)
{
    PAsTaskPredictor p;
    TaskDescriptor d = desc(0x400000, 4);
    // A steady history so the same pattern entry is used, then one
    // divergence: the entry should keep its target (hysteresis).
    for (int i = 0; i < 32; ++i)
        p.update(d.start, d, 2);
    // After steady 2s, the history register is saturated with 2s and
    // the indexed entry predicts 2.
    EXPECT_EQ(p.predict(d.start, d), 2u);
}

TEST(PAsPredictor, FourTargets)
{
    PAsTaskPredictor p;
    TaskDescriptor d = desc(0x400200, 4);
    const unsigned pattern[4] = {3, 1, 2, 0};
    for (int i = 0; i < 200; ++i)
        p.update(d.start, d, pattern[i % 4]);
    unsigned correct = 0;
    for (int i = 0; i < 40; ++i) {
        if (p.predict(d.start, d) == pattern[i % 4])
            ++correct;
        p.update(d.start, d, pattern[i % 4]);
    }
    EXPECT_GE(correct, 36u);
}

TEST(PAsPredictor, OutOfRangePredictionClamps)
{
    PAsTaskPredictor p;
    // Train with 4 targets at one address, then query a descriptor
    // with fewer targets: must return a valid index.
    TaskDescriptor d4 = desc(0x400000, 4);
    for (int i = 0; i < 16; ++i)
        p.update(d4.start, d4, 3);
    TaskDescriptor d2 = desc(0x400000, 2);
    EXPECT_LT(p.predict(d2.start, d2), 2u);
}

TEST(LastTargetPredictor, TracksTheMostRecentOutcome)
{
    LastTargetPredictor p;
    TaskDescriptor d = desc(0x400000, 3);
    p.update(d.start, d, 2);
    EXPECT_EQ(p.predict(d.start, d), 2u);
    p.update(d.start, d, 0);
    EXPECT_EQ(p.predict(d.start, d), 0u);
}

TEST(StaticPredictor, AlwaysTargetZero)
{
    StaticTaskPredictor p;
    TaskDescriptor d = desc(0x400000, 3);
    p.update(d.start, d, 2);
    EXPECT_EQ(p.predict(d.start, d), 0u);
}

TEST(PredictorFactory, KnownKindsAndErrors)
{
    EXPECT_EQ(makeTaskPredictor("pas")->name(), "PAs");
    EXPECT_EQ(makeTaskPredictor("last")->name(), "last-target");
    EXPECT_EQ(makeTaskPredictor("static")->name(), "static");
    EXPECT_THROW(makeTaskPredictor("nope"), FatalError);
}

TEST(ReturnStack, PushPopLifo)
{
    ReturnStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u);  // empty
}

TEST(ReturnStack, CheckpointRestoreRecoversFromWrongPathPushes)
{
    ReturnStack ras(8);
    ras.push(0x100);
    auto cp = ras.checkpoint();
    ras.push(0x200);  // wrong-path call
    ras.pop();        // wrong-path return
    ras.pop();        // consumed the good entry too
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(ReturnStack, WrapsAroundCapacity)
{
    ReturnStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // The oldest two entries were overwritten.
    EXPECT_EQ(ras.depth(), 4u);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(DescriptorCache, HitAndMissTiming)
{
    StatRegistry stats;
    MemoryBus bus(stats.group("bus"));
    DescriptorCache dc(stats.group("dc"), bus, 16);
    // Cold miss: one bus beat (10 cycles) + 1.
    EXPECT_EQ(dc.access(0, 0x400000), 11u);
    // Hit: 1 cycle.
    EXPECT_EQ(dc.access(20, 0x400000), 21u);
    // Conflicting address (same set, 16 entries * 4 bytes apart).
    EXPECT_GT(dc.access(40, 0x400000 + 16 * 4), 41u);
    EXPECT_GT(dc.access(60, 0x400000), 61u);  // evicted
    EXPECT_EQ(stats.group("dc").get("hits"), 1u);
    EXPECT_EQ(stats.group("dc").get("misses"), 3u);
}

} // namespace
} // namespace msim
