/**
 * @file
 * Tests for the sim layer: syscall emulation, the sequential
 * reference interpreter, and the workload runner (including golden
 * model enforcement and workload registry sanity).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "core/multiscalar_processor.hh"
#include "mem/main_memory.hh"
#include "sim/reference.hh"
#include "sim/runner.hh"
#include "sim/syscalls.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

using isa::RegValue;

SyscallHandler
makeHandler(MainMemory &mem)
{
    return SyscallHandler(
        [&mem](Addr a) { return std::uint8_t(mem.read(a, 1)); },
        0x10010000);
}

RegValue
w(Word v)
{
    return RegValue::fromWord(v);
}

TEST(Syscalls, PrintIntAndChar)
{
    MainMemory mem;
    SyscallHandler h = makeHandler(mem);
    h.execute(w(1), w(Word(-42)), w(0));
    h.execute(w(11), w(' '), w(0));
    h.execute(w(1), w(7), w(0));
    h.execute(w(11), w('\n'), w(0));
    EXPECT_EQ(h.output(), "-42 7\n");
    EXPECT_FALSE(h.exited());
}

TEST(Syscalls, PrintString)
{
    MainMemory mem;
    const char *s = "hello";
    mem.writeBytes(0x5000, reinterpret_cast<const std::uint8_t *>(s),
                   6);
    SyscallHandler h = makeHandler(mem);
    h.execute(w(4), w(0x5000), w(0));
    EXPECT_EQ(h.output(), "hello");
}

TEST(Syscalls, ReadIntStream)
{
    MainMemory mem;
    SyscallHandler h = makeHandler(mem);
    h.setInput({5, -3});
    EXPECT_EQ(h.execute(w(5), w(0), w(0)).asSWord(), 5);
    EXPECT_EQ(h.execute(w(5), w(0), w(0)).asSWord(), -3);
    EXPECT_EQ(h.execute(w(5), w(0), w(0)).asSWord(), -1);  // EOF
}

TEST(Syscalls, SbrkAdvances)
{
    MainMemory mem;
    SyscallHandler h = makeHandler(mem);
    EXPECT_EQ(h.execute(w(9), w(64), w(0)).asWord(), 0x10010000u);
    EXPECT_EQ(h.execute(w(9), w(16), w(0)).asWord(), 0x10010040u);
    EXPECT_EQ(h.brk(), 0x10010050u);
}

TEST(Syscalls, ExitSetsFlagAndUnknownCodeIsFatal)
{
    MainMemory mem;
    SyscallHandler h = makeHandler(mem);
    h.execute(w(10), w(0), w(0));
    EXPECT_TRUE(h.exited());
    EXPECT_THROW(h.execute(w(99), w(0), w(0)), FatalError);
}

TEST(Reference, RunsAProgramSequentially)
{
    const char *src = R"(
        .data
msg:    .asciiz "sum="
        .text
main:   li   $8, 0
        li   $9, 1
L:      addu $8, $8, $9
        addu $9, $9, 1
        li   $10, 11
        bne  $9, $10, L
        la   $4, msg
        li   $2, 4
        syscall
        move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    Program p = assembler::assemble(src, {});
    ReferenceResult r = referenceRun(p);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, "sum=55");
    EXPECT_GT(r.instructions, 40u);
}

TEST(Reference, HonorsMemoryInitAndInput)
{
    const char *src = R"(
        .data
cell:   .word 0
        .text
main:   li   $2, 5
        syscall              # read one int
        lw   $8, cell
        addu $4, $2, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    Program p = assembler::assemble(src, {});
    ReferenceResult r = referenceRun(
        p,
        [](MainMemory &mem, const Program &prog) {
            mem.write(*prog.symbol("cell"), 30, 4);
        },
        {12});
    EXPECT_EQ(r.output, "42");
}

TEST(Reference, RunningOffTextIsFatal)
{
    Program p = assembler::assemble(".text\nmain: nop\n", {});
    EXPECT_THROW(referenceRun(p), FatalError);
}

TEST(Runner, WrongOutputIsFatal)
{
    workloads::Workload w = workloads::get("wc");
    w.expected = "not what wc prints";
    RunSpec spec;
    spec.multiscalar = false;
    EXPECT_THROW(runWorkload(w, spec), FatalError);
}

TEST(Runner, CheckCanBeDisabled)
{
    workloads::Workload w = workloads::get("wc");
    w.expected = "not what wc prints";
    RunSpec spec;
    spec.multiscalar = false;
    spec.checkOutput = false;
    EXPECT_NO_THROW(runWorkload(w, spec));
}

TEST(Runner, CycleLimitIsFatal)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = false;
    spec.maxCycles = 100;
    EXPECT_THROW(runWorkload(w, spec), FatalError);
}

TEST(Runner, CycleLimitErrorIsDistinctFromOtherFailures)
{
    // Budget exhaustion must name the budget, not look like a hang
    // or a wrong-output failure.
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = false;
    spec.maxCycles = 100;
    try {
        runWorkload(w, spec);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("exhausted its cycle budget"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("maxCycles=100"), std::string::npos) << msg;
    }
}

TEST(Runner, HitMaxCyclesIsReportedByBothMachines)
{
    // An endless program: the run must stop exactly at the budget and
    // flag the truncation, distinct from a normal exit.
    {
        Program prog = assembler::assemble(
            ".text\nmain:   b    main\n", {});
        ScalarProcessor proc(prog, ScalarConfig{});
        RunResult r = proc.run(500);
        EXPECT_FALSE(r.exited);
        EXPECT_TRUE(r.hitMaxCycles);
        EXPECT_EQ(r.cycles, 500u);
        // The exact-accounting invariant holds on truncated runs too.
        EXPECT_EQ(r.accounting.sum(), r.cycles * r.accounting.numUnits);
    }
    {
        assembler::AsmOptions opts;
        opts.multiscalar = true;
        Program prog = assembler::assemble(R"(
        .text
main:   li   $20, 0
        b    SPIN !s
.task main
.targets SPIN
.create $20
.endtask
.task SPIN
.targets SPIN:loop
.create $20
.endtask
SPIN:
        addu $20, $20, 1 !f
        b    SPIN !s
)",
                                           opts);
        MultiscalarProcessor proc(prog, MsConfig{});
        RunResult r = proc.run(2000);
        EXPECT_FALSE(r.exited);
        EXPECT_TRUE(r.hitMaxCycles);
        EXPECT_EQ(r.cycles, 2000u);
        EXPECT_EQ(r.accounting.sum(), r.cycles * r.accounting.numUnits);
    }
    {
        // A normal exit must not be flagged.
        workloads::Workload w2 = workloads::get("example");
        RunSpec spec;
        spec.multiscalar = true;
        RunResult ok = runWorkload(w2, spec);
        EXPECT_TRUE(ok.exited);
        EXPECT_FALSE(ok.hitMaxCycles);
    }
}

TEST(Workloads, RegistryIsComplete)
{
    const auto &reg = workloads::registry();
    EXPECT_EQ(reg.size(), 15u);
    for (const char *name :
         {"compress", "eqntott", "espresso", "gcc", "sc", "xlisp",
          "tomcatv", "cmp", "wc", "example", "pointer_chase",
          "stream_triad", "gups", "stencil", "thrash"})
        EXPECT_TRUE(reg.count(name)) << name;
    EXPECT_THROW(workloads::get("nope"), FatalError);
    EXPECT_THROW(workloads::get("wc", 0), FatalError);
}

TEST(Workloads, EveryWorkloadMatchesTheReferenceInterpreter)
{
    // The golden models are hand-written; the reference interpreter
    // is an independent implementation of the semantics. They must
    // agree on the scalar binary of every workload.
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        workloads::Workload w = workloads::get(name);
        Program prog = assembleWorkload(w, false);
        ReferenceResult r =
            referenceRun(prog, w.init, w.input, 50'000'000);
        ASSERT_TRUE(r.exited) << name;
        EXPECT_EQ(r.output, w.expected) << name;
    }
}

} // namespace
} // namespace msim
