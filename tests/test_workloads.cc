/**
 * @file
 * The master correctness check: every workload must produce its
 * golden-model output on the scalar machine and on multiscalar
 * machines of several shapes. A parameterized sweep covers
 * {workload} x {units} x {issue width} x {order}, and a second sweep
 * re-checks every workload in both modes at a scaled-up input size —
 * the golden model recomputes the expected output per scale, so
 * output regressions are caught independently of cycle regressions
 * (the cycle side is pinned by test_golden_cycles).
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

struct Shape
{
    unsigned units;     // 0 = scalar baseline
    unsigned width;
    bool ooo;
};

std::string
shapeName(const Shape &s)
{
    std::string name = s.units == 0 ? "scalar"
                                    : std::to_string(s.units) + "unit";
    name += "_" + std::to_string(s.width) + "way";
    name += s.ooo ? "_ooo" : "_ino";
    return name;
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, Shape>>
{
};

TEST_P(WorkloadCorrectness, MatchesGoldenModel)
{
    const auto &[name, shape] = GetParam();
    workloads::Workload w = workloads::get(name);
    RunSpec spec;
    spec.multiscalar = shape.units != 0;
    spec.ms.numUnits = shape.units ? shape.units : 1;
    spec.ms.pu.issueWidth = shape.width;
    spec.ms.pu.outOfOrder = shape.ooo;
    spec.scalar.pu.issueWidth = shape.width;
    spec.scalar.pu.outOfOrder = shape.ooo;
    // runWorkload throws if the output mismatches the golden model.
    RunResult r = runWorkload(w, spec);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, w.expected);
}

const Shape kShapes[] = {
    {0, 1, false}, {0, 2, true},
    {2, 1, false},
    {4, 1, false}, {4, 2, true},
    {8, 1, false}, {8, 2, false}, {8, 2, true},
};

std::vector<std::tuple<std::string, Shape>>
allCases()
{
    std::vector<std::tuple<std::string, Shape>> cases;
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        for (const Shape &s : kShapes)
            cases.emplace_back(name, s);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCorrectness, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, Shape>> &info) {
        return std::get<0>(info.param) + "_" +
               shapeName(std::get<1>(info.param));
    });

/**
 * Output correctness at a non-default input scale: every workload's
 * golden model recomputes the expected output for the scaled input,
 * so these runs verify dataflow (not timing) on inputs none of the
 * other suites touch. Scale 2 is within every workload's supported
 * range (wc caps at 2, the rest allow more).
 */
class WorkloadOutputAtScale
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(WorkloadOutputAtScale, MatchesGoldenModelScaled)
{
    const auto &[name, multiscalar] = GetParam();
    workloads::Workload w = workloads::get(name, 2);
    RunSpec spec;
    spec.multiscalar = multiscalar;
    // runWorkload throws if the output mismatches the golden model.
    RunResult r = runWorkload(w, spec);
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.hitMaxCycles);
    EXPECT_EQ(r.output, w.expected);
    // The exact-accounting invariant holds at every scale.
    EXPECT_EQ(r.accounting.sum(), r.cycles * r.accounting.numUnits);
}

std::vector<std::tuple<std::string, bool>>
scaledCases()
{
    std::vector<std::tuple<std::string, bool>> cases;
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        cases.emplace_back(name, false);
        cases.emplace_back(name, true);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllScaled, WorkloadOutputAtScale,
    ::testing::ValuesIn(scaledCases()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>>
           &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_ms" : "_scalar");
    });

} // namespace
} // namespace msim
