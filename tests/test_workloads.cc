/**
 * @file
 * The master correctness check: every workload must produce its
 * golden-model output on the scalar machine and on multiscalar
 * machines of several shapes. A parameterized sweep covers
 * {workload} x {units} x {issue width} x {order}.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

struct Shape
{
    unsigned units;     // 0 = scalar baseline
    unsigned width;
    bool ooo;
};

std::string
shapeName(const Shape &s)
{
    std::string name = s.units == 0 ? "scalar"
                                    : std::to_string(s.units) + "unit";
    name += "_" + std::to_string(s.width) + "way";
    name += s.ooo ? "_ooo" : "_ino";
    return name;
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, Shape>>
{
};

TEST_P(WorkloadCorrectness, MatchesGoldenModel)
{
    const auto &[name, shape] = GetParam();
    workloads::Workload w = workloads::get(name);
    RunSpec spec;
    spec.multiscalar = shape.units != 0;
    spec.ms.numUnits = shape.units ? shape.units : 1;
    spec.ms.pu.issueWidth = shape.width;
    spec.ms.pu.outOfOrder = shape.ooo;
    spec.scalar.pu.issueWidth = shape.width;
    spec.scalar.pu.outOfOrder = shape.ooo;
    // runWorkload throws if the output mismatches the golden model.
    RunResult r = runWorkload(w, spec);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, w.expected);
}

const Shape kShapes[] = {
    {0, 1, false}, {0, 2, true},
    {2, 1, false},
    {4, 1, false}, {4, 2, true},
    {8, 1, false}, {8, 2, false}, {8, 2, true},
};

std::vector<std::tuple<std::string, Shape>>
allCases()
{
    std::vector<std::tuple<std::string, Shape>> cases;
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        for (const Shape &s : kShapes)
            cases.emplace_back(name, s);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCorrectness, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, Shape>> &info) {
        return std::get<0>(info.param) + "_" +
               shapeName(std::get<1>(info.param));
    });

} // namespace
} // namespace msim
