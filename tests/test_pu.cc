/**
 * @file
 * Processing unit tests against a mock context: issue disciplines
 * (in-order vs out-of-order), FU latencies and structural limits,
 * branch handling, stop bits and task exit, forward/release
 * semantics, ring reservations, syscall gating, and squash/flush.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "isa/registers.hh"
#include "pu/processing_unit.hh"
#include "pu/pu_context.hh"

namespace msim {
namespace {

using isa::RegValue;

/** A mock machine environment with instant caches. */
class MockContext : public PuContext
{
  public:
    explicit MockContext(Program prog) : prog_(std::move(prog)) {}

    const isa::Instruction *
    instrAt(Addr pc) override
    {
        return prog_.instrAt(pc);
    }

    Cycle
    icacheAccess(unsigned, Cycle now, Addr) override
    {
        return now + 1;
    }

    Cycle
    dcacheAccess(unsigned, Cycle now, Addr, bool) override
    {
        return now + dcacheLatency;
    }

    bool
    memHasSpace(unsigned, Addr, unsigned, bool) override
    {
        return memSpace;
    }

    std::uint64_t
    memLoad(unsigned, Addr addr, unsigned size) override
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i) {
            auto it = memory.find(addr + i);
            v |= std::uint64_t(it == memory.end() ? 0 : it->second)
                 << (8 * i);
        }
        return v;
    }

    void
    memStore(unsigned, Addr addr, unsigned size,
             std::uint64_t value) override
    {
        for (unsigned i = 0; i < size; ++i)
            memory[addr + i] = std::uint8_t(value >> (8 * i));
        storeCount++;
    }

    void
    forwardReg(unsigned, RegIndex reg, RegValue value) override
    {
        forwards.push_back({reg, value});
    }

    bool
    syscallAllowed(unsigned) override
    {
        return allowSyscall;
    }

    RegValue
    doSyscall(unsigned, RegValue v0, RegValue, RegValue) override
    {
        syscallCount++;
        return v0;
    }

    void
    taskExited(unsigned, Addr next) override
    {
        exits.push_back(next);
    }

    Program prog_;
    std::map<Addr, std::uint8_t> memory;
    std::vector<std::pair<RegIndex, RegValue>> forwards;
    std::vector<Addr> exits;
    unsigned dcacheLatency = 2;
    bool memSpace = true;
    bool allowSyscall = true;
    unsigned storeCount = 0;
    unsigned syscallCount = 0;
};

Program
assembleMs(const std::string &src)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    return assembler::assemble(src, opts);
}

/** Harness owning a unit + mock context. */
struct Rig
{
    explicit Rig(const std::string &src, PuConfig config = {})
        : ctx(assembleMs(src)),
          pu(0, config, ctx, stats.group("pu0"))
    {
    }

    /** Assign the whole program as one task. */
    void
    start(RegMask create = {}, RegMask busy = {},
          std::array<TaskSeq, kNumRegs> producers = {})
    {
        std::array<RegValue, kNumRegs> regs{};
        pu.assignTask(1, ctx.prog_.entry, create, busy, regs.data(),
                      producers.data());
    }

    /** Run until the unit is done (or a cycle limit). */
    Cycle
    runUntilDone(Cycle limit = 2000)
    {
        Cycle now = 0;
        for (; now < limit; ++now) {
            pu.tick(now);
            if (pu.isDone())
                return now;
        }
        return limit;
    }

    StatRegistry stats;
    MockContext ctx;
    ProcessingUnit pu;
};

TEST(Pu, StraightLineExecutesAndExits)
{
    Rig rig(R"(
        .text
main:   li   $8, 5
        addu $9, $8, $8
        nop  !s
    )");
    rig.start();
    Cycle done = rig.runUntilDone();
    ASSERT_LT(done, 2000u);
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 3u);
    ASSERT_EQ(rig.ctx.exits.size(), 1u);
    EXPECT_EQ(rig.ctx.exits[0], rig.ctx.prog_.entry + 3 * 4);
    EXPECT_EQ(rig.pu.regValues()[9].asWord(), 10u);
}

TEST(Pu, InOrderStallsOnRaw)
{
    // mul (4 cycles) feeds addu: the dependent add must wait.
    Rig rig(R"(
        .text
main:   li   $8, 3
        mul  $9, $8, $8
        addu $10, $9, $9
        nop  !s
    )");
    rig.start();
    rig.runUntilDone();
    EXPECT_EQ(rig.pu.regValues()[10].asWord(), 18u);
}

TEST(Pu, OutOfOrderOverlapsIndependentLatency)
{
    // div (12 cycles) followed by an independent chain: OoO finishes
    // sooner than in-order.
    const char *src = R"(
        .text
main:   li   $8, 40
        li   $9, 5
        div  $10, $8, $9
        addu $11, $8, $9
        addu $12, $11, $9
        addu $13, $12, $9
        addu $14, $10, $13    # joins the divide
        nop  !s
    )";
    PuConfig ino;
    Rig r1(src, ino);
    r1.start();
    Cycle t_ino = r1.runUntilDone();

    PuConfig ooo;
    ooo.outOfOrder = true;
    Rig r2(src, ooo);
    r2.start();
    Cycle t_ooo = r2.runUntilDone();

    EXPECT_EQ(r1.pu.regValues()[14].asWord(), 63u);
    EXPECT_EQ(r2.pu.regValues()[14].asWord(), 63u);
    EXPECT_LE(t_ooo, t_ino);
}

TEST(Pu, DualIssueIsFaster)
{
    // Independent adds: 2-way should take roughly half the cycles.
    std::string body = ".text\nmain:\n";
    for (int i = 0; i < 16; ++i)
        body += "  addu $" + std::to_string(8 + (i % 8)) + ", $0, $0\n";
    body += "  nop !s\n";
    PuConfig one;
    Rig r1(body, one);
    r1.start();
    Cycle t1 = r1.runUntilDone();
    PuConfig two;
    two.issueWidth = 2;
    Rig r2(body, two);
    r2.start();
    Cycle t2 = r2.runUntilDone();
    EXPECT_LT(t2, t1);
}

TEST(Pu, TakenBranchRedirectsFetch)
{
    Rig rig(R"(
        .text
main:   li   $8, 1
        bne  $8, $0, SKIP
        li   $9, 111          # must not execute
SKIP:   li   $10, 5
        nop  !s
    )");
    rig.start();
    rig.runUntilDone();
    EXPECT_EQ(rig.pu.regValues()[9].asWord(), 0u);
    EXPECT_EQ(rig.pu.regValues()[10].asWord(), 5u);
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 4u);
}

TEST(Pu, LoopWithBackwardBranch)
{
    Rig rig(R"(
        .text
main:   li   $8, 0
        li   $9, 10
L:      addu $8, $8, 1
        bne  $8, $9, L
        nop  !s
    )");
    rig.start();
    rig.runUntilDone();
    EXPECT_EQ(rig.pu.regValues()[8].asWord(), 10u);
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 23u);
}

TEST(Pu, JalAndJrWork)
{
    Rig rig(R"(
        .text
main:   li   $4, 7
        jal  f
        move $10, $2
        nop  !s
f:      addu $2, $4, $4
        jr   $31
    )");
    rig.start();
    rig.runUntilDone();
    EXPECT_EQ(rig.pu.regValues()[10].asWord(), 14u);
}

TEST(Pu, StopIfTakenAndNotTaken)
{
    // !st: the branch exits the task only when taken.
    Rig rig(R"(
        .text
main:   li   $8, 1
        bne  $8, $0, OUT !st
        nop
OUT:    nop
    )");
    rig.start();
    Cycle done = rig.runUntilDone();
    ASSERT_LT(done, 2000u);
    ASSERT_EQ(rig.ctx.exits.size(), 1u);
    EXPECT_EQ(rig.ctx.exits[0],
              rig.ctx.prog_.symbols.at("OUT"));
    // Only li + bne executed.
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 2u);
}

TEST(Pu, StopNotTakenFallsThrough)
{
    Rig rig(R"(
        .text
main:   li   $8, 0
        bne  $8, $0, ELSEWHERE !sn
AFTER:  nop
ELSEWHERE: nop
    )");
    rig.start();
    rig.runUntilDone(500);
    ASSERT_EQ(rig.ctx.exits.size(), 1u);
    EXPECT_EQ(rig.ctx.exits[0], rig.ctx.prog_.symbols.at("AFTER"));
}

TEST(Pu, ForwardBitSendsOnce)
{
    RegMask create{20};
    Rig rig(R"(
        .text
main:   addu $20, $20, 4 !f
        addu $8, $20, 0
        nop  !s
    )");
    rig.start(create);
    rig.runUntilDone();
    ASSERT_EQ(rig.ctx.forwards.size(), 1u);
    EXPECT_EQ(rig.ctx.forwards[0].first, isa::intReg(20));
    EXPECT_EQ(rig.ctx.forwards[0].second.asWord(), 4u);
}

TEST(Pu, ReleaseForwardsCurrentValue)
{
    RegMask create{8, 9};
    Rig rig(R"(
        .text
main:   li   $8, 77
        release $8, $9
        nop  !s
    )");
    rig.start(create);
    rig.runUntilDone();
    // $8 released with 77; $9 released with its inherited value 0.
    ASSERT_EQ(rig.ctx.forwards.size(), 2u);
    EXPECT_EQ(rig.ctx.forwards[0].second.asWord(), 77u);
}

TEST(Pu, AutoReleaseAtTaskEnd)
{
    // $21 is in the create mask but never written: it must still be
    // forwarded (released) when the task completes.
    RegMask create{21};
    Rig rig(R"(
        .text
main:   li   $8, 1
        nop  !s
    )");
    rig.start(create);
    rig.runUntilDone();
    ASSERT_EQ(rig.ctx.forwards.size(), 1u);
    EXPECT_EQ(rig.ctx.forwards[0].first, isa::intReg(21));
    EXPECT_EQ(rig.stats.group("pu0").get("implicitReleases"), 1u);
}

TEST(Pu, ForwardOutsideCreateMaskPanics)
{
    Rig rig(R"(
        .text
main:   addu $20, $20, 4 !f
        nop !s
    )");
    rig.start(RegMask{});  // $20 NOT in the create mask
    EXPECT_THROW(rig.runUntilDone(), PanicError);
}

TEST(Pu, ReservationBlocksConsumers)
{
    // $20 arrives over the ring at cycle 30; the first instruction
    // needs it.
    RegMask create{20};
    RegMask busy{20};
    std::array<TaskSeq, kNumRegs> producers{};
    producers[20] = 7;
    Rig rig(R"(
        .text
main:   addu $20, $20, 4 !f
        nop  !s
    )");
    std::array<RegValue, kNumRegs> regs{};
    rig.pu.assignTask(8, rig.ctx.prog_.entry, create, busy,
                      regs.data(), producers.data());
    for (Cycle now = 0; now < 30; ++now)
        rig.pu.tick(now);
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 0u);
    EXPECT_GT(rig.pu.currentTaskStats().cycles.waitPred, 10u);
    rig.pu.deliverForward(isa::intReg(20), RegValue::fromWord(100), 7);
    for (Cycle now = 30; now < 60; ++now)
        rig.pu.tick(now);
    EXPECT_TRUE(rig.pu.isDone());
    ASSERT_EQ(rig.ctx.forwards.size(), 1u);
    EXPECT_EQ(rig.ctx.forwards[0].second.asWord(), 104u);
}

TEST(Pu, DeliveryFromWrongProducerIgnored)
{
    RegMask busy{20};
    std::array<TaskSeq, kNumRegs> producers{};
    producers[20] = 7;
    Rig rig(R"(
        .text
main:   addu $8, $20, 0
        nop !s
    )");
    std::array<RegValue, kNumRegs> regs{};
    rig.pu.assignTask(8, rig.ctx.prog_.entry, RegMask{}, busy,
                      regs.data(), producers.data());
    // A stale message from producer 3 must not satisfy it.
    rig.pu.deliverForward(isa::intReg(20), RegValue::fromWord(999), 3);
    for (Cycle now = 0; now < 20; ++now)
        rig.pu.tick(now);
    EXPECT_EQ(rig.pu.currentTaskStats().instructions, 0u);
    rig.pu.deliverForward(isa::intReg(20), RegValue::fromWord(5), 7);
    for (Cycle now = 20; now < 60; ++now)
        rig.pu.tick(now);
    EXPECT_TRUE(rig.pu.isDone());
    EXPECT_EQ(rig.pu.regValues()[8].asWord(), 5u);
}

TEST(Pu, LocalWriteShadowsLateDelivery)
{
    // The task writes $20 before the (older) ring value arrives: the
    // ring value must not clobber the newer local value.
    RegMask create{20};
    RegMask busy{20};
    std::array<TaskSeq, kNumRegs> producers{};
    producers[20] = 7;
    Rig rig(R"(
        .text
main:   li   $20, 42 !f
        nop  !s
    )");
    std::array<RegValue, kNumRegs> regs{};
    rig.pu.assignTask(8, rig.ctx.prog_.entry, create, busy,
                      regs.data(), producers.data());
    for (Cycle now = 0; now < 20; ++now)
        rig.pu.tick(now);
    rig.pu.deliverForward(isa::intReg(20), RegValue::fromWord(1), 7);
    for (Cycle now = 20; now < 40; ++now)
        rig.pu.tick(now);
    EXPECT_TRUE(rig.pu.isDone());
    EXPECT_EQ(rig.pu.regValues()[20].asWord(), 42u);
}

TEST(Pu, LoadsAndStoresThroughContext)
{
    Rig rig(R"(
        .text
main:   li   $8, 0x12
        sw   $8, 0x100($0)
        lw   $9, 0x100($0)
        nop  !s
    )");
    rig.start();
    rig.runUntilDone();
    EXPECT_EQ(rig.ctx.storeCount, 1u);
    EXPECT_EQ(rig.pu.regValues()[9].asWord(), 0x12u);
}

TEST(Pu, MemStallWhenArbFull)
{
    Rig rig(R"(
        .text
main:   li   $8, 1
        sw   $8, 0x100($0)
        nop  !s
    )");
    rig.ctx.memSpace = false;
    rig.start();
    for (Cycle now = 0; now < 50; ++now)
        rig.pu.tick(now);
    EXPECT_EQ(rig.ctx.storeCount, 0u);
    rig.ctx.memSpace = true;
    EXPECT_LT(rig.runUntilDone(), 2000u);
    EXPECT_EQ(rig.ctx.storeCount, 1u);
}

TEST(Pu, SyscallWaitsForPermission)
{
    Rig rig(R"(
        .text
main:   li   $2, 1
        li   $4, 9
        syscall
        nop  !s
    )");
    rig.ctx.allowSyscall = false;
    rig.start();
    for (Cycle now = 0; now < 50; ++now)
        rig.pu.tick(now);
    EXPECT_EQ(rig.ctx.syscallCount, 0u);
    rig.ctx.allowSyscall = true;
    EXPECT_LT(rig.runUntilDone(), 2000u);
    EXPECT_EQ(rig.ctx.syscallCount, 1u);
}

TEST(Pu, FlushDiscardsEverything)
{
    Rig rig(R"(
        .text
main:   li   $8, 1
L:      addu $8, $8, 1
        b    L
    )");
    rig.start();
    for (Cycle now = 0; now < 40; ++now)
        rig.pu.tick(now);
    TaskStats ts = rig.pu.flush();
    EXPECT_GT(ts.instructions, 0u);
    EXPECT_TRUE(rig.pu.isFree());
    // A fresh task can be assigned after the flush.
    std::array<RegValue, kNumRegs> regs{};
    rig.pu.assignTask(9, rig.ctx.prog_.entry, RegMask{}, RegMask{},
                      regs.data());
    EXPECT_EQ(rig.pu.seq(), 9u);
}

TEST(Pu, CycleAccountingAddsUp)
{
    Rig rig(R"(
        .text
main:   li   $8, 3
        mul  $9, $8, $8
        addu $10, $9, $9
        nop  !s
    )");
    rig.start();
    Cycle done = rig.runUntilDone();
    const CycleBreakdown &cb = rig.pu.currentTaskStats().cycles;
    // Every cycle from assignment to completion is classified.
    EXPECT_EQ(cb.total(), done + 1);
}

TEST(Pu, BadConfigsRejected)
{
    StatRegistry stats;
    MockContext ctx(assembleMs(".text\nmain: nop !s\n"));
    PuConfig bad;
    bad.issueWidth = 3;
    EXPECT_THROW(ProcessingUnit(0, bad, ctx, stats.group("p")),
                 FatalError);
    PuConfig zero;
    zero.windowSize = 0;
    EXPECT_THROW(ProcessingUnit(0, zero, ctx, stats.group("p")),
                 FatalError);
}

} // namespace
} // namespace msim
