/**
 * @file
 * Annotation verifier tests: one minimal reproducer per diagnostic
 * (each of the five passes has a program that triggers it and a
 * near-identical clean twin), CFG construction facts (halt detection,
 * context-sensitive walk, truncation on unbounded recursion), report
 * formatting, and the strict assembler gate.
 */

#include <gtest/gtest.h>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"

namespace msim {
namespace {

using analysis::AnalysisReport;
using analysis::AnnotationVerifier;
using analysis::PassId;
using analysis::Severity;
using analysis::TaskCfg;

Program
ms(const std::string &src)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    return assembler::assemble(src, opts);
}

/**
 * Assemble, verify, and return the report. The program is kept alive
 * for the verifier's lifetime inside this helper.
 */
AnalysisReport
lint(const std::string &src)
{
    Program p = ms(src);
    AnnotationVerifier v(p);
    return v.verify();
}

unsigned
count(const AnalysisReport &rep, PassId pass)
{
    unsigned n = 0;
    for (const auto &d : rep.diagnostics)
        if (d.pass == pass)
            ++n;
    return n;
}

const analysis::Diagnostic *
find(const AnalysisReport &rep, PassId pass)
{
    for (const auto &d : rep.diagnostics)
        if (d.pass == pass)
            return &d;
    return nullptr;
}

// A fully annotated two-task loop: every pass comes back clean.
const char *const kClean = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 8 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        move $4, $20
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";

TEST(Analysis, CleanProgramHasNoDiagnostics)
{
    const AnalysisReport rep = lint(kClean);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
    EXPECT_FALSE(rep.hasErrors());
    EXPECT_EQ(rep.numTasks, 3u);
    EXPECT_EQ(rep.truncatedTasks, 0u);
}

// ---- pass 1: mask soundness ----------------------------------------

// A writes $8 outside its create mask; B reads it before redefining.
// In scalar execution B sees 5; in multiscalar the write stays local
// to A's unit and B reads whatever $8 held before A.
const char *const kMaskUnsound = R"(
        .text
main:   li   $20, 0 !f
        b    A !s
.task main
.targets A
.create $20
.endtask
.task A
.targets B
.create $20
.endtask
A:      li   $8, 5
        addu $20, $20, 1 !f
        b    B !s
.task B
.endtask
B:      move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";

TEST(Analysis, MaskSoundnessFlagsEscapingWrite)
{
    const AnalysisReport rep = lint(kMaskUnsound);
    ASSERT_EQ(count(rep, PassId::kMaskSoundness), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kMaskSoundness);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "A");
    EXPECT_EQ(d->reg, 8);
    // The reader is named, and the companion use-before-def finding is
    // folded into this one rather than reported twice.
    EXPECT_NE(d->message.find("B"), std::string::npos);
    EXPECT_EQ(count(rep, PassId::kUseBeforeDef), 0u) << rep.toText();
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, MaskSoundnessCleanWhenRegisterInMask)
{
    // Same program, but $8 travels legitimately: it joins A's create
    // mask and its last update carries the forward bit.
    std::string fixed = kMaskUnsound;
    fixed.replace(fixed.find(".create $20\n.endtask\n.task A"
                             "\n.targets B\n.create $20"),
                  std::string(".create $20\n.endtask\n.task A"
                              "\n.targets B\n.create $20")
                      .size(),
                  ".create $20\n.endtask\n.task A"
                  "\n.targets B\n.create $8, $20");
    fixed.replace(fixed.find("li   $8, 5"), std::string("li   $8, 5").size(),
                  "li   $8, 5 !f");
    const AnalysisReport rep = lint(fixed);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
}

// ---- pass 2: mask precision ----------------------------------------

TEST(Analysis, MaskPrecisionFlagsDeadEntry)
{
    // $9 sits in LOOP's create mask but no path writes or releases
    // it: successors that need $9 wait for LOOP to retire.
    std::string src = kClean;
    const std::string from = ".targets LOOP:loop, DONE\n.create $20";
    src.replace(src.find(from), from.size(),
                ".targets LOOP:loop, DONE\n.create $9, $20");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kMaskPrecision), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kMaskPrecision);
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 9);
    // The dead entry must not additionally warn as a missing last
    // update: there is no update to tag.
    EXPECT_EQ(count(rep, PassId::kMissingLastUpdate), 0u)
        << rep.toText();
    EXPECT_FALSE(rep.hasErrors());
}

// ---- pass 3: premature forward -------------------------------------

TEST(Analysis, PrematureForwardFlagsWriteAfterForward)
{
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1 !f\n"
                "        addu $20, $20, 1");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kPrematureForward), 1u)
        << rep.toText();
    const auto *d = find(rep, PassId::kPrematureForward);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 20);
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, ForwardOnLastUpdateIsClean)
{
    // Two updates are fine when the forward sits on the last one.
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1\n"
                "        addu $20, $20, 1 !f");
    std::string fixed = src;
    const std::string bound = "li   $21, 8 !f";
    fixed.replace(fixed.find(bound), bound.size(), "li   $21, 16 !f");
    const AnalysisReport rep = lint(fixed);
    EXPECT_EQ(count(rep, PassId::kPrematureForward), 0u)
        << rep.toText();
}

// ---- pass 4: missing last update -----------------------------------

TEST(Analysis, MissingLastUpdateFlagsUnforwardedMaskRegister)
{
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kMissingLastUpdate), 1u)
        << rep.toText();
    const auto *d = find(rep, PassId::kMissingLastUpdate);
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 20);
    EXPECT_FALSE(rep.hasErrors());
}

TEST(Analysis, ReleaseSatisfiesLastUpdateOnUnwrittenPath)
{
    // A branchy task that writes $20 on one path and releases it on
    // the other: both paths forward, so no stall warning.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 8 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        andi $8, $20, 1
        beq  $8, $0, SKIP
        addu $20, $20, 2 !f
        b    JOIN
SKIP:
        release $20
        addu $9, $20, 1
JOIN:
        slt  $8, $20, $21
        bne  $8, $0, LOOP !s
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    EXPECT_EQ(count(rep, PassId::kMissingLastUpdate), 0u)
        << rep.toText();
}

// ---- pass 5: use-before-def ----------------------------------------

TEST(Analysis, UseBeforeDefFlagsNeverDefinedRegister)
{
    // B consumes $9, but no task on any path from program start ever
    // defines it.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        b    B !s
.task main
.targets B
.create $20
.endtask
.task B
.endtask
B:      move $4, $9
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kUseBeforeDef), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kUseBeforeDef);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "B");
    EXPECT_EQ(d->reg, 9);
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, UseBeforeDefCleanWhenPredecessorDefines)
{
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $9, 7 !f
        b    B !s
.task main
.targets B
.create $9, $20
.endtask
.task B
.endtask
B:      move $4, $9
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
}

// ---- CFG construction ----------------------------------------------

TEST(Analysis, CfgStopsAtExitSyscall)
{
    // The code after DONE's exit syscall is a helper function that
    // belongs to LOOP; DONE's walk must not fall through into it and
    // pick up its jr $31.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 4 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        jal  HELPER
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        move $4, $20
        li   $2, 1
        syscall
        li   $2, 10
        syscall
HELPER: move $9, $20
        jr   $31
)";
    Program p = ms(src);
    const TaskCfg cfg(p, p.symbols.at("DONE"));
    EXPECT_FALSE(cfg.truncated());
    EXPECT_FALSE(cfg.dynamicExit());
    EXPECT_EQ(cfg.reachablePcs().count(p.symbols.at("HELPER")), 0u);
    bool halted = false;
    for (const auto &b : cfg.blocks())
        halted |= b.haltEnd;
    EXPECT_TRUE(halted);

    // The same exit-syscall awareness keeps the verifier quiet: the
    // jal's $31 write in LOOP never reaches a phantom reader in DONE.
    AnnotationVerifier v(p);
    const AnalysisReport rep = v.verify();
    EXPECT_FALSE(rep.hasErrors()) << rep.toText();
}

TEST(Analysis, CfgWalksCallsContextSensitively)
{
    Program p = ms(R"(
        .text
main:   li   $20, 0 !f
        jal  HELPER
        jal  HELPER
        b    DONE !s
.task main
.targets DONE
.create $20
.endtask
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
HELPER: addu $9, $20, 1
        jr   $31
)");
    const TaskCfg cfg(p, p.symbols.at("main"));
    EXPECT_FALSE(cfg.truncated());
    EXPECT_FALSE(cfg.dynamicExit());
    // Both call sites reach the helper and return to the right
    // continuation, so the helper's pcs are reachable exactly once in
    // the pc set but appear in two contexts.
    EXPECT_EQ(cfg.reachablePcs().count(p.symbols.at("HELPER")), 1u);
    unsigned helperBlocks = 0;
    for (const auto &b : cfg.blocks())
        for (Addr pc : b.pcs)
            if (pc == p.symbols.at("HELPER"))
                ++helperBlocks;
    EXPECT_EQ(helperBlocks, 2u);
    EXPECT_EQ(cfg.staticExits().size(), 1u);
}

TEST(Analysis, UnboundedRecursionTruncatesWalkWithoutFalsePositives)
{
    // A binary-recursive callee blows the (pc, return stack) state
    // budget; the task's facts are incomplete, and the verifier must
    // stay optimistic about it instead of flagging the loop-carried
    // $20 as undefined.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 4 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        move $4, $20
        jal  REC
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
REC:
        beq  $4, $0, RLEAF
        subu $29, $29, 8
        sw   $31, 0($29)
        sw   $4, 4($29)
        subu $4, $4, 1
        jal  REC
        lw   $4, 4($29)
        subu $4, $4, 1
        jal  REC
        lw   $31, 0($29)
        addu $29, $29, 8
        jr   $31
RLEAF:
        li   $2, 0
        jr   $31
)";
    Program p = ms(src);
    AnnotationVerifier v(p);
    ASSERT_NE(v.facts(p.symbols.at("LOOP")), nullptr);
    EXPECT_TRUE(v.facts(p.symbols.at("LOOP"))->incomplete);
    const AnalysisReport rep = v.verify();
    EXPECT_FALSE(rep.hasErrors()) << rep.toText();
    EXPECT_GE(rep.truncatedTasks, 1u);
}

// ---- report formats and the strict gate ----------------------------

TEST(Analysis, TextAndJsonReportsCarryTheDiagnostic)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    opts.fileName = "bad.ms.s";
    Program p = assembler::assemble(kMaskUnsound, opts);
    AnnotationVerifier v(p);
    const AnalysisReport rep = v.verify();
    ASSERT_TRUE(rep.hasErrors());

    const std::string text = rep.toText();
    EXPECT_NE(text.find("bad.ms.s:"), std::string::npos) << text;
    EXPECT_NE(text.find("error:"), std::string::npos) << text;
    EXPECT_NE(text.find("[mask-soundness]"), std::string::npos) << text;

    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"msim-lint-v1\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"mask-soundness\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"error\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"bad.ms.s\""), std::string::npos) << json;
}

TEST(Analysis, StrictAssemblerRejectsUnsoundProgram)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    opts.strict = true;
    EXPECT_THROW(assembler::assemble(kMaskUnsound, opts), FatalError);
    // The clean twin passes the same gate.
    Program p = assembler::assemble(kClean, opts);
    EXPECT_EQ(p.tasks.size(), 3u);
}

} // namespace
} // namespace msim
