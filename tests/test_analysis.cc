/**
 * @file
 * Annotation verifier tests: one minimal reproducer per diagnostic
 * (each of the five passes has a program that triggers it and a
 * near-identical clean twin), CFG construction facts (halt detection,
 * context-sensitive walk, truncation on unbounded recursion), report
 * formatting, and the strict assembler gate.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/mem_dep.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

using analysis::AnalysisReport;
using analysis::AnnotationVerifier;
using analysis::PassId;
using analysis::Severity;
using analysis::TaskCfg;

Program
ms(const std::string &src)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    return assembler::assemble(src, opts);
}

/**
 * Assemble, verify, and return the report. The program is kept alive
 * for the verifier's lifetime inside this helper.
 */
AnalysisReport
lint(const std::string &src)
{
    Program p = ms(src);
    AnnotationVerifier v(p);
    return v.verify();
}

unsigned
count(const AnalysisReport &rep, PassId pass)
{
    unsigned n = 0;
    for (const auto &d : rep.diagnostics)
        if (d.pass == pass)
            ++n;
    return n;
}

const analysis::Diagnostic *
find(const AnalysisReport &rep, PassId pass)
{
    for (const auto &d : rep.diagnostics)
        if (d.pass == pass)
            return &d;
    return nullptr;
}

// A fully annotated two-task loop: every pass comes back clean.
const char *const kClean = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 8 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        move $4, $20
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";

TEST(Analysis, CleanProgramHasNoDiagnostics)
{
    const AnalysisReport rep = lint(kClean);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
    EXPECT_FALSE(rep.hasErrors());
    EXPECT_EQ(rep.numTasks, 3u);
    EXPECT_EQ(rep.truncatedTasks, 0u);
}

// ---- pass 1: mask soundness ----------------------------------------

// A writes $8 outside its create mask; B reads it before redefining.
// In scalar execution B sees 5; in multiscalar the write stays local
// to A's unit and B reads whatever $8 held before A.
const char *const kMaskUnsound = R"(
        .text
main:   li   $20, 0 !f
        b    A !s
.task main
.targets A
.create $20
.endtask
.task A
.targets B
.create $20
.endtask
A:      li   $8, 5
        addu $20, $20, 1 !f
        b    B !s
.task B
.endtask
B:      move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";

TEST(Analysis, MaskSoundnessFlagsEscapingWrite)
{
    const AnalysisReport rep = lint(kMaskUnsound);
    ASSERT_EQ(count(rep, PassId::kMaskSoundness), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kMaskSoundness);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "A");
    EXPECT_EQ(d->reg, 8);
    // The reader is named, and the companion use-before-def finding is
    // folded into this one rather than reported twice.
    EXPECT_NE(d->message.find("B"), std::string::npos);
    EXPECT_EQ(count(rep, PassId::kUseBeforeDef), 0u) << rep.toText();
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, MaskSoundnessCleanWhenRegisterInMask)
{
    // Same program, but $8 travels legitimately: it joins A's create
    // mask and its last update carries the forward bit.
    std::string fixed = kMaskUnsound;
    fixed.replace(fixed.find(".create $20\n.endtask\n.task A"
                             "\n.targets B\n.create $20"),
                  std::string(".create $20\n.endtask\n.task A"
                              "\n.targets B\n.create $20")
                      .size(),
                  ".create $20\n.endtask\n.task A"
                  "\n.targets B\n.create $8, $20");
    fixed.replace(fixed.find("li   $8, 5"), std::string("li   $8, 5").size(),
                  "li   $8, 5 !f");
    const AnalysisReport rep = lint(fixed);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
}

// ---- pass 2: mask precision ----------------------------------------

TEST(Analysis, MaskPrecisionFlagsDeadEntry)
{
    // $9 sits in LOOP's create mask but no path writes or releases
    // it: successors that need $9 wait for LOOP to retire.
    std::string src = kClean;
    const std::string from = ".targets LOOP:loop, DONE\n.create $20";
    src.replace(src.find(from), from.size(),
                ".targets LOOP:loop, DONE\n.create $9, $20");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kMaskPrecision), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kMaskPrecision);
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 9);
    // The dead entry must not additionally warn as a missing last
    // update: there is no update to tag.
    EXPECT_EQ(count(rep, PassId::kMissingLastUpdate), 0u)
        << rep.toText();
    EXPECT_FALSE(rep.hasErrors());
}

// ---- pass 3: premature forward -------------------------------------

TEST(Analysis, PrematureForwardFlagsWriteAfterForward)
{
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1 !f\n"
                "        addu $20, $20, 1");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kPrematureForward), 1u)
        << rep.toText();
    const auto *d = find(rep, PassId::kPrematureForward);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 20);
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, ForwardOnLastUpdateIsClean)
{
    // Two updates are fine when the forward sits on the last one.
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1\n"
                "        addu $20, $20, 1 !f");
    std::string fixed = src;
    const std::string bound = "li   $21, 8 !f";
    fixed.replace(fixed.find(bound), bound.size(), "li   $21, 16 !f");
    const AnalysisReport rep = lint(fixed);
    EXPECT_EQ(count(rep, PassId::kPrematureForward), 0u)
        << rep.toText();
}

// ---- pass 4: missing last update -----------------------------------

TEST(Analysis, MissingLastUpdateFlagsUnforwardedMaskRegister)
{
    std::string src = kClean;
    const std::string from = "        addu $20, $20, 1 !f";
    src.replace(src.find(from), from.size(),
                "        addu $20, $20, 1");
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kMissingLastUpdate), 1u)
        << rep.toText();
    const auto *d = find(rep, PassId::kMissingLastUpdate);
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_EQ(d->taskName, "LOOP");
    EXPECT_EQ(d->reg, 20);
    EXPECT_FALSE(rep.hasErrors());
}

TEST(Analysis, ReleaseSatisfiesLastUpdateOnUnwrittenPath)
{
    // A branchy task that writes $20 on one path and releases it on
    // the other: both paths forward, so no stall warning.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 8 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        andi $8, $20, 1
        beq  $8, $0, SKIP
        addu $20, $20, 2 !f
        b    JOIN
SKIP:
        release $20
        addu $9, $20, 1
JOIN:
        slt  $8, $20, $21
        bne  $8, $0, LOOP !s
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    EXPECT_EQ(count(rep, PassId::kMissingLastUpdate), 0u)
        << rep.toText();
}

// ---- pass 5: use-before-def ----------------------------------------

TEST(Analysis, UseBeforeDefFlagsNeverDefinedRegister)
{
    // B consumes $9, but no task on any path from program start ever
    // defines it.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        b    B !s
.task main
.targets B
.create $20
.endtask
.task B
.endtask
B:      move $4, $9
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    ASSERT_EQ(count(rep, PassId::kUseBeforeDef), 1u) << rep.toText();
    const auto *d = find(rep, PassId::kUseBeforeDef);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "B");
    EXPECT_EQ(d->reg, 9);
    EXPECT_TRUE(rep.hasErrors());
}

TEST(Analysis, UseBeforeDefCleanWhenPredecessorDefines)
{
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $9, 7 !f
        b    B !s
.task main
.targets B
.create $9, $20
.endtask
.task B
.endtask
B:      move $4, $9
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";
    const AnalysisReport rep = lint(src);
    EXPECT_TRUE(rep.diagnostics.empty()) << rep.toText();
}

// ---- CFG construction ----------------------------------------------

TEST(Analysis, CfgStopsAtExitSyscall)
{
    // The code after DONE's exit syscall is a helper function that
    // belongs to LOOP; DONE's walk must not fall through into it and
    // pick up its jr $31.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 4 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        jal  HELPER
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        move $4, $20
        li   $2, 1
        syscall
        li   $2, 10
        syscall
HELPER: move $9, $20
        jr   $31
)";
    Program p = ms(src);
    const TaskCfg cfg(p, p.symbols.at("DONE"));
    EXPECT_FALSE(cfg.truncated());
    EXPECT_FALSE(cfg.dynamicExit());
    EXPECT_EQ(cfg.reachablePcs().count(p.symbols.at("HELPER")), 0u);
    bool halted = false;
    for (const auto &b : cfg.blocks())
        halted |= b.haltEnd;
    EXPECT_TRUE(halted);

    // The same exit-syscall awareness keeps the verifier quiet: the
    // jal's $31 write in LOOP never reaches a phantom reader in DONE.
    AnnotationVerifier v(p);
    const AnalysisReport rep = v.verify();
    EXPECT_FALSE(rep.hasErrors()) << rep.toText();
}

TEST(Analysis, CfgWalksCallsContextSensitively)
{
    Program p = ms(R"(
        .text
main:   li   $20, 0 !f
        jal  HELPER
        jal  HELPER
        b    DONE !s
.task main
.targets DONE
.create $20
.endtask
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
HELPER: addu $9, $20, 1
        jr   $31
)");
    const TaskCfg cfg(p, p.symbols.at("main"));
    EXPECT_FALSE(cfg.truncated());
    EXPECT_FALSE(cfg.dynamicExit());
    // Both call sites reach the helper and return to the right
    // continuation, so the helper's pcs are reachable exactly once in
    // the pc set but appear in two contexts.
    EXPECT_EQ(cfg.reachablePcs().count(p.symbols.at("HELPER")), 1u);
    unsigned helperBlocks = 0;
    for (const auto &b : cfg.blocks())
        for (Addr pc : b.pcs)
            if (pc == p.symbols.at("HELPER"))
                ++helperBlocks;
    EXPECT_EQ(helperBlocks, 2u);
    EXPECT_EQ(cfg.staticExits().size(), 1u);
}

TEST(Analysis, UnboundedRecursionTruncatesWalkWithoutFalsePositives)
{
    // A binary-recursive callee blows the (pc, return stack) state
    // budget; the task's facts are incomplete, and the verifier must
    // stay optimistic about it instead of flagging the loop-carried
    // $20 as undefined.
    const char *src = R"(
        .text
main:   li   $20, 0 !f
        li   $21, 4 !f
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        move $4, $20
        jal  REC
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
REC:
        beq  $4, $0, RLEAF
        subu $29, $29, 8
        sw   $31, 0($29)
        sw   $4, 4($29)
        subu $4, $4, 1
        jal  REC
        lw   $4, 4($29)
        subu $4, $4, 1
        jal  REC
        lw   $31, 0($29)
        addu $29, $29, 8
        jr   $31
RLEAF:
        li   $2, 0
        jr   $31
)";
    Program p = ms(src);
    AnnotationVerifier v(p);
    ASSERT_NE(v.facts(p.symbols.at("LOOP")), nullptr);
    EXPECT_TRUE(v.facts(p.symbols.at("LOOP"))->incomplete);
    const AnalysisReport rep = v.verify();
    EXPECT_FALSE(rep.hasErrors()) << rep.toText();
    EXPECT_GE(rep.truncatedTasks, 1u);
}

// ---- report formats and the strict gate ----------------------------

TEST(Analysis, TextAndJsonReportsCarryTheDiagnostic)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    opts.fileName = "bad.ms.s";
    Program p = assembler::assemble(kMaskUnsound, opts);
    AnnotationVerifier v(p);
    const AnalysisReport rep = v.verify();
    ASSERT_TRUE(rep.hasErrors());

    const std::string text = rep.toText();
    EXPECT_NE(text.find("bad.ms.s:"), std::string::npos) << text;
    EXPECT_NE(text.find("error:"), std::string::npos) << text;
    EXPECT_NE(text.find("[mask-soundness]"), std::string::npos) << text;

    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"msim-lint-v1\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"mask-soundness\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"error\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"bad.ms.s\""), std::string::npos) << json;
}

TEST(Analysis, StrictAssemblerRejectsUnsoundProgram)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    opts.strict = true;
    EXPECT_THROW(assembler::assemble(kMaskUnsound, opts), FatalError);
    // The clean twin passes the same gate.
    Program p = assembler::assemble(kClean, opts);
    EXPECT_EQ(p.tasks.size(), 3u);
}

// ---- memory-dependence analysis (mem_dep.hh) -----------------------

using analysis::AbsVal;
using analysis::MemDepAnalysis;
using analysis::MemRegion;
using analysis::MemSummary;

/** Program + verifier + analysis with the right lifetimes. */
struct MemDep
{
    Program p;
    AnnotationVerifier v;
    MemDepAnalysis a;

    explicit MemDep(const std::string &src) : p(ms(src)), v(p), a(p, v)
    {
    }
};

TEST(MemDep, CosetLatticeJoinAndArithmetic)
{
    const AbsVal c0 = AbsVal::constant(0);
    const AbsVal c4 = AbsVal::constant(4);
    // Joining c and c+4 yields the stride-4 coset, which then absorbs
    // every further increment of 4 (loop convergence, no widening).
    const AbsVal s = join(c0, c4);
    EXPECT_EQ(s.kind, AbsVal::Kind::kStride);
    EXPECT_EQ(s.grainLog, 2u);
    EXPECT_EQ(join(s, add(s, c4)), s);
    // A decrementing induction lands in the same lattice point.
    const AbsVal dec = join(c0, AbsVal::constant(Word(0) - 4));
    EXPECT_EQ(dec.grainLog, 2u);
    // Join with Top and Bottom behave as the lattice bounds.
    EXPECT_EQ(join(AbsVal::top(), c0).kind, AbsVal::Kind::kTop);
    EXPECT_EQ(join(AbsVal::bottom(), c4), c4);
    // Shifting a stride scales its grain; shifting into bit 32 makes
    // the value exact again (everything but the base wraps away).
    EXPECT_EQ(shiftLeft(s, 3).grainLog, 5u);
    EXPECT_EQ(shiftLeft(s, 30).kind, AbsVal::Kind::kConst);
    // Odd strides coarsen to their largest power-of-two divisor.
    const AbsVal odd = join(c0, AbsVal::constant(12));
    EXPECT_EQ(odd.grainLog, 2u);
}

TEST(MemDep, RegionOverlapAndCover)
{
    const MemRegion word{0x1000, 32, 4, 0};
    const MemRegion sameWord{0x1002, 32, 2, 0};
    const MemRegion nextWord{0x1004, 32, 4, 0};
    EXPECT_TRUE(word.overlaps(sameWord));
    EXPECT_TRUE(sameWord.overlaps(word));
    EXPECT_FALSE(word.overlaps(nextWord));
    // A stride-16 coset of words hits 0x1000 but not 0x1004.
    const MemRegion strided{0x1000, 4, 4, 0};
    EXPECT_TRUE(strided.overlaps(word));
    EXPECT_FALSE(strided.overlaps(nextWord));
    EXPECT_TRUE(strided.covers(0x1230, 4));
    EXPECT_FALSE(strided.covers(0x1234, 4));
    // Wraparound: bytes on both sides of the grain boundary.
    const MemRegion high{0x100f, 4, 4, 0};
    EXPECT_TRUE(high.overlaps(word));
}

// Task STORE writes a global a later task LOAD reads: the canonical
// cross-task memory hazard the ARB exists to catch.
const char *const kConflict = R"(
        .data
VAR:    .word 0
OTHER:  .word 0
        .text
main:   li   $20, 7 !f
        b    STORE !s
.task main
.targets STORE
.create $20
.endtask
.task STORE
.targets LOAD
.endtask
STORE:  sw   $20, VAR
        b    LOAD !s
.task LOAD
.endtask
LOAD:   lw   $4, VAR
        li   $2, 1
        syscall
        li   $2, 10
        syscall
)";

TEST(MemDep, SummariesAndConflictPair)
{
    MemDep m(kConflict);
    const Addr store = m.p.symbols.at("STORE");
    const Addr load = m.p.symbols.at("LOAD");
    const Addr var = m.p.symbols.at("VAR");

    const MemSummary *ss = m.a.summary(store);
    ASSERT_NE(ss, nullptr);
    EXPECT_FALSE(ss->storeUnknown);
    ASSERT_EQ(ss->stores.size(), 1u);
    EXPECT_TRUE(ss->stores[0].exact());
    EXPECT_EQ(ss->stores[0].base, var);
    EXPECT_EQ(ss->stores[0].width, 4u);

    EXPECT_TRUE(m.a.conflict(store, load));
    EXPECT_FALSE(m.a.conflict(load, store));

    // The oracle containment query: the actual triple is predicted,
    // a disjoint address is not.
    EXPECT_TRUE(m.a.violationPredicted(store, load, var, 4));
    EXPECT_FALSE(m.a.violationPredicted(store, load, var + 64, 4));
}

TEST(MemDep, MemConflictFlagsCrossTaskOverlap)
{
    MemDep m(kConflict);
    const AnalysisReport rep = m.a.lint();
    ASSERT_EQ(count(rep, PassId::kMemConflict), 1u) << rep.toText();
    const analysis::Diagnostic *d = find(rep, PassId::kMemConflict);
    EXPECT_EQ(d->severity, Severity::kInfo);
    EXPECT_EQ(d->taskName, "STORE");
    EXPECT_NE(d->message.find("LOAD"), std::string::npos) << d->message;
    // Info findings never count as warnings or errors.
    EXPECT_EQ(rep.errorCount(), 0u);
    EXPECT_EQ(rep.warningCount(), 0u);
    EXPECT_EQ(rep.infoCount(), 1u);
    // The stats block reflects the one conflicting pair.
    EXPECT_TRUE(rep.mem.present);
    EXPECT_EQ(rep.mem.conflictPairs, 1u);
    EXPECT_GT(rep.mem.orderedPairs, rep.mem.conflictPairs);
    EXPECT_GT(rep.mem.density(), 0.0);
}

TEST(MemDep, MemConflictCleanOnDisjointAddresses)
{
    // The same shape, but the later task reads a different global.
    std::string src = kConflict;
    src.replace(src.find("lw   $4, VAR"), 12, "lw   $4, OTHER");
    MemDep m(src);
    const AnalysisReport rep = m.a.lint();
    EXPECT_EQ(count(rep, PassId::kMemConflict), 0u) << rep.toText();
    EXPECT_EQ(rep.mem.conflictPairs, 0u);
}

const char *const kUnbalancedSp = R"(
        .text
main:   addiu $sp, $sp, -16
        b     DONE !s
.task main
.targets DONE
.endtask
.task DONE
.endtask
DONE:   li   $2, 10
        syscall
)";

TEST(MemDep, StackDisciplineFlagsUnbalancedSp)
{
    MemDep m(kUnbalancedSp);
    const AnalysisReport rep = m.a.lint();
    ASSERT_EQ(count(rep, PassId::kStackDiscipline), 1u) << rep.toText();
    const analysis::Diagnostic *d = find(rep, PassId::kStackDiscipline);
    EXPECT_EQ(d->severity, Severity::kError);
    EXPECT_EQ(d->taskName, "main");
    EXPECT_NE(d->message.find("-16"), std::string::npos) << d->message;
    EXPECT_TRUE(rep.hasErrors());
}

TEST(MemDep, StackDisciplineCleanWhenBalanced)
{
    std::string src = kUnbalancedSp;
    src.replace(src.find("b     DONE !s"), 13,
                "addiu $sp, $sp, 16\n        b     DONE !s");
    MemDep m(src);
    const AnalysisReport rep = m.a.lint();
    EXPECT_EQ(count(rep, PassId::kStackDiscipline), 0u) << rep.toText();
}

const char *const kDeadStore = R"(
        .data
VAR:    .word 0
        .text
main:   li   $20, 1
        sw   $20, VAR
        li   $21, 2
        sw   $21, VAR
        lw   $4, VAR
        li   $2, 1
        syscall
        li   $2, 10
        syscall
.task main
.endtask
)";

TEST(MemDep, DeadStoreFlagsOverwrittenStore)
{
    MemDep m(kDeadStore);
    const AnalysisReport rep = m.a.lint();
    ASSERT_EQ(count(rep, PassId::kDeadStore), 1u) << rep.toText();
    const analysis::Diagnostic *d = find(rep, PassId::kDeadStore);
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_NE(d->message.find("overwrites"), std::string::npos)
        << d->message;
}

TEST(MemDep, DeadStoreCleanWhenLoadIntervenes)
{
    std::string src = kDeadStore;
    src.replace(src.find("li   $21, 2"), 11,
                "lw   $22, VAR\n        li   $21, 2");
    MemDep m(src);
    const AnalysisReport rep = m.a.lint();
    EXPECT_EQ(count(rep, PassId::kDeadStore), 0u) << rep.toText();
}

TEST(MemDep, JsonCarriesMemStats)
{
    MemDep m(kConflict);
    const std::string json = m.a.lint().toJson();
    EXPECT_NE(json.find("\"mem\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"conflict_pairs\": 1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"conflict_density\":"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"infos\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mem-conflict\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"info\""), std::string::npos) << json;
}

/**
 * End-to-end golden test of the lint tool's JSON output: exec the
 * real msim-lint binary in --format json mode on one workload with
 * every pass enabled and pin the bytes. Regenerate after an intended
 * report change with:
 *
 *     cd build && MSIM_REGEN_GOLDEN=1 ./tests/test_analysis
 */
TEST(MemDep, LintJsonMatchesGoldenSnapshot)
{
    const std::string golden =
        std::string(MSIM_GOLDEN_DIR) + "/lint_compress.json";
    const std::string cmd =
        std::string(MSIM_LINT_BIN) + " --format json compress";

    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    const int status = pclose(pipe);
    // Exit 0: info findings (mem-conflict) never gate.
    EXPECT_EQ(status, 0) << out;

    if (std::getenv("MSIM_REGEN_GOLDEN")) {
        std::ofstream f(golden, std::ios::binary);
        ASSERT_TRUE(f.good()) << golden;
        f << out;
        GTEST_SKIP() << "regenerated " << golden;
    }

    std::ifstream f(golden, std::ios::binary);
    ASSERT_TRUE(f.good())
        << golden << " missing; regenerate with MSIM_REGEN_GOLDEN=1";
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(out, want.str());
}

/**
 * The soundness gate over the shipped programs: run every registered
 * workload on the multiscalar machine with the memDepOracle armed.
 * Any ARB violation whose (store-task, load-task, address) triple is
 * not contained in the static may-conflict prediction panics the run.
 */
TEST(MemDep, OracleHoldsOnWorkloadRegistry)
{
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        workloads::Workload w = workloads::get(name);
        RunSpec spec;
        spec.multiscalar = true;
        spec.ms.memDepOracle = true;
        RunResult r = runWorkload(w, spec);
        EXPECT_TRUE(r.exited) << name;
        EXPECT_EQ(r.output, w.expected) << name;
    }
}

/**
 * Predicted-vs-measured: the static conflict density is computable
 * for every shipped workload, and workloads that actually squash
 * (squashes > 0 measured) are predicted to have at least one
 * conflict pair — the lint side of the oracle's soundness.
 */
TEST(MemDep, PredictedDensityCoversMeasuredSquashes)
{
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        workloads::Workload w = workloads::get(name);
        RunSpec spec;
        spec.multiscalar = true;
        RunResult r = runWorkload(w, spec);

        Program p = assembleWorkload(w, /*multiscalar=*/true);
        AnnotationVerifier v(p);
        MemDepAnalysis a(p, v);
        const AnalysisReport rep = a.lint();
        EXPECT_TRUE(rep.mem.present) << name;
        if (r.memorySquashes > 0) {
            EXPECT_GT(rep.mem.conflictPairs, 0u)
                << name << ": " << r.memorySquashes
                << " measured memory squashes but no predicted "
                   "conflict pair";
        }
    }
}

} // namespace
} // namespace msim
