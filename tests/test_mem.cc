/**
 * @file
 * Memory system tests: functional memory, the split-transaction bus
 * timing (paper section 5.1: 10 cycles for the first 4 words, 1 per
 * additional 4 words, plus contention), direct-mapped cache behaviour
 * (hits, misses, writebacks), and the banked/interleaved data cache
 * with crossbar arbitration.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/banked_dcache.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"

namespace msim {
namespace {

TEST(MainMemory, ReadWriteRoundTrip)
{
    MainMemory mem;
    mem.write(0x1000, 0xdeadbeef, 4);
    EXPECT_EQ(mem.read(0x1000, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x1000, 1), 0xefu);  // little endian
    EXPECT_EQ(mem.read(0x1001, 1), 0xbeu);
    EXPECT_EQ(mem.read(0x1002, 2), 0xdeadu);
}

TEST(MainMemory, UntouchedIsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory mem;
    const Addr addr = 0x1ffe;  // straddles a 4 KiB page boundary
    mem.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x2000, 4), 0x11223344u >> 8*0 & 0xffffffffu
              ? mem.read(0x2000, 4) : 0u);  // sanity: no throw
}

TEST(MainMemory, BulkAndString)
{
    MainMemory mem;
    const char *s = "hello";
    mem.writeBytes(0x3000, reinterpret_cast<const std::uint8_t *>(s),
                   6);
    EXPECT_EQ(mem.readString(0x3000), "hello");
    std::uint8_t buf[6] = {};
    mem.readBytes(0x3000, buf, 6);
    EXPECT_EQ(buf[4], 'o');
}

TEST(Bus, Table1Timing)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    // 4 words: 10 cycles.
    EXPECT_EQ(bus.request(0, 4), 10u);
    // 16 words (a 64-byte block): 10 + 3.
    MemoryBus bus2(reg.group("bus2"));
    EXPECT_EQ(bus2.request(0, 16), 13u);
    // 1 word still pays the full first-beat latency.
    MemoryBus bus3(reg.group("bus3"));
    EXPECT_EQ(bus3.request(0, 1), 10u);
}

TEST(Bus, ContentionQueues)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    EXPECT_EQ(bus.request(0, 16), 13u);
    // Second request at cycle 5 waits for the bus.
    EXPECT_EQ(bus.request(5, 16), 26u);
    // A request after the bus is free starts immediately.
    EXPECT_EQ(bus.request(40, 4), 50u);
    EXPECT_GT(reg.group("bus").get("contentionCycles"), 0u);
}

TEST(Cache, HitAndMissTiming)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {32 * 1024, 64, 1});
    // Cold miss: block fill (16 words = 13 cycles) + hit time.
    EXPECT_EQ(c.access(0, 0x1000, false), 14u);
    // Hit in the same block.
    EXPECT_EQ(c.access(20, 0x1004, false), 21u);
    EXPECT_EQ(c.access(21, 0x103f, false), 22u);
    // Different block: miss again.
    EXPECT_GT(c.access(30, 0x2000, false), 40u);
    EXPECT_EQ(reg.group("c").get("readHits"), 2u);
    EXPECT_EQ(reg.group("c").get("readMisses"), 2u);
}

TEST(Cache, WritebackOfDirtyVictim)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {1024, 64, 1});  // 16 sets
    c.access(0, 0x0000, true);  // fill set 0, dirty
    ASSERT_TRUE(c.probe(0x0000));
    // Conflicting block (same set): victim writeback + fill.
    const Cycle t = c.access(100, 0x0000 + 1024, false);
    // Two bus transfers: writeback then fill.
    EXPECT_GE(t, 100u + 13 + 13);
    EXPECT_EQ(reg.group("c").get("writebacks"), 1u);
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, CleanVictimNoWriteback)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {1024, 64, 1});
    c.access(0, 0x0000, false);
    c.access(100, 0x0400, false);  // evicts clean line
    EXPECT_EQ(reg.group("c").get("writebacks"), 0u);
}

TEST(Cache, BadGeometryRejected)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    EXPECT_THROW(Cache(reg.group("c"), bus, {1000, 64, 1}), FatalError);
    EXPECT_THROW(Cache(reg.group("c"), bus, {1024, 48, 1}), FatalError);
}

TEST(BankedDcache, BlockInterleaving)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    EXPECT_EQ(d.bankOf(0x0000), 0u);
    EXPECT_EQ(d.bankOf(0x0040), 1u);
    EXPECT_EQ(d.bankOf(0x0047), 1u);
    EXPECT_EQ(d.bankOf(0x01c0), 7u);
    EXPECT_EQ(d.bankOf(0x0200), 0u);
}

TEST(BankedDcache, BankLocalIndexUsesFullCapacity)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    // Bank 0 sees blocks 0, 8, 16, ...: 128 consecutive bank-local
    // blocks must not conflict (8 KB bank = 128 blocks).
    Cycle t = 0;
    for (unsigned i = 0; i < 128; ++i)
        t = d.access(t + 20, Addr(i * 8 * 64), false);
    // Re-touch the first block: must still hit.
    const Cycle before = t + 100;
    EXPECT_EQ(d.access(before, 0, false), before + 2);
}

TEST(BankedDcache, ConflictingBankAccessesQueue)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    d.access(0, 0x0000, false);  // warm the line (miss)
    const Cycle warm = 100;
    // Two same-cycle accesses to bank 0: second is delayed a cycle.
    EXPECT_EQ(d.access(warm, 0x0000, false), warm + 2);
    EXPECT_EQ(d.access(warm, 0x0010, false), warm + 3);
    // An access to another bank at the same cycle is not delayed.
    d.access(10, 0x0040, false);  // warm bank 1
    EXPECT_EQ(d.access(warm, 0x0040, false), warm + 2);
}

TEST(BankedDcache, HitLatencyConfigurable)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 1});
    d.access(0, 0, false);
    EXPECT_EQ(d.access(50, 0, false), 51u);
}

} // namespace
} // namespace msim
