/**
 * @file
 * Memory system tests: functional memory, the split-transaction bus
 * timing (paper section 5.1: 10 cycles for the first 4 words, 1 per
 * additional 4 words, plus contention), direct-mapped cache behaviour
 * (hits, misses, writebacks), and the banked/interleaved data cache
 * with crossbar arbitration.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/banked_dcache.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/l2_cache.hh"
#include "mem/main_memory.hh"
#include "mem/mem_level.hh"

namespace msim {
namespace {

TEST(MainMemory, ReadWriteRoundTrip)
{
    MainMemory mem;
    mem.write(0x1000, 0xdeadbeef, 4);
    EXPECT_EQ(mem.read(0x1000, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x1000, 1), 0xefu);  // little endian
    EXPECT_EQ(mem.read(0x1001, 1), 0xbeu);
    EXPECT_EQ(mem.read(0x1002, 2), 0xdeadu);
}

TEST(MainMemory, UntouchedIsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory mem;
    const Addr addr = 0x1ffe;  // straddles a 4 KiB page boundary
    mem.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x2000, 4), 0x11223344u >> 8*0 & 0xffffffffu
              ? mem.read(0x2000, 4) : 0u);  // sanity: no throw
}

TEST(MainMemory, BulkAndString)
{
    MainMemory mem;
    const char *s = "hello";
    mem.writeBytes(0x3000, reinterpret_cast<const std::uint8_t *>(s),
                   6);
    EXPECT_EQ(mem.readString(0x3000), "hello");
    std::uint8_t buf[6] = {};
    mem.readBytes(0x3000, buf, 6);
    EXPECT_EQ(buf[4], 'o');
}

TEST(Bus, Table1Timing)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    // 4 words: 10 cycles.
    EXPECT_EQ(bus.request(0, 4), 10u);
    // 16 words (a 64-byte block): 10 + 3.
    MemoryBus bus2(reg.group("bus2"));
    EXPECT_EQ(bus2.request(0, 16), 13u);
    // 1 word still pays the full first-beat latency.
    MemoryBus bus3(reg.group("bus3"));
    EXPECT_EQ(bus3.request(0, 1), 10u);
}

TEST(Bus, ContentionQueues)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    EXPECT_EQ(bus.request(0, 16), 13u);
    // Second request at cycle 5 waits for the bus.
    EXPECT_EQ(bus.request(5, 16), 26u);
    // A request after the bus is free starts immediately.
    EXPECT_EQ(bus.request(40, 4), 50u);
    EXPECT_GT(reg.group("bus").get("contentionCycles"), 0u);
}

TEST(Cache, HitAndMissTiming)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {32 * 1024, 64, 1});
    // Cold miss: block fill (16 words = 13 cycles) + hit time.
    EXPECT_EQ(c.access(0, 0x1000, false), 14u);
    // Hit in the same block.
    EXPECT_EQ(c.access(20, 0x1004, false), 21u);
    EXPECT_EQ(c.access(21, 0x103f, false), 22u);
    // Different block: miss again.
    EXPECT_GT(c.access(30, 0x2000, false), 40u);
    EXPECT_EQ(reg.group("c").get("readHits"), 2u);
    EXPECT_EQ(reg.group("c").get("readMisses"), 2u);
}

TEST(Cache, WritebackOfDirtyVictim)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {1024, 64, 1});  // 16 sets
    c.access(0, 0x0000, true);  // fill set 0, dirty
    ASSERT_TRUE(c.probe(0x0000));
    // Conflicting block (same set): victim writeback + fill.
    const Cycle t = c.access(100, 0x0000 + 1024, false);
    // Two bus transfers: writeback then fill.
    EXPECT_GE(t, 100u + 13 + 13);
    EXPECT_EQ(reg.group("c").get("writebacks"), 1u);
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, CleanVictimNoWriteback)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    Cache c(reg.group("c"), bus, {1024, 64, 1});
    c.access(0, 0x0000, false);
    c.access(100, 0x0400, false);  // evicts clean line
    EXPECT_EQ(reg.group("c").get("writebacks"), 0u);
}

TEST(Cache, BadGeometryRejected)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    EXPECT_THROW(Cache(reg.group("c"), bus, {1000, 64, 1}), FatalError);
    EXPECT_THROW(Cache(reg.group("c"), bus, {1024, 48, 1}), FatalError);
}

TEST(BankedDcache, BlockInterleaving)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    EXPECT_EQ(d.bankOf(0x0000), 0u);
    EXPECT_EQ(d.bankOf(0x0040), 1u);
    EXPECT_EQ(d.bankOf(0x0047), 1u);
    EXPECT_EQ(d.bankOf(0x01c0), 7u);
    EXPECT_EQ(d.bankOf(0x0200), 0u);
}

TEST(BankedDcache, BankLocalIndexUsesFullCapacity)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    // Bank 0 sees blocks 0, 8, 16, ...: 128 consecutive bank-local
    // blocks must not conflict (8 KB bank = 128 blocks).
    Cycle t = 0;
    for (unsigned i = 0; i < 128; ++i)
        t = d.access(t + 20, Addr(i * 8 * 64), false);
    // Re-touch the first block: must still hit.
    const Cycle before = t + 100;
    EXPECT_EQ(d.access(before, 0, false), before + 2);
}

TEST(BankedDcache, ConflictingBankAccessesQueue)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 2});
    d.access(0, 0x0000, false);  // warm the line (miss)
    const Cycle warm = 100;
    // Two same-cycle accesses to bank 0: second is delayed a cycle.
    EXPECT_EQ(d.access(warm, 0x0000, false), warm + 2);
    EXPECT_EQ(d.access(warm, 0x0010, false), warm + 3);
    // An access to another bank at the same cycle is not delayed.
    d.access(10, 0x0040, false);  // warm bank 1
    EXPECT_EQ(d.access(warm, 0x0040, false), warm + 2);
}

TEST(BankedDcache, HitLatencyConfigurable)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    BankedDataCache d(reg, bus, {8, 8 * 1024, 64, 1});
    d.access(0, 0, false);
    EXPECT_EQ(d.access(50, 0, false), 51u);
}

// ---------------------------------------------------------------------
// Shared L2: timing, LRU, write-back, MSHRs, inclusion invariants.
// ---------------------------------------------------------------------

/** One-bank L2 with @p assoc ways over @p size bytes. */
L2Params
l2Geom(std::size_t size, unsigned assoc, unsigned mshrs = 8,
       L2Inclusion incl = L2Inclusion::kNine)
{
    L2Params p;
    p.sizeBytes = size;
    p.assoc = assoc;
    p.blockBytes = 64;
    p.hitLatency = 6;
    p.numBanks = 1;
    p.mshrsPerBank = mshrs;
    p.inclusion = incl;
    return p;
}

TEST(L2Cache, HitAndMissFillTiming)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    L2Cache l2(reg.group("l2"), bus, l2Geom(8 * 1024, 8));
    // Cold miss: block transfer (16 words = 13 cycles) + hit time.
    EXPECT_EQ(l2.fetchBlock(0, 0x1000, 16), 13u + 6u);
    // Hit after the fill retired: bank grant + hit latency only.
    EXPECT_EQ(l2.fetchBlock(20, 0x1000, 16), 26u);
    EXPECT_EQ(reg.group("l2").get("readMisses"), 1u);
    EXPECT_EQ(reg.group("l2").get("readHits"), 1u);
}

TEST(L2Cache, LruVictimSelection)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    // One set, two ways: 128 bytes over one bank.
    L2Cache l2(reg.group("l2"), bus, l2Geom(128, 2));
    l2.fetchBlock(0, 0x0000, 16);
    l2.fetchBlock(100, 0x1000, 16);
    // Re-touch the first block so the second becomes LRU.
    l2.fetchBlock(200, 0x0000, 16);
    l2.fetchBlock(300, 0x2000, 16);  // evicts the LRU way
    EXPECT_TRUE(l2.probe(0x0000));
    EXPECT_FALSE(l2.probe(0x1000));
    EXPECT_TRUE(l2.probe(0x2000));
    EXPECT_EQ(reg.group("l2").get("evictions"), 1u);
    // Clean victim: no writeback traffic.
    EXPECT_EQ(reg.group("l2").get("writebacks"), 0u);
}

TEST(L2Cache, DirtyWritebackOrdersBeforeFill)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    // One set, one way: every distinct block conflicts.
    L2Cache l2(reg.group("l2"), bus, l2Geom(64, 1));
    // An L1 victim arrives: allocates dirty without a memory fetch.
    EXPECT_EQ(l2.writebackBlock(0, 0x0000, 16), 6u);
    EXPECT_TRUE(l2.probeDirty(0x0000));
    EXPECT_EQ(reg.group("l2").get("writeMisses"), 1u);
    // A conflicting fetch must write the dirty victim back first,
    // then fill: bus does 10..23 (writeback) and 23..36 (fill).
    EXPECT_EQ(l2.fetchBlock(10, 0x1000, 16), 36u + 6u);
    EXPECT_EQ(reg.group("l2").get("writebacks"), 1u);
    EXPECT_FALSE(l2.probe(0x0000));
    EXPECT_TRUE(l2.probe(0x1000));
}

TEST(L2Cache, MshrAllocateMergeAndStallWhenFull)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    L2Cache l2(reg.group("l2"), bus, l2Geom(512, 8, /*mshrs=*/2));
    // Two primary misses claim both MSHRs; the bus serializes the
    // fills (0..13 and 13..26).
    EXPECT_EQ(l2.fetchBlock(0, 0x0000, 16), 19u);
    EXPECT_EQ(l2.fetchBlock(1, 0x1000, 16), 32u);
    // A secondary miss to an in-flight block merges with its MSHR:
    // it completes with the fill (13) + hit latency, no bus traffic.
    EXPECT_EQ(l2.fetchBlock(2, 0x0000, 16), 19u);
    EXPECT_EQ(reg.group("l2").get("mshrMerges"), 1u);
    // A third distinct miss finds the MSHR file full and stalls to
    // the earliest retirement (cycle 13), then queues on the bus
    // behind the second fill: 26..39 + hit latency.
    EXPECT_EQ(l2.fetchBlock(3, 0x2000, 16), 45u);
    EXPECT_EQ(reg.group("l2").get("mshrStalls"), 1u);
    EXPECT_EQ(reg.group("l2").get("mshrStallCycles"), 10u);
    EXPECT_EQ(reg.group("l2").get("readMisses"), 3u);
}

TEST(L2Cache, NextEventCoversInFlightFills)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    L2Cache l2(reg.group("l2"), bus, l2Geom(8 * 1024, 8));
    EXPECT_EQ(l2.nextEventCycle(0), kCycleNever);
    l2.fetchBlock(0, 0x1000, 16);  // fill in flight until cycle 13
    EXPECT_EQ(l2.nextEventCycle(5), 13u);
    EXPECT_EQ(l2.nextEventCycle(13), kCycleNever);
}

TEST(L2Cache, BadGeometryRejected)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    auto bad = [&](L2Params p) {
        EXPECT_THROW(L2Cache(reg.group("l2"), bus, p), FatalError);
    };
    bad(l2Geom(0, 8));                   // no capacity
    bad(l2Geom(8 * 1024, 0));            // no ways
    bad(l2Geom(8 * 1024, 8, 0));         // no MSHRs
    bad(l2Geom(1000, 1));                // non-power-of-two sets
    L2Params split = l2Geom(8 * 1024, 8);
    split.numBanks = 3;                  // size % banks != 0
    bad(split);
}

/**
 * Randomized inclusion-invariant property tests: a real (tag-only)
 * L1 runs over a small L2 and a deterministic access string drives
 * fills, evictions, and writebacks through both levels. After every
 * access the policy's structural invariant must hold across the
 * whole address universe, and the L2's occupancy must never exceed
 * its capacity (the flat-memory model below both levels is the
 * implicit oracle: timing requests are monotonic and every access
 * completes).
 */
void
runInclusionProperty(L2Inclusion incl)
{
    StatRegistry reg;
    MemoryBus bus(reg.group("bus"));
    // L2 smaller than the L1 in sets (4 sets x 2 ways vs 16 lines):
    // back-invalidation and exclusive supply paths both fire often.
    L2Cache l2(reg.group("l2"), bus, l2Geom(512, 2, 4, incl));
    Cache l1(reg.group("l1"), l2, {1024, 64, 1});
    l2.setBackInvalidate(
        [&l1](Addr addr) { return l1.invalidateBlock(addr); });

    constexpr unsigned kBlocks = 64;  // 4 KB address universe
    Rng rng(20260807);
    Cycle now = 0;
    Cycle last_ready = 0;
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr addr = Addr(rng.below(kBlocks)) * 64 +
                          Addr(rng.below(16)) * 4;
        const bool write = rng.below(4) == 0;
        now += 1 + Cycle(rng.below(40));
        const Cycle ready = l1.access(now, addr, write);
        ASSERT_GE(ready, now);
        (void)last_ready;
        last_ready = ready;

        ASSERT_LE(l2.validLines(), 8u) << "L2 over capacity";
        for (unsigned b = 0; b < kBlocks; ++b) {
            const Addr block = Addr(b) * 64;
            switch (incl) {
            case L2Inclusion::kInclusive:
                // Every L1-resident block is L2-resident.
                if (l1.probe(block)) {
                    ASSERT_TRUE(l2.probe(block))
                        << "inclusion hole at block " << b
                        << " after access " << i;
                }
                break;
            case L2Inclusion::kExclusive:
                // A block never lives in both levels at once.
                ASSERT_FALSE(l1.probe(block) && l2.probe(block))
                    << "exclusive overlap at block " << b
                    << " after access " << i;
                break;
            case L2Inclusion::kNine:
                break;  // no structural invariant to violate
            }
        }
    }
    // The string must have exercised the interesting machinery.
    EXPECT_GT(reg.group("l2").get("readMisses"), 0u);
    EXPECT_GT(reg.group("l2").get("evictions"), 0u);
    EXPECT_GT(reg.group("l1").get("writebacks"), 0u);
    if (incl == L2Inclusion::kInclusive) {
        EXPECT_GT(reg.group("l2").get("backInvalidations"), 0u);
    }
    if (incl == L2Inclusion::kExclusive) {
        EXPECT_GT(reg.group("l2").get("exclusiveSupplies"), 0u);
    }
}

TEST(L2Inclusion, InclusivePropertyHolds)
{
    runInclusionProperty(L2Inclusion::kInclusive);
}

TEST(L2Inclusion, ExclusivePropertyHolds)
{
    runInclusionProperty(L2Inclusion::kExclusive);
}

TEST(L2Inclusion, NinePropertyHolds)
{
    runInclusionProperty(L2Inclusion::kNine);
}

} // namespace
} // namespace msim
