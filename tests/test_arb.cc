/**
 * @file
 * ARB tests (paper section 2.3 / Franklin & Sohi): speculative store
 * buffering, nearest-predecessor load forwarding, memory renaming for
 * parallel calls, dependence violation detection at byte granularity,
 * in-order commit, squash, capacity accounting, and a randomized
 * differential test against a simple sequential memory.
 */

#include <gtest/gtest.h>

#include <map>

#include "arb/arb.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/main_memory.hh"

namespace msim {
namespace {

class ArbTest : public ::testing::Test
{
  protected:
    ArbTest() : arb_(stats_.group("arb"), mem_, {8, 64, 256}) {}

    StatRegistry stats_;
    MainMemory mem_;
    Arb arb_;
};

TEST_F(ArbTest, LoadFromCommittedMemory)
{
    mem_.write(0x1000, 0xcafebabe, 4);
    EXPECT_EQ(arb_.load(1, 0x1000, 4, true), 0xcafebabeu);
    EXPECT_EQ(arb_.load(2, 0x1000, 4, false), 0xcafebabeu);
}

TEST_F(ArbTest, SpeculativeStoreInvisibleUntilCommit)
{
    EXPECT_FALSE(arb_.store(2, 0x1000, 4, 0x1111, false).has_value());
    // Memory is untouched while speculative.
    EXPECT_EQ(mem_.read(0x1000, 4), 0u);
    // The storing task sees its own value.
    EXPECT_EQ(arb_.load(2, 0x1000, 4, false), 0x1111u);
    // A later task sees the nearest predecessor's value.
    EXPECT_EQ(arb_.load(3, 0x1000, 4, false), 0x1111u);
    arb_.commit(2);
    EXPECT_EQ(mem_.read(0x1000, 4), 0x1111u);
    // Task 3's load bits stay live until *it* commits.
    EXPECT_EQ(arb_.totalEntries(), 1u);
    arb_.commit(3);
    EXPECT_EQ(arb_.totalEntries(), 0u);
}

TEST_F(ArbTest, EarlierTaskDoesNotSeeLaterStore)
{
    mem_.write(0x2000, 77, 4);
    arb_.store(5, 0x2000, 4, 99, false);
    // Task 4 is logically earlier: must see committed memory.
    EXPECT_EQ(arb_.load(4, 0x2000, 4, false), 77u);
}

TEST_F(ArbTest, NearestPredecessorWins)
{
    arb_.store(2, 0x3000, 4, 22, false);
    arb_.store(4, 0x3000, 4, 44, false);
    EXPECT_EQ(arb_.load(5, 0x3000, 4, false), 44u);
    EXPECT_EQ(arb_.load(3, 0x3000, 4, false), 22u);
}

TEST_F(ArbTest, ViolationLoadBeforeEarlierStore)
{
    // Task 6 loads; task 3 then stores the same bytes: the paper's
    // memory dependence violation, squash from task 6.
    arb_.load(6, 0x4000, 4, false);
    auto violator = arb_.store(3, 0x4000, 4, 5, false);
    ASSERT_TRUE(violator.has_value());
    EXPECT_EQ(*violator, 6u);
}

TEST_F(ArbTest, NoViolationWhenLoadIsAfterStore)
{
    arb_.store(3, 0x4000, 4, 5, false);
    arb_.load(6, 0x4000, 4, false);
    // A second store by task 3 to the same bytes *does* violate task
    // 6's load (the load consumed the first value).
    // But a store by a later task never violates an earlier load.
    EXPECT_FALSE(arb_.store(7, 0x4000, 4, 9, false).has_value());
}

TEST_F(ArbTest, OwnStoreShieldsOwnLoad)
{
    // Task 6 stores then loads its own value: no load bit is set, so
    // an earlier store does not squash it (memory renaming).
    arb_.store(6, 0x5000, 4, 66, false);
    EXPECT_EQ(arb_.load(6, 0x5000, 4, false), 66u);
    EXPECT_FALSE(arb_.store(3, 0x5000, 4, 33, false).has_value());
}

TEST_F(ArbTest, InterveningStoreShadowsViolation)
{
    // Task 5 stores, task 6 loads (gets 5's value), then task 3
    // stores: 6's load was satisfied by 5, not memory, so 3's store
    // violates nothing.
    arb_.store(5, 0x6000, 4, 55, false);
    arb_.load(6, 0x6000, 4, false);
    EXPECT_FALSE(arb_.store(3, 0x6000, 4, 33, false).has_value());
}

TEST_F(ArbTest, ByteGranularityAvoidsFalseSharing)
{
    // Loads of bytes 0-3 and a store to bytes 4-7 of the same granule
    // must not conflict (the linked-list example depends on this).
    arb_.load(6, 0x7000, 4, false);
    EXPECT_FALSE(arb_.store(3, 0x7004, 4, 5, false).has_value());
    // Overlapping bytes do conflict.
    auto violator = arb_.store(3, 0x7002, 4, 5, false);
    ASSERT_TRUE(violator.has_value());
    EXPECT_EQ(*violator, 6u);
}

TEST_F(ArbTest, EarliestViolatorReported)
{
    arb_.load(5, 0x8000, 4, false);
    arb_.load(7, 0x8000, 4, false);
    auto violator = arb_.store(3, 0x8000, 4, 5, false);
    ASSERT_TRUE(violator.has_value());
    EXPECT_EQ(*violator, 5u);
}

TEST_F(ArbTest, ParallelCallStackRenaming)
{
    // Two tasks reuse the same stack addresses (parallel calls,
    // section 2.3): each sees its own frame.
    arb_.store(4, 0x7ffffe00, 4, 0x4444, false);
    arb_.store(5, 0x7ffffe00, 4, 0x5555, false);
    EXPECT_EQ(arb_.load(4, 0x7ffffe00, 4, false), 0x4444u);
    EXPECT_EQ(arb_.load(5, 0x7ffffe00, 4, false), 0x5555u);
    // In-order commit: memory ends with the later task's value.
    arb_.commit(4);
    EXPECT_EQ(mem_.read(0x7ffffe00, 4), 0x4444u);
    arb_.commit(5);
    EXPECT_EQ(mem_.read(0x7ffffe00, 4), 0x5555u);
}

TEST_F(ArbTest, SquashDiscardsSpeculativeState)
{
    arb_.store(5, 0x9000, 4, 55, false);
    arb_.load(6, 0x9000, 4, false);
    arb_.squash(6);
    arb_.squash(5);
    EXPECT_EQ(arb_.totalEntries(), 0u);
    EXPECT_EQ(mem_.read(0x9000, 4), 0u);
    // After the squash, an earlier store no longer sees 6's load.
    EXPECT_FALSE(arb_.store(3, 0x9000, 4, 9, false).has_value());
}

TEST_F(ArbTest, HeadStoreWritesThrough)
{
    // A head store with no buffered bytes writes memory directly.
    EXPECT_FALSE(arb_.store(1, 0xa000, 4, 0xaa, true).has_value());
    EXPECT_EQ(mem_.read(0xa000, 4), 0xaau);
    EXPECT_EQ(arb_.totalEntries(), 0u);
}

TEST_F(ArbTest, HeadStoreStillDetectsViolations)
{
    arb_.load(6, 0xb000, 4, false);
    auto violator = arb_.store(1, 0xb000, 4, 9, true);
    ASSERT_TRUE(violator.has_value());
    EXPECT_EQ(*violator, 6u);
    EXPECT_EQ(mem_.read(0xb000, 4), 9u);
}

TEST_F(ArbTest, HeadWithBufferedBytesKeepsOrdering)
{
    // Task 2 buffers a store while speculative, becomes head, then
    // stores again: commit must not resurrect the old value.
    arb_.store(2, 0xc000, 4, 1, false);
    arb_.store(2, 0xc000, 4, 2, true);  // now head
    arb_.commit(2);
    EXPECT_EQ(mem_.read(0xc000, 4), 2u);
}

TEST_F(ArbTest, SubWordAndDoubleAccesses)
{
    arb_.store(2, 0x1100, 1, 0xaa, false);
    arb_.store(2, 0x1101, 1, 0xbb, false);
    EXPECT_EQ(arb_.load(2, 0x1100, 2, false), 0xbbaau);
    // 8-byte store crossing into the next granule boundary.
    arb_.store(2, 0x1204, 8, 0x1122334455667788ull, false);
    EXPECT_EQ(arb_.load(3, 0x1204, 8, false), 0x1122334455667788ull);
    EXPECT_EQ(arb_.load(3, 0x1208, 4, false), 0x11223344u);
    arb_.commit(2);
    EXPECT_EQ(mem_.read(0x1204, 8), 0x1122334455667788ull);
}

TEST_F(ArbTest, PartialOverlapMergesArbAndMemory)
{
    mem_.write(0x1300, 0xddccbbaa, 4);
    arb_.store(2, 0x1301, 1, 0x99, false);
    EXPECT_EQ(arb_.load(3, 0x1300, 4, false), 0xddcc99aau);
}

TEST_F(ArbTest, CapacityAccounting)
{
    StatRegistry stats;
    MainMemory mem;
    Arb small(stats.group("arb"), mem, {1, 64, 2});
    EXPECT_TRUE(small.hasSpaceFor(2, 0x0, 4, false, false));
    small.store(2, 0x0, 4, 1, false);
    small.store(2, 0x100, 4, 1, false);
    EXPECT_EQ(small.entriesInBank(0), 2u);
    // Full: a new granule cannot be allocated...
    EXPECT_FALSE(small.hasSpaceFor(2, 0x200, 4, false, false));
    // ...but existing granules can take more records,
    EXPECT_TRUE(small.hasSpaceFor(3, 0x0, 4, false, false));
    // ...head loads never allocate,
    EXPECT_TRUE(small.hasSpaceFor(2, 0x200, 4, true, true));
    // ...and unbuffered head stores write through.
    EXPECT_TRUE(small.hasSpaceFor(2, 0x200, 4, false, true));
    // Commit frees the entries.
    small.commit(2);
    EXPECT_TRUE(small.hasSpaceFor(3, 0x200, 4, false, false));
}

TEST_F(ArbTest, CommitOutOfOrderPanics)
{
    arb_.store(2, 0x0, 4, 1, false);
    arb_.store(3, 0x0, 4, 2, false);
    EXPECT_THROW(arb_.commit(3), PanicError);
}

// Randomized differential test: a sequence of loads/stores by tasks
// executing *in logical order* (so no violations) must produce
// exactly the same values and final memory as a flat memory model.
TEST_F(ArbTest, RandomizedDifferentialAgainstFlatMemory)
{
    Rng rng(31337);
    std::map<Addr, std::uint8_t> flat;
    auto flat_read = [&](Addr a, unsigned size) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i) {
            auto it = flat.find(a + i);
            v |= std::uint64_t(it == flat.end() ? 0 : it->second)
                 << (8 * i);
        }
        return v;
    };
    auto flat_write = [&](Addr a, unsigned size, std::uint64_t v) {
        for (unsigned i = 0; i < size; ++i)
            flat[a + i] = std::uint8_t(v >> (8 * i));
    };

    const unsigned sizes[] = {1, 2, 4, 8};
    TaskSeq seq = 1;
    for (unsigned round = 0; round < 50; ++round) {
        // Each task performs a few operations, in task order.
        for (unsigned op = 0; op < 20; ++op) {
            const Addr addr = Addr(0x2000 + rng.below(256));
            const unsigned size = sizes[rng.below(4)];
            if (rng.below(2)) {
                const std::uint64_t v = rng.next();
                arb_.store(seq, addr, size, v, false);
                flat_write(addr, size, v);
            } else {
                EXPECT_EQ(arb_.load(seq, addr, size, false),
                          flat_read(addr, size))
                    << "seq " << seq << " addr " << addr;
            }
        }
        ++seq;
    }
    // Commit everything in order; memory must equal the flat model.
    for (TaskSeq s = 1; s < seq; ++s)
        arb_.commit(s);
    EXPECT_EQ(arb_.totalEntries(), 0u);
    for (const auto &[a, v] : flat)
        EXPECT_EQ(mem_.read(a, 1), v) << "addr " << a;
}

TEST_F(ArbTest, CountersSurviveSquashHeavyRun)
{
    // A squash-heavy sequence: later tasks load ahead of earlier
    // stores over and over, each round ending in a violation and a
    // squash of the violated task.
    const unsigned kRounds = 8;
    for (unsigned round = 0; round < kRounds; ++round) {
        const TaskSeq early = 2 * round + 1;
        const TaskSeq late = 2 * round + 2;
        const Addr addr = Addr(0x5000 + 16 * round);
        arb_.load(late, addr, 4, false);
        arb_.store(late, addr + 8, 4, 0xbeef, false);
        auto violator = arb_.store(early, addr, 4, round, false);
        ASSERT_TRUE(violator.has_value());
        EXPECT_EQ(*violator, late);
        arb_.squash(late);
        arb_.commit(early);
    }

    // The scalar counters and the exported distributions survived
    // every squash: violations by bank, squashed records by kind.
    const StatGroup &g = stats_.group("arb");
    EXPECT_EQ(g.get("violations"), kRounds);
    EXPECT_EQ(g.get("squashedStores"), kRounds);
    std::uint64_t byBank = 0;
    for (const auto &[bucket, n] : g.dists().at("violationsByBank"))
        byBank += n;
    EXPECT_EQ(byBank, kRounds);
    EXPECT_EQ(g.getDist("squashedRecords", "store"), kRounds);
    EXPECT_EQ(g.getDist("squashedRecords", "load"), kRounds);
    EXPECT_EQ(arb_.totalEntries(), 0u);
}

} // namespace
} // namespace msim
