/**
 * @file
 * Task graph analyzer tests: clean programs (including every shipped
 * workload and its variants) must validate with no issues; programs
 * with each class of annotation bug must be flagged; the dot renderer
 * must reflect the declared edges.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "program/task_graph.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

using Kind = TaskGraphIssue::Kind;

Program
ms(const std::string &src)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    return assembler::assemble(src, opts);
}

bool
hasIssue(const std::vector<TaskGraphIssue> &issues, Kind kind)
{
    for (const auto &i : issues) {
        if (i.kind == kind)
            return true;
    }
    return false;
}

const char *const kCleanLoop = R"(
        .text
main:   li   $20, 0
        li   $21, 8
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        bne  $20, $21, LOOP !s
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
)";

TEST(TaskGraph, CleanProgramValidates)
{
    Program p = ms(kCleanLoop);
    TaskGraph g(p);
    EXPECT_TRUE(g.validate().empty());
    ASSERT_EQ(g.nodes().size(), 3u);
}

TEST(TaskGraph, WalkFindsExitsAndCounts)
{
    Program p = ms(kCleanLoop);
    TaskGraph g(p);
    const auto &nodes = g.nodes();
    // Nodes are sorted by address: main, LOOP, DONE.
    EXPECT_EQ(nodes[0].staticExits.size(), 1u);
    EXPECT_EQ(nodes[0].staticExits[0], p.symbols.at("LOOP"));
    // The loop task exits to itself or to DONE.
    EXPECT_EQ(nodes[1].staticExits.size(), 2u);
    EXPECT_TRUE(nodes[1].stopReachable);
    EXPECT_EQ(nodes[1].reachableInstructions, 2u);
    // DONE is terminal: no stop, no exits.
    EXPECT_TRUE(nodes[2].staticExits.empty());
}

TEST(TaskGraph, DetectsUndeclaredExit)
{
    // The gcc bug that motivated this analyzer: the loop stop's
    // fall-through lands on code that is not a declared target.
    const char *src = R"(
        .text
main:   li   $20, 0
        b    LOOP !s
.task main
.targets LOOP
.create $20
.endtask
.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        bne  $20, $0, LOOP !s
EXTRA:  nop
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kUndeclaredExit));
}

TEST(TaskGraph, DetectsMissingDescriptor)
{
    const char *src = R"(
        .text
main:   b    NEXT !s
.task main
.targets NEXT
.endtask
NEXT:   li   $2, 10
        syscall
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kMissingDescriptor));
}

TEST(TaskGraph, DetectsMissingEntryDescriptor)
{
    const char *src = R"(
        .text
main:   nop !s
OTHER:  nop
.task OTHER
.endtask
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kNoEntryDescriptor));
}

TEST(TaskGraph, DetectsForwardOutsideMask)
{
    const char *src = R"(
        .text
main:   addu $20, $20, 1 !f
        nop !s
.task main
.targets main:loop
.endtask
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kForwardOutsideMask));
}

TEST(TaskGraph, DetectsReleaseOutsideMask)
{
    const char *src = R"(
        .text
main:   release $8
        nop !s
.task main
.targets main:loop
.endtask
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kReleaseOutsideMask));
}

TEST(TaskGraph, DetectsMissingReturnSpec)
{
    const char *src = R"(
        .text
main:   jr   $31 !s
.task main
.targets main:loop
.endtask
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kMissingReturnSpec));
}

TEST(TaskGraph, DetectsNoStopReachable)
{
    const char *src = R"(
        .text
main:   li   $2, 10
        syscall
.task main
.targets main:loop
.endtask
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(hasIssue(g.validate(), Kind::kNoStopReachable));
}

TEST(TaskGraph, CallReturnWalksThroughFunctions)
{
    const char *src = R"(
        .text
main:   li   $4, 1
        jal  helper
        addu $5, $2, $2
        nop  !s
.task main
.targets DONE
.create $5
.endtask
.task DONE
.endtask
DONE:
        li   $2, 10
        syscall
helper: addu $2, $4, $4
        jr   $31
    )";
    Program p = ms(src);
    TaskGraph g(p);
    EXPECT_TRUE(g.validate().empty());
    // The walk followed the call and the return.
    EXPECT_EQ(g.nodes()[0].reachableInstructions, 6u);
}

TEST(TaskGraph, DotOutputHasNodesAndEdges)
{
    Program p = ms(kCleanLoop);
    TaskGraph g(p);
    const std::string dot = g.toDot();
    EXPECT_NE(dot.find("digraph tasks"), std::string::npos);
    EXPECT_NE(dot.find("\"main\" -> \"LOOP\""), std::string::npos);
    EXPECT_NE(dot.find("\"LOOP\" -> \"LOOP\""), std::string::npos);
    EXPECT_NE(dot.find("label=loop"), std::string::npos);
}

class WorkloadLint
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(WorkloadLint, EveryShippedWorkloadIsClean)
{
    const auto &[name, define] = GetParam();
    workloads::Workload w = workloads::get(name);
    std::set<std::string> defines;
    if (!define.empty())
        defines.insert(define);
    Program prog = assembleWorkload(w, true, defines);
    TaskGraph g(prog);
    const auto issues = g.validate();
    for (const auto &issue : issues)
        ADD_FAILURE() << issue.message;
}

std::vector<std::tuple<std::string, std::string>>
lintCases()
{
    std::vector<std::tuple<std::string, std::string>> cases;
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        cases.emplace_back(name, "");
    }
    cases.emplace_back("example", "OPTMASK");
    cases.emplace_back("sc", "SCGRID");
    cases.emplace_back("gcc", "SYNC");
    cases.emplace_back("wc", "EARLYV");
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadLint, ::testing::ValuesIn(lintCases()),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::string>> &info) {
        std::string n = std::get<0>(info.param);
        if (!std::get<1>(info.param).empty())
            n += "_" + std::get<1>(info.param);
        return n;
    });

} // namespace
} // namespace msim
