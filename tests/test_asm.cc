/**
 * @file
 * Assembler tests: lexing, labels, data directives, pseudo
 * expansion, multiscalar annotations (task descriptors, tag bits,
 * release), conditional assembly, and error diagnostics.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hh"
#include "asm/lexer.hh"
#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim {
namespace {

using assembler::AsmOptions;
using assembler::assemble;
using isa::Opcode;
using isa::StopKind;

Program
asms(const std::string &body, bool multiscalar = false,
     std::set<std::string> defines = {})
{
    AsmOptions opts;
    opts.multiscalar = multiscalar;
    opts.defines = std::move(defines);
    return assemble(body, opts);
}

// --- lexer ------------------------------------------------------------

TEST(Lexer, TokenKinds)
{
    auto toks = assembler::tokenizeLine(
        "lw $4, 8($sp) # comment", 1, "t");
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_EQ(toks[0].kind, assembler::TokKind::kIdent);
    EXPECT_EQ(toks[1].kind, assembler::TokKind::kReg);
    EXPECT_EQ(toks[1].reg, isa::intReg(4));
    EXPECT_EQ(toks[2].kind, assembler::TokKind::kComma);
    EXPECT_EQ(toks[3].kind, assembler::TokKind::kNumber);
    EXPECT_EQ(toks[4].kind, assembler::TokKind::kLParen);
    EXPECT_EQ(toks[5].reg, isa::intReg(29));
    EXPECT_EQ(toks[6].kind, assembler::TokKind::kRParen);
}

TEST(Lexer, TagsAndPrefixes)
{
    auto toks =
        assembler::tokenizeLine("@ms addu $1, $2, $3 !f !s", 1, "t");
    EXPECT_EQ(toks.front().kind, assembler::TokKind::kAt);
    EXPECT_EQ(toks.front().text, "@ms");
    EXPECT_EQ(toks[toks.size() - 2].text, "!f");
    EXPECT_EQ(toks.back().text, "!s");
}

TEST(Lexer, CharAndStringLiterals)
{
    auto toks = assembler::tokenizeLine(".byte 'a', '\\n'", 1, "t");
    EXPECT_EQ(toks[1].text, "97");
    EXPECT_EQ(toks[3].text, "10");
    auto stoks =
        assembler::tokenizeLine(".asciiz \"hi\\n\"", 1, "t");
    EXPECT_EQ(stoks[1].kind, assembler::TokKind::kString);
    EXPECT_EQ(stoks[1].text, "hi\n");
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(assembler::tokenizeLine("$nope", 1, "t"), FatalError);
    EXPECT_THROW(assembler::tokenizeLine("!bogus", 1, "t"), FatalError);
    EXPECT_THROW(assembler::tokenizeLine("\"open", 1, "t"), FatalError);
    EXPECT_THROW(assembler::tokenizeLine("addu ` $1", 1, "t"),
                 FatalError);
}

// --- basic assembly ----------------------------------------------------

TEST(Asm, LabelsAndEntry)
{
    Program p = asms(R"(
        .text
start:  nop
main:   addu $1, $2, $3
    )");
    EXPECT_EQ(p.symbols.at("start"), kTextBase);
    EXPECT_EQ(p.symbols.at("main"), kTextBase + 4);
    EXPECT_EQ(p.entry, kTextBase + 4);  // "main" wins by default
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Asm, ExplicitEntry)
{
    Program p = asms(R"(
        .entry go
        .text
main:   nop
go:     nop
    )");
    EXPECT_EQ(p.entry, kTextBase + 4);
}

TEST(Asm, DataDirectives)
{
    Program p = asms(R"(
        .data
w:      .word 0x11223344, -1
h:      .half 0x5566
b:      .byte 7
a:      .align 2
w2:     .word 99
s:      .asciiz "ab"
sp:     .space 3
        .align 3
d:      .double 1.5
    )");
    ASSERT_EQ(p.data.size(), 1u);
    const auto &bytes = p.data[0].bytes;
    EXPECT_EQ(p.symbols.at("w"), kDataBase);
    EXPECT_EQ(bytes[0], 0x44u);
    EXPECT_EQ(bytes[3], 0x11u);
    EXPECT_EQ(bytes[4], 0xffu);
    EXPECT_EQ(p.symbols.at("h"), kDataBase + 8);
    EXPECT_EQ(p.symbols.at("b"), kDataBase + 10);
    EXPECT_EQ(p.symbols.at("w2"), kDataBase + 12);
    EXPECT_EQ(p.symbols.at("s"), kDataBase + 16);
    EXPECT_EQ(bytes[16], 'a');
    EXPECT_EQ(bytes[18], 0u);
    // Explicit .align 3 placed d on an 8-byte boundary.
    EXPECT_EQ(p.symbols.at("d") % 8, 0u);
    EXPECT_EQ(p.symbols.at("d"), kDataBase + 24);
}

TEST(Asm, WordWithSymbolFixup)
{
    Program p = asms(R"(
        .data
ptr:    .word tgt
tgt:    .word 42
    )");
    const auto &bytes = p.data[0].bytes;
    std::uint32_t v;
    std::memcpy(&v, bytes.data(), 4);
    EXPECT_EQ(v, kDataBase + 4);
}

TEST(Asm, PseudoLiExpansion)
{
    Program p = asms(R"(
        .text
main:   li $4, 100
        li $5, -5
        li $6, 0x9000
        li $7, 0x12345678
    )");
    // 100 -> addiu; -5 -> addiu; 0x9000 -> ori; big -> lui+ori.
    ASSERT_EQ(p.code.size(), 5u);
    EXPECT_EQ(p.code[0].op, Opcode::kAddiu);
    EXPECT_EQ(p.code[1].op, Opcode::kAddiu);
    EXPECT_EQ(p.code[2].op, Opcode::kOri);
    EXPECT_EQ(p.code[3].op, Opcode::kLui);
    EXPECT_EQ(p.code[3].imm, 0x1234);
    EXPECT_EQ(p.code[4].op, Opcode::kOri);
    EXPECT_EQ(p.code[4].imm, 0x5678);
}

TEST(Asm, PseudoBranchesAndMoves)
{
    Program p = asms(R"(
        .text
main:   move $4, $5
        b main
        beqz $4, main
        bnez $4, main
        bgt $4, $5, main
        blt $4, $5, main
        bge $4, $5, main
        ble $4, $5, main
        neg $4, $5
        not $4, $5
        subi $4, $5, 3
    )");
    EXPECT_EQ(p.code[0].op, Opcode::kAddu);  // move
    EXPECT_EQ(p.code[1].op, Opcode::kBeq);   // b
    EXPECT_EQ(p.code[2].op, Opcode::kBeq);   // beqz
    EXPECT_EQ(p.code[3].op, Opcode::kBne);   // bnez
    EXPECT_EQ(p.code[4].op, Opcode::kSlt);   // bgt = slt at,rt,rs
    EXPECT_EQ(p.code[4].rs, isa::intReg(5));
    EXPECT_EQ(p.code[5].op, Opcode::kBne);
    EXPECT_EQ(p.code[6].op, Opcode::kSlt);   // blt = slt at,rs,rt
    EXPECT_EQ(p.code[6].rs, isa::intReg(4));
    EXPECT_EQ(p.code[8].op, Opcode::kSlt);   // bge -> beq
    EXPECT_EQ(p.code[9].op, Opcode::kBeq);
    EXPECT_EQ(p.code[12].op, Opcode::kSubu); // neg
    EXPECT_EQ(p.code[13].op, Opcode::kNor);  // not
    EXPECT_EQ(p.code[14].op, Opcode::kAddiu);
    EXPECT_EQ(p.code[14].imm, -3);
}

TEST(Asm, RegisterFormWithImmediateOperand)
{
    Program p = asms(R"(
        .text
main:   addu $20, $20, 16
        and  $4, $4, 255
        mul  $5, $6, 31
    )");
    EXPECT_EQ(p.code[0].op, Opcode::kAddiu);
    EXPECT_EQ(p.code[0].imm, 16);
    EXPECT_EQ(p.code[1].op, Opcode::kAndi);
    // mul with immediate goes through $at.
    EXPECT_EQ(p.code[2].op, Opcode::kAddiu);
    EXPECT_EQ(p.code[2].rd, isa::intReg(isa::kRegAt));
    EXPECT_EQ(p.code[3].op, Opcode::kMul);
    EXPECT_EQ(p.code[3].rt, isa::intReg(isa::kRegAt));
}

TEST(Asm, AbsoluteLoadStoreExpansion)
{
    Program p = asms(R"(
        .data
g:      .word 5
        .text
main:   lw $4, g
        sw $4, g
        lw $5, 4($6)
    )");
    EXPECT_EQ(p.code[0].op, Opcode::kLui);
    EXPECT_EQ(p.code[1].op, Opcode::kLw);
    EXPECT_EQ(p.code[1].rs, isa::intReg(isa::kRegAt));
    EXPECT_EQ(p.code[2].op, Opcode::kLui);
    EXPECT_EQ(p.code[3].op, Opcode::kSw);
    EXPECT_EQ(p.code[4].op, Opcode::kLw);
    EXPECT_EQ(p.code[4].imm, 4);
}

TEST(Asm, ReleaseSplitsLongLists)
{
    AsmOptions opts;
    opts.multiscalar = true;
    Program p = assemble(R"(
        .text
main:   release $4, $8, $17
    )", opts);
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(p.code[0].op, Opcode::kRelease);
    EXPECT_EQ(p.code[0].rs, isa::intReg(4));
    EXPECT_EQ(p.code[0].rel2, isa::intReg(8));
    EXPECT_EQ(p.code[1].rs, isa::intReg(17));
    EXPECT_EQ(p.code[1].rel2, kNoReg);
}

// --- multiscalar annotations -------------------------------------------

const char *const kTaskSource = R"(
        .text
main:   li $20, 0
        b OUTER !s

.task main
.targets OUTER
.create $20
.endtask

.task OUTER
.targets OUTER:loop, DONE, FN:call:BACK, ret
.create $20, $f2
.endtask
OUTER:
        addu $20, $20, 4 !f
        bne $20, $0, OUTER !st
BACK:
        nop !sn
DONE:   nop
FN:     jr $31 !s
)";

TEST(Asm, TaskDescriptors)
{
    AsmOptions opts;
    opts.multiscalar = true;
    Program p = assemble(kTaskSource, opts);
    ASSERT_EQ(p.tasks.size(), 2u);
    const TaskDescriptor *t = p.taskAt(p.symbols.at("OUTER"));
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->createMask.test(20));
    EXPECT_TRUE(t->createMask.test(isa::fpReg(2)));
    ASSERT_EQ(t->targets.size(), 4u);
    EXPECT_EQ(t->targets[0].spec, TargetSpec::kLoop);
    EXPECT_EQ(t->targets[0].addr, p.symbols.at("OUTER"));
    EXPECT_EQ(t->targets[1].spec, TargetSpec::kNormal);
    EXPECT_EQ(t->targets[2].spec, TargetSpec::kCall);
    EXPECT_EQ(t->targets[2].addr, p.symbols.at("FN"));
    EXPECT_EQ(t->targets[2].returnTo, p.symbols.at("BACK"));
    EXPECT_EQ(t->targets[3].spec, TargetSpec::kReturn);
}

TEST(Asm, TagBits)
{
    AsmOptions opts;
    opts.multiscalar = true;
    Program p = assemble(kTaskSource, opts);
    const auto at = [&](const char *sym, int off = 0) {
        return p.instrAt(p.symbols.at(sym) + Addr(off) * 4);
    };
    EXPECT_TRUE(at("OUTER")->tags.forward);
    EXPECT_EQ(at("OUTER", 1)->tags.stop, StopKind::kIfTaken);
    EXPECT_EQ(at("BACK")->tags.stop, StopKind::kIfNotTaken);
    EXPECT_EQ(at("FN")->tags.stop, StopKind::kAlways);
}

TEST(Asm, ScalarModeStripsAnnotations)
{
    AsmOptions scalar_opts;
    scalar_opts.multiscalar = false;
    Program p = assemble(kTaskSource, scalar_opts);
    EXPECT_TRUE(p.tasks.empty());
    for (const auto &inst : p.code) {
        EXPECT_FALSE(inst.tags.forward);
        EXPECT_EQ(inst.tags.stop, StopKind::kNone);
    }
}

TEST(Asm, ConditionalLines)
{
    const char *src = R"(
        .text
main:   nop
@ms     addu $1, $2, $3
@sc     subu $1, $2, $3
@def(X) and  $1, $2, $3
@ndef(X) or  $1, $2, $3
    )";
    Program ms = asms(src, true);
    ASSERT_EQ(ms.code.size(), 3u);
    EXPECT_EQ(ms.code[1].op, Opcode::kAddu);
    EXPECT_EQ(ms.code[2].op, Opcode::kOr);

    Program sc = asms(src, false);
    EXPECT_EQ(sc.code[1].op, Opcode::kSubu);

    Program with_x = asms(src, true, {"X"});
    EXPECT_EQ(with_x.code[2].op, Opcode::kAnd);
}

TEST(Asm, InstructionCountsDifferByMode)
{
    // The Table 2 mechanism: @ms lines only exist in the multiscalar
    // binary.
    const char *src = R"(
        .text
main:   nop
@ms     release $4
        nop
    )";
    EXPECT_EQ(asms(src, true).code.size(), 3u);
    EXPECT_EQ(asms(src, false).code.size(), 2u);
}

// --- errors ------------------------------------------------------------

TEST(AsmErrors, Diagnostics)
{
    EXPECT_THROW(asms(".text\nmain: bogus $1\n"), FatalError);
    EXPECT_THROW(asms(".text\nmain: addu $1, $2\n"), FatalError);
    EXPECT_THROW(asms(".text\nmain: b nowhere\n"), FatalError);
    EXPECT_THROW(asms(".text\nx: nop\nx: nop\n"), FatalError);
    EXPECT_THROW(asms(".data\nw: .word\n  .text\nmain: lw $4, w($5)($6)\n"),
                 FatalError);
    EXPECT_THROW(asms(".text\nmain: addiu $1, $2, 40000\n"),
                 FatalError);
}

TEST(AsmErrors, TaskBlocks)
{
    AsmOptions ms;
    ms.multiscalar = true;
    EXPECT_THROW(assemble(".text\n.task main\nmain: nop\n", ms),
                 FatalError);  // unterminated
    EXPECT_THROW(assemble(".text\n.endtask\nmain: nop\n", ms),
                 FatalError);
    EXPECT_THROW(assemble(".text\n.create $4\nmain: nop\n", ms),
                 FatalError);
    EXPECT_THROW(
        assemble(".text\nmain: nop\n.task nowhere\n.endtask\n", ms),
        FatalError);  // undefined label
    EXPECT_THROW(
        assemble(".text\nmain: nop\n"
                 ".task main\n.targets a,b,c,d,e\n.endtask\n",
                 ms),
        FatalError);  // too many targets
}

TEST(AsmErrors, InstructionOutsideText)
{
    EXPECT_THROW(asms(".data\nmain: nop\n"), FatalError);
}

} // namespace
} // namespace msim
