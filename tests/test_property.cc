/**
 * @file
 * Property-based differential testing: randomly generated multiscalar
 * programs (random ALU bodies, random shared-memory loads and stores,
 * random cross-task register traffic) must produce exactly the output
 * of the sequential reference interpreter on every machine shape —
 * scalar, and multiscalar with varying unit counts, issue disciplines,
 * ring latencies and ARB capacities. The shared-memory traffic makes
 * dependence violations (and thus squash/recovery) common, so this
 * sweeps the hardest paths of the whole machine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "sim/reference.hh"

namespace msim {
namespace {

/** Generate a random multiscalar program from a seed. */
std::string
generateProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned iters = 16 + unsigned(rng.below(48));
    const unsigned body_ops = 4 + unsigned(rng.below(10));

    os << "        .data\n";
    os << "DATA:   .space 256\n";
    os << "        .text\n";
    os << "main:\n";
    for (int r = 16; r <= 19; ++r)
        os << "        li   $" << r << ", " << rng.range(-999, 999)
           << "\n";
    os << "        li   $20, 0\n";
    os << "        li   $21, " << iters << "\n";
    os << "        la   $22, DATA\n";
    os << "@ms     b    LOOP !s\n";
    os << "@ms .task main\n";
    os << "@ms .targets LOOP\n";
    os << "@ms .create $16, $17, $18, $19, $20, $21, $22\n";
    os << "@ms .endtask\n";

    // Generate the loop body, tracking which temporaries are defined
    // (a task must never read an inherited temporary) and the last
    // writer of each cross-task register (it gets the forward bit).
    struct Op
    {
        std::string text;
        int crossDest = -1;  // 16..19 when writing a cross register
    };
    std::vector<Op> body;
    bool temp_defined[16] = {};  // $8..$15 -> [8..15]
    bool cross_written[20] = {};

    auto src_reg = [&]() -> std::string {
        for (int tries = 0; tries < 8; ++tries) {
            const unsigned pick = unsigned(rng.below(14));
            if (pick < 8) {
                if (temp_defined[8 + pick])
                    return "$" + std::to_string(8 + pick);
            } else if (pick < 12) {
                return "$" + std::to_string(16 + (pick - 8));
            } else if (pick == 12) {
                return "$20";
            } else {
                return "$0";
            }
        }
        return "$20";
    };

    for (unsigned i = 0; i < body_ops; ++i) {
        const unsigned kind = unsigned(rng.below(10));
        Op op;
        if (kind < 5) {
            // ALU: dest is a temp (60%) or a cross register (40%).
            static const char *ops[] = {"addu", "subu", "xor", "and",
                                        "or", "slt", "mul"};
            const char *mn = ops[rng.below(7)];
            std::string dest;
            if (rng.below(10) < 6) {
                const int t = 8 + int(rng.below(8));
                dest = "$" + std::to_string(t);
                temp_defined[t] = true;
            } else {
                const int c = 16 + int(rng.below(4));
                dest = "$" + std::to_string(c);
                op.crossDest = c;
                cross_written[c] = true;
            }
            op.text = "        " + std::string(mn) + " " + dest +
                      ", " + src_reg() + ", " + src_reg();
        } else if (kind < 7) {
            // ALU immediate.
            const int t = 8 + int(rng.below(8));
            temp_defined[t] = true;
            op.text = "        addiu $" + std::to_string(t) + ", " +
                      src_reg() + ", " +
                      std::to_string(rng.range(-100, 100));
        } else if (kind < 9) {
            // Store to the shared array.
            const unsigned off = unsigned(rng.below(64)) * 4;
            op.text = "        sw   " + src_reg() + ", " +
                      std::to_string(off) + "($22)";
        } else {
            // Load from the shared array.
            const int t = 8 + int(rng.below(8));
            temp_defined[t] = true;
            const unsigned off = unsigned(rng.below(64)) * 4;
            op.text = "        lw   $" + std::to_string(t) + ", " +
                      std::to_string(off) + "($22)";
        }
        body.push_back(op);
    }

    // Forward bits on the last writer of each cross register.
    for (int c = 16; c <= 19; ++c) {
        for (auto it = body.rbegin(); it != body.rend(); ++it) {
            if (it->crossDest == c) {
                it->text += " !f";
                break;
            }
        }
    }

    os << "@ms .task LOOP\n";
    os << "@ms .targets LOOP:loop, DONE\n";
    os << "@ms .create $20";
    for (int c = 16; c <= 19; ++c) {
        if (cross_written[c])
            os << ", $" << c;
    }
    os << "\n@ms .endtask\n";
    os << "LOOP:\n";
    os << "        addu $20, $20, 1 !f\n";
    for (const Op &op : body)
        os << op.text << "\n";
    os << "        bne  $20, $21, LOOP !s\n";

    os << "@ms .task DONE\n";
    os << "@ms .endtask\n";
    os << "DONE:\n";
    // Checksum: fold the cross registers and the shared array.
    os << "        li   $2, 0\n";
    for (int c = 16; c <= 19; ++c) {
        os << "        mul  $2, $2, 31\n";
        os << "        addu $2, $2, $" << c << "\n";
    }
    os << "        move $8, $22\n";
    os << "        addu $9, $22, 256\n";
    os << "CHK:    lw   $10, 0($8)\n";
    os << "        mul  $2, $2, 31\n";
    os << "        addu $2, $2, $10\n";
    os << "        addu $8, $8, 4\n";
    os << "        bne  $8, $9, CHK\n";
    os << "        move $4, $2\n";
    os << "        li   $2, 1\n";
    os << "        syscall\n";
    os << "        li   $2, 10\n";
    os << "        syscall\n";
    return os.str();
}

class RandomProgram : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgram, AllMachinesMatchTheReference)
{
    const std::string src =
        generateProgram(std::uint64_t(GetParam()) * 1099511628211ull +
                        17);

    assembler::AsmOptions ms_opts;
    ms_opts.multiscalar = true;
    Program ms_prog = assembler::assemble(src, ms_opts);
    assembler::AsmOptions sc_opts;
    sc_opts.multiscalar = false;
    Program sc_prog = assembler::assemble(src, sc_opts);

    ReferenceResult ref = referenceRun(sc_prog);
    ASSERT_TRUE(ref.exited);

    {
        ScalarProcessor scalar(sc_prog, ScalarConfig{});
        RunResult r = scalar.run(5'000'000);
        ASSERT_TRUE(r.exited);
        EXPECT_EQ(r.output, ref.output) << "scalar\n" << src;
        EXPECT_EQ(r.instructions, ref.instructions);
    }

    struct Shape
    {
        const char *name;
        MsConfig cfg;
    };
    std::vector<Shape> shapes;
    {
        Shape s;
        s.name = "2-unit";
        s.cfg.numUnits = 2;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit";
        s.cfg.numUnits = 4;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "8-unit 2-way ooo";
        s.cfg.numUnits = 8;
        s.cfg.pu.issueWidth = 2;
        s.cfg.pu.outOfOrder = true;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit slow ring";
        s.cfg.numUnits = 4;
        s.cfg.ringHopLatency = 3;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "8-unit tiny arb (stall)";
        s.cfg.numUnits = 8;
        s.cfg.arbEntriesPerBank = 2;
        s.cfg.arbFullPolicy = ArbFullPolicy::kStall;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit tiny arb (squash)";
        s.cfg.numUnits = 4;
        s.cfg.arbEntriesPerBank = 2;
        s.cfg.arbFullPolicy = ArbFullPolicy::kSquash;
        shapes.push_back(s);
    }

    for (const Shape &shape : shapes) {
        MultiscalarProcessor proc(ms_prog, shape.cfg);
        RunResult r = proc.run(5'000'000);
        ASSERT_TRUE(r.exited) << shape.name << "\n" << src;
        EXPECT_EQ(r.output, ref.output) << shape.name << "\n" << src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range(0, 24));

} // namespace
} // namespace msim
