/**
 * @file
 * Property-based differential testing: randomly generated multiscalar
 * programs (random ALU bodies, random shared-memory loads and stores,
 * random cross-task register traffic, floating-point dataflow,
 * explicit and implicit register releases, and data-dependent
 * early-exit control flow) must produce exactly the output of the
 * sequential reference interpreter on every machine shape — scalar,
 * and multiscalar with varying unit counts, issue disciplines, ring
 * latencies and ARB capacities. The shared-memory traffic (4-byte
 * integer and 8-byte FP accesses over the same array) makes
 * dependence violations — and thus squash/recovery — common, and the
 * early-exit branches make task-successor mispredictions common, so
 * this sweeps the hardest paths of the whole machine. Every run also
 * asserts the exact cycle-accounting invariant and the multiscalar
 * default shape is additionally run with the quiescence fast-forward
 * disabled: the cycle counts must be bit-identical either way.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "sim/reference.hh"

namespace msim {
namespace {

/** Generate a random multiscalar program from a seed. */
std::string
generateProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned iters = 16 + unsigned(rng.below(48));
    const unsigned body_ops = 4 + unsigned(rng.below(10));
    const bool use_fp = rng.below(2) == 0;
    const bool early_exit = rng.below(5) < 2;

    os << "        .data\n";
    os << "DATA:   .space 256\n";
    os << "        .text\n";
    os << "main:\n";
    for (int r = 16; r <= 19; ++r)
        os << "        li   $" << r << ", " << rng.range(-999, 999)
           << "\n";
    os << "        li   $20, 0\n";
    os << "        li   $21, " << iters << "\n";
    os << "        la   $22, DATA\n";
    if (use_fp) {
        // FP cross registers start as exact small integers.
        os << "        cvt.d.w $f20, $16\n";
        os << "        cvt.d.w $f21, $17\n";
    }
    os << "@ms     b    LOOP !s\n";
    os << "@ms .task main\n";
    os << "@ms .targets LOOP\n";
    os << "@ms .create $16, $17, $18, $19, $20, $21, $22";
    if (use_fp)
        os << ", $f20, $f21";
    os << "\n";
    os << "@ms .endtask\n";

    // Generate the loop body, tracking which temporaries are defined
    // (a task must never read an inherited temporary) and the last
    // writer of each cross-task register (it gets the forward bit).
    struct Op
    {
        std::string text;
        int crossDest = -1;    // 16..19 when writing a cross register
        int fpCrossDest = -1;  // 20..21 when writing $f20/$f21
    };
    std::vector<Op> body;
    bool temp_defined[16] = {};     // $8..$15 -> [8..15]
    bool cross_written[20] = {};
    bool fp_temp_defined[12] = {};  // $f8..$f11 -> [8..11]
    bool fp_cross_written[22] = {}; // $f20/$f21 -> [20..21]

    auto src_reg = [&]() -> std::string {
        for (int tries = 0; tries < 8; ++tries) {
            const unsigned pick = unsigned(rng.below(14));
            if (pick < 8) {
                if (temp_defined[8 + pick])
                    return "$" + std::to_string(8 + pick);
            } else if (pick < 12) {
                return "$" + std::to_string(16 + (pick - 8));
            } else if (pick == 12) {
                return "$20";
            } else {
                return "$0";
            }
        }
        return "$20";
    };

    // An FP source: a defined FP temporary or an FP cross register.
    auto fp_src = [&]() -> std::string {
        for (int tries = 0; tries < 8; ++tries) {
            const unsigned pick = unsigned(rng.below(6));
            if (pick < 4) {
                if (fp_temp_defined[8 + pick])
                    return "$f" + std::to_string(8 + pick);
            } else {
                return "$f" + std::to_string(20 + (pick - 4));
            }
        }
        return "$f20";
    };

    for (unsigned i = 0; i < body_ops; ++i) {
        const unsigned kind = unsigned(rng.below(use_fp ? 14 : 10));
        Op op;
        if (kind >= 10) {
            if (kind == 10) {
                // FP ALU: dest is an FP temp (60%) or FP cross (40%).
                // Sources are drawn before the destination is marked
                // defined: a temp read before its first in-task write
                // would be stale across task boundaries.
                static const char *fops[] = {"add.d", "sub.d", "mul.d"};
                const char *mn = fops[rng.below(3)];
                const std::string s1 = fp_src();
                const std::string s2 = fp_src();
                std::string dest;
                if (rng.below(10) < 6) {
                    const int t = 8 + int(rng.below(4));
                    dest = "$f" + std::to_string(t);
                    fp_temp_defined[t] = true;
                } else {
                    const int c = 20 + int(rng.below(2));
                    dest = "$f" + std::to_string(c);
                    op.fpCrossDest = c;
                    fp_cross_written[c] = true;
                }
                op.text = "        " + std::string(mn) + " " + dest +
                          ", " + s1 + ", " + s2;
            } else if (kind == 11) {
                // Conversion round trip: an int32 survives the double
                // format exactly, so cvt.w.d stays in range (the raw
                // int cast in the executor is UB on overflow).
                const int ft = 8 + int(rng.below(4));
                const int t = 8 + int(rng.below(8));
                const std::string s = src_reg();
                fp_temp_defined[ft] = true;
                temp_defined[t] = true;
                op.text = "        cvt.d.w $f" + std::to_string(ft) +
                          ", " + s + "\n        cvt.w.d $" +
                          std::to_string(t) + ", $f" +
                          std::to_string(ft);
            } else if (kind == 12) {
                // 8-byte FP store over the shared (integer) array.
                const unsigned off = unsigned(rng.below(31)) * 8;
                op.text = "        sdc1 " + fp_src() + ", " +
                          std::to_string(off) + "($22)";
            } else {
                // 8-byte FP load (arbitrary bit patterns are fine:
                // both machines and the reference use host doubles).
                const int ft = 8 + int(rng.below(4));
                fp_temp_defined[ft] = true;
                const unsigned off = unsigned(rng.below(31)) * 8;
                op.text = "        ldc1 $f" + std::to_string(ft) +
                          ", " + std::to_string(off) + "($22)";
            }
            body.push_back(op);
            continue;
        }
        if (kind < 5) {
            // ALU: dest is a temp (60%) or a cross register (40%).
            static const char *ops[] = {"addu", "subu", "xor", "and",
                                        "or", "slt", "mul"};
            const char *mn = ops[rng.below(7)];
            // Draw sources before marking the destination defined: an
            // op must not read its own dest as a not-yet-written temp
            // (undeclared temps do not travel across task boundaries).
            const std::string s1 = src_reg();
            const std::string s2 = src_reg();
            std::string dest;
            if (rng.below(10) < 6) {
                const int t = 8 + int(rng.below(8));
                dest = "$" + std::to_string(t);
                temp_defined[t] = true;
            } else {
                const int c = 16 + int(rng.below(4));
                dest = "$" + std::to_string(c);
                op.crossDest = c;
                cross_written[c] = true;
            }
            op.text = "        " + std::string(mn) + " " + dest +
                      ", " + s1 + ", " + s2;
        } else if (kind < 7) {
            // ALU immediate (source drawn before the dest is marked
            // defined, as above).
            const int t = 8 + int(rng.below(8));
            const std::string s = src_reg();
            temp_defined[t] = true;
            op.text = "        addiu $" + std::to_string(t) + ", " +
                      s + ", " +
                      std::to_string(rng.range(-100, 100));
        } else if (kind < 9) {
            // Store to the shared array.
            const unsigned off = unsigned(rng.below(64)) * 4;
            op.text = "        sw   " + src_reg() + ", " +
                      std::to_string(off) + "($22)";
        } else {
            // Load from the shared array.
            const int t = 8 + int(rng.below(8));
            temp_defined[t] = true;
            const unsigned off = unsigned(rng.below(64)) * 4;
            op.text = "        lw   $" + std::to_string(t) + ", " +
                      std::to_string(off) + "($22)";
        }
        body.push_back(op);
    }

    // Forward bits on the last writer of each cross register.
    for (int c = 16; c <= 19; ++c) {
        for (auto it = body.rbegin(); it != body.rend(); ++it) {
            if (it->crossDest == c) {
                it->text += " !f";
                break;
            }
        }
    }
    for (int c = 20; c <= 21; ++c) {
        for (auto it = body.rbegin(); it != body.rend(); ++it) {
            if (it->fpCrossDest == c) {
                it->text += " !f";
                break;
            }
        }
    }

    // A data-dependent early exit: when a random value collides with
    // the iteration counter the task chain ends at DONE instead of
    // looping — the task predictor mispredicts, so squash-and-restart
    // of the in-flight successors becomes a common event.
    if (early_exit) {
        // The branch source must be a cross register: it can land at
        // any body position, and only create-mask registers have a
        // defined value at every point of a task. ($21 is the loop
        // bound, so $21==$20 fires exactly at the final iteration.)
        const int c = 16 + int(rng.below(6));
        Op op;
        op.text = "        beq  $" + std::to_string(c) +
                  ", $20, DONE !st";
        const size_t at = rng.below(body.size() + 1);
        body.insert(body.begin() + std::ptrdiff_t(at), op);
    }

    // Unwritten cross registers: some are released explicitly at a
    // random point (the inherited value travels on early), some stay
    // in the create mask with no writer and no release, exercising
    // the implicit release of inherited values at task exit.
    bool cross_released[20] = {};
    bool cross_inherit[20] = {};
    for (int c = 16; c <= 19; ++c) {
        if (cross_written[c])
            continue;
        const unsigned roll = unsigned(rng.below(4));
        if (roll == 0) {
            Op op;
            op.text = "@ms     release $" + std::to_string(c);
            const size_t at = rng.below(body.size() + 1);
            body.insert(body.begin() + std::ptrdiff_t(at), op);
            cross_released[c] = true;
        } else if (roll == 1) {
            cross_inherit[c] = true;
        }
    }

    os << "@ms .task LOOP\n";
    os << "@ms .targets LOOP:loop, DONE\n";
    os << "@ms .create $20";
    for (int c = 16; c <= 19; ++c) {
        if (cross_written[c] || cross_released[c] || cross_inherit[c])
            os << ", $" << c;
    }
    for (int c = 20; c <= 21; ++c) {
        if (fp_cross_written[c])
            os << ", $f" << c;
    }
    os << "\n@ms .endtask\n";
    os << "LOOP:\n";
    os << "        addu $20, $20, 1 !f\n";
    for (const Op &op : body)
        os << op.text << "\n";
    os << "        bne  $20, $21, LOOP !s\n";

    os << "@ms .task DONE\n";
    os << "@ms .endtask\n";
    os << "DONE:\n";
    if (use_fp) {
        // Fold the (possibly forwarded) FP cross registers into the
        // checksummed array as raw bit patterns — no conversion, so
        // unbounded FP values stay UB-free.
        os << "        sdc1 $f20, 0($22)\n";
        os << "        sdc1 $f21, 8($22)\n";
    }
    // Checksum: fold the cross registers and the shared array.
    os << "        li   $2, 0\n";
    for (int c = 16; c <= 19; ++c) {
        os << "        mul  $2, $2, 31\n";
        os << "        addu $2, $2, $" << c << "\n";
    }
    os << "        move $8, $22\n";
    os << "        addu $9, $22, 256\n";
    os << "CHK:    lw   $10, 0($8)\n";
    os << "        mul  $2, $2, 31\n";
    os << "        addu $2, $2, $10\n";
    os << "        addu $8, $8, 4\n";
    os << "        bne  $8, $9, CHK\n";
    os << "        move $4, $2\n";
    os << "        li   $2, 1\n";
    os << "        syscall\n";
    os << "        li   $2, 10\n";
    os << "        syscall\n";
    return os.str();
}

class RandomProgram : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgram, AllMachinesMatchTheReference)
{
    const std::string src =
        generateProgram(std::uint64_t(GetParam()) * 1099511628211ull +
                        17);

    assembler::AsmOptions ms_opts;
    ms_opts.multiscalar = true;
    Program ms_prog = assembler::assemble(src, ms_opts);
    assembler::AsmOptions sc_opts;
    sc_opts.multiscalar = false;
    Program sc_prog = assembler::assemble(src, sc_opts);

    ReferenceResult ref = referenceRun(sc_prog);
    ASSERT_TRUE(ref.exited);

    {
        ScalarProcessor scalar(sc_prog, ScalarConfig{});
        RunResult r = scalar.run(5'000'000);
        ASSERT_TRUE(r.exited);
        EXPECT_EQ(r.output, ref.output) << "scalar\n" << src;
        EXPECT_EQ(r.instructions, ref.instructions);
        EXPECT_EQ(r.accounting.sum(),
                  r.cycles * r.accounting.numUnits)
            << "scalar accounting invariant\n" << src;
    }

    struct Shape
    {
        const char *name;
        MsConfig cfg;
    };
    std::vector<Shape> shapes;
    // Every shape also runs with both dynamic oracles armed: the
    // write-set oracle (at each task retire the actually written and
    // explicitly forwarded register sets must be contained in the
    // static analysis' may-sets) and the memory-dependence oracle
    // (every ARB violation's store-task/load-task/address triple must
    // lie inside the static may-conflict prediction). Both panic on a
    // miss, so 200 seeds x 8 shapes continuously cross-check the
    // static analyses against the machine.
    {
        Shape s;
        s.name = "2-unit";
        s.cfg.numUnits = 2;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit";
        s.cfg.numUnits = 4;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "8-unit 2-way ooo";
        s.cfg.numUnits = 8;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.pu.issueWidth = 2;
        s.cfg.pu.outOfOrder = true;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit slow ring";
        s.cfg.numUnits = 4;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.ringHopLatency = 3;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "8-unit tiny arb (stall)";
        s.cfg.numUnits = 8;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.arbEntriesPerBank = 2;
        s.cfg.arbFullPolicy = ArbFullPolicy::kStall;
        shapes.push_back(s);
    }
    {
        Shape s;
        s.name = "4-unit tiny arb (squash)";
        s.cfg.numUnits = 4;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.arbEntriesPerBank = 2;
        s.cfg.arbFullPolicy = ArbFullPolicy::kSquash;
        shapes.push_back(s);
    }
    {
        // A deliberately tiny inclusive L2 (1 KB direct-mapped, one
        // bank, one MSHR): constant evictions, back-invalidations of
        // live L1 lines, and MSHR stalls, all under speculation.
        Shape s;
        s.name = "4-unit tiny inclusive L2";
        s.cfg.numUnits = 4;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.l2.emplace();
        s.cfg.l2->sizeBytes = 1024;
        s.cfg.l2->assoc = 1;
        s.cfg.l2->numBanks = 1;
        s.cfg.l2->mshrsPerBank = 1;
        s.cfg.l2->inclusion = L2Inclusion::kInclusive;
        shapes.push_back(s);
    }
    {
        // Exclusive policy exercises the supply-and-invalidate and
        // victim-allocation paths instead.
        Shape s;
        s.name = "4-unit tiny exclusive L2";
        s.cfg.numUnits = 4;
        s.cfg.writeSetOracle = true;
        s.cfg.memDepOracle = true;
        s.cfg.l2.emplace();
        s.cfg.l2->sizeBytes = 2048;
        s.cfg.l2->assoc = 2;
        s.cfg.l2->numBanks = 2;
        s.cfg.l2->mshrsPerBank = 2;
        s.cfg.l2->inclusion = L2Inclusion::kExclusive;
        shapes.push_back(s);
    }

    std::uint64_t arbViolations = 0;
    for (const Shape &shape : shapes) {
        MultiscalarProcessor proc(ms_prog, shape.cfg);
        RunResult r = proc.run(5'000'000);
        ASSERT_TRUE(r.exited) << shape.name << "\n" << src;
        EXPECT_EQ(r.output, ref.output) << shape.name << "\n" << src;
        // The exact accounting invariant: every unit-cycle lands in
        // exactly one category, even across squashes and skips.
        EXPECT_EQ(r.accounting.sum(),
                  r.cycles * r.accounting.numUnits)
            << shape.name << " accounting invariant\n" << src;
        arbViolations += r.memorySquashes;
    }
    // Every one of these violations passed through the mem-dep
    // oracle's containment check above (a miss panics); record the
    // per-seed count so squash-heavy seeds are identifiable from the
    // test log.
    RecordProperty("arb_violations",
                   static_cast<int>(arbViolations));
    std::printf("[seed %d] arb violations across shapes: %llu\n",
                GetParam(),
                static_cast<unsigned long long>(arbViolations));

    // The quiescence fast-forward must be cycle-exact on arbitrary
    // squash-heavy programs, not just the curated workloads: each
    // differential shape re-run with fast-forward disabled must
    // agree on every timing observable. The L2-enabled variant uses
    // the slow bus and a tiny single-MSHR L2 so quiescent windows
    // routinely end on an in-flight L2 fill (the nextEventCycle
    // extension this PR adds).
    auto ffDifferential = [&](MsConfig cfg, const char *tag) {
        MsConfig on_cfg = cfg;
        MsConfig off_cfg = cfg;
        on_cfg.writeSetOracle = true;
        off_cfg.writeSetOracle = true;
        on_cfg.memDepOracle = true;
        off_cfg.memDepOracle = true;
        off_cfg.fastForward = false;
        MultiscalarProcessor on_proc(ms_prog, on_cfg);
        MultiscalarProcessor off_proc(ms_prog, off_cfg);
        RunResult on = on_proc.run(5'000'000);
        RunResult off = off_proc.run(5'000'000);
        ASSERT_TRUE(on.exited && off.exited) << tag << "\n" << src;
        EXPECT_EQ(on.cycles, off.cycles)
            << tag << " fast-forward drift\n" << src;
        EXPECT_EQ(on.output, off.output) << tag << "\n" << src;
        EXPECT_EQ(on.instructions, off.instructions) << tag << "\n"
                                                     << src;
        EXPECT_EQ(on.tasksSquashed, off.tasksSquashed) << tag << "\n"
                                                       << src;
        EXPECT_EQ(on.idleCycles, off.idleCycles) << tag << "\n"
                                                 << src;
        EXPECT_EQ(off.fastForwardedCycles, 0u) << tag << "\n" << src;
        for (size_t cat = 0; cat < kNumCycleCats; ++cat) {
            EXPECT_EQ(on.accounting.total[cat],
                      off.accounting.total[cat])
                << tag << " " << cycleCatName(CycleCat(cat)) << "\n"
                << src;
        }
    };
    ffDifferential(MsConfig{}, "default");
    {
        MsConfig l2_cfg;
        l2_cfg.bus.firstBeatLatency = 100;
        l2_cfg.l2.emplace();
        l2_cfg.l2->sizeBytes = 1024;
        l2_cfg.l2->assoc = 1;
        l2_cfg.l2->numBanks = 1;
        l2_cfg.l2->mshrsPerBank = 1;
        l2_cfg.l2->inclusion = L2Inclusion::kInclusive;
        ffDifferential(l2_cfg, "tiny inclusive L2 + slow bus");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range(0, 200));

} // namespace
} // namespace msim
