/**
 * @file
 * ISA tests: register name parsing, opcode table sanity, Table 1
 * latencies, binary encode/decode round trips (including a
 * property-style sweep over every opcode), and functional semantics
 * of the evaluator against reference computations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/encoding.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace msim::isa {
namespace {

TEST(Registers, ParseNumericAndAliases)
{
    EXPECT_EQ(parseRegName("$0"), intReg(0));
    EXPECT_EQ(parseRegName("$31"), intReg(31));
    EXPECT_EQ(parseRegName("$zero"), intReg(0));
    EXPECT_EQ(parseRegName("$sp"), intReg(29));
    EXPECT_EQ(parseRegName("$ra"), intReg(31));
    EXPECT_EQ(parseRegName("$v0"), intReg(2));
    EXPECT_EQ(parseRegName("$a0"), intReg(4));
    EXPECT_EQ(parseRegName("$f0"), fpReg(0));
    EXPECT_EQ(parseRegName("$f31"), fpReg(31));
}

TEST(Registers, RejectBadNames)
{
    EXPECT_FALSE(parseRegName("$32").has_value());
    EXPECT_FALSE(parseRegName("$f32").has_value());
    EXPECT_FALSE(parseRegName("$bogus").has_value());
    EXPECT_FALSE(parseRegName("zero").has_value());
    EXPECT_FALSE(parseRegName("$").has_value());
}

TEST(Registers, NamesRoundTrip)
{
    EXPECT_EQ(regName(intReg(17)), "$17");
    EXPECT_EQ(regName(fpReg(4)), "$f4");
    EXPECT_EQ(*parseRegName(regName(fpReg(20))), fpReg(20));
}

TEST(Opcodes, MnemonicsRoundTrip)
{
    for (size_t i = 0; i < size_t(Opcode::kNumOpcodes); ++i) {
        const Opcode op = Opcode(i);
        auto parsed = parseMnemonic(opInfo(op).mnemonic);
        ASSERT_TRUE(parsed.has_value()) << opInfo(op).mnemonic;
        EXPECT_EQ(*parsed, op);
    }
    EXPECT_FALSE(parseMnemonic("bogus").has_value());
}

TEST(Opcodes, Table1Latencies)
{
    // The functional unit latencies of the paper's Table 1.
    EXPECT_EQ(execLatency(InstClass::kIntAlu), 1u);
    EXPECT_EQ(execLatency(InstClass::kIntMult), 4u);
    EXPECT_EQ(execLatency(InstClass::kIntDiv), 12u);
    EXPECT_EQ(execLatency(InstClass::kStore), 1u);
    EXPECT_EQ(execLatency(InstClass::kBranch), 1u);
    EXPECT_EQ(execLatency(InstClass::kFpAddSP), 2u);
    EXPECT_EQ(execLatency(InstClass::kFpMulSP), 4u);
    EXPECT_EQ(execLatency(InstClass::kFpDivSP), 12u);
    EXPECT_EQ(execLatency(InstClass::kFpAddDP), 2u);
    EXPECT_EQ(execLatency(InstClass::kFpMulDP), 5u);
    EXPECT_EQ(execLatency(InstClass::kFpDivDP), 18u);
}

TEST(Opcodes, FuAssignment)
{
    EXPECT_EQ(fuKind(InstClass::kIntAlu), FuKind::kSimpleInt);
    EXPECT_EQ(fuKind(InstClass::kIntMult), FuKind::kComplexInt);
    EXPECT_EQ(fuKind(InstClass::kIntDiv), FuKind::kComplexInt);
    EXPECT_EQ(fuKind(InstClass::kLoad), FuKind::kMem);
    EXPECT_EQ(fuKind(InstClass::kStore), FuKind::kMem);
    EXPECT_EQ(fuKind(InstClass::kBranch), FuKind::kBranch);
    EXPECT_EQ(fuKind(InstClass::kFpMulDP), FuKind::kFp);
}

// --- encode/decode ---------------------------------------------------

Instruction
randomInstruction(Opcode op, Rng &rng, Addr pc)
{
    Instruction inst;
    inst.op = op;
    const Format f = opInfo(op).format;
    auto r = [&] { return intReg(int(rng.below(32))); };
    switch (f) {
      case Format::kR3:
        inst.rd = r();
        inst.rs = r();
        inst.rt = r();
        break;
      case Format::kR2:
        inst.rd = r();
        inst.rs = r();
        break;
      case Format::kRI:
        inst.rd = r();
        inst.rs = r();
        inst.imm = std::int32_t(rng.range(kMinImm16, kMaxImm16));
        if (op == Opcode::kAndi || op == Opcode::kOri ||
            op == Opcode::kXori)
            inst.imm = std::int32_t(rng.below(0x10000));
        break;
      case Format::kSh:
        inst.rd = r();
        inst.rs = r();
        inst.imm = std::int32_t(rng.below(32));
        break;
      case Format::kLui:
        inst.rd = r();
        inst.imm = std::int32_t(rng.below(0x10000));
        break;
      case Format::kLS:
        if (opInfo(op).cls == InstClass::kLoad)
            inst.rd = r();
        else
            inst.rt = r();
        inst.rs = r();
        inst.imm = std::int32_t(rng.range(kMinImm16, kMaxImm16));
        break;
      case Format::kBr2:
        inst.rs = r();
        inst.rt = r();
        inst.target =
            Addr(std::int64_t(pc) + 4 + rng.range(-1000, 1000) * 4);
        break;
      case Format::kBr1:
        inst.rs = r();
        inst.target =
            Addr(std::int64_t(pc) + 4 + rng.range(-1000, 1000) * 4);
        break;
      case Format::kJ:
        inst.target = Addr(rng.below(1 << 20)) * 4;
        if (op == Opcode::kJal)
            inst.rd = intReg(kRegRa);
        break;
      case Format::kJr:
        inst.rs = r();
        break;
      case Format::kJalr:
        inst.rd = r();
        inst.rs = r();
        break;
      case Format::kRel:
        inst.rs = r();
        inst.rel2 = rng.below(2) ? r() : kNoReg;
        break;
      case Format::kNone:
        break;
    }
    // FP banks for FP opcodes.
    auto fix = [&](RegIndex &reg, bool fp) {
        if (reg != kNoReg && fp)
            reg = fpReg(int(reg) & 31);
    };
    switch (op) {
      case Opcode::kAddS: case Opcode::kSubS: case Opcode::kMulS:
      case Opcode::kDivS: case Opcode::kAddD: case Opcode::kSubD:
      case Opcode::kMulD: case Opcode::kDivD:
        fix(inst.rd, true);
        fix(inst.rs, true);
        fix(inst.rt, true);
        break;
      case Opcode::kMovD: case Opcode::kNegD: case Opcode::kAbsD:
        fix(inst.rd, true);
        fix(inst.rs, true);
        break;
      case Opcode::kCvtDW:
        fix(inst.rd, true);
        break;
      case Opcode::kCvtWD:
        fix(inst.rs, true);
        break;
      case Opcode::kCLtD: case Opcode::kCLeD: case Opcode::kCEqD:
        fix(inst.rs, true);
        fix(inst.rt, true);
        break;
      case Opcode::kLdc1: case Opcode::kLwc1:
        fix(inst.rd, true);
        break;
      case Opcode::kSdc1: case Opcode::kSwc1:
        fix(inst.rt, true);
        break;
      default:
        break;
    }
    return inst;
}

class EncodingRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodingRoundTrip, EveryOpcodeRoundTrips)
{
    const Opcode op = Opcode(GetParam());
    Rng rng(std::uint64_t(GetParam()) * 7919 + 1);
    const Addr pc = 0x00400100;
    for (int iter = 0; iter < 50; ++iter) {
        Instruction inst = randomInstruction(op, rng, pc);
        const Word word = encode(inst, pc);
        auto back = decode(word, pc);
        ASSERT_TRUE(back.has_value()) << opInfo(op).mnemonic;
        EXPECT_EQ(back->op, inst.op) << inst.toString();
        EXPECT_EQ(back->rd, inst.rd) << inst.toString();
        EXPECT_EQ(back->rs, inst.rs) << inst.toString();
        EXPECT_EQ(back->rt, inst.rt) << inst.toString();
        EXPECT_EQ(back->imm, inst.imm) << inst.toString();
        EXPECT_EQ(back->target, inst.target) << inst.toString();
        EXPECT_EQ(back->rel2, inst.rel2) << inst.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingRoundTrip,
    ::testing::Range(0, int(Opcode::kNumOpcodes)),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = opInfo(Opcode(info.param)).mnemonic;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(Encoding, ImmediateRangeEnforced)
{
    Instruction inst;
    inst.op = Opcode::kAddiu;
    inst.rd = intReg(1);
    inst.rs = intReg(2);
    inst.imm = 0x8000;  // one past the signed max
    EXPECT_THROW(encode(inst, 0), msim::FatalError);
    inst.imm = -0x8001;
    EXPECT_THROW(encode(inst, 0), msim::FatalError);
}

TEST(Encoding, BranchRangeAndAlignment)
{
    Instruction inst;
    inst.op = Opcode::kBeq;
    inst.rs = intReg(1);
    inst.rt = intReg(2);
    inst.target = 0x00400002;  // misaligned
    EXPECT_THROW(encode(inst, 0x00400000), msim::FatalError);
    inst.target = 0x00400000 + (40000 * 4);  // out of range
    EXPECT_THROW(encode(inst, 0x00400000), msim::FatalError);
}

TEST(Encoding, IllegalWordsDecodeToNothing)
{
    // Primary opcode beyond the table.
    EXPECT_FALSE(decode(0xfc000000u, 0).has_value());
    // R-format with an unassigned funct.
    EXPECT_FALSE(decode(0x0000003fu, 0).has_value());
}

// --- exec semantics ---------------------------------------------------

Instruction
mk(Opcode op, std::int32_t imm = 0)
{
    Instruction inst;
    inst.op = op;
    inst.rd = intReg(1);
    inst.rs = intReg(2);
    inst.rt = intReg(3);
    inst.imm = imm;
    return inst;
}

RegValue
alu(Opcode op, Word a, Word b, std::int32_t imm = 0)
{
    return evalAlu(mk(op, imm), RegValue::fromWord(a),
                   RegValue::fromWord(b), 0x400000);
}

TEST(Exec, IntegerArithmetic)
{
    EXPECT_EQ(alu(Opcode::kAddu, 7, 8).asWord(), 15u);
    EXPECT_EQ(alu(Opcode::kAddu, 0xffffffff, 1).asWord(), 0u);
    EXPECT_EQ(alu(Opcode::kSubu, 5, 7).asSWord(), -2);
    EXPECT_EQ(alu(Opcode::kMul, Word(-3), 7).asSWord(), -21);
    EXPECT_EQ(alu(Opcode::kDiv, Word(-40), 6).asSWord(), -6);
    EXPECT_EQ(alu(Opcode::kRem, 40, 6).asWord(), 4u);
    // Division by zero is defined, not a trap.
    EXPECT_EQ(alu(Opcode::kDiv, 40, 0).asWord(), 0u);
    EXPECT_EQ(alu(Opcode::kRem, 40, 0).asWord(), 40u);
    // INT_MIN / -1 does not trap either.
    EXPECT_EQ(alu(Opcode::kDiv, 0x80000000, Word(-1)).asWord(),
              0x80000000u);
}

TEST(Exec, LogicAndShifts)
{
    EXPECT_EQ(alu(Opcode::kAnd, 0xf0f0, 0xff00).asWord(), 0xf000u);
    EXPECT_EQ(alu(Opcode::kOr, 0xf0f0, 0x0f0f).asWord(), 0xffffu);
    EXPECT_EQ(alu(Opcode::kXor, 0xff, 0x0f).asWord(), 0xf0u);
    EXPECT_EQ(alu(Opcode::kNor, 0, 0).asWord(), 0xffffffffu);
    EXPECT_EQ(alu(Opcode::kSll, 1, 0, 4).asWord(), 16u);
    EXPECT_EQ(alu(Opcode::kSrl, 0x80000000, 0, 31).asWord(), 1u);
    EXPECT_EQ(alu(Opcode::kSra, 0x80000000, 0, 31).asWord(),
              0xffffffffu);
    EXPECT_EQ(alu(Opcode::kSllv, 1, 33).asWord(), 2u);  // shamt mod 32
}

TEST(Exec, Comparisons)
{
    EXPECT_EQ(alu(Opcode::kSlt, Word(-1), 1).asWord(), 1u);
    EXPECT_EQ(alu(Opcode::kSltu, Word(-1), 1).asWord(), 0u);
    EXPECT_EQ(alu(Opcode::kSlti, Word(-5), 0, -4).asWord(), 1u);
    EXPECT_EQ(alu(Opcode::kSltiu, 3, 0, 7).asWord(), 1u);
}

TEST(Exec, ImmediatesAndLui)
{
    EXPECT_EQ(alu(Opcode::kAddiu, 10, 0, -3).asWord(), 7u);
    EXPECT_EQ(alu(Opcode::kOri, 0xf0000000, 0, 0x1234).asWord(),
              0xf0001234u);
    EXPECT_EQ(alu(Opcode::kLui, 0, 0, 0x1234).asWord(), 0x12340000u);
}

TEST(Exec, LinkValues)
{
    Instruction jal = mk(Opcode::kJal);
    EXPECT_EQ(evalAlu(jal, RegValue{}, RegValue{}, 0x400100).asWord(),
              0x400104u);
}

TEST(Exec, FloatingPoint)
{
    auto d = [](double v) { return RegValue::fromDouble(v); };
    Instruction add = mk(Opcode::kAddD);
    EXPECT_DOUBLE_EQ(evalAlu(add, d(1.5), d(2.25), 0).asDouble(), 3.75);
    Instruction div = mk(Opcode::kDivD);
    EXPECT_DOUBLE_EQ(evalAlu(div, d(1.0), d(3.0), 0).asDouble(),
                     1.0 / 3.0);
    Instruction neg = mk(Opcode::kNegD);
    EXPECT_DOUBLE_EQ(evalAlu(neg, d(2.5), d(0), 0).asDouble(), -2.5);
    Instruction cvt = mk(Opcode::kCvtWD);
    EXPECT_EQ(evalAlu(cvt, d(3.99), d(0), 0).asSWord(), 3);
    EXPECT_EQ(evalAlu(cvt, d(-3.99), d(0), 0).asSWord(), -3);
    Instruction clt = mk(Opcode::kCLtD);
    EXPECT_EQ(evalAlu(clt, d(1.0), d(2.0), 0).asWord(), 1u);
    EXPECT_EQ(evalAlu(clt, d(2.0), d(1.0), 0).asWord(), 0u);
}

TEST(Exec, SinglePrecisionRounding)
{
    // SP ops round through float even though registers hold doubles.
    Instruction add = mk(Opcode::kAddS);
    const double a = 0.1, b = 0.2;
    const double expect = double(float(a) + float(b));
    EXPECT_DOUBLE_EQ(evalAlu(add, RegValue::fromDouble(a),
                             RegValue::fromDouble(b), 0)
                         .asDouble(),
                     expect);
}

TEST(Exec, Branches)
{
    auto w = [](Word v) { return RegValue::fromWord(v); };
    Instruction beq = mk(Opcode::kBeq);
    beq.target = 0x400200;
    EXPECT_TRUE(evalBranch(beq, w(5), w(5)).taken);
    EXPECT_FALSE(evalBranch(beq, w(5), w(6)).taken);
    EXPECT_EQ(evalBranch(beq, w(5), w(5)).target, 0x400200u);

    Instruction bltz = mk(Opcode::kBltz);
    EXPECT_TRUE(evalBranch(bltz, w(Word(-1)), w(0)).taken);
    EXPECT_FALSE(evalBranch(bltz, w(0), w(0)).taken);

    Instruction blez = mk(Opcode::kBlez);
    EXPECT_TRUE(evalBranch(blez, w(0), w(0)).taken);

    Instruction jr = mk(Opcode::kJr);
    auto out = evalBranch(jr, w(0x00400abc), w(0));
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.target, 0x00400abcu);
}

TEST(Exec, MemoryHelpers)
{
    Instruction lw = mk(Opcode::kLw, 8);
    EXPECT_EQ(memAddr(lw, RegValue::fromWord(0x1000)), 0x1008u);
    EXPECT_EQ(memSize(Opcode::kLb), 1u);
    EXPECT_EQ(memSize(Opcode::kLh), 2u);
    EXPECT_EQ(memSize(Opcode::kLw), 4u);
    EXPECT_EQ(memSize(Opcode::kLdc1), 8u);

    EXPECT_EQ(loadResult(Opcode::kLb, 0x80).asSWord(), -128);
    EXPECT_EQ(loadResult(Opcode::kLbu, 0x80).asWord(), 128u);
    EXPECT_EQ(loadResult(Opcode::kLh, 0x8000).asSWord(), -32768);
    EXPECT_EQ(loadResult(Opcode::kLhu, 0x8000).asWord(), 32768u);

    EXPECT_EQ(storeBytes(Opcode::kSb, RegValue::fromWord(0x1234)),
              0x34u);
    EXPECT_EQ(storeBytes(Opcode::kSh, RegValue::fromWord(0x12345678)),
              0x5678u);

    // Double round trip through raw bytes.
    const double v = 3.14159;
    EXPECT_DOUBLE_EQ(
        loadResult(Opcode::kLdc1,
                   storeBytes(Opcode::kSdc1, RegValue::fromDouble(v)))
            .asDouble(),
        v);
    // Float narrows.
    const double f = double(float(2.71828));
    EXPECT_DOUBLE_EQ(
        loadResult(Opcode::kLwc1,
                   storeBytes(Opcode::kSwc1,
                              RegValue::fromDouble(2.71828)))
            .asDouble(),
        f);
}

TEST(Instruction, Predicates)
{
    EXPECT_TRUE(mk(Opcode::kLw).isMemOp());
    EXPECT_TRUE(mk(Opcode::kSw).isMemOp());
    EXPECT_FALSE(mk(Opcode::kAddu).isMemOp());
    EXPECT_TRUE(mk(Opcode::kBeq).isCondBranch());
    EXPECT_FALSE(mk(Opcode::kJ).isCondBranch());
    EXPECT_TRUE(mk(Opcode::kJ).isJump());
    EXPECT_TRUE(mk(Opcode::kJr).isJump());
    EXPECT_TRUE(mk(Opcode::kBeq).isControlOp());
}

TEST(Instruction, ToStringShowsTags)
{
    Instruction inst = mk(Opcode::kAddu);
    inst.tags.forward = true;
    inst.tags.stop = StopKind::kAlways;
    const std::string s = inst.toString();
    EXPECT_NE(s.find("addu"), std::string::npos);
    EXPECT_NE(s.find("!f"), std::string::npos);
    EXPECT_NE(s.find("!s"), std::string::npos);
}

} // namespace
} // namespace msim::isa
