/**
 * @file
 * Tests for the declarative machine-shape layer (src/config): strict
 * parsing with dotted-path diagnostics, canonical round-trip
 * identity, preset resolution, equivalence of the paper-default shape
 * with the default-constructed configs (including identical simulated
 * cycles), the hardware-cost proxy, and the explorer's Pareto
 * frontier.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/cost_model.hh"
#include "config/machine_shape.hh"
#include "exp/explore.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

using config::ConfigError;
using config::MachineShape;

/** Expect parseShape(text) to throw with the given dotted path. */
void
expectParseError(const std::string &text, const std::string &path,
                 const std::string &reason_substr = "")
{
    try {
        config::parseShape(text);
        FAIL() << "no ConfigError for: " << text;
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.path, path) << e.what();
        if (!reason_substr.empty()) {
            EXPECT_NE(e.reason.find(reason_substr), std::string::npos)
                << e.what();
        }
    }
}

// ---------------------------------------------------------------------
// Shipped presets.
// ---------------------------------------------------------------------

TEST(Shapes, ShippedPresetsAllParseAndRoundTrip)
{
    const std::vector<std::string> names = config::listShapeNames();
    ASSERT_GE(names.size(), 30u) << "shape dir " << config::shapeDir();
    for (const std::string &name : names) {
        SCOPED_TRACE(name);
        const MachineShape &shape = config::resolveShape(name);
        EXPECT_EQ(shape.name, name);
        // parse → serialize → parse is the identity.
        const MachineShape again =
            config::parseShape(config::shapeToJson(shape).dump());
        EXPECT_TRUE(config::shapeEquals(shape, again));
        EXPECT_EQ(config::shapeToJson(shape).dump(),
                  config::shapeToJson(again).dump());
    }
}

TEST(Shapes, LintShippedDirIsClean)
{
    const std::vector<config::ShapeLint> lints = config::lintShapeDir();
    ASSERT_GE(lints.size(), 30u);
    for (const config::ShapeLint &l : lints)
        EXPECT_EQ(l.error, "") << l.file;
}

TEST(Shapes, PaperDefaultIsTheDefaultConstructedConfig)
{
    // The shipped paper-default shape and a default-constructed
    // MsConfig must serialize to the same canonical bytes — the
    // paper's section 5.1 machine is the library default, and the
    // shape file cannot drift from it.
    MachineShape dflt;
    dflt.name = "paper-default";
    dflt.multiscalar = true;
    EXPECT_EQ(config::shapeToJson(dflt).dump(),
              config::shapeToJson(config::resolveShape("paper-default"))
                  .dump());

    MachineShape scalar;
    scalar.name = "scalar-1w";
    scalar.multiscalar = false;
    EXPECT_EQ(config::shapeToJson(scalar).dump(),
              config::shapeToJson(config::resolveShape("scalar-1w"))
                  .dump());
}

TEST(Shapes, PaperDefaultReproducesDefaultGoldenCycles)
{
    // Simulated observables, not just serialized bytes: a run from
    // the shape file must be bit-identical to a run from the default
    // RunSpec (the configuration the golden-cycle snapshots pin).
    for (const char *workload : {"example", "wc"}) {
        SCOPED_TRACE(workload);
        const workloads::Workload w = workloads::get(workload);

        const RunResult viaShape =
            runWorkload(w, config::specForShape("paper-default"));
        const RunResult viaDefault = runWorkload(w, RunSpec{});
        EXPECT_EQ(viaShape.cycles, viaDefault.cycles);
        EXPECT_EQ(viaShape.instructions, viaDefault.instructions);
        EXPECT_EQ(viaShape.tasksRetired, viaDefault.tasksRetired);
        EXPECT_EQ(viaShape.tasksSquashed, viaDefault.tasksSquashed);
        EXPECT_EQ(viaShape.output, viaDefault.output);

        RunSpec scalarDefault;
        scalarDefault.multiscalar = false;
        const RunResult scalarShape =
            runWorkload(w, config::specForShape("scalar-1w"));
        const RunResult scalarDflt = runWorkload(w, scalarDefault);
        EXPECT_EQ(scalarShape.cycles, scalarDflt.cycles);
        EXPECT_EQ(scalarShape.instructions, scalarDflt.instructions);
        EXPECT_EQ(scalarShape.output, scalarDflt.output);
    }
}

TEST(Shapes, ResolveUnknownPresetListsAvailableNames)
{
    try {
        config::resolveShape("no-such-shape");
        FAIL() << "no ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown shape preset"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("paper-default"),
                  std::string::npos);
    }
}

TEST(Shapes, ResolveShapeCachesByName)
{
    const MachineShape &a = config::resolveShape("ms8-1w");
    const MachineShape &b = config::resolveShape("ms8-1w");
    EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------
// Strict parsing.
// ---------------------------------------------------------------------

TEST(ShapeParse, MinimalDocumentUsesDefaults)
{
    const MachineShape shape =
        config::parseShape("{\"schema\": \"msim-shape-v1\"}");
    EXPECT_TRUE(shape.multiscalar);
    EXPECT_EQ(shape.ms.numUnits, MsConfig().numUnits);
    EXPECT_EQ(shape.ms.arbEntriesPerBank, MsConfig().arbEntriesPerBank);
}

TEST(ShapeParse, WrongSchemaFails)
{
    expectParseError("{\"schema\": \"msim-shape-v2\"}", "schema",
                     "expected");
}

TEST(ShapeParse, UnknownKeyFailsWithPath)
{
    expectParseError("{\"unitz\": 4}", "unitz", "unknown key");
    expectParseError("{\"pu\": {\"width\": 2}}", "pu.width",
                     "unknown key");
    expectParseError("{\"arb\": {\"entries\": 4}}", "arb.entries",
                     "unknown key");
}

TEST(ShapeParse, MisplacedKeysGetHints)
{
    // dcache.size_bytes exists for scalar shapes only; the error must
    // point at the multiscalar spelling.
    expectParseError("{\"dcache\": {\"size_bytes\": 8192}}",
                     "dcache.size_bytes", "bank_size_bytes");
    // units on a scalar shape gets a kind hint.
    expectParseError("{\"multiscalar\": false, \"units\": 4}", "units",
                     "single unit");
    expectParseError(
        "{\"multiscalar\": false, \"predictor\": {\"kind\": \"pas\"}}",
        "predictor", "no task predictor");
}

TEST(ShapeParse, DuplicateKeyFails)
{
    expectParseError("{\"units\": 4, \"units\": 8}", "units",
                     "duplicate");
}

TEST(ShapeParse, OutOfRangeGeometryFails)
{
    expectParseError("{\"units\": 0}", "units", "must be in [1, 64]");
    expectParseError("{\"units\": 65}", "units", "must be in [1, 64]");
    expectParseError("{\"arb\": {\"entries_per_bank\": 0}}",
                     "arb.entries_per_bank", "must be in");
    expectParseError("{\"pu\": {\"issue_width\": 17}}",
                     "pu.issue_width", "must be in [1, 16]");
    expectParseError("{\"units\": -1}", "units", "non-negative");
    expectParseError("{\"units\": 2.5}", "units", "integer");
    expectParseError("{\"units\": \"four\"}", "units", "integer");
}

TEST(ShapeParse, BadEnumValuesFail)
{
    expectParseError("{\"arb\": {\"full_policy\": \"wait\"}}",
                     "arb.full_policy", "squash");
    expectParseError("{\"predictor\": {\"kind\": \"oracle\"}}",
                     "predictor.kind", "pas");
}

TEST(ShapeParse, ValidateRejectsNonPowerOfTwoBlocks)
{
    // Parsed values in range but geometrically invalid: the
    // MsConfig::validate() pass runs on every parsed shape.
    expectParseError("{\"dcache\": {\"block_bytes\": 48}}", "",
                     "power of two");
    expectParseError("{\"icache\": {\"size_bytes\": 3000}}", "",
                     "power-of-two multiple");
}

TEST(ShapeParse, NumBanksZeroIsTheDefaultingMarker)
{
    const MachineShape shape = config::parseShape(
        "{\"units\": 8, \"dcache\": {\"num_banks\": 0}}");
    EXPECT_EQ(shape.ms.numBanks, 0u);
    EXPECT_EQ(shape.ms.effectiveBanks(), 16u);

    const MachineShape fixed = config::parseShape(
        "{\"units\": 8, \"dcache\": {\"num_banks\": 4}}");
    EXPECT_EQ(fixed.ms.effectiveBanks(), 4u);
}

TEST(ShapeParse, L2DefaultsToNullAndRoundTrips)
{
    // No "l2" key and an explicit null both mean: no L2, the
    // historical machine bit for bit.
    EXPECT_FALSE(config::parseShape("{}").ms.l2.has_value());
    EXPECT_FALSE(config::parseShape("{\"l2\": null}").ms.l2);

    const MachineShape shape = config::parseShape(
        "{\"l2\": {\"size_bytes\": 65536, \"assoc\": 4, "
        "\"hit_latency\": 9, \"num_banks\": 2, "
        "\"mshrs_per_bank\": 3, \"inclusion\": \"exclusive\"}}");
    ASSERT_TRUE(shape.ms.l2.has_value());
    EXPECT_EQ(shape.ms.l2->sizeBytes, 65536u);
    EXPECT_EQ(shape.ms.l2->assoc, 4u);
    EXPECT_EQ(shape.ms.l2->hitLatency, 9u);
    EXPECT_EQ(shape.ms.l2->numBanks, 2u);
    EXPECT_EQ(shape.ms.l2->mshrsPerBank, 3u);
    EXPECT_EQ(shape.ms.l2->inclusion, L2Inclusion::kExclusive);

    // Canonical serialization round-trips both forms, and the
    // L2-less canonical dump carries an explicit "l2": null.
    const MachineShape again =
        config::parseShape(config::shapeToJson(shape).dump());
    EXPECT_TRUE(config::shapeEquals(shape, again));
    EXPECT_NE(config::shapeToJson(config::parseShape("{}"))
                  .dump()
                  .find("\"l2\":null"),
              std::string::npos);

    // The scalar baseline takes the same block.
    const MachineShape sc = config::parseShape(
        "{\"multiscalar\": false, \"l2\": {\"size_bytes\": 131072}}");
    ASSERT_TRUE(sc.scalar.l2.has_value());
    EXPECT_EQ(sc.scalar.l2->sizeBytes, 131072u);
    EXPECT_TRUE(config::shapeEquals(
        sc, config::parseShape(config::shapeToJson(sc).dump())));
}

TEST(ShapeParse, L2InvalidValuesRejected)
{
    expectParseError("{\"l2\": {\"assoc\": 0}}", "l2.assoc",
                     "must be in [1, 64]");
    expectParseError("{\"l2\": {\"assoc\": 65}}", "l2.assoc",
                     "must be in [1, 64]");
    expectParseError("{\"l2\": {\"mshrs_per_bank\": 0}}",
                     "l2.mshrs_per_bank", "must be in [1, 1024]");
    expectParseError("{\"l2\": {\"inclusion\": \"both\"}}",
                     "l2.inclusion", "inclusive");
    expectParseError("{\"l2\": 4}", "l2", "");
    // Geometrically invalid values reach MsConfig::validate().
    expectParseError("{\"l2\": {\"block_bytes\": 128}}", "",
                     "must match the L1 block size");
    expectParseError("{\"l2\": {\"size_bytes\": 3001, "
                     "\"num_banks\": 4}}",
                     "", "must divide evenly");
    expectParseError("{\"l2\": {\"size_bytes\": 3000, "
                     "\"num_banks\": 4}}",
                     "", "power-of-two number");
}

TEST(ShapeParse, L2MisplacedKeysGetHints)
{
    // The L2 knobs live in the "l2" block; top-level spellings and
    // the L1's bank-size spelling get pointed home.
    expectParseError("{\"mshrs_per_bank\": 4}", "mshrs_per_bank",
                     "l2");
    expectParseError("{\"inclusion\": \"nine\"}", "inclusion", "l2");
    expectParseError("{\"l2\": {\"bank_size_bytes\": 4096}}",
                     "l2.bank_size_bytes", "size_bytes");
}

TEST(ShapeParse, MalformedJsonBecomesConfigError)
{
    expectParseError("{\"units\": }", "(document)");
    expectParseError("", "(document)");
}

TEST(ShapeParse, LoadShapeFileAnchorsErrorsOnTheFile)
{
    const std::string path = ::testing::TempDir() + "/bad-shape.json";
    {
        std::ofstream out(path);
        out << "{\"unitz\": 4}";
    }
    try {
        config::loadShapeFile(path);
        FAIL() << "no ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.path, "unitz");
        EXPECT_NE(e.reason.find(path), std::string::npos) << e.what();
    }
    std::remove(path.c_str());

    try {
        config::loadShapeFile("/nonexistent/shape.json");
        FAIL() << "no ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(e.reason.find("cannot open"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// RunSpec application.
// ---------------------------------------------------------------------

TEST(ShapeSpec, ApplyShapeSetsModeAndMachine)
{
    const RunSpec ms = config::specForShape("ms8-2w-ooo");
    EXPECT_TRUE(ms.multiscalar);
    EXPECT_EQ(ms.ms.numUnits, 8u);
    EXPECT_EQ(ms.ms.pu.issueWidth, 2u);
    EXPECT_TRUE(ms.ms.pu.outOfOrder);

    const RunSpec sc = config::specForShape("scalar-2w");
    EXPECT_FALSE(sc.multiscalar);
    EXPECT_EQ(sc.scalar.pu.issueWidth, 2u);
    // Run-control knobs stay at the library defaults.
    EXPECT_EQ(sc.maxCycles, RunSpec{}.maxCycles);
    EXPECT_TRUE(sc.checkOutput);
}

// ---------------------------------------------------------------------
// The hardware-cost proxy.
// ---------------------------------------------------------------------

TEST(CostModel, MonotoneInTheExploredAxes)
{
    MsConfig base;
    const double c0 = config::hardwareCostProxy(base);
    EXPECT_GT(c0, 0.0);

    MsConfig more_units = base;
    more_units.numUnits = 8;
    EXPECT_GT(config::hardwareCostProxy(more_units), c0);

    MsConfig more_arb = base;
    more_arb.arbEntriesPerBank = 1024;
    EXPECT_GT(config::hardwareCostProxy(more_arb), c0);

    MsConfig wider = base;
    wider.pu.issueWidth = 2;
    EXPECT_GT(config::hardwareCostProxy(wider), c0);

    // Predictor cost ordering: pas > last > static.
    MsConfig last = base;
    last.predictor = "last";
    MsConfig stat = base;
    stat.predictor = "static";
    EXPECT_GT(c0, config::hardwareCostProxy(last));
    EXPECT_GT(config::hardwareCostProxy(last),
              config::hardwareCostProxy(stat));

    // An L2 costs more than no L2, and cost is monotone in its size.
    MsConfig l2_small = base;
    l2_small.l2.emplace();
    l2_small.l2->sizeBytes = 64 * 1024;
    MsConfig l2_big = l2_small;
    l2_big.l2->sizeBytes = 1024 * 1024;
    EXPECT_GT(config::hardwareCostProxy(l2_small), c0);
    EXPECT_GT(config::hardwareCostProxy(l2_big),
              config::hardwareCostProxy(l2_small));
}

// ---------------------------------------------------------------------
// The Pareto frontier.
// ---------------------------------------------------------------------

TEST(Pareto, KeepsOnlyNonDominatedPoints)
{
    //              A     B     C     D
    // cost:       10    20    30    40
    // speedup:   1.0   2.0   1.5   2.0
    // C is dominated by B (cheaper, faster); D by B (same speedup,
    // cheaper); frontier = {A, B}, cost ascending.
    const std::vector<std::size_t> f = exp::paretoFrontier(
        {10, 20, 30, 40}, {1.0, 2.0, 1.5, 2.0});
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], 0u);
    EXPECT_EQ(f[1], 1u);
}

TEST(Pareto, FailedPointsNeverQualify)
{
    // Speedup 0 marks a failed grid point: excluded even when cheap.
    const std::vector<std::size_t> f =
        exp::paretoFrontier({1, 10}, {0.0, 1.5});
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], 1u);
}

TEST(Pareto, IdenticalPointsAllSurvive)
{
    // Equal (cost, speedup) pairs do not dominate each other.
    const std::vector<std::size_t> f =
        exp::paretoFrontier({5, 5}, {2.0, 2.0});
    EXPECT_EQ(f.size(), 2u);
}

TEST(Pareto, SortedByCostAscending)
{
    const std::vector<std::size_t> f = exp::paretoFrontier(
        {40, 10, 20}, {4.0, 1.0, 2.0});
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], 1u);
    EXPECT_EQ(f[1], 2u);
    EXPECT_EQ(f[2], 0u);
}

// ---------------------------------------------------------------------
// Explorer grid expansion.
// ---------------------------------------------------------------------

TEST(Explore, GridMatchesAxesAndDeduplicates)
{
    exp::ExploreAxes axes = exp::ExploreAxes::smoke();
    EXPECT_EQ(exp::explorePoints(axes).size(), axes.numPoints());

    axes.units = {2, 2, 4};
    const std::vector<exp::ExplorePoint> points =
        exp::explorePoints(axes);
    EXPECT_EQ(points.size(), 2 * axes.ringHops.size() *
                                 axes.arbEntries.size() *
                                 axes.arbPolicies.size() *
                                 axes.predictors.size());
}

TEST(Explore, PointIdsEncodeTheAxes)
{
    exp::ExploreAxes axes;
    axes.units = {4};
    axes.ringHops = {2};
    axes.arbEntries = {32};
    axes.arbPolicies = {"stall"};
    axes.predictors = {"last"};
    const std::vector<exp::ExplorePoint> points =
        exp::explorePoints(axes);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].id, "u4-r2-a32st-last");
    EXPECT_EQ(points[0].ms.numUnits, 4u);
    EXPECT_EQ(points[0].ms.ringHopLatency, 2u);
    EXPECT_EQ(points[0].ms.arbEntriesPerBank, 32u);
    EXPECT_EQ(points[0].ms.arbFullPolicy, ArbFullPolicy::kStall);
    EXPECT_EQ(points[0].ms.predictor, "last");
}

TEST(Explore, ReportJsonCarriesTheFrontier)
{
    // A tiny real sweep end to end: declare, run, compute, serialize.
    exp::ExploreAxes axes;
    axes.units = {2, 4};
    axes.ringHops = {1};
    axes.arbEntries = {256};
    axes.predictors = {"pas"};
    const std::vector<std::string> workloads = {"example"};

    exp::Experiment e("test-explore");
    exp::declareExplore(e, axes, workloads);
    EXPECT_EQ(e.size(), 1 + 2 * 1);
    exp::SweepScheduler scheduler(2);
    const exp::SweepResult sweep = scheduler.run(e);
    ASSERT_EQ(sweep.failures(), 0u);

    const exp::ExploreReport report =
        exp::computeExplore(sweep, axes, workloads);
    ASSERT_EQ(report.points.size(), 2u);
    for (const exp::ExplorePointResult &p : report.points) {
        EXPECT_GT(p.speedup, 0.0) << p.id;
        EXPECT_GT(p.cost, 0.0) << p.id;
    }
    EXPECT_FALSE(report.frontier.empty());

    std::ostringstream os;
    exp::writeExploreJson(os, report);
    const json::Value doc = json::Value::parse(os.str());
    EXPECT_EQ(doc.find("schema")->asString(), "msim-explore-v1");
    EXPECT_EQ(doc.find("points")->items().size(), 2u);
    const json::Value *frontier = doc.find("frontier");
    ASSERT_NE(frontier, nullptr);
    EXPECT_EQ(frontier->items().size(), report.frontier.size());
}

} // namespace
} // namespace msim
