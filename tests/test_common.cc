/**
 * @file
 * Unit tests for the common utilities: RegMask, SatCounter, the
 * statistics registry, the deterministic RNG, and the RingFifo
 * circular buffer used on the simulation hot path.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/fifo.hh"
#include "common/logging.hh"
#include "common/reg_mask.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace msim {
namespace {

TEST(RegMask, BasicSetClearTest)
{
    RegMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.count(), 0);
    m.set(4);
    m.set(63);
    EXPECT_TRUE(m.test(4));
    EXPECT_TRUE(m.test(63));
    EXPECT_FALSE(m.test(5));
    EXPECT_EQ(m.count(), 2);
    m.clear(4);
    EXPECT_FALSE(m.test(4));
    EXPECT_EQ(m.count(), 1);
}

TEST(RegMask, TestOutOfRangeIsFalse)
{
    RegMask m{1, 2, 3};
    EXPECT_FALSE(m.test(-1));
    EXPECT_FALSE(m.test(64));
}

TEST(RegMask, SetOutOfRangePanics)
{
    RegMask m;
    EXPECT_THROW(m.set(64), PanicError);
    EXPECT_THROW(m.set(-1), PanicError);
}

TEST(RegMask, SetOperations)
{
    RegMask a{1, 2, 3};
    RegMask b{3, 4};
    EXPECT_EQ((a | b), (RegMask{1, 2, 3, 4}));
    EXPECT_EQ((a & b), (RegMask{3}));
    EXPECT_EQ((a - b), (RegMask{1, 2}));
    EXPECT_EQ((b - a), (RegMask{4}));
}

TEST(RegMask, ToStringUsesIntAndFpNames)
{
    RegMask m{4, 20, 35};
    EXPECT_EQ(m.toString(), "$4,$20,$f3");
}

TEST(RegMask, InitializerListMatchesSet)
{
    RegMask a{7, 8};
    RegMask b;
    b.set(7);
    b.set(8);
    EXPECT_EQ(a, b);
}

TEST(SatCounter, SaturatesAtBounds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.taken());  // 1 of 3
    c.increment();
    EXPECT_TRUE(c.taken());   // 2 of 3
}

TEST(SatCounter, BadWidthPanics)
{
    EXPECT_THROW(SatCounter(0), PanicError);
    EXPECT_THROW(SatCounter(9), PanicError);
    EXPECT_THROW(SatCounter(2, 4), PanicError);
}

TEST(Stats, GroupAccumulatesAndFormats)
{
    StatRegistry reg;
    StatGroup &g = reg.group("cache");
    g.add("hits");
    g.add("hits", 4);
    g.set("misses", 7);
    EXPECT_EQ(g.get("hits"), 5u);
    EXPECT_EQ(g.get("misses"), 7u);
    EXPECT_EQ(g.get("absent"), 0u);
    EXPECT_NE(reg.format().find("cache.hits 5"), std::string::npos);
}

TEST(Stats, GroupReferencesStayValidAcrossGrowth)
{
    StatRegistry reg;
    StatGroup &first = reg.group("g0");
    first.add("x");
    // Create many more groups; the first reference must stay valid.
    for (int i = 1; i < 100; ++i)
        reg.group("g" + std::to_string(i)).add("y");
    first.add("x");
    EXPECT_EQ(reg.group("g0").get("x"), 2u);
}

TEST(Stats, SameNameReturnsSameGroup)
{
    StatRegistry reg;
    reg.group("a").add("n");
    reg.group("a").add("n");
    EXPECT_EQ(reg.group("a").get("n"), 2u);
    EXPECT_EQ(reg.groups().size(), 1u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Logging, FatalAndPanicCarryMessages)
{
    try {
        fatal("bad thing ", 42);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
    }
    EXPECT_THROW(panicIf(true, "boom"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "boom"));
    EXPECT_NO_THROW(fatalIf(false, "boom"));
}

TEST(RingFifo, FifoOrderAcrossWraparound)
{
    RingFifo<int> f(4);
    // Interleave pushes and pops so head_ wraps the backing buffer
    // several times without ever growing it.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 10; ++round) {
        f.push_back(next_in++);
        f.push_back(next_in++);
        f.push_back(next_in++);
        EXPECT_EQ(f.front(), next_out);
        f.pop_front();
        ++next_out;
        f.pop_front();
        ++next_out;
        f.pop_front();
        ++next_out;
    }
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.capacity(), 4u);
}

TEST(RingFifo, GrowthPreservesOrderFromAWrappedState)
{
    RingFifo<int> f(4);
    // Rotate so head_ is mid-buffer, then force growth.
    f.push_back(-1);
    f.push_back(-2);
    f.pop_front();
    f.pop_front();
    for (int i = 0; i < 20; ++i)
        f.push_back(i);
    ASSERT_EQ(f.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(f[size_t(i)], i);
    EXPECT_EQ(f.front(), 0);
    EXPECT_EQ(f.back(), 19);
}

TEST(RingFifo, TruncateDropsTheTail)
{
    RingFifo<int> f;
    for (int i = 0; i < 6; ++i)
        f.push_back(i);
    f.truncate(2);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], 0);
    EXPECT_EQ(f[1], 1);
    // Elements pushed after a truncate land where the tail was.
    f.push_back(100);
    EXPECT_EQ(f.back(), 100);
    f.truncate(0);
    EXPECT_TRUE(f.empty());
}

TEST(RingFifo, ClearKeepsCapacity)
{
    RingFifo<int> f(16);
    for (int i = 0; i < 10; ++i)
        f.push_back(i);
    const size_t cap = f.capacity();
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.capacity(), cap);
    f.push_back(7);
    EXPECT_EQ(f.front(), 7);
}

TEST(RingFifo, ReserveRoundsUpToPowerOfTwo)
{
    RingFifo<int> f;
    f.reserve(5);
    EXPECT_EQ(f.capacity(), 8u);
    f.reserve(3);  // never shrinks
    EXPECT_EQ(f.capacity(), 8u);
    RingFifo<int> g(16);
    EXPECT_EQ(g.capacity(), 16u);
}

TEST(RingFifo, MisusePanics)
{
    RingFifo<int> f(2);
    EXPECT_THROW(f.pop_front(), PanicError);
    f.push_back(1);
    EXPECT_THROW(f[1], PanicError);
    EXPECT_THROW(f.truncate(2), PanicError);
}

TEST(RingFifo, MatchesDequeUnderRandomOperations)
{
    RingFifo<int> f;
    std::deque<int> ref;
    Rng rng(1234);
    int counter = 0;
    for (int step = 0; step < 5000; ++step) {
        const unsigned op = unsigned(rng.below(10));
        if (op < 5) {
            f.push_back(counter);
            ref.push_back(counter);
            ++counter;
        } else if (op < 8) {
            if (!ref.empty()) {
                EXPECT_EQ(f.front(), ref.front());
                f.pop_front();
                ref.pop_front();
            }
        } else if (op == 8) {
            const size_t n = size_t(rng.below(ref.size() + 1));
            f.truncate(n);
            ref.resize(n);
        } else if (!ref.empty()) {
            const size_t i = size_t(rng.below(ref.size()));
            EXPECT_EQ(f[i], ref[i]);
        }
        ASSERT_EQ(f.size(), ref.size());
    }
}

} // namespace
} // namespace msim
