/**
 * @file
 * Golden cycle-count snapshot tests.
 *
 * Every workload is run on the scalar baseline and on the default
 * 4-unit multiscalar machine under a pinned (default) configuration,
 * twice: once with the quiescence fast-forward enabled and once with
 * it disabled (ScalarConfig/MsConfig::fastForward = false). The two
 * runs must agree on every observable — total cycles, instruction
 * count, task counts, program output, and the full per-category cycle
 * accounting — and the fast-forward numbers must match the checked-in
 * snapshot in tests/golden/cycles.json exactly. Any timing drift,
 * intended or not, fails here first.
 *
 * Regenerating the snapshot after an *intended* timing change:
 *
 *     cd build && MSIM_REGEN_GOLDEN=1 ./tests/test_golden_cycles
 *
 * rewrites tests/golden/cycles.json in the source tree (the path is
 * baked in via the MSIM_GOLDEN_DIR compile definition). Commit the
 * regenerated file together with the change that moved the numbers,
 * and explain the movement in the commit message.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

/** One snapshot row. */
struct GoldenEntry
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t tasksRetired = 0;
    std::uint64_t tasksSquashed = 0;

    bool
    operator==(const GoldenEntry &o) const
    {
        return cycles == o.cycles && instructions == o.instructions &&
               tasksRetired == o.tasksRetired &&
               tasksSquashed == o.tasksSquashed;
    }
};

std::string
goldenPath()
{
    return std::string(MSIM_GOLDEN_DIR) + "/cycles.json";
}

bool
regenMode()
{
    const char *env = std::getenv("MSIM_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

/** Pull the number following "<field>": at/after @p pos. */
std::uint64_t
parseField(const std::string &text, size_t pos, const std::string &field)
{
    const std::string needle = "\"" + field + "\":";
    const size_t at = text.find(needle, pos);
    EXPECT_NE(at, std::string::npos)
        << "golden file is missing field '" << field << "'";
    if (at == std::string::npos)
        return 0;
    return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

/** Load the whole snapshot file, keyed by "workload/mode". */
const std::map<std::string, GoldenEntry> &
loadGolden()
{
    static const std::map<std::string, GoldenEntry> golden = [] {
        std::map<std::string, GoldenEntry> entries;
        std::ifstream in(goldenPath());
        if (!in)
            return entries;  // missing file reported per test
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();
        size_t pos = 0;
        while ((pos = text.find("\"key\":", pos)) != std::string::npos) {
            const size_t q0 = text.find('"', pos + 6);
            const size_t q1 = text.find('"', q0 + 1);
            if (q0 == std::string::npos || q1 == std::string::npos)
                break;
            const std::string key = text.substr(q0 + 1, q1 - q0 - 1);
            GoldenEntry e;
            e.cycles = parseField(text, q1, "cycles");
            e.instructions = parseField(text, q1, "instructions");
            e.tasksRetired = parseField(text, q1, "tasksRetired");
            e.tasksSquashed = parseField(text, q1, "tasksSquashed");
            entries[key] = e;
            pos = q1;
        }
        return entries;
    }();
    return golden;
}

/** Measured entries collected for MSIM_REGEN_GOLDEN=1 mode. */
std::map<std::string, GoldenEntry> &
regenEntries()
{
    static std::map<std::string, GoldenEntry> entries;
    return entries;
}

/** Writes the regenerated snapshot after all tests ran. */
class RegenWriter : public ::testing::Environment
{
  public:
    void
    TearDown() override
    {
        if (!regenMode() || regenEntries().empty())
            return;
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.good())
            << "cannot write golden file " << goldenPath();
        out << "{\n  \"schema\": \"msim-golden-cycles-v1\",\n"
            << "  \"entries\": [\n";
        size_t i = 0;
        for (const auto &[key, e] : regenEntries()) {
            out << "    { \"key\": \"" << key << "\", \"cycles\": "
                << e.cycles << ", \"instructions\": " << e.instructions
                << ", \"tasksRetired\": " << e.tasksRetired
                << ", \"tasksSquashed\": " << e.tasksSquashed << " }"
                << (++i < regenEntries().size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("regenerated %s (%zu entries)\n",
                    goldenPath().c_str(), regenEntries().size());
    }
};

const ::testing::Environment *const kRegenWriter =
    ::testing::AddGlobalTestEnvironment(new RegenWriter);

struct Case
{
    std::string workload;
    bool multiscalar;
    /** True = 10x first-beat bus latency (memory-bound regime). */
    bool slowmem = false;
};

class GoldenCycles : public ::testing::TestWithParam<Case>
{
};

/**
 * The pinned configuration: library defaults for either machine,
 * optionally with the slow-memory bus (first beat 100 cycles instead
 * of 10 — the latency-tolerance design point of the L2 ablation).
 */
RunSpec
pinnedSpec(bool multiscalar, bool fast_forward, bool slowmem)
{
    RunSpec spec;
    spec.multiscalar = multiscalar;
    spec.ms.fastForward = fast_forward;
    spec.scalar.fastForward = fast_forward;
    if (slowmem) {
        spec.ms.bus.firstBeatLatency = 100;
        spec.scalar.bus.firstBeatLatency = 100;
    }
    return spec;
}

TEST_P(GoldenCycles, FastForwardIsCycleExactAndMatchesSnapshot)
{
    const Case &c = GetParam();
    const workloads::Workload w = workloads::get(c.workload);

    const RunResult on =
        runWorkload(w, pinnedSpec(c.multiscalar, true, c.slowmem));
    const RunResult off =
        runWorkload(w, pinnedSpec(c.multiscalar, false, c.slowmem));

    // The fast-forward must be invisible in every observable.
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_EQ(on.squashedInstructions, off.squashedInstructions);
    EXPECT_EQ(on.tasksRetired, off.tasksRetired);
    EXPECT_EQ(on.tasksSquashed, off.tasksSquashed);
    EXPECT_EQ(on.controlSquashes, off.controlSquashes);
    EXPECT_EQ(on.memorySquashes, off.memorySquashes);
    EXPECT_EQ(on.idleCycles, off.idleCycles);
    EXPECT_EQ(on.output, off.output);
    EXPECT_EQ(off.fastForwardedCycles, 0u);

    // Full per-category accounting must match, not just the totals.
    ASSERT_EQ(on.accounting.numUnits, off.accounting.numUnits);
    for (size_t cat = 0; cat < kNumCycleCats; ++cat) {
        EXPECT_EQ(on.accounting.total[cat], off.accounting.total[cat])
            << "category " << cycleCatName(CycleCat(cat));
        for (unsigned u = 0; u < on.accounting.numUnits; ++u) {
            EXPECT_EQ(on.accounting.perUnit[u][cat],
                      off.accounting.perUnit[u][cat])
                << "unit " << u << " category "
                << cycleCatName(CycleCat(cat));
        }
    }

    // The exactness invariant holds for both runs.
    EXPECT_EQ(on.accounting.sum(),
              on.cycles * on.accounting.numUnits);
    EXPECT_EQ(off.accounting.sum(),
              off.cycles * off.accounting.numUnits);

    const std::string key = c.workload +
                            (c.multiscalar ? "/ms4" : "/scalar") +
                            (c.slowmem ? "-slowmem" : "");
    GoldenEntry measured;
    measured.cycles = on.cycles;
    measured.instructions = on.instructions;
    measured.tasksRetired = on.tasksRetired;
    measured.tasksSquashed = on.tasksSquashed;

    if (regenMode()) {
        regenEntries()[key] = measured;
        return;
    }

    const auto &golden = loadGolden();
    auto it = golden.find(key);
    ASSERT_NE(it, golden.end())
        << "no golden entry for " << key << " in " << goldenPath()
        << " — regenerate with MSIM_REGEN_GOLDEN=1 (see file header)";
    EXPECT_EQ(measured.cycles, it->second.cycles) << key;
    EXPECT_EQ(measured.instructions, it->second.instructions) << key;
    EXPECT_EQ(measured.tasksRetired, it->second.tasksRetired) << key;
    EXPECT_EQ(measured.tasksSquashed, it->second.tasksSquashed) << key;
}

/** The memory-bound workloads also snapshot the slowmem regime. */
bool
isCacheStress(const std::string &name)
{
    return name == "pointer_chase" || name == "stream_triad" ||
           name == "gups" || name == "stencil" || name == "thrash";
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        cases.push_back({name, false});
        cases.push_back({name, true});
        if (isCacheStress(name)) {
            cases.push_back({name, false, true});
            cases.push_back({name, true, true});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, GoldenCycles, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return info.param.workload +
               (info.param.multiscalar ? "_ms4" : "_scalar") +
               (info.param.slowmem ? "_slowmem" : "");
    });

} // namespace
} // namespace msim
