/**
 * @file
 * Multiscalar core integration tests: the sequencer's walk (calls and
 * returns through the RAS, control mispredicts, terminal tasks),
 * memory dependence squash-and-recover, ARB capacity policies, ring
 * latency insensitivity of results, the walk ledger across chains of
 * producers, and syscall gating at the head.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "sim/reference.hh"

namespace msim {
namespace {

Program
ms(const std::string &src)
{
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    return assembler::assemble(src, opts);
}

RunResult
run(const std::string &src, MsConfig cfg = {},
    std::deque<std::int32_t> input = {})
{
    Program prog = ms(src);
    MultiscalarProcessor proc(prog, cfg);
    proc.setInput(std::move(input));
    return proc.run(5'000'000);
}

/** Run on the multiscalar machine and compare with the reference. */
void
checkAgainstReference(const std::string &src, MsConfig cfg = {})
{
    Program prog = ms(src);
    ReferenceResult ref = referenceRun(prog);
    ASSERT_TRUE(ref.exited);
    MultiscalarProcessor proc(prog, cfg);
    RunResult r = proc.run(5'000'000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, ref.output);
}

// A loop whose every iteration calls a function task: the sequencer
// walks main -> LOOP -> FN -> CONT -> LOOP -> ... using the RAS.
const char *const kCallReturnSource = R"(
        .text
main:   li   $16, 0
        li   $20, 0
        li   $21, 40
        b    LOOP !s
.task main
.targets LOOP
.create $16, $20, $21
.endtask

.task LOOP
.targets FN:call:CONT
.create $20, $4, $31
.endtask
LOOP:
        addu $20, $20, 1 !f
        subu $4, $20, 1  !f
        jal  FN !f !s         # link = CONT, the fall-through

.task CONT
.targets LOOP:loop, DONE
.endtask
CONT:
        bne  $20, $21, LOOP !s

.task DONE
.endtask
DONE:
        move $4, $16
        li   $2, 1
        syscall
        li   $2, 10
        syscall

.task FN
.targets ret
.create $16
.endtask
FN:     mul  $8, $4, 3
        addu $16, $16, $8 !f
        jr   $31 !s
)";

TEST(Core, CallReturnTasksThroughRas)
{
    MsConfig cfg;
    cfg.numUnits = 4;
    RunResult r = run(kCallReturnSource, cfg);
    ASSERT_TRUE(r.exited);
    // sum of 3*i for i in [0,40) = 3*780
    EXPECT_EQ(r.output, "2340");
    EXPECT_GT(r.tasksRetired, 100u);  // 3 tasks per iteration
    // The RAS predicts the returns: accuracy should be high.
    EXPECT_GT(r.predAccuracy(), 0.9);
}

TEST(Core, CallReturnMatchesReference)
{
    // jr $31 in FN never executes in the reference the same way (it
    // uses the link from... actually the reference executes b FN and
    // jr $31 exactly; outputs must match.
    checkAgainstReference(kCallReturnSource);
}

TEST(Core, DataDependentExitMispredictsButRecovers)
{
    // The loop exits when a loaded value says so; the predictor sees
    // loop-back history, so the exit is a control squash.
    const char *src = R"(
        .data
FLAGS:  .word 0,0,0,0,0,0,0,0,0,1
        .text
main:   la   $16, FLAGS
        li   $19, 0
        li   $20, 0
        b    LOOP !s
.task main
.targets LOOP
.create $16, $19, $20
.endtask

.task LOOP
.targets LOOP:loop, DONE
.create $19, $20
.endtask
LOOP:
        addu $20, $20, 4 !f
        subu $8, $20, 4
        addu $8, $8, $16
        lw   $9, 0($8)
        addu $19, $19, 1 !f
        beq  $9, $0, LOOP !s

.task DONE
.endtask
DONE:
        move $4, $19
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    MsConfig cfg;
    cfg.numUnits = 8;
    RunResult r = run(src, cfg);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.output, "10");
    EXPECT_GE(r.controlSquashes, 1u);
    EXPECT_GT(r.squashedInstructions, 0u);
}

TEST(Core, MemoryViolationSquashAndRecover)
{
    // Each task increments a memory counter (read-modify-write on one
    // address): with 8 units the later tasks load early, the earlier
    // store comes later, and the ARB must squash and re-execute to
    // keep the count exact.
    const char *src = R"(
        .data
COUNTER: .word 0
        .text
main:   li   $20, 0
        li   $21, 50
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21
.endtask

.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        lw   $8, COUNTER
        addu $8, $8, 2
        sw   $8, COUNTER
        bne  $20, $21, LOOP !s

.task DONE
.endtask
DONE:
        lw   $4, COUNTER
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    MsConfig cfg;
    cfg.numUnits = 8;
    RunResult r = run(src, cfg);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.output, "100");
    EXPECT_GT(r.memorySquashes, 0u);
}

TEST(Core, TinyArbBothPoliciesStayCorrect)
{
    // A store-heavy loop with a 2-entry-per-bank ARB: both the squash
    // and the stall policy must produce the exact result.
    const char *src = R"(
        .data
BUF:    .space 1024
        .text
main:   li   $20, 0
        li   $21, 32
        la   $22, BUF
        b    LOOP !s
.task main
.targets LOOP
.create $20, $21, $22
.endtask

.task LOOP
.targets LOOP:loop, DONE
.create $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        subu $8, $20, 1
        sll  $9, $8, 5
        addu $9, $9, $22      # &buf[32 * (i % 32)] region
        sw   $8, 0($9)
        sw   $8, 4($9)
        sw   $8, 8($9)
        sw   $8, 12($9)
        sw   $8, 16($9)
        bne  $20, $21, LOOP !s

.task DONE
.endtask
DONE:
        li   $19, 0
        move $8, $22
        li   $9, 1024
        addu $9, $8, $9
SUM:    lw   $10, 0($8)
        addu $19, $19, $10
        addu $8, $8, 4
        bne  $8, $9, SUM
        move $4, $19
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    Program prog = ms(src);
    const std::string expect = referenceRun(prog).output;
    for (auto policy : {ArbFullPolicy::kSquash, ArbFullPolicy::kStall}) {
        MsConfig cfg;
        cfg.numUnits = 8;
        cfg.arbEntriesPerBank = 2;
        cfg.arbFullPolicy = policy;
        RunResult r = run(src, cfg);
        ASSERT_TRUE(r.exited);
        EXPECT_EQ(r.output, expect);
    }
}

TEST(Core, RegisterChainsThroughManyProducers)
{
    // Four registers carried across every task; values must chain
    // correctly through the walk ledger whatever the unit count.
    const char *src = R"(
        .text
main:   li   $16, 1
        li   $17, 2
        li   $18, 3
        li   $19, 4
        li   $20, 0
        li   $21, 64
        b    LOOP !s
.task main
.targets LOOP
.create $16, $17, $18, $19, $20, $21
.endtask

.task LOOP
.targets LOOP:loop, DONE
.create $16, $17, $18, $19, $20
.endtask
LOOP:
        addu $20, $20, 1 !f
        addu $16, $16, $17 !f
        xor  $17, $17, $18 !f
        addu $18, $18, $19 !f
        mul  $19, $19, 3
        addu $19, $19, 1 !f
        bne  $20, $21, LOOP !s

.task DONE
.endtask
DONE:
        xor  $4, $16, $17
        xor  $4, $4, $18
        xor  $4, $4, $19
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    Program prog = ms(src);
    const std::string expect = referenceRun(prog).output;
    for (unsigned units : {1u, 2u, 3u, 4u, 8u}) {
        MsConfig cfg;
        cfg.numUnits = units;
        RunResult r = run(src, cfg);
        ASSERT_TRUE(r.exited) << units << " units";
        EXPECT_EQ(r.output, expect) << units << " units";
    }
}

TEST(Core, RingLatencyAffectsTimeNotResults)
{
    const char *src = kCallReturnSource;
    Cycle last = 0;
    for (unsigned hop : {1u, 2u, 4u}) {
        MsConfig cfg;
        cfg.numUnits = 4;
        cfg.ringHopLatency = hop;
        RunResult r = run(src, cfg);
        ASSERT_TRUE(r.exited);
        EXPECT_EQ(r.output, "2340");
        EXPECT_GE(r.cycles, last);  // slower ring, never faster
        last = r.cycles;
    }
}

TEST(Core, AlternatePredictorsStayCorrect)
{
    for (const char *pred : {"pas", "last", "static"}) {
        MsConfig cfg;
        cfg.numUnits = 4;
        cfg.predictor = pred;
        RunResult r = run(kCallReturnSource, cfg);
        ASSERT_TRUE(r.exited) << pred;
        EXPECT_EQ(r.output, "2340") << pred;
    }
}

TEST(Core, SpeculativeTasksNeverPrint)
{
    // The DONE task is predicted and assigned speculatively long
    // before the loop finishes; its syscall must wait until it is
    // the head, so exactly one value is printed.
    MsConfig cfg;
    cfg.numUnits = 8;
    RunResult r = run(kCallReturnSource, cfg);
    EXPECT_EQ(r.output, "2340");
}

TEST(Core, MissingDescriptorAtEntryIsFatal)
{
    const char *src = R"(
        .text
main:   li $2, 10
        syscall
    )";
    Program prog = ms(src);
    MsConfig cfg;
    EXPECT_THROW(MultiscalarProcessor(prog, cfg).run(1000),
                 FatalError);
}

TEST(Core, UndeclaredSuccessorPanics)
{
    const char *src = R"(
        .text
main:   li $8, 1
        b  ELSEWHERE !s
.task main
.targets SOMEWHERE
.endtask
.task SOMEWHERE
.endtask
SOMEWHERE:
        nop
ELSEWHERE:
        li $2, 10
        syscall
    )";
    Program prog = ms(src);
    MsConfig cfg;
    MultiscalarProcessor proc(prog, cfg);
    EXPECT_THROW(proc.run(10000), PanicError);
}

TEST(Core, InvalidConfigFailsAtConstruction)
{
    // validate() runs in the processor constructors, so a bad
    // configuration dies with a clear "ms config: <field>: <why>"
    // diagnostic before any cycle is simulated.
    Program prog = ms(R"(
        .text
main:   li $2, 10
        syscall
        .task main
        .endtask
    )");

    MsConfig zero_units;
    zero_units.numUnits = 0;
    EXPECT_THROW(MultiscalarProcessor(prog, zero_units), FatalError);

    MsConfig odd_block;
    odd_block.blockBytes = 48;
    EXPECT_THROW(MultiscalarProcessor(prog, odd_block), FatalError);

    MsConfig no_arb;
    no_arb.arbEntriesPerBank = 0;
    EXPECT_THROW(MultiscalarProcessor(prog, no_arb), FatalError);

    MsConfig bad_pred;
    bad_pred.predictor = "oracle";
    EXPECT_THROW(MultiscalarProcessor(prog, bad_pred), FatalError);

    MsConfig l2_block_mismatch;
    l2_block_mismatch.l2.emplace();
    l2_block_mismatch.l2->blockBytes = 128;  // L1 blocks are 64
    EXPECT_THROW(MultiscalarProcessor(prog, l2_block_mismatch),
                 FatalError);

    MsConfig l2_no_mshrs;
    l2_no_mshrs.l2.emplace();
    l2_no_mshrs.l2->mshrsPerBank = 0;
    EXPECT_THROW(MultiscalarProcessor(prog, l2_no_mshrs), FatalError);

    assembler::AsmOptions sc_opts;
    sc_opts.multiscalar = false;
    Program sc_prog = assembler::assemble(kCallReturnSource, sc_opts);
    ScalarConfig zero_width;
    zero_width.pu.issueWidth = 0;
    EXPECT_THROW(ScalarProcessor(sc_prog, zero_width), FatalError);
}

TEST(Core, L2WaitCyclesLandInMemWaitAndSumStaysExact)
{
    // A block-stride load loop: every access is an L1 miss, so the
    // unit spends most of its time waiting on the hierarchy. The
    // wait must be charged to mem_wait and the exact-accounting
    // invariant (sum == cycles x units) must survive the L2's extra
    // latency contributions.
    const char *const src = R"(
        .data
BUF:    .space 8448
        .text
main:   la   $20, BUF
        addu $21, $20, 8192
LOOP:   lw   $8, 0($20)
        addu $20, $20, 64
        bne  $20, $21, LOOP
        li   $2, 10
        syscall
        .task main
        .endtask
    )";

    MsConfig with_l2;
    with_l2.l2.emplace();
    with_l2.bus.firstBeatLatency = 100;
    const RunResult r = run(src, with_l2);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.accounting.sum(), r.cycles * r.accounting.numUnits);
    EXPECT_GT(r.accounting[CycleCat::kMemWait], 0u);

    // Slowing only the L2 hit path must show up as more mem_wait
    // (not leak into another category or break the invariant).
    MsConfig slow_l2 = with_l2;
    slow_l2.l2->hitLatency += 40;
    const RunResult s = run(src, slow_l2);
    ASSERT_TRUE(s.exited);
    EXPECT_EQ(s.accounting.sum(), s.cycles * s.accounting.numUnits);
    EXPECT_GT(s.cycles, r.cycles);
    EXPECT_GT(s.accounting[CycleCat::kMemWait],
              r.accounting[CycleCat::kMemWait]);
}

TEST(Core, ScalarAndMultiscalarMatchReferenceOnCallReturn)
{
    assembler::AsmOptions sc_opts;
    sc_opts.multiscalar = false;
    Program sc_prog =
        assembler::assemble(kCallReturnSource, sc_opts);
    ReferenceResult ref = referenceRun(sc_prog);
    ScalarProcessor scalar(sc_prog, ScalarConfig{});
    RunResult r = scalar.run(5'000'000);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.output, ref.output);
    EXPECT_EQ(r.instructions, ref.instructions);
}

} // namespace
} // namespace msim
