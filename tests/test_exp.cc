/**
 * @file
 * Tests for the experiment engine (src/exp) and the re-entrant run
 * path (sim/compiled_workload.hh): determinism under parallelism,
 * single-assembly memoization, per-cell failure capture, result
 * ordering, and the JSON report.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/scheduler.hh"
#include "sim/compiled_workload.hh"
#include "sim/runner.hh"

namespace msim {
namespace {

exp::Experiment
smallExperiment()
{
    exp::Experiment e("test");
    RunSpec scalar;
    scalar.multiscalar = false;
    RunSpec ms4;
    ms4.ms.numUnits = 4;
    RunSpec ms8;
    ms8.ms.numUnits = 8;
    for (const char *name : {"example", "wc", "cmp"}) {
        e.add(std::string(name) + "/scalar", name, scalar);
        e.add(std::string(name) + "/4u", name, ms4);
        e.add(std::string(name) + "/8u", name, ms8);
    }
    return e;
}

/** Everything the paper reports must be bit-identical. */
void
expectSameRunResult(const RunResult &a, const RunResult &b,
                    const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.squashedInstructions, b.squashedInstructions) << what;
    EXPECT_EQ(a.output, b.output) << what;
    EXPECT_EQ(a.tasksRetired, b.tasksRetired) << what;
    EXPECT_EQ(a.tasksSquashed, b.tasksSquashed) << what;
    EXPECT_EQ(a.taskPredictions, b.taskPredictions) << what;
    EXPECT_EQ(a.taskPredHits, b.taskPredHits) << what;
    EXPECT_EQ(a.controlSquashes, b.controlSquashes) << what;
    EXPECT_EQ(a.memorySquashes, b.memorySquashes) << what;
    EXPECT_EQ(a.arbFullSquashes, b.arbFullSquashes) << what;
    ASSERT_EQ(a.accounting.numUnits, b.accounting.numUnits) << what;
    for (size_t c = 0; c < kNumCycleCats; ++c)
        EXPECT_EQ(a.accounting[CycleCat(c)], b.accounting[CycleCat(c)])
            << what << " category " << cycleCatName(CycleCat(c));
}

TEST(SweepScheduler, ResultsInRegistrationOrder)
{
    const exp::Experiment e = smallExperiment();
    exp::SweepScheduler sched(4);
    const exp::SweepResult r = sched.run(e);
    ASSERT_EQ(r.cells.size(), e.size());
    for (size_t i = 0; i < e.size(); ++i)
        EXPECT_EQ(r.cells[i].name, e.cells()[i].name);
}

TEST(SweepScheduler, DeterministicAcrossJobCounts)
{
    const exp::Experiment e = smallExperiment();
    exp::SweepScheduler serial(1);
    const exp::SweepResult r1 = serial.run(e);
    ASSERT_EQ(r1.failures(), 0u);
    for (unsigned jobs : {2u, 4u, 8u}) {
        exp::SweepScheduler parallel(jobs);
        const exp::SweepResult rn = parallel.run(e);
        ASSERT_EQ(rn.cells.size(), r1.cells.size());
        for (size_t i = 0; i < r1.cells.size(); ++i) {
            EXPECT_EQ(rn.cells[i].name, r1.cells[i].name);
            ASSERT_TRUE(rn.cells[i].ok) << rn.cells[i].error;
            expectSameRunResult(rn.cells[i].result,
                                r1.cells[i].result,
                                rn.cells[i].name + " with jobs=" +
                                    std::to_string(jobs));
        }
    }
}

TEST(SweepScheduler, AssemblesEachCompileKeyExactlyOnce)
{
    const exp::Experiment e = smallExperiment();
    // 3 workloads x {scalar, multiscalar}: units don't change the
    // binary, so the 9 cells share 6 compile keys.
    EXPECT_EQ(e.uniqueCompileKeys(), 6u);
    exp::SweepScheduler sched(4);
    const exp::SweepResult r = sched.run(e);
    EXPECT_EQ(r.cacheMisses, 6u);
    EXPECT_EQ(r.cacheHits, 3u);
    EXPECT_EQ(r.cacheHits + r.cacheMisses, e.size());
}

TEST(SweepScheduler, CapturesCellFailuresAndKeepsReportRows)
{
    exp::Experiment e("failing");
    RunSpec ok;
    ok.ms.numUnits = 4;
    e.add("good", "example", ok);
    RunSpec timeout = ok;
    timeout.maxCycles = 10; // cannot finish: forced FatalError
    e.add("bad", "example", timeout);
    e.add("good2", "wc", ok);

    exp::SweepScheduler sched(2);
    const exp::SweepResult r = sched.run(e);
    EXPECT_EQ(r.failures(), 1u);
    EXPECT_TRUE(r.cell("good").ok);
    EXPECT_TRUE(r.cell("good2").ok);
    const exp::CellResult &bad = r.cell("bad");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("exhausted its cycle budget"),
              std::string::npos)
        << bad.error;
    EXPECT_NE(bad.error.find("maxCycles=10"), std::string::npos)
        << bad.error;
    EXPECT_GE(bad.wallSeconds, 0.0);
    // result() refuses failed cells; cell() serves the row.
    EXPECT_THROW(r.result("bad"), FatalError);
    EXPECT_NO_THROW(r.result("good"));

    // The JSON report still emits a well-formed row for the failure.
    std::ostringstream os;
    exp::writeJsonReport(os, r);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"msim-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"bad\""), std::string::npos);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("exhausted its cycle budget"),
              std::string::npos);
    EXPECT_NE(json.find("\"cells_failed\": 1"), std::string::npos);
    // No raw control characters may survive escaping.
    for (char c : json)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
}

TEST(SweepScheduler, DefaultJobsHonorsEnvironment)
{
    ASSERT_EQ(setenv("MSIM_JOBS", "3", 1), 0);
    EXPECT_EQ(exp::SweepScheduler::defaultJobs(), 3u);
    ASSERT_EQ(setenv("MSIM_JOBS", "garbage", 1), 0);
    EXPECT_GE(exp::SweepScheduler::defaultJobs(), 1u);
    ASSERT_EQ(unsetenv("MSIM_JOBS"), 0);
    EXPECT_GE(exp::SweepScheduler::defaultJobs(), 1u);
}

TEST(Experiment, RejectsDuplicateCellNames)
{
    exp::Experiment e("dup");
    RunSpec spec;
    e.add("cell", "wc", spec);
    EXPECT_THROW(e.add("cell", "wc", spec), FatalError);
}

TEST(ProgramCache, MemoizesAndCounts)
{
    ProgramCache cache;
    auto a = cache.get("wc", true);
    auto b = cache.get("wc", true);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Different mode/defines/scale are distinct keys.
    auto c = cache.get("wc", false);
    auto d = cache.get("wc", true, {"EARLYV"});
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(cache.misses(), 3u);
    cache.clear();
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(CompiledWorkload, ConcurrentSessionsOverOneProgram)
{
    auto compiled = compileWorkload("wc", true);
    RunSpec spec;
    spec.ms.numUnits = 8;
    const RunResult reference = runCompiled(*compiled, spec);

    constexpr unsigned kThreads = 8;
    std::vector<RunResult> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            results[t] = runCompiled(*compiled, spec);
        });
    }
    for (auto &t : threads)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t)
        expectSameRunResult(results[t], reference,
                            "thread " + std::to_string(t));
}

TEST(CompiledWorkload, RunWorkloadMatchesRunCompiled)
{
    workloads::Workload w = workloads::get("example");
    RunSpec spec;
    spec.ms.numUnits = 4;
    const RunResult direct = runWorkload(w, spec);
    auto compiled = compileWorkload(w, true);
    const RunResult via = runCompiled(*compiled, spec);
    expectSameRunResult(direct, via, "runWorkload vs runCompiled");
}

TEST(CompiledWorkload, RejectsModeAndDefineMismatch)
{
    auto compiled = compileWorkload("wc", true);
    RunSpec scalar;
    scalar.multiscalar = false;
    EXPECT_THROW(runCompiled(*compiled, scalar), FatalError);
    RunSpec defines;
    defines.defines = {"EARLYV"};
    EXPECT_THROW(runCompiled(*compiled, defines), FatalError);
}

} // namespace
} // namespace msim
