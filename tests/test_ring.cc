/**
 * @file
 * Forwarding ring tests: hop latency, per-cycle port bandwidth
 * (ring width = issue width), propagation control by the receiver,
 * and message expiry after a full circuit.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "ring/forward_ring.hh"

namespace msim {
namespace {

struct Delivery
{
    Cycle cycle;
    unsigned unit;
    RegIndex reg;
    TaskSeq producer;
};

/** Drive the ring for n cycles, recording deliveries. */
std::vector<Delivery>
drive(ForwardRing &ring, unsigned cycles,
      const std::function<bool(unsigned, const RingMessage &)> &sink)
{
    std::vector<Delivery> log;
    for (Cycle c = 0; c < cycles; ++c) {
        ring.tick([&](unsigned unit, const RingMessage &msg) {
            log.push_back({c, unit, msg.reg, msg.producer});
            return sink(unit, msg);
        });
    }
    return log;
}

RingMessage
msg(RegIndex reg, TaskSeq producer)
{
    RingMessage m;
    m.reg = reg;
    m.value = isa::RegValue::fromWord(42);
    m.producer = producer;
    return m;
}

TEST(Ring, OneCyclePerHop)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 4, 1, 1);
    ring.send(0, msg(5, 1));
    auto log = drive(ring, 5, [](unsigned, const RingMessage &) {
        return true;  // propagate everywhere
    });
    // Unit 1 at cycle 1, unit 2 at cycle 2, unit 3 at cycle 3, then
    // expiry (numUnits-1 hops).
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].cycle, 1u);
    EXPECT_EQ(log[0].unit, 1u);
    EXPECT_EQ(log[1].cycle, 2u);
    EXPECT_EQ(log[1].unit, 2u);
    EXPECT_EQ(log[2].cycle, 3u);
    EXPECT_EQ(log[2].unit, 3u);
    EXPECT_TRUE(ring.idle());
}

TEST(Ring, ConfigurableHopLatency)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 4, 1, 3);
    ring.send(1, msg(5, 1));
    auto log = drive(ring, 12, [](unsigned, const RingMessage &) {
        return true;
    });
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].cycle, 3u);
    EXPECT_EQ(log[0].unit, 2u);
    EXPECT_EQ(log[1].cycle, 6u);
    EXPECT_EQ(log[2].cycle, 9u);
}

TEST(Ring, ReceiverStopsPropagation)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 4, 1, 1);
    ring.send(0, msg(5, 1));
    auto log = drive(ring, 8, [](unsigned unit, const RingMessage &) {
        return unit != 2;  // unit 2 consumes the value
    });
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.back().unit, 2u);
    EXPECT_TRUE(ring.idle());
}

TEST(Ring, PortBandwidthIsRingWidth)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 2, 1, 1);
    // Three messages queued on one port, width 1: they leave one per
    // cycle and arrive on consecutive cycles.
    ring.send(0, msg(1, 1));
    ring.send(0, msg(2, 1));
    ring.send(0, msg(3, 1));
    auto log = drive(ring, 6, [](unsigned, const RingMessage &) {
        return false;  // consume at the first hop
    });
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].cycle, 1u);
    EXPECT_EQ(log[1].cycle, 2u);
    EXPECT_EQ(log[2].cycle, 3u);
    EXPECT_GT(stats.group("ring").get("portStallCycles"), 0u);
}

TEST(Ring, WiderRingMovesMoreValues)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 2, 2, 1);
    ring.send(0, msg(1, 1));
    ring.send(0, msg(2, 1));
    auto log = drive(ring, 4, [](unsigned, const RingMessage &) {
        return false;
    });
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].cycle, 1u);
    EXPECT_EQ(log[1].cycle, 1u);  // same cycle: width 2
}

TEST(Ring, SingleUnitRingDropsTraffic)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 1, 1, 1);
    ring.send(0, msg(1, 1));
    auto log = drive(ring, 3, [](unsigned, const RingMessage &) {
        return true;
    });
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(ring.idle());
}

TEST(Ring, ClearDropsEverything)
{
    StatRegistry stats;
    ForwardRing ring(stats.group("ring"), 4, 1, 1);
    ring.send(0, msg(1, 1));
    ring.tick([](unsigned, const RingMessage &) { return true; });
    ring.clear();
    EXPECT_TRUE(ring.idle());
}

TEST(Ring, BadConfigRejected)
{
    StatRegistry stats;
    EXPECT_THROW(ForwardRing(stats.group("r"), 0, 1, 1), FatalError);
    EXPECT_THROW(ForwardRing(stats.group("r"), 4, 0, 1), FatalError);
    EXPECT_THROW(ForwardRing(stats.group("r"), 4, 1, 0), FatalError);
}

} // namespace
} // namespace msim
