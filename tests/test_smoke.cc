/**
 * @file
 * End-to-end smoke tests: tiny programs and the Figure 3 example on
 * both machines. These gate everything else during bring-up.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim {
namespace {

TEST(Smoke, ScalarHelloSum)
{
    const char *src = R"(
        .text
main:
        li   $8, 0
        li   $9, 1
loop:   addu $8, $8, $9
        addu $9, $9, 1
        ble  $9, $10, loop
        move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    // $10 defaults to 0 so the loop body runs once: sum = 1.
    Program prog = assembler::assemble(src, {});
    ScalarProcessor proc(prog, ScalarConfig{});
    RunResult r = proc.run(100000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, "1");
    EXPECT_GT(r.instructions, 0u);
}

TEST(Smoke, ScalarCountedLoop)
{
    const char *src = R"(
        .text
main:
        li   $8, 0
        li   $9, 0
        li   $10, 100
loop:   addu $8, $8, $9
        addu $9, $9, 1
        bne  $9, $10, loop
        move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    Program prog = assembler::assemble(src, {});
    ScalarProcessor proc(prog, ScalarConfig{});
    RunResult r = proc.run(100000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, "4950");
}

TEST(Smoke, MultiscalarCountedLoop)
{
    // Accumulator loop: every iteration is one task; $8/$9 are carried
    // between tasks over the ring.
    const char *src = R"(
        .text
main:
        li   $8, 0
        li   $9, 0
        li   $10, 100
        b    LOOP          !s

.task main
.targets LOOP
.create $8, $9, $10
.endtask

.task LOOP
.targets LOOP:loop, DONE
.create $8, $9
.endtask
LOOP:
        addu $8, $8, $9    !f
        addu $9, $9, 1     !f
        bne  $9, $10, LOOP !s

.task DONE
.endtask
DONE:
        move $4, $8
        li   $2, 1
        syscall
        li   $2, 10
        syscall
    )";
    assembler::AsmOptions opts;
    opts.multiscalar = true;
    Program prog = assembler::assemble(src, opts);
    MsConfig cfg;
    cfg.numUnits = 4;
    MultiscalarProcessor proc(prog, cfg);
    RunResult r = proc.run(1000000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.output, "4950");
    EXPECT_GE(r.tasksRetired, 100u);
}

TEST(Smoke, ExampleWorkloadBothMachines)
{
    workloads::Workload w = workloads::get("example");
    RunSpec scalar_spec;
    scalar_spec.multiscalar = false;
    RunResult rs = runWorkload(w, scalar_spec);
    EXPECT_TRUE(rs.exited);

    RunSpec ms_spec;
    ms_spec.multiscalar = true;
    ms_spec.ms.numUnits = 4;
    RunResult rm = runWorkload(w, ms_spec);
    EXPECT_TRUE(rm.exited);
    EXPECT_EQ(rm.output, rs.output);
    // The example is highly parallel: expect a real speedup.
    EXPECT_LT(rm.cycles, rs.cycles);
}

} // namespace
} // namespace msim
