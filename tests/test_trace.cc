/**
 * @file
 * Tests for the observability subsystem (src/trace/): the event
 * tracer and its sinks, the Chrome trace-event JSON output, the
 * exact cycle-accounting model and its hard sum invariant, and the
 * disabled-tracer fast path.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/runner.hh"
#include "trace/cycle_accounting.hh"
#include "trace/trace_sink.hh"
#include "trace/tracer.hh"
#include "workloads/workload.hh"

namespace {

using namespace msim;

// --------------------------------------------------------------------
// A minimal JSON validator/reader, enough for Chrome trace output:
// objects, arrays, strings, integers, and the few escapes the sink
// emits. Parsed values are kept as strings keyed by field name.
// --------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { kObject, kArray, kString, kNumber, kOther };
    Kind kind = Kind::kOther;
    std::string scalar;
    std::vector<std::pair<std::string, JsonValue>> fields;
    std::vector<JsonValue> items;

    const JsonValue *
    field(const std::string &name) const
    {
        for (const auto &[k, v] : fields) {
            if (k == name)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "' got '" + peek() +
                 "'");
        ++pos_;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c == '\\') {
                char e = peek();
                ++pos_;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        fail("bad \\u escape");
                    out += '?';
                    pos_ += 4;
                    break;
                  default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    JsonValue
    value()
    {
        ws();
        JsonValue v;
        char c = peek();
        if (c == '{') {
            v.kind = JsonValue::Kind::kObject;
            ++pos_;
            ws();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                ws();
                std::string key = string();
                ws();
                expect(':');
                v.fields.emplace_back(std::move(key), value());
                ws();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            v.kind = JsonValue::Kind::kArray;
            ++pos_;
            ws();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.items.push_back(value());
                ws();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::kString;
            v.scalar = string();
            return v;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            v.kind = JsonValue::Kind::kNumber;
            while (pos_ < s_.size() &&
                   (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '-' || s_[pos_] == '+' ||
                    s_[pos_] == '.' || s_[pos_] == 'e' ||
                    s_[pos_] == 'E'))
                v.scalar += s_[pos_++];
            return v;
        }
        fail("unexpected character");
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** A sink that keeps owned copies of everything it saw. */
class RecordingSink : public TraceSink
{
  public:
    struct Seen
    {
        std::string name;
        TraceCat cat;
        TracePhase ph;
        Cycle ts;
        std::uint32_t tid;
        std::string key1;
        std::uint64_t val1;
    };

    void
    write(const TraceEvent &e) override
    {
        seen.push_back({std::string(e.name), e.cat, e.ph, e.ts, e.tid,
                        std::string(e.key1), e.val1});
    }

    std::vector<Seen> seen;
};

TraceConfig
enabledConfig()
{
    TraceConfig cfg;
    cfg.enabled = true;
    return cfg;
}

// --------------------------------------------------------------------
// Tracer front end
// --------------------------------------------------------------------

TEST(Tracer, EventsArriveInEmissionOrder)
{
    auto sink = std::make_unique<RecordingSink>();
    RecordingSink *raw = sink.get();
    Tracer tracer(enabledConfig(), std::move(sink));

    for (Cycle c = 0; c < 10; ++c) {
        tracer.setNow(c);
        tracer.instant(TraceCat::kTask, "a", tracer.now(), 0, "i", c);
        tracer.instant(TraceCat::kRing, "b", tracer.now(), 1);
    }
    ASSERT_EQ(raw->seen.size(), 20u);
    for (size_t i = 0; i < raw->seen.size(); ++i) {
        EXPECT_EQ(raw->seen[i].ts, Cycle(i / 2));
        EXPECT_EQ(raw->seen[i].name, i % 2 == 0 ? "a" : "b");
    }
    EXPECT_EQ(tracer.recorded(), 20u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, DisabledFastPathRecordsNothing)
{
    TraceConfig cfg;  // enabled = false
    auto sink = std::make_unique<RecordingSink>();
    RecordingSink *raw = sink.get();
    Tracer tracer(cfg, std::move(sink));

    EXPECT_FALSE(tracer.enabled());
    for (unsigned c = 0; c < unsigned(TraceCat::kNumCats); ++c)
        EXPECT_FALSE(tracer.wants(TraceCat(c)));

    // Even unguarded emission must not reach the sink when disabled.
    tracer.instant(TraceCat::kTask, "x", 1, 0);
    tracer.counter(TraceCat::kPu, "y", 2, 0, "v", 3);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(raw->seen.empty());
}

TEST(Tracer, CategoryMaskFilters)
{
    TraceConfig cfg = enabledConfig();
    cfg.categories = traceCatBit(TraceCat::kBus);
    auto sink = std::make_unique<RecordingSink>();
    RecordingSink *raw = sink.get();
    Tracer tracer(cfg, std::move(sink));

    EXPECT_TRUE(tracer.wants(TraceCat::kBus));
    EXPECT_FALSE(tracer.wants(TraceCat::kTask));
    tracer.instant(TraceCat::kTask, "no", 0, 0);
    tracer.instant(TraceCat::kBus, "yes", 0, 0);
    ASSERT_EQ(raw->seen.size(), 1u);
    EXPECT_EQ(raw->seen[0].name, "yes");
}

TEST(Tracer, MaxEventsCapCountsDrops)
{
    TraceConfig cfg = enabledConfig();
    cfg.maxEvents = 3;
    auto sink = std::make_unique<RecordingSink>();
    RecordingSink *raw = sink.get();
    Tracer tracer(cfg, std::move(sink));

    for (int i = 0; i < 5; ++i)
        tracer.instant(TraceCat::kTask, "e", Cycle(i), 0);
    EXPECT_EQ(raw->seen.size(), 3u);
    EXPECT_EQ(tracer.recorded(), 3u);
    EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(Tracer, CategoryListParsing)
{
    EXPECT_EQ(traceCatMaskFromList(""), kAllTraceCats);
    EXPECT_EQ(traceCatMaskFromList("bus"), traceCatBit(TraceCat::kBus));
    EXPECT_EQ(traceCatMaskFromList("task,ring"),
              traceCatBit(TraceCat::kTask) |
                  traceCatBit(TraceCat::kRing));
    EXPECT_THROW(traceCatMaskFromList("nonsense"), FatalError);
}

// --------------------------------------------------------------------
// Sinks
// --------------------------------------------------------------------

TEST(ChromeSink, EmitsValidJsonWithChromeFields)
{
    std::ostringstream oss;
    {
        Tracer tracer(enabledConfig(),
                      std::make_unique<ChromeTraceSink>(oss));
        tracer.threadName(7, "pu7");
        tracer.begin(TraceCat::kTask, "task@0x400", 10, 7, "seq", 3);
        tracer.instant(TraceCat::kArb, "needs \"escaping\"\n", 11, 67,
                       "addr", 0x1234);
        tracer.complete(TraceCat::kBus, "xfer", 12, 5, 65, "words", 16);
        tracer.end(TraceCat::kTask, 20, 7);
        tracer.flush();
    }

    JsonValue root = JsonParser(oss.str()).parse();
    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    const JsonValue *events = root.field("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
    ASSERT_EQ(events->items.size(), 5u);

    // Metadata record names the lane.
    const JsonValue &meta = events->items[0];
    EXPECT_EQ(meta.field("ph")->scalar, "M");
    EXPECT_EQ(meta.field("name")->scalar, "thread_name");
    EXPECT_EQ(meta.field("args")->field("name")->scalar, "pu7");

    // Every real event carries the Chrome required fields.
    for (size_t i = 1; i < events->items.size(); ++i) {
        const JsonValue &ev = events->items[i];
        ASSERT_NE(ev.field("name"), nullptr) << "event " << i;
        ASSERT_NE(ev.field("ph"), nullptr) << "event " << i;
        ASSERT_NE(ev.field("ts"), nullptr) << "event " << i;
        ASSERT_NE(ev.field("pid"), nullptr) << "event " << i;
        ASSERT_NE(ev.field("tid"), nullptr) << "event " << i;
        EXPECT_EQ(ev.field("ts")->kind, JsonValue::Kind::kNumber);
    }

    const JsonValue &begin = events->items[1];
    EXPECT_EQ(begin.field("ph")->scalar, "B");
    EXPECT_EQ(begin.field("ts")->scalar, "10");
    EXPECT_EQ(begin.field("args")->field("seq")->scalar, "3");

    const JsonValue &complete = events->items[3];
    EXPECT_EQ(complete.field("ph")->scalar, "X");
    EXPECT_EQ(complete.field("dur")->scalar, "5");
}

TEST(CsvSink, OneRowPerEventWithHeader)
{
    std::ostringstream oss;
    Tracer tracer(enabledConfig(),
                  std::make_unique<CsvTraceSink>(oss));
    tracer.instant(TraceCat::kRing, "forward", 4, 66, "from", 2);
    tracer.complete(TraceCat::kBus, "xfer", 9, 3, 65);
    tracer.flush();

    std::istringstream in(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "ph,ts,dur,pid,tid,cat,name,key1,val1,key2,val2");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "i,4,0,0,66,ring,forward,from,2,,0");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "X,9,3,0,65,bus,xfer,,0,,0");
    EXPECT_FALSE(std::getline(in, line));
}

TEST(SinkFactory, RejectsUnknownKind)
{
    TraceConfig cfg = enabledConfig();
    cfg.sink = "xml";
    EXPECT_THROW(makeTraceSink(cfg), FatalError);
}

// --------------------------------------------------------------------
// End to end: a traced machine run produces a loadable Chrome trace.
// --------------------------------------------------------------------

TEST(TraceEndToEnd, MultiscalarRunWritesValidChromeTrace)
{
    const std::string path = "test_trace_out.json";
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = 4;
    spec.trace.enabled = true;
    spec.trace.sink = "chrome";
    spec.trace.path = path;

    RunResult r = runWorkload(workloads::get("wc"), spec);
    EXPECT_TRUE(r.exited);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();

    JsonValue root = JsonParser(buf.str()).parse();
    const JsonValue *events = root.field("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->items.size(), 100u);

    size_t task_begins = 0, metadata = 0;
    for (const JsonValue &ev : events->items) {
        const std::string &ph = ev.field("ph")->scalar;
        EXPECT_TRUE(ph == "i" || ph == "B" || ph == "E" || ph == "X" ||
                    ph == "C" || ph == "M")
            << "unexpected phase " << ph;
        if (ph == "M")
            ++metadata;
        if (ph == "B")
            ++task_begins;
        if (ph != "M") {
            ASSERT_NE(ev.field("ts"), nullptr);
            ASSERT_NE(ev.field("cat"), nullptr);
        }
    }
    // Lanes were named; every assigned task opened a B event, and
    // every assigned task eventually retires or is squashed.
    EXPECT_GE(metadata, 4u);
    EXPECT_EQ(task_begins, r.tasksRetired + r.tasksSquashed);
}

// --------------------------------------------------------------------
// Cycle accounting
// --------------------------------------------------------------------

TEST(CycleAccounting, ManualProtocolAndInvariant)
{
    CycleAccounting acct(2);
    acct.beginCycle();
    acct.recordPending(0, CycleCat::kBusy);
    acct.endCycle();  // unit 1 becomes idle
    acct.beginCycle();
    acct.recordPending(0, CycleCat::kRingWait);
    acct.recordPending(1, CycleCat::kBusy);
    acct.endCycle();
    acct.commitTask(0);
    acct.squashTask(1);

    CycleAccountingResult res = acct.finish(2);
    EXPECT_EQ(res.numUnits, 2u);
    EXPECT_EQ(res.sum(), 4u);
    EXPECT_EQ(res[CycleCat::kBusy], 1u);      // unit 0, committed
    EXPECT_EQ(res[CycleCat::kRingWait], 1u);  // unit 0, committed
    EXPECT_EQ(res[CycleCat::kSquashed], 1u);  // unit 1's busy cycle
    EXPECT_EQ(res[CycleCat::kIdle], 1u);      // unit 1, first cycle
}

TEST(CycleAccounting, DoubleRecordInOneCyclePanics)
{
    CycleAccounting acct(1);
    acct.beginCycle();
    acct.recordPending(0, CycleCat::kBusy);
    EXPECT_THROW(acct.recordPending(0, CycleCat::kIdle), PanicError);
}

TEST(CycleAccounting, UnresolvedPendingPanicsAtFinish)
{
    CycleAccounting acct(1);
    acct.beginCycle();
    acct.recordPending(0, CycleCat::kBusy);
    acct.endCycle();
    EXPECT_THROW(acct.finish(1), PanicError);  // task fate unresolved
}

TEST(CycleAccounting, MultiscalarRunSumsToCyclesTimesUnits)
{
    for (unsigned units : {1u, 2u, 4u, 8u}) {
        RunSpec spec;
        spec.multiscalar = true;
        spec.ms.numUnits = units;
        RunResult r = runWorkload(workloads::get("wc"), spec);
        const CycleAccountingResult &a = r.accounting;
        EXPECT_EQ(a.numUnits, units);
        ASSERT_EQ(a.perUnit.size(), units);
        EXPECT_EQ(a.sum(), std::uint64_t(r.cycles) * units)
            << units << " units";
        EXPECT_GT(a[CycleCat::kBusy], 0u);

        // Per-unit rows also each sum to the cycle count.
        for (unsigned u = 0; u < units; ++u) {
            std::uint64_t row = 0;
            for (std::uint64_t v : a.perUnit[u])
                row += v;
            EXPECT_EQ(row, std::uint64_t(r.cycles))
                << "unit " << u << " of " << units;
        }
    }
}

TEST(CycleAccounting, AgreesWithLegacyBreakdown)
{
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = 8;
    RunResult r = runWorkload(workloads::get("compress"), spec);
    const CycleAccountingResult &a = r.accounting;

    // Committed tasks keep their recorded categories, so the useful
    // buckets must match the legacy per-task breakdown exactly; all
    // squashed work lands in kSquashed.
    EXPECT_EQ(a[CycleCat::kBusy], r.usefulCycles.busy);
    EXPECT_EQ(a[CycleCat::kRingWait], r.usefulCycles.waitPred);
    EXPECT_EQ(a[CycleCat::kMemWait] + a[CycleCat::kIntraWait],
              r.usefulCycles.waitIntra);
    EXPECT_EQ(a[CycleCat::kFetchStall], r.usefulCycles.fetchStall);
    EXPECT_EQ(a[CycleCat::kRetireWait], r.usefulCycles.waitRetire);
    EXPECT_EQ(a[CycleCat::kSquashed], r.squashedCycles.total());
}

TEST(CycleAccounting, ScalarRunSumsToCycles)
{
    RunSpec spec;
    spec.multiscalar = false;
    RunResult r = runWorkload(workloads::get("wc"), spec);
    const CycleAccountingResult &a = r.accounting;
    EXPECT_EQ(a.numUnits, 1u);
    EXPECT_EQ(a.sum(), std::uint64_t(r.cycles));
    EXPECT_GT(a[CycleCat::kBusy], 0u);
    EXPECT_EQ(a[CycleCat::kSquashed], 0u);
    EXPECT_EQ(a[CycleCat::kRingWait], 0u);
}

TEST(CycleAccounting, TracedRunMatchesUntracedCycleCounts)
{
    RunSpec plain;
    plain.multiscalar = true;
    plain.ms.numUnits = 4;
    RunResult r1 = runWorkload(workloads::get("example"), plain);

    RunSpec traced = plain;
    traced.trace.enabled = true;
    traced.trace.sink = "null";
    RunResult r2 = runWorkload(workloads::get("example"), traced);

    // Observation must not perturb the simulation.
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.accounting.total, r2.accounting.total);
}

// --------------------------------------------------------------------
// StatGroup (reset semantics and distributions)
// --------------------------------------------------------------------

TEST(StatGroup, ResetZeroesValuesButKeepsNames)
{
    StatGroup g("g");
    g.add("hits", 5);
    g.add("misses");
    g.addToDist("lat", "p50", 7);
    g.reset();
    EXPECT_EQ(g.get("hits"), 0u);
    EXPECT_EQ(g.get("misses"), 0u);
    EXPECT_EQ(g.getDist("lat", "p50"), 0u);
    // The names survive so post-reset reports keep their rows.
    ASSERT_EQ(g.scalars().size(), 2u);
    EXPECT_EQ(g.scalars().count("hits"), 1u);
    EXPECT_EQ(g.scalars().count("misses"), 1u);
    ASSERT_EQ(g.dists().size(), 1u);
    EXPECT_EQ(g.dists().at("lat").count("p50"), 1u);
    EXPECT_NE(g.format().find("g.hits 0"), std::string::npos);
}

TEST(StatGroup, DistributionsAccumulateAndFormat)
{
    StatGroup g("cycles");
    g.addToDist("pu0", "busy", 10);
    g.addToDist("pu0", "busy", 5);
    g.addToDist("pu0", "idle", 2);
    EXPECT_EQ(g.getDist("pu0", "busy"), 15u);
    EXPECT_EQ(g.getDist("pu0", "nothere"), 0u);
    const std::string text = g.format();
    EXPECT_NE(text.find("cycles.pu0.busy 15"), std::string::npos);
    EXPECT_NE(text.find("cycles.pu0.idle 2"), std::string::npos);
}

} // namespace
