/**
 * @file
 * msim-server tests: the JSON layer, msim-rpc-v1 framing and request
 * validation, the worker pool's bounded admission, differential
 * checks (server responses must be bit-identical to direct in-process
 * runs), protocol error paths (budget_exhausted, timeout, overloaded,
 * malformed input of every kind), graceful shutdown mid-sweep, and a
 * kill test against the real msim-server daemon (SIGTERM mid-sweep
 * must drain the stream and exit 0).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include "bench/suites.hh"
#include "config/machine_shape.hh"
#include "exp/report.hh"
#include "exp/scheduler.hh"
#include "server/client.hh"
#include "common/json.hh"
#include "server/protocol.hh"
#include "server/server.hh"
#include "server/service.hh"
#include "server/worker_pool.hh"
#include "sim/runner.hh"

namespace {

using namespace msim;
using json::Value;

// ---------------------------------------------------------------------
// JSON: parser, writer, strictness.
// ---------------------------------------------------------------------

TEST(Json, RoundTripsDocuments)
{
    const std::string text =
        "{\"a\":1,\"b\":[true,null,\"x\"],\"c\":{\"d\":-2.5}}";
    const Value v = Value::parse(text);
    EXPECT_EQ(v.dump(), text);
}

TEST(Json, PreservesIntegers)
{
    const Value v = Value::parse("[1000000000000, 0, -7]");
    EXPECT_EQ(v.dump(), "[1000000000000,0,-7]");
    EXPECT_EQ(v.items()[0].asInt(), 1000000000000ll);
}

TEST(Json, DecodesEscapesAndSurrogatePairs)
{
    const Value v = Value::parse("\"a\\n\\t\\u0041\\uD83D\\uDE00\"");
    EXPECT_EQ(v.asString(), "a\n\tA\xF0\x9F\x98\x80");
}

TEST(Json, ObjectLookupIsInsertionOrdered)
{
    Value v = Value::object();
    v.set("z", Value(1));
    v.set("a", Value(2));
    EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":2}");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->asInt(), 2);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedText)
{
    EXPECT_THROW(Value::parse(""), json::ParseError);
    EXPECT_THROW(Value::parse("{"), json::ParseError);
    EXPECT_THROW(Value::parse("{\"a\":}"), json::ParseError);
    EXPECT_THROW(Value::parse("[1,]"), json::ParseError);
    EXPECT_THROW(Value::parse("nul"), json::ParseError);
    EXPECT_THROW(Value::parse("1 2"), json::ParseError);  // trailing
    EXPECT_THROW(Value::parse("\"\x01\""), json::ParseError);
    EXPECT_THROW(Value::parse("\"\\q\""), json::ParseError);
    EXPECT_THROW(Value::parse("{\"a\" 1}"), json::ParseError);
    EXPECT_THROW(Value::parse("01"), json::ParseError);
}

TEST(Json, BoundsRecursionDepth)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_THROW(Value::parse(deep, 64), json::ParseError);
    EXPECT_NO_THROW(Value::parse(deep, 128));
}

// ---------------------------------------------------------------------
// Content-addressed program cache.
// ---------------------------------------------------------------------

TEST(ContentHash, DistinguishesCompilePoints)
{
    const workloads::Workload w = workloads::get("example", 1);
    const std::uint64_t ms = workloadContentHash(w, true, {}, 1);
    EXPECT_EQ(ms, workloadContentHash(w, true, {}, 1));
    EXPECT_NE(ms, workloadContentHash(w, false, {}, 1));
    EXPECT_NE(ms, workloadContentHash(w, true, {"OPTMASK"}, 1));
    EXPECT_NE(ms, workloadContentHash(w, true, {}, 2));
}

TEST(ProgramCacheContent, MemoizesByContent)
{
    ProgramCache cache;
    EXPECT_FALSE(cache.contains("example", true));
    auto a = cache.get("example", true);
    EXPECT_TRUE(cache.contains("example", true));
    auto b = cache.get("example", true);
    EXPECT_EQ(a.get(), b.get());  // same immutable compilation
    auto c = cache.get("example", false);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a->contentHash,
              workloadContentHash(a->workload, true, {}, 1));
}

TEST(ProgramCacheContent, UnknownWorkloadThrows)
{
    ProgramCache cache;
    EXPECT_THROW(cache.get("no-such-workload", true), FatalError);
}

// ---------------------------------------------------------------------
// Budget exhaustion surfaces cycles consumed and the budget.
// ---------------------------------------------------------------------

TEST(Budget, RunnerThrowsBudgetExhaustedError)
{
    ProgramCache cache;
    auto compiled = cache.get("wc", true);
    RunSpec spec;
    spec.maxCycles = 100;
    try {
        runCompiled(*compiled, spec);
        FAIL() << "expected BudgetExhaustedError";
    } catch (const BudgetExhaustedError &e) {
        EXPECT_EQ(e.budget, 100u);
        EXPECT_EQ(e.cyclesConsumed, 100u);
        EXPECT_NE(std::string(e.what()).find("cycle budget"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Worker pool: bounded admission, all-or-nothing sweeps, drain.
// ---------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEverythingAdmitted)
{
    server::WorkerPool pool(2, 64);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(pool.tryEnqueue([&] { ++ran; }));
    pool.drain();
    EXPECT_EQ(ran.load(), 20);
}

TEST(WorkerPoolTest, ShedsWhenQueueIsFull)
{
    server::WorkerPool pool(1, 1);
    std::mutex gate;
    gate.lock();
    std::atomic<int> ran{0};
    // Occupy the single worker until the gate opens…
    ASSERT_TRUE(pool.tryEnqueue([&] {
        std::lock_guard<std::mutex> hold(gate);
        ++ran;
    }));
    // Busy-wait until the worker picked the job up, so the queue
    // depth below is deterministic.
    while (pool.queued() != 0)
        std::this_thread::yield();
    ASSERT_TRUE(pool.tryEnqueue([&] { ++ran; }));   // fills the queue
    EXPECT_FALSE(pool.tryEnqueue([&] { ++ran; }));  // shed
    // A 2-job batch can never fit a 1-slot queue: all-or-nothing.
    std::vector<server::WorkerPool::Job> batch;
    batch.emplace_back([&] { ++ran; });
    batch.emplace_back([&] { ++ran; });
    EXPECT_FALSE(pool.tryEnqueueAll(std::move(batch)));
    gate.unlock();
    pool.drain();
    EXPECT_EQ(ran.load(), 2);
    EXPECT_FALSE(pool.tryEnqueue([&] { ++ran; }));  // drained pool
}

// ---------------------------------------------------------------------
// Framing over a socketpair.
// ---------------------------------------------------------------------

class FramingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    }
    void TearDown() override
    {
        if (fds_[0] >= 0)
            ::close(fds_[0]);
        if (fds_[1] >= 0)
            ::close(fds_[1]);
    }
    int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, RoundTripsPayloads)
{
    server::writeFrame(fds_[0], "{\"x\":1}");
    server::writeFrame(fds_[0], "");
    std::string payload;
    ASSERT_TRUE(server::readFrame(fds_[1], payload));
    EXPECT_EQ(payload, "{\"x\":1}");
    ASSERT_TRUE(server::readFrame(fds_[1], payload));
    EXPECT_EQ(payload, "");
    ::close(fds_[0]);
    fds_[0] = -1;
    EXPECT_FALSE(server::readFrame(fds_[1], payload));  // clean EOF
}

TEST_F(FramingTest, RejectsOversizedPrefixBeforeAllocating)
{
    const unsigned char hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::write(fds_[0], hdr, 4), 4);
    std::string payload;
    try {
        server::readFrame(fds_[1], payload);
        FAIL() << "expected ProtocolError";
    } catch (const server::ProtocolError &e) {
        EXPECT_EQ(e.code, server::ErrCode::kBadRequest);
    }
}

TEST_F(FramingTest, DetectsTruncatedFrames)
{
    const unsigned char hdr[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fds_[0], hdr, 4), 4);
    ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
    ::close(fds_[0]);
    fds_[0] = -1;
    std::string payload;
    EXPECT_THROW(server::readFrame(fds_[1], payload),
                 server::ProtocolError);
}

// ---------------------------------------------------------------------
// Request validation.
// ---------------------------------------------------------------------

server::ErrCode
parseErrorCode(const std::string &payload)
{
    try {
        server::parseRequest(payload);
    } catch (const server::ProtocolError &e) {
        return e.code;
    }
    ADD_FAILURE() << "no ProtocolError for: " << payload;
    return server::ErrCode::kInternal;
}

TEST(ParseRequest, AcceptsTheDocumentedSchema)
{
    const server::Request ping =
        server::parseRequest("{\"type\":\"ping\",\"id\":42}");
    EXPECT_EQ(ping.kind, server::Request::Kind::Ping);
    EXPECT_EQ(ping.id, 42);

    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = 8;
    spec.defines = {"SYNC"};
    const server::Request run = server::parseRequest(
        server::makeRunRequest("gcc", spec, 2, 7, 1500).dump());
    EXPECT_EQ(run.kind, server::Request::Kind::Run);
    EXPECT_EQ(run.id, 7);
    EXPECT_EQ(run.timeoutMs, 1500u);
    EXPECT_EQ(run.run.workload, "gcc");
    EXPECT_EQ(run.run.scale, 2u);
    EXPECT_EQ(run.run.spec.ms.numUnits, 8u);
    EXPECT_EQ(run.run.spec.defines, std::set<std::string>{"SYNC"});
}

TEST(ParseRequest, RejectsEverythingMalformed)
{
    using server::ErrCode;
    EXPECT_EQ(parseErrorCode("{nope"), ErrCode::kParseError);
    EXPECT_EQ(parseErrorCode("[1,2]"), ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"fly\"}"),
              ErrCode::kUnknownType);
    EXPECT_EQ(parseErrorCode("{\"id\":1}"), ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\"}"),
              ErrCode::kBadRequest);  // workload missing
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":5}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":\"wc\","
                             "\"scale\":0}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":\"wc\","
                             "\"spec\":{\"unitz\":4}}"),
              ErrCode::kBadRequest);  // spec typo must not run
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":\"wc\","
                             "\"spec\":{\"predictor\":\"oracle\"}}"),
              ErrCode::kBadRequest);
    // A malformed inline machine object must be rejected the same
    // way, not run on a default machine.
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":\"wc\","
                             "\"spec\":{\"machine\":{\"unitz\":4}}}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"run\",\"workload\":\"wc\","
                             "\"spec\":{\"machine\":{\"units\":0}}}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"sweep\"}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode("{\"type\":\"sweep\",\"cells\":[]}"),
              ErrCode::kBadRequest);
    EXPECT_EQ(parseErrorCode(
                  "{\"type\":\"sweep\",\"cells\":[{\"name\":\"a\","
                  "\"workload\":\"wc\"},{\"name\":\"a\","
                  "\"workload\":\"wc\"}]}"),
              ErrCode::kBadRequest);  // duplicate cell names
}

TEST(ParseRequest, CapsSweepSize)
{
    Value cells = Value::array();
    for (std::size_t i = 0; i <= server::kMaxSweepCells; ++i) {
        Value cell = Value::object();
        cell.set("name", Value("c" + std::to_string(i)));
        cell.set("workload", Value("wc"));
        cells.push(std::move(cell));
    }
    Value req = Value::object();
    req.set("type", Value("sweep"));
    req.set("cells", std::move(cells));
    EXPECT_EQ(parseErrorCode(req.dump()),
              server::ErrCode::kBadRequest);
}

TEST(SpecJson, RoundTripsSpecs)
{
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = 8;
    spec.ms.pu.issueWidth = 2;
    spec.ms.pu.outOfOrder = true;
    spec.ms.ringHopLatency = 3;
    spec.ms.predictor = "last";
    spec.defines = {"SYNC", "EARLYV"};
    spec.maxCycles = 12345;
    const Value wire = server::specToJson(spec);
    const RunSpec back = server::specFromJson(&wire);
    EXPECT_EQ(server::specToJson(back).dump(),
              server::specToJson(spec).dump());
}

TEST(SpecJson, MachineObjectAppliesFirstFlatKeysOverride)
{
    // The inline "machine" object (msim-shape-v1) seeds the spec;
    // flat spec fields are applied afterwards and win.
    const Value wire = Value::parse(
        "{\"machine\":{\"schema\":\"msim-shape-v1\",\"units\":8,"
        "\"ring_hop_latency\":4,\"predictor\":{\"kind\":\"last\"}},"
        "\"ring_hop_latency\":2}");
    const RunSpec spec = server::specFromJson(&wire);
    EXPECT_TRUE(spec.multiscalar);
    EXPECT_EQ(spec.ms.numUnits, 8u);
    EXPECT_EQ(spec.ms.predictor, "last");
    EXPECT_EQ(spec.ms.ringHopLatency, 2u);
}

// ---------------------------------------------------------------------
// The service, in process (no sockets): differential runs, budget
// and timeout errors, overload shedding.
// ---------------------------------------------------------------------

server::ServiceConfig
smallService(unsigned jobs = 2, std::size_t queue = 64)
{
    server::ServiceConfig config;
    config.jobs = jobs;
    config.queueCapacity = queue;
    return config;
}

Value
callService(server::SimService &service, const Value &request,
            std::vector<Value> *streamed = nullptr)
{
    const std::string response = service.handlePayload(
        request.dump(), [&](const std::string &frame) {
            if (streamed != nullptr)
                streamed->push_back(Value::parse(frame));
        });
    return Value::parse(response);
}

TEST(Service, RunMatchesDirectRunCompiledBitForBit)
{
    server::SimService service(smallService());
    ProgramCache cache;
    for (const bool multiscalar : {false, true}) {
        RunSpec spec;
        spec.multiscalar = multiscalar;
        if (multiscalar)
            spec.ms.numUnits = 4;
        const Value response = callService(
            service,
            server::makeRunRequest("example", spec, 1, 3));
        ASSERT_FALSE(server::isErrorFrame(response))
            << response.dump();
        const RunResult direct = runCompiled(
            *cache.get("example", multiscalar, {}, 1), spec);
        ASSERT_NE(response.find("result"), nullptr);
        EXPECT_EQ(response.find("result")->dump(),
                  server::resultToJson(direct).dump());
        EXPECT_EQ(response.find("id")->asInt(), 3);
    }
}

TEST(Service, InlineMachineRunMatchesDirect)
{
    // A run whose spec carries only an inline machine object must be
    // bit-identical to the in-process run of the same shape.
    server::SimService service(smallService());
    config::MachineShape shape;
    shape.multiscalar = true;
    shape.ms.numUnits = 6;
    shape.ms.ringHopLatency = 2;
    shape.ms.arbEntriesPerBank = 32;
    shape.ms.predictor = "last";

    Value request = server::makeRunRequest("example", RunSpec{}, 1, 11);
    Value specJson = Value::object();
    specJson.set("machine", config::shapeToJson(shape));
    *request.find("spec") = std::move(specJson);

    const Value response = callService(service, request);
    ASSERT_FALSE(server::isErrorFrame(response)) << response.dump();
    ProgramCache cache;
    const RunResult direct = runCompiled(
        *cache.get("example", true, {}, 1), config::toRunSpec(shape));
    ASSERT_NE(response.find("result"), nullptr);
    EXPECT_EQ(response.find("result")->dump(),
              server::resultToJson(direct).dump());
    EXPECT_EQ(response.find("id")->asInt(), 11);
}

TEST(Service, BudgetExhaustionIsADistinctProtocolError)
{
    server::SimService service(smallService());
    RunSpec spec;
    spec.maxCycles = 100;
    const Value response = callService(
        service, server::makeRunRequest("wc", spec, 1, 9));
    ASSERT_TRUE(server::isErrorFrame(response)) << response.dump();
    EXPECT_EQ(server::errorCode(response), "budget_exhausted");
    ASSERT_NE(response.find("cycles_consumed"), nullptr);
    ASSERT_NE(response.find("budget"), nullptr);
    EXPECT_EQ(response.find("cycles_consumed")->asInt(), 100);
    EXPECT_EQ(response.find("budget")->asInt(), 100);
    EXPECT_EQ(response.find("id")->asInt(), 9);
    EXPECT_EQ(service.stats().budgetExhausted.load(), 1u);
}

TEST(Service, ServerWideCycleCapBoundsEveryRequest)
{
    server::ServiceConfig config = smallService();
    config.maxCyclesPerRequest = 50;
    server::SimService service(config);
    RunSpec spec;  // default budget of 1e9, clamped to 50
    const Value response = callService(
        service, server::makeRunRequest("wc", spec, 1, 1));
    ASSERT_TRUE(server::isErrorFrame(response));
    EXPECT_EQ(server::errorCode(response), "budget_exhausted");
    EXPECT_EQ(response.find("budget")->asInt(), 50);
}

TEST(Service, UnknownWorkloadIsAStructuredError)
{
    server::SimService service(smallService());
    RunSpec spec;
    const Value response = callService(
        service, server::makeRunRequest("quux", spec, 1, 2));
    ASSERT_TRUE(server::isErrorFrame(response));
    EXPECT_EQ(server::errorCode(response), "unknown_workload");
}

TEST(Service, WallClockTimeoutAnswersTimeout)
{
    server::SimService service(smallService(1));
    RunSpec spec;
    // gcc takes far longer than 1ms of wall clock on any host.
    const Value response = callService(
        service, server::makeRunRequest("gcc", spec, 1, 4, 1));
    ASSERT_TRUE(server::isErrorFrame(response)) << response.dump();
    EXPECT_EQ(server::errorCode(response), "timeout");
    EXPECT_EQ(service.stats().timeouts.load(), 1u);
    service.drain();  // the abandoned job must still run to completion
}

TEST(Service, OversizedSweepIsShedAllOrNothing)
{
    server::SimService service(smallService(1, 2));
    exp::Experiment e("shed");
    bench::declareTable2(e, bench::kSmokeOrder);  // 6 cells, queue 2
    std::vector<Value> streamed;
    const Value response = callService(
        service, server::makeSweepRequest(e.cells(), 5), &streamed);
    ASSERT_TRUE(server::isErrorFrame(response)) << response.dump();
    EXPECT_EQ(server::errorCode(response), "overloaded");
    EXPECT_TRUE(streamed.empty());  // nothing half-run
    EXPECT_EQ(service.stats().shedOverload.load(), 1u);
}

TEST(Service, StatsReportQueueAndCache)
{
    server::SimService service(smallService());
    Value statsReq = Value::object();
    statsReq.set("type", Value("stats"));
    statsReq.set("id", Value(1));
    const Value response = callService(service, statsReq);
    ASSERT_NE(response.find("stats"), nullptr);
    const Value &stats = *response.find("stats");
    ASSERT_NE(stats.find("queue"), nullptr);
    EXPECT_EQ(stats.find("queue")->find("capacity")->asInt(), 64);
    ASSERT_NE(stats.find("program_cache"), nullptr);
    EXPECT_EQ(stats.find("requests")->find("stats")->asInt(), 1);
}

// ---------------------------------------------------------------------
// Sweeps through the service match the SweepScheduler cell for cell.
// ---------------------------------------------------------------------

TEST(Service, SweepMatchesSweepSchedulerBitForBit)
{
    exp::Experiment e("differential");
    bench::declareTable2(e, bench::kSmokeOrder);

    server::SimService service(smallService());
    std::vector<Value> streamed;
    const Value done = callService(
        service, server::makeSweepRequest(e.cells(), 11), &streamed);
    ASSERT_FALSE(server::isErrorFrame(done)) << done.dump();
    EXPECT_EQ(done.find("type")->asString(), "sweep_done");
    EXPECT_EQ(done.find("cells_total")->asInt(),
              std::int64_t(e.cells().size()));
    EXPECT_EQ(done.find("cells_failed")->asInt(), 0);
    ASSERT_EQ(streamed.size(), e.cells().size());

    exp::SweepScheduler scheduler(2);
    const exp::SweepResult local = scheduler.run(e);

    // Restore registration order via the streamed index, then every
    // cell row must match the scheduler's — except wall clock.
    std::vector<const Value *> byIndex(e.cells().size(), nullptr);
    for (const Value &frame : streamed) {
        ASSERT_EQ(frame.find("type")->asString(), "sweep_cell");
        EXPECT_EQ(frame.find("id")->asInt(), 11);
        const std::size_t index =
            std::size_t(frame.find("index")->asInt());
        ASSERT_LT(index, byIndex.size());
        EXPECT_EQ(byIndex[index], nullptr);  // no duplicate streams
        byIndex[index] = frame.find("cell");
    }
    for (std::size_t i = 0; i < local.cells.size(); ++i) {
        ASSERT_NE(byIndex[i], nullptr);
        std::ostringstream os;
        exp::writeJsonCell(os, local.cells[i], "");
        Value localCell = Value::parse(os.str());
        // wall_seconds is host timing; everything else must agree.
        Value a = Value::object(), b = Value::object();
        for (const auto &[k, v] : byIndex[i]->entries())
            if (k != "wall_seconds")
                a.set(k, v);
        for (const auto &[k, v] : localCell.entries())
            if (k != "wall_seconds")
                b.set(k, v);
        EXPECT_EQ(a.dump(), b.dump())
            << "cell " << local.cells[i].name;
    }

    // The memoization invariant holds through the server path too.
    EXPECT_EQ(done.find("program_cache")->find("misses")->asInt(),
              std::int64_t(e.uniqueCompileKeys()));
}

// ---------------------------------------------------------------------
// The full TCP server: malformed input never crashes it, graceful
// shutdown drains mid-sweep.
// ---------------------------------------------------------------------

class ServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        server::ServerConfig config;
        config.service.jobs = 2;
        srv_ = std::make_unique<server::Server>(config);
        srv_->start();
        ASSERT_NE(srv_->port(), 0);
    }

    server::Client connect()
    {
        server::Client c;
        c.connect("127.0.0.1", srv_->port());
        return c;
    }

    int connectRaw()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(srv_->port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    std::unique_ptr<server::Server> srv_;
};

TEST_F(ServerTest, AnswersOverTcp)
{
    server::Client client = connect();
    Value ping = Value::object();
    ping.set("type", Value("ping"));
    ping.set("id", Value(123));
    const Value pong = client.call(ping);
    EXPECT_EQ(pong.find("type")->asString(), "pong");
    EXPECT_EQ(pong.find("id")->asInt(), 123);
    EXPECT_EQ(pong.find("rpc")->asString(), "msim-rpc-v1");
}

TEST_F(ServerTest, MalformedPayloadsGetStructuredErrors)
{
    server::Client client = connect();
    const std::pair<const char *, const char *> cases[] = {
        {"{nope", "parse_error"},
        {"", "parse_error"},
        {"[1,2]", "bad_request"},
        {"42", "bad_request"},
        {"{\"type\":\"fly\"}", "unknown_type"},
        {"{\"type\":\"run\",\"workload\":5}", "bad_request"},
        {"{\"type\":\"run\",\"workload\":\"quux\"}",
         "unknown_workload"},
        {"{\"type\":\"run\",\"workload\":\"wc\","
         "\"spec\":{\"bogus\":1}}",
         "bad_request"},
    };
    // A parsed-but-not-an-object request through the client API.
    client.send(Value());
    const Value nullResp = client.recv();
    EXPECT_TRUE(server::isErrorFrame(nullResp));
    EXPECT_EQ(server::errorCode(nullResp), "bad_request");

    // Raw payloads (not valid JSON) need the frame API directly.
    const int fd = connectRaw();
    ASSERT_GE(fd, 0);
    for (const auto &[payload, code] : cases) {
        server::writeFrame(fd, payload);
        std::string response;
        ASSERT_TRUE(server::readFrame(fd, response))
            << "server dropped the connection on: " << payload;
        const Value v = Value::parse(response);
        EXPECT_TRUE(server::isErrorFrame(v)) << response;
        EXPECT_EQ(server::errorCode(v), code) << response;
    }
    // After all that abuse the same connection still works.
    server::writeFrame(fd, "{\"type\":\"ping\",\"id\":1}");
    std::string response;
    ASSERT_TRUE(server::readFrame(fd, response));
    EXPECT_EQ(Value::parse(response).find("type")->asString(),
              "pong");
    ::close(fd);
}

TEST_F(ServerTest, OversizedLengthPrefixAnswersThenDrops)
{
    const int fd = connectRaw();
    ASSERT_GE(fd, 0);
    const unsigned char hdr[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::write(fd, hdr, 4), 4);
    // The server answers with a structured error…
    std::string response;
    ASSERT_TRUE(server::readFrame(fd, response));
    const Value v = Value::parse(response);
    EXPECT_TRUE(server::isErrorFrame(v));
    EXPECT_EQ(server::errorCode(v), "bad_request");
    // …and then drops the unrecoverable connection.
    EXPECT_FALSE(server::readFrame(fd, response));
    ::close(fd);

    // The server survives: new connections work.
    server::Client client = connect();
    Value ping = Value::object();
    ping.set("type", Value("ping"));
    EXPECT_EQ(client.call(ping).find("type")->asString(), "pong");
}

TEST_F(ServerTest, TruncatedFrameDropsOnlyThatConnection)
{
    const int fd = connectRaw();
    ASSERT_GE(fd, 0);
    const unsigned char hdr[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fd, hdr, 4), 4);
    ASSERT_EQ(::write(fd, "abc", 3), 3);
    ::close(fd);  // mid-frame

    server::Client client = connect();
    Value ping = Value::object();
    ping.set("type", Value("ping"));
    EXPECT_EQ(client.call(ping).find("type")->asString(), "pong");
}

TEST_F(ServerTest, GracefulShutdownDrainsAMidFlightSweep)
{
    exp::Experiment e("drain");
    bench::declareTable2(e, bench::kSmokeOrder);

    server::Client client = connect();
    std::size_t streamed = 0;
    const server::Client::SweepOutcome outcome = client.sweep(
        server::makeSweepRequest(e.cells(), 21),
        [&](const server::Client::StreamedCell &) {
            // Flip into drain mode while the sweep is mid-stream:
            // the remaining cells must still arrive.
            if (++streamed == 1)
                srv_->requestShutdown();
        });
    EXPECT_EQ(outcome.cells.size(), e.cells().size());
    EXPECT_EQ(outcome.done.find("cells_failed")->asInt(), 0);

    // New work on the same connection is refused with shutting_down.
    Value ping = Value::object();
    ping.set("type", Value("ping"));
    const Value refused = client.call(ping);
    ASSERT_TRUE(server::isErrorFrame(refused)) << refused.dump();
    EXPECT_EQ(server::errorCode(refused), "shutting_down");

    // Brand-new connections are answered with shutting_down too.
    const int fd = connectRaw();
    ASSERT_GE(fd, 0);
    std::string response;
    ASSERT_TRUE(server::readFrame(fd, response));
    EXPECT_EQ(server::errorCode(Value::parse(response)),
              "shutting_down");
    ::close(fd);

    srv_->shutdown();  // must not hang with zero in-flight requests
}

// ---------------------------------------------------------------------
// The real daemon: SIGTERM mid-sweep drains the stream and exits 0.
// ---------------------------------------------------------------------

#ifdef MSIM_SERVER_BIN
TEST(Daemon, SigtermMidSweepDrainsAndExitsZero)
{
    int out[2];
    ASSERT_EQ(::pipe(out), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(out[1], STDOUT_FILENO);
        ::close(out[0]);
        ::close(out[1]);
        ::execl(MSIM_SERVER_BIN, MSIM_SERVER_BIN, "--print-port",
                "--jobs", "1", static_cast<char *>(nullptr));
        _exit(127);
    }
    ::close(out[1]);

    // First stdout line is the ephemeral port.
    std::string line;
    char ch;
    while (::read(out[0], &ch, 1) == 1 && ch != '\n')
        line += ch;
    ::close(out[0]);
    const int port = std::atoi(line.c_str());
    ASSERT_GT(port, 0) << "daemon did not report a port: " << line;

    exp::Experiment e("killtest");
    bench::declareTable2(e, bench::kSmokeOrder);
    server::Client client;
    client.connect("127.0.0.1", std::uint16_t(port));

    std::size_t streamed = 0;
    const server::Client::SweepOutcome outcome = client.sweep(
        server::makeSweepRequest(e.cells(), 31),
        [&](const server::Client::StreamedCell &) {
            // Kill the daemon after the first streamed cell; the
            // rest of the sweep must still arrive.
            if (++streamed == 1) {
                ASSERT_EQ(::kill(pid, SIGTERM), 0);
            }
        });
    EXPECT_EQ(outcome.cells.size(), e.cells().size());
    EXPECT_EQ(outcome.done.find("cells_failed")->asInt(), 0);
    client.close();

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "daemon did not exit cleanly (status " << status << ")";
    EXPECT_EQ(WEXITSTATUS(status), 0);
}
#endif

} // namespace
