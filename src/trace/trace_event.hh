/**
 * @file
 * The event record shared by the tracer and its sinks, plus the
 * trace's lane (thread-id) layout. Events follow the Chrome
 * trace-event model: a phase character, a timestamp in simulated
 * cycles, a process/thread pair locating the event on a timeline,
 * and up to two integer arguments. Sinks stream events as they are
 * recorded, so string fields may reference caller-owned storage;
 * they are consumed before the record call returns.
 */

#ifndef MSIM_TRACE_TRACE_EVENT_HH
#define MSIM_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"
#include "trace/trace_config.hh"

namespace msim {

/** Chrome trace-event phase characters used by the tracer. */
enum class TracePhase : char
{
    kInstant = 'i',   //!< point event
    kBegin = 'B',     //!< duration start
    kEnd = 'E',       //!< duration end
    kComplete = 'X',  //!< duration with explicit length
    kCounter = 'C',   //!< sampled counter values
};

/**
 * Trace lane layout. Processing units occupy tids [0, 64); fixed
 * machine components follow; per-bank caches get a lane each.
 */
inline constexpr std::uint32_t kTidSequencer = 64;
inline constexpr std::uint32_t kTidBus = 65;
inline constexpr std::uint32_t kTidRing = 66;
inline constexpr std::uint32_t kTidArb = 67;
inline constexpr std::uint32_t kTidIcacheBase = 70;   //!< + unit
inline constexpr std::uint32_t kTidDcacheBase = 100;  //!< + bank
inline constexpr std::uint32_t kTidL2Base = 68;       //!< shared L2

/** One trace event, streamed to the active sink. */
struct TraceEvent
{
    std::string_view name;
    TraceCat cat = TraceCat::kSeq;
    TracePhase ph = TracePhase::kInstant;
    Cycle ts = 0;
    Cycle dur = 0;  //!< kComplete only
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    /** Up to two integer arguments; an empty key ends the list. */
    std::string_view key1;
    std::uint64_t val1 = 0;
    std::string_view key2;
    std::uint64_t val2 = 0;
};

} // namespace msim

#endif // MSIM_TRACE_TRACE_EVENT_HH
