/**
 * @file
 * The event tracer: a thin, runtime-gated front end over a TraceSink.
 *
 * Cost model: every instrumentation site is guarded by
 * `tracer && tracer->wants(cat)` — a null-pointer test when tracing
 * is compiled in but not configured (the machines only construct a
 * Tracer when TraceConfig::enabled is set), and one inline mask test
 * when it is. Event serialization happens in the sink, out of line,
 * only for selected categories.
 *
 * Components without their own notion of time (ARB, ring) stamp
 * events with now(): the owning processor publishes the current cycle
 * once per simulated cycle through setNow().
 */

#ifndef MSIM_TRACE_TRACER_HH
#define MSIM_TRACE_TRACER_HH

#include <cstdint>
#include <memory>
#include <string_view>

#include "trace/trace_config.hh"
#include "trace/trace_event.hh"
#include "trace/trace_sink.hh"

namespace msim {

/** Records timestamped events into a pluggable sink. */
class Tracer
{
  public:
    /** Build a tracer with the sink named by @p config. */
    explicit Tracer(const TraceConfig &config);

    /** Build a tracer around an injected sink (tests). */
    Tracer(const TraceConfig &config, std::unique_ptr<TraceSink> sink);

    ~Tracer();

    /** @return true when any recording can happen at all. */
    bool enabled() const { return enabled_; }

    /** Fast path: should events of @p cat be recorded? */
    bool
    wants(TraceCat cat) const
    {
        return enabled_ && (catMask_ & traceCatBit(cat)) != 0;
    }

    /** Publish the current simulated cycle (for un-timed callers). */
    void setNow(Cycle now) { now_ = now; }

    /** @return the last published cycle. */
    Cycle now() const { return now_; }

    // --- recording ---------------------------------------------------
    void instant(TraceCat cat, std::string_view name, Cycle ts,
                 std::uint32_t tid, std::string_view key1 = {},
                 std::uint64_t val1 = 0, std::string_view key2 = {},
                 std::uint64_t val2 = 0);

    void begin(TraceCat cat, std::string_view name, Cycle ts,
               std::uint32_t tid, std::string_view key1 = {},
               std::uint64_t val1 = 0, std::string_view key2 = {},
               std::uint64_t val2 = 0);

    void end(TraceCat cat, Cycle ts, std::uint32_t tid);

    void complete(TraceCat cat, std::string_view name, Cycle ts,
                  Cycle dur, std::uint32_t tid,
                  std::string_view key1 = {}, std::uint64_t val1 = 0);

    void counter(TraceCat cat, std::string_view name, Cycle ts,
                 std::uint32_t tid, std::string_view key1,
                 std::uint64_t val1, std::string_view key2 = {},
                 std::uint64_t val2 = 0);

    /** Name a trace lane. */
    void threadName(std::uint32_t tid, std::string_view name);

    /** Finish the sink's output (idempotent). */
    void flush();

    /** Events recorded / dropped by the maxEvents cap. */
    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return dropped_; }

  private:
    void record(const TraceEvent &event);

    bool enabled_ = false;
    std::uint32_t catMask_ = 0;
    std::uint64_t maxEvents_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    Cycle now_ = 0;
    std::unique_ptr<TraceSink> sink_;
};

} // namespace msim

#endif // MSIM_TRACE_TRACER_HH
