/**
 * @file
 * Configuration of the event-trace subsystem. A TraceConfig travels
 * inside MsConfig / ScalarConfig (and RunSpec) so any run — bench,
 * test, or example — can switch tracing on without touching the
 * machine model. With enabled == false no Tracer is constructed at
 * all and every instrumentation site reduces to one pointer test.
 */

#ifndef MSIM_TRACE_TRACE_CONFIG_HH
#define MSIM_TRACE_TRACE_CONFIG_HH

#include <cstdint>
#include <string>

namespace msim {

/** Event categories; each instrumentation site belongs to one. */
enum class TraceCat : std::uint8_t
{
    kTask,   //!< task assign / retire / squash lifetimes
    kSeq,    //!< sequencer decisions (predictions, squash causes)
    kPu,     //!< processing unit stage occupancy
    kArb,    //!< ARB conflicts: violations, capacity stalls
    kRing,   //!< register forwards on the ring
    kCache,  //!< icache / dcache-bank misses and bank conflicts
    kBus,    //!< shared memory bus transactions
    kNumCats
};

/** @return the short lowercase name of a category. */
const char *traceCatName(TraceCat cat);

/** @return the category named @p name, or kNumCats when unknown. */
TraceCat traceCatFromName(const std::string &name);

/** @return the bit for @p cat in a category mask. */
constexpr std::uint32_t
traceCatBit(TraceCat cat)
{
    return std::uint32_t(1) << unsigned(cat);
}

/** Mask with every category selected. */
constexpr std::uint32_t kAllTraceCats =
    (std::uint32_t(1) << unsigned(TraceCat::kNumCats)) - 1;

/**
 * Parse a comma-separated category list ("task,ring,bus") into a
 * mask. Throws FatalError on an unknown name. An empty string means
 * all categories.
 */
std::uint32_t traceCatMaskFromList(const std::string &list);

/** Tracing configuration, carried by the machine configs. */
struct TraceConfig
{
    /** Master switch; false = no tracer is built at all. */
    bool enabled = false;

    /** Sink kind: "chrome" (trace-event JSON), "csv", "null". */
    std::string sink = "chrome";

    /** Output file path (chrome / csv sinks). */
    std::string path = "msim.trace.json";

    /** Bitmask of TraceCat values to record. */
    std::uint32_t categories = kAllTraceCats;

    /** Hard cap on recorded events; later events are dropped. */
    std::uint64_t maxEvents = 10'000'000;
};

} // namespace msim

#endif // MSIM_TRACE_TRACE_CONFIG_HH
