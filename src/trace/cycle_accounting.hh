/**
 * @file
 * Per-unit cycle accounting: every simulated cycle of every
 * processing unit is classified into exactly one category, matching
 * the paper's section 3 discussion of where the available unit
 * cycles go — useful computation, non-useful (squashed) computation,
 * no-computation cycles split by cause (waiting for a predecessor
 * value on the ring, waiting on memory, intra-task latency, fetch
 * stalls, waiting for retirement), and idle cycles with no assigned
 * task.
 *
 * Protocol (driven by the owning processor's run loop):
 *
 *   beginCycle();                 // once per simulated cycle
 *   ... recordPending(unit, cat)  // from each unit's tick
 *   ... squashTask(unit)          // when a unit's task is squashed
 *   ... commitTask(unit)          // when a unit's task retires
 *   endCycle();                   // unaccounted units become idle
 *
 * Cycles recorded for an in-flight task stay *pending* until the
 * task's fate is known: commitTask folds them into the final counts
 * under their recorded categories (useful work), squashTask folds
 * their sum into kSquashed (the work was thrown away). Because each
 * cycle contributes exactly one classification per unit — either a
 * recordPending or the endCycle idle default — the grand total obeys
 * the hard invariant
 *
 *   sum over categories == cycles simulated × number of units
 *
 * which finish() verifies.
 */

#ifndef MSIM_TRACE_CYCLE_ACCOUNTING_HH
#define MSIM_TRACE_CYCLE_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace msim {

/** What one unit did during one cycle. */
enum class CycleCat : std::uint8_t
{
    kBusy,        //!< issued at least one instruction
    kRingWait,    //!< stalled on a predecessor register (ring wait)
    kMemWait,     //!< stalled on a memory access (dcache, ARB full)
    kIntraWait,   //!< stalled on non-memory intra-task latency
    kFetchStall,  //!< instruction window empty (icache, redirect)
    kRetireWait,  //!< task finished, waiting for head retirement
    kSquashed,    //!< cycle spent on work that was later squashed
    kIdle,        //!< no task assigned
    kNumCats
};

inline constexpr size_t kNumCycleCats = size_t(CycleCat::kNumCats);

/** @return the short snake_case name of a category. */
const char *cycleCatName(CycleCat cat);

/** The finished accounting of one run. */
struct CycleAccountingResult
{
    unsigned numUnits = 0;
    /** Totals per category, summed over units. */
    std::array<std::uint64_t, kNumCycleCats> total{};
    /** Per-unit totals per category. */
    std::vector<std::array<std::uint64_t, kNumCycleCats>> perUnit;

    std::uint64_t
    operator[](CycleCat cat) const
    {
        return total[size_t(cat)];
    }

    /** @return the grand total (== cycles × numUnits). */
    std::uint64_t
    sum() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : total)
            s += v;
        return s;
    }
};

/** Classifies every unit-cycle of a run (see file comment). */
class CycleAccounting
{
  public:
    explicit CycleAccounting(unsigned num_units);

    /** Start a simulated cycle. */
    void beginCycle();

    /** Unit @p unit spent the current cycle doing @p cat. */
    void recordPending(unsigned unit, CycleCat cat);

    /** End the cycle: units that recorded nothing were idle. */
    void endCycle();

    /**
     * Bulk accounting for fast-forwarded (quiescent) cycles. The
     * run loop proved that unit @p unit would have recorded @p cat
     * on each of @p n consecutive cycles; record them all at once.
     * Must be called between cycles (outside begin/endCycle). The
     * cycles stay pending until the unit's task is resolved, exactly
     * as if recordPending had run @p n times.
     */
    void recordSkipped(unsigned unit, CycleCat cat, std::uint64_t n);

    /**
     * Bulk idle accounting for fast-forwarded cycles: unit @p unit
     * had no task for @p n consecutive skipped cycles. Idle cycles
     * belong to no task, so they go straight to the final counts
     * (the endCycle default path does the same one cycle at a time).
     */
    void recordSkippedIdle(unsigned unit, std::uint64_t n);

    /** Unit @p unit's task retired: pending counts were useful. */
    void commitTask(unsigned unit);

    /** Unit @p unit's task was squashed: pending counts were waste. */
    void squashTask(unsigned unit);

    /**
     * Close the books: @return the final result. Panics if any
     * pending counts remain (every task's fate must be resolved) or
     * if the invariant sum == cycles × units is broken.
     */
    CycleAccountingResult finish(Cycle cycles_simulated) const;

    /** Export the per-unit breakdown as StatGroup distributions. */
    void exportStats(StatGroup &group) const;

    unsigned numUnits() const { return numUnits_; }

  private:
    using Counts = std::array<std::uint64_t, kNumCycleCats>;

    unsigned numUnits_;
    std::vector<Counts> final_;
    std::vector<Counts> pending_;
    /** Which generation (cycle) each unit last recorded in. */
    std::vector<std::uint64_t> accountedGen_;
    std::uint64_t gen_ = 0;
    bool inCycle_ = false;
};

} // namespace msim

#endif // MSIM_TRACE_CYCLE_ACCOUNTING_HH
