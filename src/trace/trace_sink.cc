#include "trace/trace_sink.hh"

#include <cstdio>

#include "common/logging.hh"

namespace msim {

namespace {

/** JSON-escape @p s into @p os (quotes, backslashes, controls). */
void
jsonEscape(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

// --------------------------------------------------------------------
// ChromeTraceSink
// --------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(&os)
{
    *os_ << "{\"traceEvents\":[\n";
}

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : file_(path), os_(&file_)
{
    fatalIf(!file_, "cannot open trace output file ", path);
    *os_ << "{\"traceEvents\":[\n";
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::comma()
{
    if (!first_)
        *os_ << ",\n";
    first_ = false;
}

void
ChromeTraceSink::writeCommon(const TraceEvent &event)
{
    *os_ << "{\"name\":\"";
    jsonEscape(*os_, event.name);
    *os_ << "\",\"cat\":\"" << traceCatName(event.cat) << "\",\"ph\":\""
         << char(event.ph) << "\",\"ts\":" << event.ts
         << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
}

void
ChromeTraceSink::write(const TraceEvent &event)
{
    comma();
    writeCommon(event);
    if (event.ph == TracePhase::kComplete)
        *os_ << ",\"dur\":" << event.dur;
    if (event.ph == TracePhase::kInstant)
        *os_ << ",\"s\":\"t\"";  // instant scope: thread
    if (!event.key1.empty()) {
        *os_ << ",\"args\":{\"";
        jsonEscape(*os_, event.key1);
        *os_ << "\":" << event.val1;
        if (!event.key2.empty()) {
            *os_ << ",\"";
            jsonEscape(*os_, event.key2);
            *os_ << "\":" << event.val2;
        }
        *os_ << "}";
    }
    *os_ << "}";
}

void
ChromeTraceSink::threadName(std::uint32_t tid, std::string_view name)
{
    comma();
    *os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
         << tid << ",\"args\":{\"name\":\"";
    jsonEscape(*os_, name);
    *os_ << "\"}}";
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    *os_ << "\n],\"displayTimeUnit\":\"ns\"}\n";
    os_->flush();
}

// --------------------------------------------------------------------
// CsvTraceSink
// --------------------------------------------------------------------

CsvTraceSink::CsvTraceSink(std::ostream &os) : os_(&os)
{
    header();
}

CsvTraceSink::CsvTraceSink(const std::string &path)
    : file_(path), os_(&file_)
{
    fatalIf(!file_, "cannot open trace output file ", path);
    header();
}

void
CsvTraceSink::header()
{
    *os_ << "ph,ts,dur,pid,tid,cat,name,key1,val1,key2,val2\n";
}

void
CsvTraceSink::write(const TraceEvent &event)
{
    *os_ << char(event.ph) << ',' << event.ts << ',' << event.dur << ','
         << event.pid << ',' << event.tid << ','
         << traceCatName(event.cat) << ',' << event.name << ','
         << event.key1 << ',' << event.val1 << ',' << event.key2 << ','
         << event.val2 << '\n';
}

void
CsvTraceSink::finish()
{
    os_->flush();
}

// --------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------

std::unique_ptr<TraceSink>
makeTraceSink(const TraceConfig &config)
{
    if (config.sink == "null")
        return std::make_unique<NullTraceSink>();
    if (config.sink == "chrome")
        return std::make_unique<ChromeTraceSink>(config.path);
    if (config.sink == "csv")
        return std::make_unique<CsvTraceSink>(config.path);
    fatal("unknown trace sink kind \"", config.sink,
          "\" (expected chrome, csv, or null)");
}

} // namespace msim
