#include "trace/tracer.hh"

#include <sstream>

#include "common/logging.hh"

namespace msim {

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::kTask:
        return "task";
      case TraceCat::kSeq:
        return "seq";
      case TraceCat::kPu:
        return "pu";
      case TraceCat::kArb:
        return "arb";
      case TraceCat::kRing:
        return "ring";
      case TraceCat::kCache:
        return "cache";
      case TraceCat::kBus:
        return "bus";
      default:
        return "?";
    }
}

TraceCat
traceCatFromName(const std::string &name)
{
    for (unsigned c = 0; c < unsigned(TraceCat::kNumCats); ++c) {
        if (name == traceCatName(TraceCat(c)))
            return TraceCat(c);
    }
    return TraceCat::kNumCats;
}

std::uint32_t
traceCatMaskFromList(const std::string &list)
{
    if (list.empty())
        return kAllTraceCats;
    std::uint32_t mask = 0;
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ',')) {
        const TraceCat cat = traceCatFromName(item);
        fatalIf(cat == TraceCat::kNumCats,
                "unknown trace category \"", item, "\"");
        mask |= traceCatBit(cat);
    }
    return mask;
}

Tracer::Tracer(const TraceConfig &config)
    : Tracer(config, config.enabled ? makeTraceSink(config) : nullptr)
{
}

Tracer::Tracer(const TraceConfig &config,
               std::unique_ptr<TraceSink> sink)
    : enabled_(config.enabled), catMask_(config.categories),
      maxEvents_(config.maxEvents), sink_(std::move(sink))
{
    if (enabled_ && !sink_)
        sink_ = makeTraceSink(config);
}

Tracer::~Tracer()
{
    flush();
}

void
Tracer::record(const TraceEvent &event)
{
    if (!wants(event.cat))
        return;
    if (recorded_ >= maxEvents_) {
        dropped_ += 1;
        return;
    }
    recorded_ += 1;
    sink_->write(event);
}

void
Tracer::instant(TraceCat cat, std::string_view name, Cycle ts,
                std::uint32_t tid, std::string_view key1,
                std::uint64_t val1, std::string_view key2,
                std::uint64_t val2)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = TracePhase::kInstant;
    ev.ts = ts;
    ev.tid = tid;
    ev.key1 = key1;
    ev.val1 = val1;
    ev.key2 = key2;
    ev.val2 = val2;
    record(ev);
}

void
Tracer::begin(TraceCat cat, std::string_view name, Cycle ts,
              std::uint32_t tid, std::string_view key1,
              std::uint64_t val1, std::string_view key2,
              std::uint64_t val2)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = TracePhase::kBegin;
    ev.ts = ts;
    ev.tid = tid;
    ev.key1 = key1;
    ev.val1 = val1;
    ev.key2 = key2;
    ev.val2 = val2;
    record(ev);
}

void
Tracer::end(TraceCat cat, Cycle ts, std::uint32_t tid)
{
    TraceEvent ev;
    ev.name = "";
    ev.cat = cat;
    ev.ph = TracePhase::kEnd;
    ev.ts = ts;
    ev.tid = tid;
    record(ev);
}

void
Tracer::complete(TraceCat cat, std::string_view name, Cycle ts,
                 Cycle dur, std::uint32_t tid, std::string_view key1,
                 std::uint64_t val1)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = TracePhase::kComplete;
    ev.ts = ts;
    ev.dur = dur;
    ev.tid = tid;
    ev.key1 = key1;
    ev.val1 = val1;
    record(ev);
}

void
Tracer::counter(TraceCat cat, std::string_view name, Cycle ts,
                std::uint32_t tid, std::string_view key1,
                std::uint64_t val1, std::string_view key2,
                std::uint64_t val2)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = TracePhase::kCounter;
    ev.ts = ts;
    ev.tid = tid;
    ev.key1 = key1;
    ev.val1 = val1;
    ev.key2 = key2;
    ev.val2 = val2;
    record(ev);
}

void
Tracer::threadName(std::uint32_t tid, std::string_view name)
{
    if (!enabled_)
        return;
    sink_->threadName(tid, name);
}

void
Tracer::flush()
{
    if (sink_)
        sink_->finish();
}

} // namespace msim
