/**
 * @file
 * Pluggable destinations for trace events. Sinks stream: each event
 * is serialized when recorded, so tracing long runs needs no
 * event buffer. Three sinks ship with the simulator:
 *
 *  - ChromeTraceSink: the Chrome trace-event JSON format, loadable
 *    in chrome://tracing or https://ui.perfetto.dev;
 *  - CsvTraceSink: one row per event for ad-hoc analysis;
 *  - NullTraceSink: discards everything (overhead measurement).
 *
 * Tests inject their own sink through the Tracer constructor.
 */

#ifndef MSIM_TRACE_TRACE_SINK_HH
#define MSIM_TRACE_TRACE_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string_view>

#include "trace/trace_config.hh"
#include "trace/trace_event.hh"

namespace msim {

/** Where recorded events go. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Serialize one event. String views die with the call. */
    virtual void write(const TraceEvent &event) = 0;

    /** Name a trace lane (Chrome thread_name metadata). */
    virtual void threadName(std::uint32_t tid, std::string_view name)
    {
        (void)tid;
        (void)name;
    }

    /** Finish the output (close JSON brackets, flush). */
    virtual void finish() {}
};

/** Discards every event. */
class NullTraceSink : public TraceSink
{
  public:
    void write(const TraceEvent &) override {}
};

/** Chrome trace-event JSON ("JSON object format"). */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Stream to @p os (not owned; must outlive the sink). */
    explicit ChromeTraceSink(std::ostream &os);

    /** Stream to a file created at @p path. */
    explicit ChromeTraceSink(const std::string &path);

    ~ChromeTraceSink() override;

    void write(const TraceEvent &event) override;
    void threadName(std::uint32_t tid, std::string_view name) override;
    void finish() override;

  private:
    void writeCommon(const TraceEvent &event);
    void comma();

    std::ofstream file_;
    std::ostream *os_;
    bool first_ = true;
    bool finished_ = false;
};

/** One CSV row per event: ph,ts,dur,pid,tid,cat,name,k1,v1,k2,v2. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(std::ostream &os);
    explicit CsvTraceSink(const std::string &path);

    void write(const TraceEvent &event) override;
    void finish() override;

  private:
    void header();

    std::ofstream file_;
    std::ostream *os_;
};

/**
 * Build the sink named by @p config ("chrome", "csv", "null").
 * Throws FatalError for an unknown kind or an unwritable path.
 */
std::unique_ptr<TraceSink> makeTraceSink(const TraceConfig &config);

} // namespace msim

#endif // MSIM_TRACE_TRACE_SINK_HH
