#include "trace/cycle_accounting.hh"

#include "common/logging.hh"

namespace msim {

const char *
cycleCatName(CycleCat cat)
{
    switch (cat) {
      case CycleCat::kBusy:
        return "busy";
      case CycleCat::kRingWait:
        return "ring_wait";
      case CycleCat::kMemWait:
        return "mem_wait";
      case CycleCat::kIntraWait:
        return "intra_wait";
      case CycleCat::kFetchStall:
        return "fetch_stall";
      case CycleCat::kRetireWait:
        return "retire_wait";
      case CycleCat::kSquashed:
        return "squashed";
      case CycleCat::kIdle:
        return "idle";
      default:
        return "?";
    }
}

CycleAccounting::CycleAccounting(unsigned num_units)
    : numUnits_(num_units), final_(num_units), pending_(num_units),
      accountedGen_(num_units, 0)
{
    fatalIf(num_units == 0, "cycle accounting needs at least one unit");
}

void
CycleAccounting::beginCycle()
{
    panicIf(inCycle_, "beginCycle without endCycle");
    inCycle_ = true;
    ++gen_;
}

void
CycleAccounting::recordPending(unsigned unit, CycleCat cat)
{
    panicIf(unit >= numUnits_, "cycle accounting: bad unit");
    panicIf(!inCycle_, "recordPending outside a cycle");
    panicIf(accountedGen_[unit] == gen_,
            "unit ", unit, " accounted twice in one cycle");
    accountedGen_[unit] = gen_;
    pending_[unit][size_t(cat)] += 1;
}

void
CycleAccounting::recordSkipped(unsigned unit, CycleCat cat,
                               std::uint64_t n)
{
    panicIf(unit >= numUnits_, "cycle accounting: bad unit");
    panicIf(inCycle_, "recordSkipped inside an open cycle");
    panicIf(cat == CycleCat::kIdle,
            "skipped idle cycles go through recordSkippedIdle");
    pending_[unit][size_t(cat)] += n;
}

void
CycleAccounting::recordSkippedIdle(unsigned unit, std::uint64_t n)
{
    panicIf(unit >= numUnits_, "cycle accounting: bad unit");
    panicIf(inCycle_, "recordSkippedIdle inside an open cycle");
    final_[unit][size_t(CycleCat::kIdle)] += n;
}

void
CycleAccounting::endCycle()
{
    panicIf(!inCycle_, "endCycle without beginCycle");
    inCycle_ = false;
    for (unsigned u = 0; u < numUnits_; ++u) {
        if (accountedGen_[u] != gen_)
            final_[u][size_t(CycleCat::kIdle)] += 1;
    }
}

void
CycleAccounting::commitTask(unsigned unit)
{
    panicIf(unit >= numUnits_, "cycle accounting: bad unit");
    Counts &p = pending_[unit];
    Counts &f = final_[unit];
    for (size_t c = 0; c < kNumCycleCats; ++c) {
        f[c] += p[c];
        p[c] = 0;
    }
}

void
CycleAccounting::squashTask(unsigned unit)
{
    panicIf(unit >= numUnits_, "cycle accounting: bad unit");
    Counts &p = pending_[unit];
    std::uint64_t wasted = 0;
    for (size_t c = 0; c < kNumCycleCats; ++c) {
        wasted += p[c];
        p[c] = 0;
    }
    final_[unit][size_t(CycleCat::kSquashed)] += wasted;
}

CycleAccountingResult
CycleAccounting::finish(Cycle cycles_simulated) const
{
    panicIf(inCycle_, "finish inside an open cycle");
    CycleAccountingResult out;
    out.numUnits = numUnits_;
    out.perUnit.resize(numUnits_);
    for (unsigned u = 0; u < numUnits_; ++u) {
        for (size_t c = 0; c < kNumCycleCats; ++c) {
            panicIf(pending_[u][c] != 0,
                    "cycle accounting finished with pending counts on "
                    "unit ", u, " (unresolved task fate)");
            out.perUnit[u][c] = final_[u][c];
            out.total[c] += final_[u][c];
        }
    }
    panicIf(out.sum() != std::uint64_t(cycles_simulated) * numUnits_,
            "cycle accounting invariant broken: categories sum to ",
            out.sum(), " but ", cycles_simulated, " cycles x ",
            numUnits_, " units = ",
            std::uint64_t(cycles_simulated) * numUnits_);
    return out;
}

void
CycleAccounting::exportStats(StatGroup &group) const
{
    for (unsigned u = 0; u < numUnits_; ++u) {
        const std::string dist = "pu" + std::to_string(u);
        for (size_t c = 0; c < kNumCycleCats; ++c) {
            group.addToDist(dist, cycleCatName(CycleCat(c)),
                            final_[u][c] + pending_[u][c]);
        }
    }
}

} // namespace msim
