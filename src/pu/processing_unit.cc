#include "pu/processing_unit.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim {

namespace {

using isa::FuKind;
using isa::InstClass;
using isa::Instruction;
using isa::Opcode;
using isa::RegValue;
using isa::StopKind;

using isa::destOf;
using isa::sourcesOf;

/** Does this instruction act as an issue barrier (control/syscall)? */
bool
isBarrier(const Instruction &inst)
{
    return inst.isControlOp() || inst.cls() == InstClass::kSyscall;
}

} // namespace

ProcessingUnit::ProcessingUnit(unsigned id, const PuConfig &config,
                               PuContext &ctx, StatGroup &stats,
                               CycleAccounting *acct, Tracer *tracer)
    : id_(id), config_(config), ctx_(ctx), stats_(stats), acct_(acct),
      tracer_(tracer),
      occupancyName_("pu" + std::to_string(id) + ".occupancy")
{
    fatalIf(config.issueWidth == 0 || config.issueWidth > 2,
            "issue width must be 1 or 2");
    fatalIf(config.windowSize == 0, "window size must be positive");
    if (config.intraBranchPredict)
        branchTable_.assign(config.branchPredictorEntries,
                            SatCounter(2, 1));
    fetchBuf_.reserve(config.fetchBufferSize);
    window_.reserve(config.windowSize);
}

void
ProcessingUnit::assignTask(TaskSeq seq, Addr start_pc,
                           const RegMask &create_mask,
                           const RegMask &busy_mask,
                           const RegValue *init_regs,
                           const TaskSeq *expected_producers)
{
    panicIf(status_ != Status::kFree, "assignTask to a busy unit");
    panicIf(!busy_mask.empty() && !expected_producers,
            "reserved registers need expected producers");
    activity_ = true;
    seq_ = seq;
    createMask_ = create_mask;
    forwardedMask_ = RegMask();
    exitTarget_ = 0;
    taskStats_ = TaskStats{};
    for (int r = 0; r < kNumRegs; ++r) {
        RegState &st = regs_[size_t(r)];
        if (init_regs)
            st.value = init_regs[r];
        st.awaitingPred = r != 0 && busy_mask.test(r);
        st.writerIssued = false;
        st.writtenWB = false;
        st.pendingWriters = 0;
        expectedProducer_[size_t(r)] =
            st.awaitingPred ? expected_producers[r] : 0;
    }
    regs_[0].value = RegValue::fromWord(0);
    window_.clear();
    fetchBuf_.clear();
    fetchPc_ = start_pc;
    fetchEnabled_ = true;
    awaitRedirect_ = false;
    pendingFetchReady_ = 0;
    status_ = Status::kRunning;
    oracleArmed_ = false;
    writtenMask_ = RegMask();
    explicitFwdMask_ = RegMask();
    stats_.add("tasksAssigned");
}

void
ProcessingUnit::setWriteOracle(const RegMask &may_write,
                               const RegMask &may_forward)
{
    panicIf(status_ == Status::kFree,
            "setWriteOracle needs an assigned task");
    oracleArmed_ = true;
    oracleMayWrite_ = may_write;
    oracleMayForward_ = may_forward;
}

TaskStats
ProcessingUnit::flush()
{
    activity_ = true;
    TaskStats out = taskStats_;
    window_.clear();
    fetchBuf_.clear();
    pendingFetchReady_ = 0;
    awaitRedirect_ = false;
    fetchEnabled_ = false;
    status_ = Status::kFree;
    stats_.add("tasksSquashed");
    return out;
}

TaskStats
ProcessingUnit::retire()
{
    panicIf(status_ != Status::kDone, "retire of a non-done unit");
    if (oracleArmed_) {
        // The task ran to completion on the correct path: everything
        // it did must have been foreseen by the static analysis.
        const RegMask wrote = writtenMask_ - oracleMayWrite_;
        panicIf(!wrote.empty(),
                "write-set oracle: unit ", id_, " wrote {",
                wrote.toString(),
                "} outside the static may-write set {",
                oracleMayWrite_.toString(), "}");
        const RegMask fwd = explicitFwdMask_ - oracleMayForward_;
        panicIf(!fwd.empty(),
                "write-set oracle: unit ", id_,
                " explicitly forwarded {", fwd.toString(),
                "} outside the static forward-point set {",
                oracleMayForward_.toString(), "}");
    }
    activity_ = true;
    TaskStats out = taskStats_;
    status_ = Status::kFree;
    stats_.add("tasksRetired");
    return out;
}

std::array<RegValue, kNumRegs>
ProcessingUnit::regValues() const
{
    std::array<RegValue, kNumRegs> out;
    for (int r = 0; r < kNumRegs; ++r)
        out[size_t(r)] = regs_[size_t(r)].value;
    return out;
}

void
ProcessingUnit::deliverForward(RegIndex reg, RegValue value,
                               TaskSeq producer)
{
    if (status_ == Status::kFree || reg <= 0 || reg >= kNumRegs)
        return;
    RegState &st = regs_[size_t(reg)];
    if (!st.awaitingPred)
        return;
    if (producer != expectedProducer_[size_t(reg)])
        return;  // from a farther or stale producer; ignore
    activity_ = true;
    // A local write shadows the incoming (logically older) value.
    if (!st.writerIssued && !st.writtenWB)
        st.value = value;
    st.awaitingPred = false;
}

bool
ProcessingUnit::regReadReady(RegIndex reg) const
{
    if (reg <= 0 || reg >= kNumRegs)
        return true;
    const RegState &st = regs_[size_t(reg)];
    if (st.pendingWriters > 0)
        return false;
    return !st.awaitingPred || st.writtenWB;
}

RegValue
ProcessingUnit::regRead(RegIndex reg) const
{
    if (reg <= 0 || reg >= kNumRegs)
        return RegValue::fromWord(0);
    return regs_[size_t(reg)].value;
}

void
ProcessingUnit::noteIssueDest(RegIndex reg)
{
    if (reg <= 0 || reg >= kNumRegs)
        return;
    RegState &st = regs_[size_t(reg)];
    ++st.pendingWriters;
    st.writerIssued = true;
}

void
ProcessingUnit::forwardValue(RegIndex reg, RegValue value)
{
    if (reg <= 0 || reg >= kNumRegs)
        return;
    if (forwardedMask_.test(reg))
        return;  // a value is sent at most once per task
    panicIf(!createMask_.test(reg),
            "unit ", id_, " forwards ", isa::regName(reg),
            " which is not in the task's create mask");
    activity_ = true;
    forwardedMask_.set(reg);
    forwardedValues_[size_t(reg)] = value;
    ctx_.forwardReg(id_, reg, value);
    stats_.add("forwards");
}

bool
ProcessingUnit::predictTaken(const Instruction &inst, Addr pc) const
{
    if (inst.isJump() || inst.isAlwaysTaken())
        return true;
    if (inst.isNeverTaken())
        return false;
    switch (inst.tags.stop) {
      case StopKind::kIfTaken:
        return false;  // common case: stay in the task
      case StopKind::kIfNotTaken:
        return true;   // common case: stay in the task
      default:
        break;
    }
    if (config_.intraBranchPredict && !branchTable_.empty()) {
        const auto &ctr =
            branchTable_[size_t(pc / kInstrBytes) % branchTable_.size()];
        return ctr.taken();
    }
    // Static: backward taken, forward not taken.
    return inst.target <= pc;
}

void
ProcessingUnit::trainBranch(Addr pc, bool taken)
{
    if (!config_.intraBranchPredict || branchTable_.empty())
        return;
    auto &ctr =
        branchTable_[size_t(pc / kInstrBytes) % branchTable_.size()];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
ProcessingUnit::flushYounger(size_t index)
{
    for (size_t i = index + 1; i < window_.size(); ++i) {
        panicIf(window_[i].issued && !window_[i].done,
                "flushing an in-flight younger instruction");
    }
    window_.truncate(index + 1);
    fetchBuf_.clear();
    pendingFetchReady_ = 0;
}

void
ProcessingUnit::exitTask(Addr successor)
{
    panicIf(status_ != Status::kRunning, "task exit while not running");
    status_ = Status::kExited;
    exitTarget_ = successor;
    fetchEnabled_ = false;
    awaitRedirect_ = false;
    fetchBuf_.clear();
    pendingFetchReady_ = 0;
    ctx_.taskExited(id_, successor);
}

void
ProcessingUnit::resolveBranch(Slot &slot, size_t index, Cycle now)
{
    (void)now;
    const Instruction &inst = *slot.inst;
    const bool taken = slot.branch.taken;
    const Addr fallthrough = slot.pc + kInstrBytes;
    const Addr next = taken ? slot.branch.target : fallthrough;

    if (inst.isCondBranch())
        trainBranch(slot.pc, taken);

    const StopKind stop = inst.tags.stop;
    const bool exits = stop == StopKind::kAlways ||
                       (stop == StopKind::kIfTaken && taken) ||
                       (stop == StopKind::kIfNotTaken && !taken);
    if (exits) {
        flushYounger(index);
        exitTask(next);
        return;
    }

    if (inst.op == Opcode::kJr || inst.op == Opcode::kJalr) {
        // Fetch was stalled on this unknown target.
        awaitRedirect_ = false;
        flushYounger(index);
        fetchPc_ = next;
        fetchEnabled_ = true;
        return;
    }
    if (taken != slot.predTaken) {
        stats_.add("branchMispredicts");
        flushYounger(index);
        awaitRedirect_ = false;  // any younger jr was just flushed
        fetchPc_ = next;
        fetchEnabled_ = true;
    }
}

void
ProcessingUnit::writeback(const Slot &slot)
{
    const Instruction &inst = *slot.inst;
    const RegIndex dest = destOf(inst);
    if (dest > 0 && dest < kNumRegs) {
        RegState &st = regs_[size_t(dest)];
        st.value = slot.result;
        panicIf(st.pendingWriters == 0, "writeback without pending writer");
        --st.pendingWriters;
        st.writtenWB = true;
        writtenMask_.set(dest);
    }
    if (inst.tags.forward) {
        panicIf(dest == kNoReg,
                "forward bit on an instruction with no destination");
        if (dest > 0) {
            explicitFwdMask_.set(dest);
            forwardValue(dest, slot.result);
        }
    }
    taskStats_.instructions += 1;
    stats_.add("instructions");
}

void
ProcessingUnit::completePhase(Cycle now)
{
    for (size_t i = 0; i < window_.size(); ++i) {
        Slot &slot = window_[i];
        if (!slot.issued || slot.done || slot.doneAt > now)
            continue;
        slot.done = true;
        activity_ = true;
        writeback(slot);
        const Instruction &inst = *slot.inst;
        if (inst.isControlOp()) {
            resolveBranch(slot, i, now);
            if (status_ != Status::kRunning)
                break;
        } else if (inst.tags.stop == StopKind::kAlways) {
            flushYounger(i);
            exitTask(slot.pc + kInstrBytes);
            break;
        }
    }
    // Pop completed instructions from the window head.
    while (!window_.empty() && window_.front().done)
        window_.pop_front();
}

bool
ProcessingUnit::slotReady(const Slot &slot, size_t index, Cycle now) const
{
    (void)now;
    const Instruction &inst = *slot.inst;

    // Operand readiness.
    RegIndex srcs[4];
    const unsigned nsrc = sourcesOf(inst, srcs);
    for (unsigned s = 0; s < nsrc; ++s) {
        if (!regReadReady(srcs[s]))
            return false;
    }

    const RegIndex dest = destOf(inst);
    if (dest > 0 && dest < kNumRegs &&
        regs_[size_t(dest)].pendingWriters > 0)
        return false;  // WAW against an in-flight writer

    // Memory operations issue in program order among themselves.
    if (inst.isMemOp()) {
        for (size_t j = 0; j < index; ++j) {
            if (!window_[j].issued && window_[j].inst->isMemOp())
                return false;
        }
    }

    // Syscalls execute only as the oldest instruction, at the head.
    if (inst.cls() == InstClass::kSyscall) {
        if (index != 0)
            return false;
        if (!ctx_.syscallAllowed(id_))
            return false;
    }

    if (config_.outOfOrder) {
        // Scoreboard hazards against older, un-issued instructions.
        for (size_t j = 0; j < index; ++j) {
            const Slot &older = window_[j];
            if (older.issued)
                continue;
            const Instruction &oinst = *older.inst;
            const RegIndex odest = destOf(oinst);
            // RAW: older writes one of our sources.
            for (unsigned s = 0; s < nsrc; ++s) {
                if (odest != kNoReg && odest == srcs[s])
                    return false;
            }
            // WAR / WAW: older reads or writes our destination.
            if (dest != kNoReg) {
                if (odest == dest)
                    return false;
                RegIndex osrcs[4];
                const unsigned on = sourcesOf(oinst, osrcs);
                for (unsigned s = 0; s < on; ++s) {
                    if (osrcs[s] == dest)
                        return false;
                }
            }
        }
    }
    return true;
}

bool
ProcessingUnit::tryIssue(Slot &slot, Cycle now)
{
    const Instruction &inst = *slot.inst;
    const InstClass cls = inst.cls();
    const FuKind fu = isa::fuKind(cls);

    // Pipelined FUs: per-cycle acceptance capacity.
    const unsigned capacity =
        fu == FuKind::kSimpleInt ? config_.numSimpleIntFus() : 1;
    if (fuAccepts_[size_t(fu)] >= capacity)
        return false;

    const RegValue rs_val = regRead(inst.rs);
    const RegValue rt_val = regRead(inst.rt);

    switch (cls) {
      case InstClass::kLoad: {
        const Addr addr = isa::memAddr(inst, rs_val);
        const unsigned size = isa::memSize(inst.op);
        if (!ctx_.memHasSpace(id_, addr, size, true))
            return false;
        const std::uint64_t raw = ctx_.memLoad(id_, addr, size);
        slot.result = isa::loadResult(inst.op, raw);
        slot.doneAt = ctx_.dcacheAccess(id_, now + 1, addr, false);
        break;
      }
      case InstClass::kStore: {
        const Addr addr = isa::memAddr(inst, rs_val);
        const unsigned size = isa::memSize(inst.op);
        if (!ctx_.memHasSpace(id_, addr, size, false))
            return false;
        ctx_.memStore(id_, addr, size,
                      isa::storeBytes(inst.op, rt_val));
        ctx_.dcacheAccess(id_, now + 1, addr, true);
        slot.doneAt = now + 1;
        break;
      }
      case InstClass::kBranch:
        slot.branch = isa::evalBranch(inst, rs_val, rt_val);
        if (inst.op == Opcode::kJal || inst.op == Opcode::kJalr)
            slot.result = isa::evalAlu(inst, rs_val, rt_val, slot.pc);
        slot.doneAt = now + 1;
        break;
      case InstClass::kSyscall:
        slot.result = ctx_.doSyscall(
            id_, regRead(isa::intReg(isa::kRegV0)),
            regRead(isa::intReg(isa::kRegA0)),
            regRead(isa::intReg(isa::kRegA1)));
        slot.doneAt = now + 1;
        break;
      case InstClass::kRelease:
        if (inst.rs > 0) {
            explicitFwdMask_.set(inst.rs);
            forwardValue(inst.rs, regRead(inst.rs));
        }
        if (inst.rel2 > 0) {
            explicitFwdMask_.set(inst.rel2);
            forwardValue(inst.rel2, regRead(inst.rel2));
        }
        slot.doneAt = now + 1;
        stats_.add("releases");
        break;
      case InstClass::kNop:
        slot.doneAt = now + 1;
        break;
      default:
        slot.result = isa::evalAlu(inst, rs_val, rt_val, slot.pc);
        slot.doneAt = now + isa::execLatency(cls);
        break;
    }

    slot.issued = true;
    fuAccepts_[size_t(fu)] += 1;
    noteIssueDest(destOf(inst));
    return true;
}

unsigned
ProcessingUnit::issuePhase(Cycle now)
{
    unsigned issued = 0;
    for (size_t i = 0; i < window_.size() && issued < config_.issueWidth;
         ++i) {
        Slot &slot = window_[i];
        if (slot.done)
            continue;
        if (slot.issued) {
            // No issue past an unresolved branch or syscall.
            if (isBarrier(*slot.inst))
                break;
            continue;
        }
        if (slotReady(slot, i, now) && tryIssue(slot, now)) {
            ++issued;
            if (isBarrier(*slot.inst))
                break;
            continue;
        }
        // In-order issue stalls at the first non-ready instruction;
        // out-of-order may look further (but never past a barrier).
        if (!config_.outOfOrder)
            break;
        if (isBarrier(*slot.inst))
            break;
    }
    return issued;
}

void
ProcessingUnit::dispatchPhase(Cycle now)
{
    if (status_ != Status::kRunning)
        return;
    unsigned moved = 0;
    while (!fetchBuf_.empty() && moved < config_.issueWidth &&
           window_.size() < config_.windowSize &&
           fetchBuf_.front().readyAt <= now) {
        const Fetched &f = fetchBuf_.front();
        Slot slot;
        slot.inst = f.inst;
        slot.pc = f.pc;
        slot.predTaken = f.predTaken;
        window_.push_back(slot);
        fetchBuf_.pop_front();
        ++moved;
    }
    if (moved > 0)
        activity_ = true;
}

void
ProcessingUnit::fetchPhase(Cycle now)
{
    if (status_ != Status::kRunning || !fetchEnabled_ || awaitRedirect_)
        return;
    if (fetchBuf_.size() + config_.issueWidth > config_.fetchBufferSize)
        return;

    if (pendingFetchReady_ != 0) {
        if (now < pendingFetchReady_)
            return;  // icache miss still outstanding (quiescent)
        pendingFetchReady_ = 0;
        activity_ = true;
    } else {
        const Cycle ready = ctx_.icacheAccess(id_, now, fetchPc_);
        activity_ = true;
        if (ready > now + 1) {
            pendingFetchReady_ = ready;
            return;
        }
    }

    // Deliver up to issueWidth sequential instructions.
    for (unsigned k = 0; k < config_.issueWidth; ++k) {
        const Instruction *inst = ctx_.instrAt(fetchPc_);
        if (!inst) {
            // Ran off the program text (wrong path); stop fetching.
            fetchEnabled_ = false;
            stats_.add("fetchOffText");
            return;
        }
        Fetched f;
        f.inst = inst;
        f.pc = fetchPc_;
        f.readyAt = now + 1;
        f.predTaken = false;

        bool break_group = false;
        if (inst->isJump()) {
            f.predTaken = true;
            if (inst->op == Opcode::kJ || inst->op == Opcode::kJal) {
                fetchPc_ = inst->target;
            } else {
                awaitRedirect_ = true;  // jr/jalr: wait for resolve
            }
            break_group = true;
        } else if (inst->isCondBranch()) {
            f.predTaken = predictTaken(*inst, fetchPc_);
            if (f.predTaken) {
                fetchPc_ = inst->target;
                break_group = true;
            } else {
                fetchPc_ += kInstrBytes;
            }
        } else {
            fetchPc_ += kInstrBytes;
        }
        if (inst->tags.stop == StopKind::kAlways) {
            // Nothing of this task lies beyond a stop-always point.
            fetchEnabled_ = false;
            break_group = true;
        }
        fetchBuf_.push_back(f);
        if (break_group)
            break;
    }
}

void
ProcessingUnit::autoReleasePhase()
{
    if (status_ != Status::kExited)
        return;
    if (!window_.empty())
        return;  // older instructions may still write create-mask regs
    RegMask remaining = createMask_ - forwardedMask_;
    for (int r = 1; r < kNumRegs; ++r) {
        if (!remaining.test(r))
            continue;
        if (regReadReady(RegIndex(r))) {
            forwardValue(RegIndex(r), regRead(RegIndex(r)));
            stats_.add("implicitReleases");
        }
    }
    maybeFinish();
}

bool
ProcessingUnit::anyInFlight() const
{
    for (size_t i = 0; i < window_.size(); ++i) {
        const Slot &slot = window_[i];
        if (slot.issued && !slot.done)
            return true;
    }
    return false;
}

void
ProcessingUnit::maybeFinish()
{
    if (status_ != Status::kExited)
        return;
    if (!window_.empty())
        return;
    if (!(createMask_ - forwardedMask_).empty())
        return;
    status_ = Status::kDone;
}

bool
ProcessingUnit::memOpInFlight() const
{
    for (size_t i = 0; i < window_.size(); ++i) {
        const Slot &slot = window_[i];
        if (slot.issued && !slot.done && slot.inst->isMemOp())
            return true;
    }
    return false;
}

/**
 * Classify what this (non-free, zero-issue unless busy) cycle was
 * spent on. The refinement over the legacy CycleBreakdown is the
 * memory-wait category: a stall whose oldest obstacle is a memory
 * operation (in flight in the dcache, or retrying against a full
 * ARB) is distinguished from generic intra-task latency.
 */
CycleCat
ProcessingUnit::classifyCycle(unsigned issued_count) const
{
    if (issued_count > 0)
        return CycleCat::kBusy;
    if (status_ == Status::kDone)
        return CycleCat::kRetireWait;
    if (status_ == Status::kExited && window_.empty())
        return CycleCat::kRetireWait;

    // Attribute the stall to the oldest un-issued instruction.
    const Slot *oldest = nullptr;
    for (size_t i = 0; i < window_.size(); ++i) {
        if (!window_[i].issued) {
            oldest = &window_[i];
            break;
        }
    }
    if (!oldest) {
        if (memOpInFlight())
            return CycleCat::kMemWait;
        if (anyInFlight())
            return CycleCat::kIntraWait;
        return status_ == Status::kRunning ? CycleCat::kFetchStall
                                           : CycleCat::kRetireWait;
    }
    RegIndex srcs[4];
    const unsigned nsrc = sourcesOf(*oldest->inst, srcs);
    for (unsigned s = 0; s < nsrc; ++s) {
        const RegIndex r = srcs[s];
        if (r > 0 && r < kNumRegs) {
            const RegState &st = regs_[size_t(r)];
            if (st.awaitingPred && !st.writtenWB &&
                st.pendingWriters == 0) {
                return CycleCat::kRingWait;
            }
        }
    }
    if (oldest->inst->isMemOp() || memOpInFlight())
        return CycleCat::kMemWait;
    return CycleCat::kIntraWait;
}

void
ProcessingUnit::addToBreakdown(CycleCat cat, std::uint64_t n)
{
    // Legacy per-task breakdown (kRingWait maps to waitPred; both
    // memory and generic latency stalls fold into waitIntra).
    CycleBreakdown &cb = taskStats_.cycles;
    switch (cat) {
      case CycleCat::kBusy:
        cb.busy += n;
        break;
      case CycleCat::kRingWait:
        cb.waitPred += n;
        break;
      case CycleCat::kMemWait:
      case CycleCat::kIntraWait:
        cb.waitIntra += n;
        break;
      case CycleCat::kFetchStall:
        cb.fetchStall += n;
        break;
      default:
        cb.waitRetire += n;
        break;
    }
}

void
ProcessingUnit::accountCycle(Cycle now, unsigned issued_count)
{
    (void)now;
    if (status_ == Status::kFree)
        return;
    const CycleCat cat = classifyCycle(issued_count);
    if (acct_)
        acct_->recordPending(id_, cat);
    addToBreakdown(cat, 1);
}

void
ProcessingUnit::accountSkippedCycles(std::uint64_t n)
{
    if (status_ == Status::kFree) {
        // Idle cycles belong to no task; they go straight to the
        // accounting's final counts (the endCycle default).
        if (acct_)
            acct_->recordSkippedIdle(id_, n);
        return;
    }
    // During a skipped span the unit's state does not change (the
    // run loop proved no completion, fetch, dispatch, issue or
    // delivery can happen before the next event), so every skipped
    // cycle classifies exactly as the current state with zero issues.
    const CycleCat cat = classifyCycle(0);
    if (acct_)
        acct_->recordSkipped(id_, cat, n);
    addToBreakdown(cat, n);
}

Cycle
ProcessingUnit::nextEventCycle(Cycle now) const
{
    if (status_ == Status::kFree)
        return kCycleNever;
    const Cycle soon = now + 1;
    Cycle next = kCycleNever;
    // Walk the window exactly like issuePhase: only slots the issue
    // logic can actually reach count as potential issue events. An
    // unreachable ready slot (past an in-order stall or a barrier)
    // cannot act before one of the in-flight completions below.
    bool issue_blocked = false;
    for (size_t i = 0; i < window_.size(); ++i) {
        const Slot &slot = window_[i];
        if (slot.done)
            continue;
        if (slot.issued) {
            // In-flight work completes at a known cycle.
            if (slot.doneAt < next)
                next = slot.doneAt;
            if (isBarrier(*slot.inst))
                issue_blocked = true;  // no issue past it until done
            continue;
        }
        if (!issue_blocked && slotReady(slot, i, now)) {
            // Operand-ready and reachable (held back only by issue
            // width, FU capacity, memory ordering retry, or a full
            // ARB): it may issue next cycle. Conservative — never
            // skip while anything could issue.
            return soon;
        }
        // Non-ready: in-order issue looks no further; out-of-order
        // continues, but never past a barrier.
        if (!config_.outOfOrder || isBarrier(*slot.inst))
            issue_blocked = true;
    }
    if (status_ == Status::kRunning) {
        // Dispatch: decoded instructions move into a non-full window.
        if (!fetchBuf_.empty() && window_.size() < config_.windowSize) {
            const Cycle ready = fetchBuf_.front().readyAt;
            next = std::min(next, ready > soon ? ready : soon);
        }
        // Fetch: either an icache miss resolves at a known cycle, or
        // the icache would be accessed (a side effect) next cycle.
        if (fetchEnabled_ && !awaitRedirect_ &&
            fetchBuf_.size() + config_.issueWidth <=
                config_.fetchBufferSize) {
            if (pendingFetchReady_ != 0)
                next = std::min(next, pendingFetchReady_ > soon
                                          ? pendingFetchReady_
                                          : soon);
            else
                return soon;
        }
    }
    return next;
}

void
ProcessingUnit::tick(Cycle now)
{
    activity_ = false;
    if (status_ == Status::kFree) {
        return;
    }
    fuAccepts_.fill(0);
    completePhase(now);
    unsigned issued = 0;
    if (status_ == Status::kRunning || status_ == Status::kExited)
        issued = issuePhase(now);
    if (issued > 0)
        activity_ = true;
    dispatchPhase(now);
    fetchPhase(now);
    // Pop instructions completed by this cycle's issue+complete.
    while (!window_.empty() && window_.front().done) {
        window_.pop_front();
        activity_ = true;
    }
    autoReleasePhase();
    maybeFinish();
    accountCycle(now, issued);
    if (tracer_ && tracer_->wants(TraceCat::kPu)) {
        tracer_->counter(TraceCat::kPu, occupancyName_, now, id_,
                         "window", window_.size(), "issued", issued);
    }
}

} // namespace msim
