/**
 * @file
 * Per-unit pipeline configuration (paper section 5.1): a traditional
 * five-stage pipeline (IF/ID/EX/MEM/WB) configurable with
 * in-order/out-of-order and 1-way/2-way issue, completing out of
 * order, with pipelined functional units (1 or 2 simple integer, 1
 * complex integer, 1 FP, 1 branch, 1 memory).
 */

#ifndef MSIM_PU_PU_CONFIG_HH
#define MSIM_PU_PU_CONFIG_HH

namespace msim {

/** Configuration of one processing unit. */
struct PuConfig
{
    /** Instructions issued per cycle (1 or 2). */
    unsigned issueWidth = 1;
    /** Out-of-order issue from a small window (scoreboarded). */
    bool outOfOrder = false;
    /** Issue window capacity. */
    unsigned windowSize = 16;
    /** Fetch buffer capacity (decoded, pre-dispatch). */
    unsigned fetchBufferSize = 8;
    /**
     * Optional per-unit bimodal predictor for intra-task branches.
     * It steers fetch only; issue always waits for branch resolution,
     * so it removes taken-branch fetch bubbles without needing
     * register state recovery. Off in the paper-faithful baseline.
     */
    bool intraBranchPredict = false;
    /** Entries in the intra-unit bimodal predictor. */
    unsigned branchPredictorEntries = 512;

    /** Number of simple integer FUs (paper: matches issue width). */
    unsigned
    numSimpleIntFus() const
    {
        return issueWidth >= 2 ? 2 : 1;
    }
};

} // namespace msim

#endif // MSIM_PU_PU_CONFIG_HH
