/**
 * @file
 * One multiscalar processing unit (paper Figure 1): a five-stage
 * pipeline that independently fetches and executes the instructions
 * of its assigned task until it encounters an instruction whose stop
 * condition is satisfied.
 *
 * The unit owns a private copy of the register file. Reservations
 * (from the accum mask, the union of active predecessors' pending
 * create masks) mark registers whose values will arrive over the
 * unidirectional ring; instructions that need them wait. Values the
 * task produces are sent to successors when an instruction tagged
 * with the forward bit writes them, when a release instruction
 * releases them, or — for any register in the create mask not yet
 * sent — automatically when the task completes.
 *
 * Issue models:
 *  - in-order: instructions issue from the window head in program
 *    order, stalling on the first non-ready instruction;
 *  - out-of-order: a scoreboarded window issues any ready
 *    instruction oldest-first, with WAW/WAR stalls, in-order issue
 *    among memory operations, and no issue past an unresolved
 *    branch or syscall (so no register state ever needs rollback).
 * Both complete out of order (paper section 5.1).
 *
 * Intra-task branches resolve one cycle after issue. Fetch follows a
 * static policy (stop-bit aware: backward taken / forward not-taken,
 * !st not-taken, !sn taken) or an optional bimodal predictor; either
 * way mispredicted fetch directions only cost flushed fetches, never
 * executed instructions.
 */

#ifndef MSIM_PU_PROCESSING_UNIT_HH
#define MSIM_PU_PROCESSING_UNIT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/fifo.hh"
#include "common/reg_mask.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "pu/pu_config.hh"
#include "pu/pu_context.hh"
#include "trace/cycle_accounting.hh"
#include "trace/tracer.hh"

namespace msim {

/** Where a unit's cycles go (paper section 3 accounting). */
struct CycleBreakdown
{
    std::uint64_t busy = 0;        //!< issued at least one instruction
    std::uint64_t waitPred = 0;    //!< stalled on a predecessor value
    std::uint64_t waitIntra = 0;   //!< stalled on intra-task latency
    std::uint64_t fetchStall = 0;  //!< window empty (icache, redirect)
    std::uint64_t waitRetire = 0;  //!< task done, waiting to retire

    std::uint64_t
    total() const
    {
        return busy + waitPred + waitIntra + fetchStall + waitRetire;
    }

    CycleBreakdown &
    operator+=(const CycleBreakdown &o)
    {
        busy += o.busy;
        waitPred += o.waitPred;
        waitIntra += o.waitIntra;
        fetchStall += o.fetchStall;
        waitRetire += o.waitRetire;
        return *this;
    }
};

/** Counters for one task execution, folded at retire or squash. */
struct TaskStats
{
    std::uint64_t instructions = 0;
    CycleBreakdown cycles;
};

/** A single processing unit. */
class ProcessingUnit
{
  public:
    enum class Status : std::uint8_t {
        kFree,     //!< no assigned task
        kRunning,  //!< fetching/executing its task
        kExited,   //!< stop resolved; draining in-flight work
        kDone,     //!< everything complete; awaiting retirement
    };

    /**
     * @param acct Optional cycle-accounting sink; every tick of an
     *        assigned task records one pending category for this
     *        unit's id.
     * @param tracer Optional event tracer (occupancy counters).
     */
    ProcessingUnit(unsigned id, const PuConfig &config, PuContext &ctx,
                   StatGroup &stats, CycleAccounting *acct = nullptr,
                   Tracer *tracer = nullptr);

    /**
     * Assign a task (or, for the scalar baseline, the whole program).
     *
     * @param seq Task sequence number.
     * @param start_pc First instruction.
     * @param create_mask Registers this task may produce.
     * @param busy_mask Registers whose values are still to arrive
     *        from predecessors (reservations).
     * @param init_regs Initial register values (64 entries), or
     *        nullptr to keep the unit's current values.
     * @param expected_producers For each reserved register, the task
     *        sequence number of the nearest active predecessor that
     *        will supply it (ring deliveries from any other producer
     *        are ignored — in hardware those messages are consumed
     *        earlier on the ring). May be nullptr when busy_mask is
     *        empty.
     */
    void assignTask(TaskSeq seq, Addr start_pc,
                    const RegMask &create_mask, const RegMask &busy_mask,
                    const isa::RegValue *init_regs,
                    const TaskSeq *expected_producers = nullptr);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * The earliest cycle after @p now at which this unit's tick
     * could do anything beyond re-recording the same stall category
     * — i.e. the unit's next event, assuming no external input (no
     * ring delivery, no head change) arrives in between. Querying is
     * side-effect free; call it after tick(now). Returns kCycleNever
     * when only external input can wake the unit (or it is free).
     *
     * The run loop may skip straight to the minimum next event over
     * all components; accountSkippedCycles() settles the books for
     * the skipped span. See DESIGN.md "Quiescence & fast-forward".
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * @return true when the last tick changed no unit state (and no
     * external call — delivery, assignment, squash — arrived since).
     * Cheap pre-filter for nextEventCycle(): a unit with activity
     * may act again next cycle, so a scan would be wasted.
     */
    bool quiescentLastTick() const { return !activity_; }

    /**
     * Account @p n fast-forwarded cycles: the run loop proved that
     * each of them would have recorded exactly the stall category
     * classifyCycle(0) yields on the current (unchanging) state, or
     * idle when the unit is free. Updates the exact CycleAccounting
     * and the legacy per-task breakdown identically to @p n ticks.
     */
    void accountSkippedCycles(std::uint64_t n);

    /**
     * Squash: discard all task state.
     * @return the task's counters (squashed work).
     */
    TaskStats flush();

    /**
     * Retire the (done) task at the head.
     * @return the task's counters (useful work).
     */
    TaskStats retire();

    /** A register value arriving over the ring from @p producer. */
    void deliverForward(RegIndex reg, isa::RegValue value,
                        TaskSeq producer);

    /**
     * Arm the dynamic write-set oracle for the current task: at
     * retire, the registers the task actually wrote must be
     * contained in @p may_write and the registers it explicitly
     * forwarded (!f or release) in @p may_forward, both computed by
     * the static annotation verifier (src/analysis/). A violation
     * means the static analysis or the pipeline operand model is
     * unsound, so it panics. Call after assignTask(); assigning the
     * next task disarms the oracle. Squashed tasks are not checked:
     * a wrong-path task can take a jr through a garbage register
     * value and execute instructions the static walk never maps to
     * this task.
     */
    void setWriteOracle(const RegMask &may_write,
                        const RegMask &may_forward);

    Status status() const { return status_; }
    bool isFree() const { return status_ == Status::kFree; }
    bool isDone() const { return status_ == Status::kDone; }
    TaskSeq seq() const { return seq_; }
    unsigned id() const { return id_; }

    /** Registers already sent to successors this task. */
    const RegMask &forwardedMask() const { return forwardedMask_; }

    /** The value that was forwarded for @p reg (it must have been). */
    isa::RegValue
    forwardedValue(RegIndex reg) const
    {
        panicIf(!forwardedMask_.test(reg),
                "forwardedValue of an unforwarded register");
        return forwardedValues_[size_t(reg)];
    }

    /** This task's create mask. */
    const RegMask &createMask() const { return createMask_; }

    /** Current register values (64), e.g. to seed a successor. */
    std::array<isa::RegValue, kNumRegs> regValues() const;

    /** Actual successor address; valid once status >= kExited. */
    Addr exitTarget() const { return exitTarget_; }
    bool hasExited() const
    {
        return status_ == Status::kExited || status_ == Status::kDone;
    }

    /** Counters of the task currently in flight. */
    const TaskStats &currentTaskStats() const { return taskStats_; }

  private:
    /** Per-register scoreboard state. */
    struct RegState
    {
        isa::RegValue value;
        bool awaitingPred = false;  //!< reservation on the ring
        bool writerIssued = false;  //!< a local writer has issued
        bool writtenWB = false;     //!< a local writer has written back
        std::uint8_t pendingWriters = 0;
    };

    /** A fetched, decoded instruction awaiting dispatch. */
    struct Fetched
    {
        const isa::Instruction *inst;
        Addr pc;
        Cycle readyAt;       //!< decode complete
        bool predTaken;      //!< fetch direction assumed
    };

    /** An instruction in the issue window. */
    struct Slot
    {
        const isa::Instruction *inst = nullptr;
        Addr pc = 0;
        bool issued = false;
        bool done = false;
        Cycle doneAt = 0;
        bool predTaken = false;
        isa::RegValue result;
        isa::BranchResult branch;
    };

    // --- tick phases -------------------------------------------------
    void completePhase(Cycle now);
    unsigned issuePhase(Cycle now);
    void dispatchPhase(Cycle now);
    void fetchPhase(Cycle now);
    void autoReleasePhase();
    void accountCycle(Cycle now, unsigned issued_count);
    void addToBreakdown(CycleCat cat, std::uint64_t n);

    // --- helpers -----------------------------------------------------
    CycleCat classifyCycle(unsigned issued_count) const;
    bool memOpInFlight() const;
    bool regReadReady(RegIndex reg) const;
    isa::RegValue regRead(RegIndex reg) const;
    bool slotReady(const Slot &slot, size_t index, Cycle now) const;
    bool tryIssue(Slot &slot, Cycle now);
    void noteIssueDest(RegIndex reg);
    void writeback(const Slot &slot);
    void forwardValue(RegIndex reg, isa::RegValue value);
    void resolveBranch(Slot &slot, size_t index, Cycle now);
    void flushYounger(size_t index);
    void exitTask(Addr successor);
    bool predictTaken(const isa::Instruction &inst, Addr pc) const;
    void trainBranch(Addr pc, bool taken);
    bool anyInFlight() const;
    void maybeFinish();

    // --- identity / wiring -------------------------------------------
    unsigned id_;
    PuConfig config_;
    PuContext &ctx_;
    StatGroup &stats_;
    CycleAccounting *acct_ = nullptr;
    Tracer *tracer_ = nullptr;
    /** Stable storage for this unit's trace counter name. */
    std::string occupancyName_;

    // --- task state ---------------------------------------------------
    Status status_ = Status::kFree;
    TaskSeq seq_ = 0;
    RegMask createMask_;
    RegMask forwardedMask_;
    Addr exitTarget_ = 0;
    TaskStats taskStats_;

    // --- write-set oracle ---------------------------------------------
    bool oracleArmed_ = false;
    RegMask oracleMayWrite_;
    RegMask oracleMayForward_;
    /** Registers the current task has written back. */
    RegMask writtenMask_;
    /** Registers explicitly forwarded (!f writeback or release). */
    RegMask explicitFwdMask_;

    std::array<RegState, kNumRegs> regs_;
    std::array<TaskSeq, kNumRegs> expectedProducer_{};
    std::array<isa::RegValue, kNumRegs> forwardedValues_{};

    // --- pipeline state ------------------------------------------------
    /** Pre-sized ring buffers: no heap churn on the per-cycle path. */
    RingFifo<Fetched> fetchBuf_;
    RingFifo<Slot> window_;
    Addr fetchPc_ = 0;
    bool fetchEnabled_ = false;
    bool awaitRedirect_ = false;   //!< jr/jalr target pending
    Cycle pendingFetchReady_ = 0;  //!< icache miss outstanding
    /**
     * Did the last tick (or any external call since) change unit
     * state? The run loop only evaluates nextEventCycle() once a
     * tick passed with no activity, so busy cycles pay one flag
     * check instead of a window scan. Purely a performance gate:
     * skipping fewer cycles never changes observable timing.
     */
    bool activity_ = true;
    /** Per-cycle acceptance counters of the pipelined FUs. */
    std::array<unsigned, size_t(isa::FuKind::kNumFuKinds)> fuAccepts_{};

    /** Optional intra-unit bimodal predictor. */
    std::vector<SatCounter> branchTable_;
};

} // namespace msim

#endif // MSIM_PU_PROCESSING_UNIT_HH
