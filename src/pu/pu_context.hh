/**
 * @file
 * The environment a processing unit executes in.
 *
 * The same pipeline (ProcessingUnit) serves both the multiscalar
 * units and the scalar baseline; everything outside the unit —
 * caches, the ARB, the forwarding ring, syscalls, and the sequencer —
 * is reached through this interface. MultiscalarProcessor and
 * ScalarProcessor implement it; unit tests provide mocks.
 *
 * Reentrancy rule: callbacks invoked from inside
 * ProcessingUnit::tick() (memStore violations, taskExited, ARB space
 * exhaustion) must not synchronously squash or flush units; the
 * implementations record the event and act at the end of the cycle.
 */

#ifndef MSIM_PU_PU_CONTEXT_HH
#define MSIM_PU_PU_CONTEXT_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"

namespace msim {

/** Services a ProcessingUnit needs from the rest of the machine. */
class PuContext
{
  public:
    virtual ~PuContext() = default;

    /** @return the decoded instruction at @p pc, or nullptr. */
    virtual const isa::Instruction *instrAt(Addr pc) = 0;

    /** Time an instruction fetch; returns the data-ready cycle. */
    virtual Cycle icacheAccess(unsigned unit, Cycle now, Addr pc) = 0;

    /** Time a data access; returns the completion cycle. */
    virtual Cycle dcacheAccess(unsigned unit, Cycle now, Addr addr,
                               bool write) = 0;

    /**
     * May a memory operation proceed (ARB capacity)? Returning false
     * makes the unit retry next cycle; a squash-on-full policy frees
     * space at the end of the cycle.
     */
    virtual bool memHasSpace(unsigned unit, Addr addr, unsigned size,
                             bool is_load) = 0;

    /** Perform the functional (and ordering) part of a load. */
    virtual std::uint64_t memLoad(unsigned unit, Addr addr,
                                  unsigned size) = 0;

    /**
     * Perform the functional (and ordering) part of a store.
     * Dependence violations are detected inside and handled at the
     * end of the cycle.
     */
    virtual void memStore(unsigned unit, Addr addr, unsigned size,
                          std::uint64_t value) = 0;

    /** Send a register value to the successor units. */
    virtual void forwardReg(unsigned unit, RegIndex reg,
                            isa::RegValue value) = 0;

    /** May this unit execute a syscall now (head / non-speculative)? */
    virtual bool syscallAllowed(unsigned unit) = 0;

    /**
     * Execute a syscall. @return the value for $v0.
     * Program exit is signalled out of band by the implementation.
     */
    virtual isa::RegValue doSyscall(unsigned unit, isa::RegValue v0,
                                    isa::RegValue a0,
                                    isa::RegValue a1) = 0;

    /**
     * The unit's task has resolved its stop instruction; the actual
     * successor task starts at @p next_task. Handled at end of cycle
     * (prediction validation, possible squash).
     */
    virtual void taskExited(unsigned unit, Addr next_task) = 0;
};

} // namespace msim

#endif // MSIM_PU_PU_CONTEXT_HH
