/**
 * @file
 * An n-bit saturating counter, the building block of dynamic
 * predictors (used by the PAs task predictor and the optional
 * per-unit branch predictor).
 */

#ifndef MSIM_COMMON_SAT_COUNTER_HH
#define MSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace msim {

/** An unsigned saturating counter with a configurable bit width. */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1-8).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        panicIf(bits == 0 || bits > 8, "SatCounter bad width ", bits);
        panicIf(initial > max_, "SatCounter initial value too large");
    }

    /** Increment, saturating at the maximum value. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** @return the current counter value. */
    unsigned value() const { return value_; }

    /** @return the saturation maximum. */
    unsigned max() const { return max_; }

    /** @return true when the counter is in its upper half. */
    bool taken() const { return value_ > max_ / 2; }

    /** Reset to a specific value. */
    void
    reset(unsigned v)
    {
        panicIf(v > max_, "SatCounter reset value too large");
        value_ = v;
    }

  private:
    unsigned max_;
    unsigned value_;
};

} // namespace msim

#endif // MSIM_COMMON_SAT_COUNTER_HH
