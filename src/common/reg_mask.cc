#include "common/reg_mask.hh"

#include <sstream>

namespace msim {

std::string
RegMask::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (int r = 0; r < kNumRegs; ++r) {
        if (!test(r))
            continue;
        if (!first)
            os << ",";
        first = false;
        if (r < kNumIntRegs)
            os << "$" << r;
        else
            os << "$f" << (r - kNumIntRegs);
    }
    return os.str();
}

} // namespace msim
