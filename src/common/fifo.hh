/**
 * @file
 * A growable circular FIFO with index access and tail truncation.
 *
 * The simulation hot path (processing-unit fetch buffers and issue
 * windows, ring ports) needs queue semantics but must not pay
 * per-cycle heap churn: std::deque allocates and frees its chunk map
 * as elements cross chunk boundaries, which shows up directly in
 * simulated-cycles-per-second. RingFifo keeps one power-of-two
 * backing buffer that only ever grows, so after warmup every
 * push/pop is a couple of index operations.
 *
 * Not a general-purpose container: elements must be movable, and
 * references are invalidated by push_back (growth) like
 * std::vector's.
 */

#ifndef MSIM_COMMON_FIFO_HH
#define MSIM_COMMON_FIFO_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace msim {

/** Growable circular buffer with FIFO and random access. */
template <typename T>
class RingFifo
{
  public:
    RingFifo() = default;

    /** @param capacity Initial capacity (rounded up to a power of 2). */
    explicit RingFifo(size_t capacity) { reserve(capacity); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](size_t i)
    {
        panicIf(i >= size_, "RingFifo index out of range");
        return buf_[(head_ + i) & mask_];
    }

    const T &
    operator[](size_t i) const
    {
        panicIf(i >= size_, "RingFifo index out of range");
        return buf_[(head_ + i) & mask_];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(T value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & mask_] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        panicIf(size_ == 0, "RingFifo pop_front on empty fifo");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Drop elements from the tail until exactly @p n remain. */
    void
    truncate(size_t n)
    {
        panicIf(n > size_, "RingFifo truncate beyond size");
        size_ = n;
    }

    /** Drop all elements (keeps the backing buffer). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Ensure room for @p n elements without further allocation. */
    void
    reserve(size_t n)
    {
        size_t cap = buf_.size() ? buf_.size() : 1;
        while (cap < n)
            cap *= 2;
        if (cap != buf_.size())
            rebuild(cap);
    }

    size_t capacity() const { return buf_.size(); }

  private:
    void grow() { rebuild(buf_.empty() ? 8 : buf_.size() * 2); }

    void
    rebuild(size_t cap)
    {
        std::vector<T> next(cap);
        for (size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
    size_t mask_ = 0;
};

} // namespace msim

#endif // MSIM_COMMON_FIFO_HH
