#include "common/stats.hh"

#include <sstream>

namespace msim {

std::string
StatGroup::format() const
{
    std::ostringstream os;
    for (const auto &[stat, value] : scalars_)
        os << name_ << "." << stat << " " << value << "\n";
    for (const auto &[dist, buckets] : dists_) {
        for (const auto &[bucket, value] : buckets)
            os << name_ << "." << dist << "." << bucket << " " << value
               << "\n";
    }
    return os.str();
}

StatGroup &
StatRegistry::group(const std::string &name)
{
    for (auto &g : groups_) {
        if (g.name() == name)
            return g;
    }
    groups_.emplace_back(name);
    return groups_.back();
}

std::string
StatRegistry::format() const
{
    std::ostringstream os;
    for (const auto &g : groups_)
        os << g.format();
    return os.str();
}

void
StatRegistry::reset()
{
    for (auto &g : groups_)
        g.reset();
}

} // namespace msim
