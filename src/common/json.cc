#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace msim::json {

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        throw std::runtime_error("json: not a bool");
    return bool_;
}

double
Value::asDouble() const
{
    if (kind_ != Kind::Number)
        throw std::runtime_error("json: not a number");
    return num_;
}

std::int64_t
Value::asInt() const
{
    if (kind_ != Kind::Number)
        throw std::runtime_error("json: not a number");
    return isInt_ ? int_ : std::int64_t(num_);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        throw std::runtime_error("json: not a string");
    return str_;
}

const std::vector<Value> &
Value::items() const
{
    if (kind_ != Kind::Array)
        throw std::runtime_error("json: not an array");
    return arr_;
}

std::vector<Value> &
Value::items()
{
    if (kind_ != Kind::Array)
        throw std::runtime_error("json: not an array");
    return arr_;
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Array)
        throw std::runtime_error("json: not an array");
    arr_.push_back(std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

Value *
Value::find(const std::string &key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, Value>> &
Value::entries() const
{
    if (kind_ != Kind::Object)
        throw std::runtime_error("json: not an object");
    return obj_;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (kind_ != Kind::Object)
        throw std::runtime_error("json: not an object");
    obj_.emplace_back(key, std::move(v));
    return obj_.back().second;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
Value::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        if (isInt_) {
            out += std::to_string(int_);
        } else if (std::isfinite(num_)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
            out += buf;
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
      case Kind::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escape(k);
            out += "\":";
            v.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace {

/** Recursive-descent RFC 8259 parser with bounded depth. */
class Parser
{
  public:
    Parser(const std::string &text, unsigned maxDepth)
        : text_(text), maxDepth_(maxDepth)
    {
    }

    Value
    document()
    {
        Value v = value(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError(msg, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value(unsigned depth)
    {
        if (depth > maxDepth_)
            fail("nesting too deep");
        skipWs();
        switch (peek()) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return Value(string());
          case 't':
            if (consume("true"))
                return Value(true);
            fail("invalid literal");
          case 'f':
            if (consume("false"))
                return Value(false);
            fail("invalid literal");
          case 'n':
            if (consume("null"))
                return Value(nullptr);
            fail("invalid literal");
          default:
            return number();
        }
    }

    Value
    object(unsigned depth)
    {
        expect('{');
        Value obj = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = string();
            skipWs();
            expect(':');
            obj.set(key, value(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Value
    array(unsigned depth)
    {
        expect('[');
        Value arr = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(value(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += char(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = hex4();
                // Surrogate pair handling (UTF-16 escapes).
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos_ + 1 < text_.size() &&
                        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        const unsigned lo = hex4();
                        if (lo >= 0xDC00 && lo <= 0xDFFF)
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        else
                            fail("invalid low surrogate");
                    } else {
                        fail("lone high surrogate");
                    }
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("unterminated \\u escape");
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= unsigned(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            fail("invalid number");
        // Leading zero may not be followed by digits.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("leading zero in number");
        bool integral = true;
        auto digits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digits required after decimal point");
            digits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                fail("digits required in exponent");
            digits();
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Value(std::int64_t(v));
            // Out of int64 range: fall through to double.
        }
        return Value(std::strtod(tok.c_str(), nullptr));
    }

    const std::string &text_;
    unsigned maxDepth_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text, unsigned maxDepth)
{
    return Parser(text, maxDepth).document();
}

} // namespace msim::json
