/**
 * @file
 * RegMask: a bit mask over the unified 64-register name space.
 *
 * Create masks and accum masks in the multiscalar paradigm (paper
 * section 2.2) are represented as RegMask values. A create mask lists
 * the registers a task may produce; an accum mask is the union of the
 * create masks of the active predecessor tasks and encodes the
 * reservations a processing unit places on its register file.
 */

#ifndef MSIM_COMMON_REG_MASK_HH
#define MSIM_COMMON_REG_MASK_HH

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace msim {

/** A set of registers in the unified 64-register index space. */
class RegMask
{
  public:
    /** Construct an empty mask. */
    constexpr RegMask() = default;

    /** Construct from a raw 64-bit value (bit i <=> register i). */
    explicit constexpr RegMask(std::uint64_t bits) : bits_(bits) {}

    /** Construct from a list of register indices. */
    RegMask(std::initializer_list<int> regs)
    {
        for (int r : regs)
            set(r);
    }

    /** Add register @p reg to the mask. */
    void
    set(int reg)
    {
        panicIf(reg < 0 || reg >= kNumRegs, "RegMask::set bad reg ", reg);
        bits_ |= std::uint64_t(1) << reg;
    }

    /** Remove register @p reg from the mask. */
    void
    clear(int reg)
    {
        panicIf(reg < 0 || reg >= kNumRegs, "RegMask::clear bad reg ", reg);
        bits_ &= ~(std::uint64_t(1) << reg);
    }

    /** @return true when register @p reg is in the mask. */
    bool
    test(int reg) const
    {
        if (reg < 0 || reg >= kNumRegs)
            return false;
        return (bits_ >> reg) & 1;
    }

    /** @return true when no register is in the mask. */
    bool empty() const { return bits_ == 0; }

    /** @return the number of registers in the mask. */
    int count() const { return std::popcount(bits_); }

    /** @return the raw 64-bit representation. */
    std::uint64_t bits() const { return bits_; }

    /** Union. */
    RegMask operator|(const RegMask &o) const
    {
        return RegMask(bits_ | o.bits_);
    }

    /** Intersection. */
    RegMask operator&(const RegMask &o) const
    {
        return RegMask(bits_ & o.bits_);
    }

    /** Difference: registers in this mask but not in @p o. */
    RegMask operator-(const RegMask &o) const
    {
        return RegMask(bits_ & ~o.bits_);
    }

    RegMask &operator|=(const RegMask &o) { bits_ |= o.bits_; return *this; }
    RegMask &operator&=(const RegMask &o) { bits_ &= o.bits_; return *this; }

    bool operator==(const RegMask &o) const = default;

    /**
     * Render the mask in assembly notation, e.g. "$4,$8,$f2".
     * Integer registers print as $n and floating point as $fn.
     */
    std::string toString() const;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace msim

#endif // MSIM_COMMON_REG_MASK_HH
