/**
 * @file
 * A small statistics package: named scalar counters and simple
 * distributions grouped per component, with text formatting. Every
 * timing component in the simulator registers its counters here so the
 * benchmark harness can dump a complete machine profile.
 */

#ifndef MSIM_COMMON_STATS_HH
#define MSIM_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace msim {

/** A group of named statistics belonging to one simulator component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to the named scalar counter (creating it at 0). */
    void
    add(const std::string &stat, std::uint64_t delta = 1)
    {
        scalars_[stat] += delta;
    }

    /** Set the named scalar counter to an absolute value. */
    void
    set(const std::string &stat, std::uint64_t value)
    {
        scalars_[stat] = value;
    }

    /** @return the value of a scalar counter (0 when absent). */
    std::uint64_t
    get(const std::string &stat) const
    {
        auto it = scalars_.find(stat);
        return it == scalars_.end() ? 0 : it->second;
    }

    /** @return this group's name. */
    const std::string &name() const { return name_; }

    /** @return all scalar counters in name order. */
    const std::map<std::string, std::uint64_t> &
    scalars() const
    {
        return scalars_;
    }

    /** Add @p delta to bucket @p bucket of distribution @p dist. */
    void
    addToDist(const std::string &dist, const std::string &bucket,
              std::uint64_t delta = 1)
    {
        dists_[dist][bucket] += delta;
    }

    /** @return the value of one distribution bucket (0 when absent). */
    std::uint64_t
    getDist(const std::string &dist, const std::string &bucket) const
    {
        auto it = dists_.find(dist);
        if (it == dists_.end())
            return 0;
        auto jt = it->second.find(bucket);
        return jt == it->second.end() ? 0 : jt->second;
    }

    /** @return all distributions in name order. */
    const std::map<std::string, std::map<std::string, std::uint64_t>> &
    dists() const
    {
        return dists_;
    }

    /**
     * Reset every counter to zero in place: the set of registered
     * stat names survives so post-reset reports keep their rows.
     */
    void
    reset()
    {
        for (auto &[stat, value] : scalars_)
            value = 0;
        for (auto &[dist, buckets] : dists_) {
            for (auto &[bucket, value] : buckets)
                value = 0;
        }
    }

    /** Render "group.stat value" lines (then distribution buckets). */
    std::string format() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> scalars_;
    std::map<std::string, std::map<std::string, std::uint64_t>> dists_;
};

/** A registry of stat groups owned by a processor instance. */
class StatRegistry
{
  public:
    /** Get or create the group with the given name. */
    StatGroup &group(const std::string &name);

    /** @return all groups in creation order. */
    const std::deque<StatGroup> &groups() const { return groups_; }

    /** Render every group. */
    std::string format() const;

    /** Reset every counter in every group. */
    void reset();

  private:
    /** Deque: references returned by group() must remain stable. */
    std::deque<StatGroup> groups_;
};

} // namespace msim

#endif // MSIM_COMMON_STATS_HH
