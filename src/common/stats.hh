/**
 * @file
 * A small statistics package: named scalar counters and simple
 * distributions grouped per component, with text formatting. Every
 * timing component in the simulator registers its counters here so the
 * benchmark harness can dump a complete machine profile.
 */

#ifndef MSIM_COMMON_STATS_HH
#define MSIM_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace msim {

/** A group of named statistics belonging to one simulator component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to the named scalar counter (creating it at 0). */
    void
    add(const std::string &stat, std::uint64_t delta = 1)
    {
        scalars_[stat] += delta;
    }

    /** Set the named scalar counter to an absolute value. */
    void
    set(const std::string &stat, std::uint64_t value)
    {
        scalars_[stat] = value;
    }

    /** @return the value of a scalar counter (0 when absent). */
    std::uint64_t
    get(const std::string &stat) const
    {
        auto it = scalars_.find(stat);
        return it == scalars_.end() ? 0 : it->second;
    }

    /** @return this group's name. */
    const std::string &name() const { return name_; }

    /** @return all scalar counters in name order. */
    const std::map<std::string, std::uint64_t> &
    scalars() const
    {
        return scalars_;
    }

    /** Reset all counters to zero. */
    void reset() { scalars_.clear(); }

    /** Render "group.stat value" lines. */
    std::string format() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> scalars_;
};

/** A registry of stat groups owned by a processor instance. */
class StatRegistry
{
  public:
    /** Get or create the group with the given name. */
    StatGroup &group(const std::string &name);

    /** @return all groups in creation order. */
    const std::deque<StatGroup> &groups() const { return groups_; }

    /** Render every group. */
    std::string format() const;

    /** Reset every counter in every group. */
    void reset();

  private:
    /** Deque: references returned by group() must remain stable. */
    std::deque<StatGroup> groups_;
};

} // namespace msim

#endif // MSIM_COMMON_STATS_HH
