/**
 * @file
 * A small JSON value type, parser and writer, shared by the machine
 * shape configuration layer (src/config) and the msim-rpc-v1
 * protocol (src/server). Self-contained on purpose: inputs arrive
 * from untrusted sockets and user-edited shape files, so the parser
 * is strict (full RFC 8259 grammar, no extensions), bounds its
 * recursion depth, and reports every syntax error as a
 * json::ParseError with the byte offset — callers map those to
 * structured errors (`parse_error` responses, shape diagnostics)
 * instead of crashing.
 *
 * The namespace stays `msim::json` (not `msim::common::json`): the
 * library started life in src/server and every call site spells the
 * short name; the header's home directory is the only thing the
 * hoist to src/common changed.
 *
 * Objects preserve insertion order (deterministic wire output) and
 * lookups return the first entry with the key. Numbers remember
 * whether they were written as integers so counters round-trip
 * without a decimal point.
 */

#ifndef MSIM_COMMON_JSON_HH
#define MSIM_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace msim::json {

/** Thrown on malformed JSON text; carries the byte offset. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &msg, std::size_t offset)
        : std::runtime_error(msg + " at byte " +
                             std::to_string(offset)),
          offset(offset)
    {
    }

    std::size_t offset = 0;
};

/** One JSON value (recursive tagged union). */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(std::int64_t i)
        : kind_(Kind::Number), num_(double(i)), int_(i), isInt_(true)
    {
    }
    Value(std::uint64_t u)
        : kind_(Kind::Number), num_(double(u)),
          int_(std::int64_t(u)), isInt_(true)
    {
    }
    Value(int i) : Value(std::int64_t(i)) {}
    Value(unsigned u) : Value(std::uint64_t(u)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    /**
     * Parse a complete JSON document (trailing garbage is an error).
     * @param maxDepth bound on array/object nesting.
     */
    static Value parse(const std::string &text, unsigned maxDepth = 64);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw ParseError-free std::runtime_error on
     *  kind mismatch (callers validate kinds first). */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const;

    /** Array access. */
    const std::vector<Value> &items() const;
    std::vector<Value> &items();
    void push(Value v);

    /** Object access: first entry wins; nullptr when absent. */
    const Value *find(const std::string &key) const;
    Value *find(const std::string &key);
    const std::vector<std::pair<std::string, Value>> &entries() const;
    /** Set (append) an object entry. */
    Value &set(const std::string &key, Value v);

    /** Serialize compactly (no whitespace). */
    std::string dump() const;

  private:
    void dumpTo(std::string &out) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool isInt_ = false;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/** JSON string escaping (shared with the writer). */
std::string escape(const std::string &s);

} // namespace msim::json

#endif // MSIM_COMMON_JSON_HH
