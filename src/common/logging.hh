/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal simulator bugs (conditions that should never
 * happen regardless of user input); fatal() is for user errors such as
 * malformed assembly or invalid configurations.
 */

#ifndef MSIM_COMMON_LOGGING_HH
#define MSIM_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace msim {

/** Exception thrown by fatal(): a user-level error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Report an internal simulator bug and abort the simulation by
 * throwing PanicError. All arguments are streamed into the message.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/**
 * Report a user error (bad input, bad configuration) and stop by
 * throwing FatalError. All arguments are streamed into the message.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Assert an invariant; panics with the given message when violated. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

/** Report a user error when the condition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

} // namespace msim

#endif // MSIM_COMMON_LOGGING_HH
