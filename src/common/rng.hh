/**
 * @file
 * A small deterministic pseudo-random number generator (xorshift64*)
 * used by workload input generators and property-based tests. Using
 * our own generator keeps every simulation run reproducible across
 * platforms and standard library versions.
 */

#ifndef MSIM_COMMON_RNG_HH
#define MSIM_COMMON_RNG_HH

#include <cstdint>

namespace msim {

/** Deterministic xorshift64* generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {
    }

    /** @return the next 64-bit pseudo-random value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** @return a value uniformly distributed in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

    /** @return an integer uniformly distributed in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
    }

    /** @return a double in [0, 1). */
    double
    real()
    {
        return double(next() >> 11) / double(1ull << 53);
    }

  private:
    std::uint64_t state_;
};

} // namespace msim

#endif // MSIM_COMMON_RNG_HH
