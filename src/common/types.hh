/**
 * @file
 * Fundamental scalar types used throughout the msim library.
 */

#ifndef MSIM_COMMON_TYPES_HH
#define MSIM_COMMON_TYPES_HH

#include <cstdint>

namespace msim {

/** A byte address in the simulated 32-bit address space. */
using Addr = std::uint32_t;

/** A 32-bit machine word. */
using Word = std::uint32_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/**
 * Sentinel for "no scheduled event": a component returns this from
 * its next-event query when nothing will ever wake it without
 * external input (see the fast-forward loop in src/core/).
 */
inline constexpr Cycle kCycleNever = ~Cycle(0);

/** A monotonically increasing task sequence number. */
using TaskSeq = std::uint64_t;

/**
 * A unified register index. Integer registers occupy indices 0-31 and
 * floating point registers occupy 32-63. Index -1 means "no register".
 */
using RegIndex = std::int8_t;

/** Number of integer architectural registers. */
inline constexpr int kNumIntRegs = 32;

/** Number of floating point architectural registers. */
inline constexpr int kNumFpRegs = 32;

/** Total number of architectural registers in the unified index space. */
inline constexpr int kNumRegs = kNumIntRegs + kNumFpRegs;

/** Sentinel for "no register operand". */
inline constexpr RegIndex kNoReg = -1;

/** Size of one instruction in the simulated address space. */
inline constexpr Addr kInstrBytes = 4;

/** An invalid/unmapped address sentinel (top of the address space). */
inline constexpr Addr kBadAddr = 0xffffffffu;

} // namespace msim

#endif // MSIM_COMMON_TYPES_HH
