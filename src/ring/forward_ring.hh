/**
 * @file
 * The unidirectional ring that forwards register values between
 * adjacent processing units (paper Figure 1 and section 5.1).
 *
 * Each hop imposes one cycle of communication latency, and the ring
 * width matches the issue width of the units: at most `width`
 * messages may enter a unit's outbound link per cycle; excess
 * messages queue. A message delivered to a unit may continue around
 * the ring (the receiver decides: propagation stops at a unit whose
 * own create mask contains the register, because that unit will send
 * a fresher value to its successors). A message that has visited all
 * other units is dropped.
 */

#ifndef MSIM_RING_FORWARD_RING_HH
#define MSIM_RING_FORWARD_RING_HH

#include <vector>

#include "common/fifo.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/exec.hh"
#include "trace/tracer.hh"

namespace msim {

/** A register value in flight on the ring. */
struct RingMessage
{
    RegIndex reg = kNoReg;
    isa::RegValue value;
    /** Task that produced the value. */
    TaskSeq producer = 0;
    /** Hops taken so far (dropped after numUnits - 1). */
    unsigned hops = 0;
};

/** The unidirectional register forwarding ring. */
class ForwardRing
{
  public:
    ForwardRing(StatGroup &stats, unsigned num_units, unsigned width,
                unsigned hop_latency = 1, Tracer *tracer = nullptr)
        : stats_(stats), numUnits_(num_units), width_(width),
          hopLatency_(hop_latency), tracer_(tracer),
          outbound_(num_units), inFlight_(num_units)
    {
        fatalIf(num_units == 0, "ring needs at least one unit");
        fatalIf(width == 0, "ring width must be positive");
        fatalIf(hop_latency == 0, "ring hop latency must be >= 1");
    }

    /** Queue a message on @p from_unit's outbound port. */
    void
    send(unsigned from_unit, const RingMessage &msg)
    {
        panicIf(from_unit >= numUnits_, "ring send from bad unit");
        outbound_[from_unit].push_back(msg);
        stats_.add("sends");
        if (tracer_ && tracer_->wants(TraceCat::kRing)) {
            tracer_->instant(TraceCat::kRing, "forward", tracer_->now(),
                             kTidRing, "from", from_unit, "reg",
                             std::uint64_t(msg.reg));
        }
    }

    /**
     * Advance the ring one cycle.
     *
     * @param deliver Callback (unsigned unit, const RingMessage &)
     *        -> bool; invoked for each message arriving at a unit;
     *        return true to let the message continue to the next
     *        unit, false to consume it.
     */
    template <typename Fn>
    void
    tick(Fn &&deliver)
    {
        if (numUnits_ == 1) {
            for (auto &q : outbound_)
                q.clear();
            return;
        }
        // Age in-flight messages and deliver the ones that arrive.
        for (unsigned u = 0; u < numUnits_; ++u) {
            auto &flight = inFlight_[u];
            size_t n = flight.size();
            for (size_t i = 0; i < n; ++i) {
                Hop hop = flight.front();
                flight.pop_front();
                if (--hop.cyclesLeft > 0) {
                    flight.push_back(hop);
                    continue;
                }
                const unsigned dest = (u + 1) % numUnits_;
                RingMessage msg = hop.msg;
                msg.hops += 1;
                stats_.add("deliveries");
                bool forward_on = deliver(dest, msg);
                if (forward_on && msg.hops < numUnits_ - 1)
                    outbound_[dest].push_back(msg);
            }
        }
        // Launch up to `width` messages per outbound port.
        for (unsigned u = 0; u < numUnits_; ++u) {
            for (unsigned k = 0; k < width_ && !outbound_[u].empty();
                 ++k) {
                inFlight_[u].push_back(
                    {outbound_[u].front(), hopLatency_});
                outbound_[u].pop_front();
            }
            if (!outbound_[u].empty())
                stats_.add("portStallCycles");
        }
    }

    /** @return true when no messages are queued or in flight. */
    bool
    idle() const
    {
        for (unsigned u = 0; u < numUnits_; ++u) {
            if (!outbound_[u].empty() || !inFlight_[u].empty())
                return false;
        }
        return true;
    }

    /** Drop all traffic (used on full-pipeline resets in tests). */
    void
    clear()
    {
        for (auto &q : outbound_)
            q.clear();
        for (auto &q : inFlight_)
            q.clear();
    }

    unsigned numUnits() const { return numUnits_; }
    unsigned width() const { return width_; }
    unsigned hopLatency() const { return hopLatency_; }

  private:
    struct Hop
    {
        RingMessage msg;
        unsigned cyclesLeft;
    };

    StatGroup &stats_;
    unsigned numUnits_;
    unsigned width_;
    unsigned hopLatency_;
    Tracer *tracer_ = nullptr;
    /** Messages waiting at each unit's outbound port. */
    std::vector<RingFifo<RingMessage>> outbound_;
    /** Messages traversing the link out of each unit. */
    std::vector<RingFifo<Hop>> inFlight_;
};

} // namespace msim

#endif // MSIM_RING_FORWARD_RING_HH
