#include "exp/scheduler.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace msim::exp {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

const CellResult *
SweepResult::find(const std::string &name) const
{
    for (const CellResult &c : cells)
        if (c.name == name)
            return &c;
    return nullptr;
}

const CellResult &
SweepResult::cell(const std::string &name) const
{
    const CellResult *c = find(name);
    fatalIf(c == nullptr, "sweep '", experiment, "': no cell named '",
            name, "'");
    return *c;
}

const RunResult &
SweepResult::result(const std::string &name) const
{
    const CellResult &c = cell(name);
    fatalIf(!c.ok, "sweep '", experiment, "': cell '", name,
            "' failed: ", c.error);
    return c.result;
}

std::size_t
SweepResult::failures() const
{
    std::size_t n = 0;
    for (const CellResult &c : cells)
        n += c.ok ? 0 : 1;
    return n;
}

unsigned
SweepScheduler::defaultJobs()
{
    if (const char *env = std::getenv("MSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return unsigned(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepScheduler::SweepScheduler(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

SweepResult
SweepScheduler::run(const Experiment &experiment)
{
    const std::vector<Cell> &cells = experiment.cells();

    SweepResult sweep;
    sweep.experiment = experiment.name();
    sweep.jobs = jobs_;
    sweep.cells.resize(cells.size());

    const std::uint64_t hits0 = cache_.hits();
    const std::uint64_t misses0 = cache_.misses();
    const auto sweep_t0 = std::chrono::steady_clock::now();

    // Workers pull cell indices from a shared counter and write into
    // their preassigned slot, so the result vector keeps registration
    // order no matter which thread finishes when.
    auto runOne = [&](std::size_t i) {
        const Cell &cell = cells[i];
        CellResult &out = sweep.cells[i];
        out.name = cell.name;
        out.workload = cell.workload;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            auto compiled =
                cache_.get(cell.workload, cell.spec.multiscalar,
                           cell.spec.defines, cell.scale);
            out.result = runCompiled(*compiled, cell.spec);
            out.ok = true;
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
        out.wallSeconds = secondsSince(t0);
    };

    const unsigned workers =
        unsigned(std::min<std::size_t>(jobs_, cells.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            runOne(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < cells.size(); i = next.fetch_add(1))
                    runOne(i);
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    sweep.wallSeconds = secondsSince(sweep_t0);
    sweep.cacheHits = cache_.hits() - hits0;
    sweep.cacheMisses = cache_.misses() - misses0;
    return sweep;
}

} // namespace msim::exp
