/**
 * @file
 * The design-space explorer: sweep the cross-product of machine-shape
 * axes (units × ring hop latency × ARB geometry × task predictor) and
 * rank every point by speedup over the scalar baseline against the
 * hardware-cost proxy (src/config/cost_model.hh). The deliverable is
 * the Pareto frontier — the shapes no other shape beats on both cost
 * and speedup — rendered as a text report and as a msim-explore-v1
 * JSON document alongside the raw msim-sweep-v1 cell rows.
 *
 * Axis points are applied on top of a base shape (paper-default by
 * default), so exploration composes with any declarative machine
 * description. The scalar baseline copies the base shape's per-unit
 * pipeline (issue width, ordering) so speedups compare equal units.
 *
 * Shared by bench_explore (the canonical grid + CI smoke gate) and
 * the msim-explore tool (ad-hoc axes from the command line).
 */

#ifndef MSIM_EXP_EXPLORE_HH
#define MSIM_EXP_EXPLORE_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "core/ms_config.hh"
#include "exp/experiment.hh"
#include "exp/scheduler.hh"

namespace msim::exp {

/** The explored axes, applied over a base machine shape. */
struct ExploreAxes
{
    /** Shape preset or file the points are derived from. */
    std::string baseShape = "paper-default";
    std::vector<unsigned> units = {1, 2, 4, 8};
    std::vector<unsigned> ringHops = {1, 2, 4};
    std::vector<unsigned> arbEntries = {16, 64, 256};
    std::vector<std::string> arbPolicies = {"squash"};
    std::vector<std::string> predictors = {"pas", "last", "static"};

    /** The reduced grid CI runs on every push. */
    static ExploreAxes smoke();

    /** Number of grid points (cells = points × workloads + scalars). */
    std::size_t numPoints() const;
};

/** One grid point: its id and the full machine configuration. */
struct ExplorePoint
{
    std::string id;  //!< e.g. "u4-r1-a64sq-pas"
    MsConfig ms;
};

/** One evaluated grid point of the explore report. */
struct ExplorePointResult
{
    std::string id;
    MsConfig ms;
    double cost = 0.0;
    /** Geometric-mean speedup over the scalar baseline (0 = a cell
     *  of this point failed; excluded from the frontier). */
    double speedup = 0.0;
    bool onFrontier = false;
    /** Per-workload speedups, in report workload order. */
    std::vector<double> perWorkload;
};

/** The computed explore report. */
struct ExploreReport
{
    std::string baseShape;
    std::vector<std::string> workloads;
    std::vector<ExplorePointResult> points;  //!< grid order
    /** Frontier point indices, cost ascending. */
    std::vector<std::size_t> frontier;
};

/** Expand the axes into the full grid (deterministic order). */
std::vector<ExplorePoint> explorePoints(const ExploreAxes &axes);

/**
 * Declare the explore cells: one "explore/scalar/<w>" baseline per
 * workload plus one "explore/<id>/<w>" cell per (point, workload).
 */
void declareExplore(Experiment &e, const ExploreAxes &axes,
                    const std::vector<std::string> &workloads);

/** Evaluate a finished sweep into costs, speedups and the frontier. */
ExploreReport computeExplore(const SweepResult &sweep,
                             const ExploreAxes &axes,
                             const std::vector<std::string> &workloads);

/**
 * Indices of the Pareto-optimal points over (cost ↓, speedup ↑),
 * sorted by cost ascending. A point with speedup <= 0 never
 * qualifies. Exposed for unit tests.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<double> &cost,
               const std::vector<double> &speedup);

/** Render the grid and frontier as paper-style text tables. */
void renderExploreReport(const ExploreReport &report,
                         std::FILE *out = stdout);

/** Write the msim-explore-v1 JSON document. */
void writeExploreJson(std::ostream &os, const ExploreReport &report);

} // namespace msim::exp

#endif // MSIM_EXP_EXPLORE_HH
