/**
 * @file
 * The multi-core sweep scheduler.
 *
 * SweepScheduler executes an Experiment's cells on a fixed pool of
 * worker threads. Every cell is an independent, deterministic
 * simulation session (sim/runner.hh runCompiled over an immutable
 * CompiledWorkload), so the only shared mutable state is the
 * ProgramCache — each (workload, mode, defines, scale) point is
 * assembled exactly once per sweep no matter how many cells or
 * threads request it.
 *
 * Guarantees:
 *  - results appear in cell registration order, independent of the
 *    completion order (so --jobs N output is bit-identical to
 *    --jobs 1);
 *  - a throwing cell is captured as a failed CellResult (error
 *    message + wall time) instead of aborting the sweep;
 *  - per-cell and whole-sweep wall times are recorded.
 */

#ifndef MSIM_EXP_SCHEDULER_HH
#define MSIM_EXP_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "sim/compiled_workload.hh"

namespace msim::exp {

/** Outcome of one cell: a RunResult or a captured error. */
struct CellResult
{
    /** Cell name (copied from the experiment). */
    std::string name;
    /** Workload the cell ran. */
    std::string workload;
    /** False when the cell threw; @ref error holds the message. */
    bool ok = false;
    /** Error message of a failed cell (empty when ok). */
    std::string error;
    /** Simulation results (default-initialized when !ok). */
    RunResult result;
    /** Host wall time spent on this cell, seconds. */
    double wallSeconds = 0.0;
};

/** Results of one sweep, in cell registration order. */
struct SweepResult
{
    /** Experiment name. */
    std::string experiment;
    /** Worker threads used. */
    unsigned jobs = 1;
    /** Whole-sweep host wall time, seconds. */
    double wallSeconds = 0.0;
    /** Program cache counters for this sweep. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** One entry per cell, in registration order. */
    std::vector<CellResult> cells;

    /** @return the cell named @p name, or nullptr. */
    const CellResult *find(const std::string &name) const;
    /** @return the cell named @p name (FatalError when absent). */
    const CellResult &cell(const std::string &name) const;
    /**
     * @return the RunResult of cell @p name (FatalError when the
     * cell is absent or failed — paper tables need every number).
     */
    const RunResult &result(const std::string &name) const;
    /** Number of failed cells. */
    std::size_t failures() const;
};

/** Fixed-pool parallel executor for experiments. */
class SweepScheduler
{
  public:
    /** @param jobs worker threads; 0 = defaultJobs(). */
    explicit SweepScheduler(unsigned jobs = 0);

    /** Execute every cell; never throws for per-cell failures. */
    SweepResult run(const Experiment &experiment);

    /** Worker threads this scheduler will use. */
    unsigned jobs() const { return jobs_; }

    /** The cache shared by this scheduler's sweeps. */
    ProgramCache &programCache() { return cache_; }

    /**
     * Job count when none is given: the MSIM_JOBS environment
     * variable when set to a positive integer, otherwise the host's
     * hardware concurrency (at least 1).
     */
    static unsigned defaultJobs();

  private:
    unsigned jobs_;
    ProgramCache cache_;
};

} // namespace msim::exp

#endif // MSIM_EXP_SCHEDULER_HH
