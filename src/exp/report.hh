/**
 * @file
 * Sweep reporting: paper-style text tables and the machine-readable
 * JSON report.
 *
 * ReportTable renders an aligned text table from string cells (the
 * bench binaries build the paper's Tables 2-4 and every ablation
 * grid with it). writeJsonReport emits the documented
 * "msim-sweep-v1" JSON schema: sweep metadata, program-cache
 * counters, and one row per cell — including failed cells, which
 * keep a well-formed row with `ok:false` and the error message.
 */

#ifndef MSIM_EXP_REPORT_HH
#define MSIM_EXP_REPORT_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "exp/scheduler.hh"

namespace msim::exp {

/** An aligned text table (fixed column count, auto widths). */
class ReportTable
{
  public:
    /** @param title printed above the table. */
    explicit ReportTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row; fixes the column count. */
    void header(std::vector<std::string> cells);
    /** Append a data row (padded / truncated to the column count). */
    void row(std::vector<std::string> cells);
    /** Render to @p out. First column left-aligned, rest right. */
    void print(std::FILE *out = stdout) const;

    /** Format helpers for numeric cells. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);
    static std::string count(std::uint64_t v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Write the msim-sweep-v1 JSON report (see README "JSON report
 * format"): experiment name, jobs, wall time, cache counters, and a
 * row per cell with headline counters and the cycle-accounting
 * categories. Failed cells appear with ok:false, their error string,
 * and zeroed counters, so the report is always well-formed.
 */
void writeJsonReport(std::ostream &os, const SweepResult &sweep);

/**
 * Write one msim-sweep-v1 cell row (the objects of the report's
 * "cells" array) with every line prefixed by @p indent. Shared with
 * msim-server, which streams exactly these rows as sweep cells
 * complete so a client can reassemble a full msim-sweep-v1 report.
 */
void writeJsonCell(std::ostream &os, const CellResult &cell,
                   const std::string &indent = "    ");

/** JSON-escape a string (exposed for tests). */
std::string jsonEscape(const std::string &s);

} // namespace msim::exp

#endif // MSIM_EXP_REPORT_HH
