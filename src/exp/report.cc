#include "exp/report.hh"

#include <algorithm>
#include <cinttypes>

#include "trace/cycle_accounting.hh"

namespace msim::exp {

void
ReportTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
ReportTable::row(std::vector<std::string> cells)
{
    cells.resize(header_.empty() ? cells.size() : header_.size());
    rows_.push_back(std::move(cells));
}

void
ReportTable::print(std::FILE *out) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const int w = int(width[i]);
            if (i == 0)
                std::fprintf(out, "%-*s", w, cells[i].c_str());
            else
                std::fprintf(out, "  %*s", w, cells[i].c_str());
        }
        std::fprintf(out, "\n");
    };

    if (!title_.empty())
        std::fprintf(out, "\n%s\n", title_.c_str());
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
ReportTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
ReportTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  100.0 * fraction);
    return buf;
}

std::string
ReportTable::count(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonCell(std::ostream &os, const CellResult &c,
              const std::string &indent)
{
    const RunResult &r = c.result;
    const std::string in = indent + "  ";
    os << indent << "{\n";
    os << in << "\"name\": \"" << jsonEscape(c.name) << "\",\n";
    os << in << "\"workload\": \"" << jsonEscape(c.workload)
       << "\",\n";
    os << in << "\"ok\": " << (c.ok ? "true" : "false") << ",\n";
    if (c.ok)
        os << in << "\"error\": null,\n";
    else
        os << in << "\"error\": \"" << jsonEscape(c.error) << "\",\n";
    os << in << "\"wall_seconds\": " << c.wallSeconds << ",\n";
    os << in << "\"cycles\": " << r.cycles << ",\n";
    os << in << "\"instructions\": " << r.instructions << ",\n";
    os << in << "\"squashed_instructions\": " << r.squashedInstructions
       << ",\n";
    os << in << "\"ipc\": " << r.ipc() << ",\n";
    os << in << "\"tasks_retired\": " << r.tasksRetired << ",\n";
    os << in << "\"tasks_squashed\": " << r.tasksSquashed << ",\n";
    os << in << "\"task_predictions\": " << r.taskPredictions << ",\n";
    os << in << "\"task_pred_hits\": " << r.taskPredHits << ",\n";
    os << in << "\"pred_accuracy\": " << r.predAccuracy() << ",\n";
    os << in << "\"control_squashes\": " << r.controlSquashes << ",\n";
    os << in << "\"memory_squashes\": " << r.memorySquashes << ",\n";
    os << in << "\"arb_full_squashes\": " << r.arbFullSquashes
       << ",\n";
    os << in << "\"accounting\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumCycleCats; ++i) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << cycleCatName(CycleCat(i))
           << "\": " << r.accounting[CycleCat(i)];
    }
    os << "}\n";
    os << indent << "}";
}

void
writeJsonReport(std::ostream &os, const SweepResult &sweep)
{
    os << "{\n";
    os << "  \"schema\": \"msim-sweep-v1\",\n";
    os << "  \"experiment\": \"" << jsonEscape(sweep.experiment)
       << "\",\n";
    os << "  \"jobs\": " << sweep.jobs << ",\n";
    os << "  \"wall_seconds\": " << sweep.wallSeconds << ",\n";
    os << "  \"cells_total\": " << sweep.cells.size() << ",\n";
    os << "  \"cells_failed\": " << sweep.failures() << ",\n";
    os << "  \"program_cache\": {\"hits\": " << sweep.cacheHits
       << ", \"misses\": " << sweep.cacheMisses << "},\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        writeJsonCell(os, sweep.cells[i]);
        os << (i + 1 < sweep.cells.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace msim::exp
