#include "exp/experiment.hh"

#include "common/logging.hh"
#include "config/machine_shape.hh"

namespace msim::exp {

void
Experiment::add(const std::string &cell_name,
                const std::string &workload, const RunSpec &spec,
                unsigned scale)
{
    fatalIf(!names_.insert(cell_name).second, "experiment '", name_,
            "': duplicate cell '", cell_name, "'");
    Cell cell;
    cell.name = cell_name;
    cell.workload = workload;
    cell.scale = scale;
    cell.spec = spec;
    cells_.push_back(std::move(cell));
}

void
Experiment::addShape(const std::string &cell_name,
                     const std::string &workload,
                     const std::string &shape_name_or_file,
                     unsigned scale)
{
    add(cell_name, workload,
        config::specForShape(shape_name_or_file), scale);
}

std::size_t
Experiment::uniqueCompileKeys() const
{
    std::set<std::string> keys;
    for (const Cell &c : cells_)
        keys.insert(ProgramCache::key(c.workload, c.spec.multiscalar,
                                      c.spec.defines, c.scale));
    return keys.size();
}

} // namespace msim::exp
