/**
 * @file
 * Declarative experiments.
 *
 * An Experiment is a named, ordered list of cells; a cell is one
 * (workload × machine configuration) point of the paper's evaluation,
 * identified by a unique name. Experiments only describe work — the
 * SweepScheduler (scheduler.hh) executes them, and cell registration
 * order fixes the result order regardless of completion order.
 */

#ifndef MSIM_EXP_EXPERIMENT_HH
#define MSIM_EXP_EXPERIMENT_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace msim::exp {

/** One (workload, configuration) point of an evaluation sweep. */
struct Cell
{
    /** Unique cell name (report key, e.g. "table3/wc/scalar_1way"). */
    std::string name;
    /** Registry workload to run. */
    std::string workload;
    /** Workload input scale (1 = the paper's default). */
    unsigned scale = 1;
    /** Machine configuration. */
    RunSpec spec;
};

/** A named set of cells, executed together by the SweepScheduler. */
class Experiment
{
  public:
    explicit Experiment(std::string name) : name_(std::move(name)) {}

    /** Append a cell (FatalError on duplicate cell names). */
    void add(const std::string &cell_name,
             const std::string &workload, const RunSpec &spec,
             unsigned scale = 1);

    /**
     * Append a cell whose machine comes from a declarative shape
     * (src/config): a preset name from the shipped shapes/ directory
     * or a path to a shape file. ConfigError on unknown or malformed
     * shapes.
     */
    void addShape(const std::string &cell_name,
                  const std::string &workload,
                  const std::string &shape_name_or_file,
                  unsigned scale = 1);

    const std::string &name() const { return name_; }
    const std::vector<Cell> &cells() const { return cells_; }
    std::size_t size() const { return cells_.size(); }

    /**
     * Number of distinct (workload, mode, defines, scale) compilation
     * points among the cells — the exact number of assemblies a
     * ProgramCache-backed sweep must perform.
     */
    std::size_t uniqueCompileKeys() const;

  private:
    std::string name_;
    std::vector<Cell> cells_;
    std::set<std::string> names_;
};

} // namespace msim::exp

#endif // MSIM_EXP_EXPERIMENT_HH
