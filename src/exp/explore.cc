#include "exp/explore.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "config/cost_model.hh"
#include "config/machine_shape.hh"
#include "exp/report.hh"

namespace msim::exp {

namespace {

std::string
pointId(unsigned units, unsigned hop, unsigned arb_entries,
        const std::string &policy, const std::string &predictor)
{
    return "u" + std::to_string(units) + "-r" + std::to_string(hop) +
           "-a" + std::to_string(arb_entries) +
           (policy == "squash" ? "sq" : "st") + "-" + predictor;
}

std::string
scalarCell(const std::string &workload)
{
    return "explore/scalar/" + workload;
}

std::string
pointCell(const std::string &id, const std::string &workload)
{
    return "explore/" + id + "/" + workload;
}

/** The scalar baseline spec: scalar-1w with the base shape's PU. */
RunSpec
baselineSpec(const ExploreAxes &axes)
{
    RunSpec spec = config::specForShape("scalar-1w");
    spec.scalar.pu =
        config::resolveShape(axes.baseShape).ms.pu;
    return spec;
}

std::vector<unsigned>
uniqued(std::vector<unsigned> v)
{
    std::vector<unsigned> out;
    for (unsigned x : v)
        if (std::find(out.begin(), out.end(), x) == out.end())
            out.push_back(x);
    return out;
}

std::vector<std::string>
uniqued(std::vector<std::string> v)
{
    std::vector<std::string> out;
    for (const std::string &x : v)
        if (std::find(out.begin(), out.end(), x) == out.end())
            out.push_back(x);
    return out;
}

} // namespace

ExploreAxes
ExploreAxes::smoke()
{
    ExploreAxes axes;
    axes.units = {2, 4};
    axes.ringHops = {1};
    axes.arbEntries = {16, 256};
    axes.arbPolicies = {"squash"};
    axes.predictors = {"pas", "static"};
    return axes;
}

std::size_t
ExploreAxes::numPoints() const
{
    return units.size() * ringHops.size() * arbEntries.size() *
           arbPolicies.size() * predictors.size();
}

std::vector<ExplorePoint>
explorePoints(const ExploreAxes &axes)
{
    const MsConfig base = config::resolveShape(axes.baseShape).ms;
    std::vector<ExplorePoint> points;
    for (unsigned u : uniqued(axes.units)) {
        for (unsigned hop : uniqued(axes.ringHops)) {
            for (unsigned entries : uniqued(axes.arbEntries)) {
                for (const std::string &policy :
                     uniqued(axes.arbPolicies)) {
                    for (const std::string &pred :
                         uniqued(axes.predictors)) {
                        ExplorePoint p;
                        p.id = pointId(u, hop, entries, policy, pred);
                        p.ms = base;
                        p.ms.numUnits = u;
                        p.ms.ringHopLatency = hop;
                        p.ms.arbEntriesPerBank = entries;
                        p.ms.arbFullPolicy =
                            policy == "squash" ? ArbFullPolicy::kSquash
                                               : ArbFullPolicy::kStall;
                        p.ms.predictor = pred;
                        p.ms.validate();
                        points.push_back(std::move(p));
                    }
                }
            }
        }
    }
    return points;
}

void
declareExplore(Experiment &e, const ExploreAxes &axes,
               const std::vector<std::string> &workloads)
{
    const RunSpec scalar = baselineSpec(axes);
    for (const std::string &w : workloads)
        e.add(scalarCell(w), w, scalar);
    for (const ExplorePoint &p : explorePoints(axes)) {
        RunSpec spec;
        spec.multiscalar = true;
        spec.ms = p.ms;
        for (const std::string &w : workloads)
            e.add(pointCell(p.id, w), w, spec);
    }
}

std::vector<std::size_t>
paretoFrontier(const std::vector<double> &cost,
               const std::vector<double> &speedup)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < cost.size(); ++i) {
        if (speedup[i] <= 0.0)
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < cost.size() && !dominated; ++j) {
            if (j == i)
                continue;
            const bool no_worse = cost[j] <= cost[i] &&
                                  speedup[j] >= speedup[i];
            const bool better = cost[j] < cost[i] ||
                                speedup[j] > speedup[i];
            dominated = no_worse && better;
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cost[a] != cost[b])
                      return cost[a] < cost[b];
                  return a < b;
              });
    return frontier;
}

ExploreReport
computeExplore(const SweepResult &sweep, const ExploreAxes &axes,
               const std::vector<std::string> &workloads)
{
    ExploreReport report;
    report.baseShape = axes.baseShape;
    report.workloads = workloads;

    for (const ExplorePoint &p : explorePoints(axes)) {
        ExplorePointResult r;
        r.id = p.id;
        r.ms = p.ms;
        r.cost = config::hardwareCostProxy(p.ms);
        double log_sum = 0.0;
        bool ok = !workloads.empty();
        for (const std::string &w : workloads) {
            const CellResult &scalar = sweep.cell(scalarCell(w));
            const CellResult &ms = sweep.cell(pointCell(p.id, w));
            if (!scalar.ok || !ms.ok || ms.result.cycles == 0) {
                r.perWorkload.push_back(0.0);
                ok = false;
                continue;
            }
            const double s = double(scalar.result.cycles) /
                             double(ms.result.cycles);
            r.perWorkload.push_back(s);
            log_sum += std::log(s);
        }
        r.speedup =
            ok ? std::exp(log_sum / double(workloads.size())) : 0.0;
        report.points.push_back(std::move(r));
    }

    std::vector<double> cost, speedup;
    for (const ExplorePointResult &r : report.points) {
        cost.push_back(r.cost);
        speedup.push_back(r.speedup);
    }
    report.frontier = paretoFrontier(cost, speedup);
    for (std::size_t i : report.frontier)
        report.points[i].onFrontier = true;
    return report;
}

void
renderExploreReport(const ExploreReport &report, std::FILE *out)
{
    ReportTable grid("Design-space grid over " + report.baseShape +
                     " (geomean speedup over scalar; cost in "
                     "KB-equivalents)");
    grid.header({"point", "units", "ring", "arb", "policy", "pred",
                 "cost", "speedup", "frontier"});
    for (const ExplorePointResult &r : report.points) {
        grid.row({r.id, std::to_string(r.ms.numUnits),
                  std::to_string(r.ms.ringHopLatency),
                  std::to_string(r.ms.arbEntriesPerBank),
                  r.ms.arbFullPolicy == ArbFullPolicy::kSquash
                      ? "squash"
                      : "stall",
                  r.ms.predictor, ReportTable::num(r.cost, 1),
                  ReportTable::num(r.speedup),
                  r.onFrontier ? "*" : ""});
    }
    grid.print(out);

    ReportTable front("Pareto frontier (cost ascending): the shapes "
                      "nothing beats on both axes");
    std::vector<std::string> head = {"point", "cost", "speedup"};
    for (const std::string &w : report.workloads)
        head.push_back(w);
    front.header(head);
    for (std::size_t i : report.frontier) {
        const ExplorePointResult &r = report.points[i];
        std::vector<std::string> row = {
            r.id, ReportTable::num(r.cost, 1),
            ReportTable::num(r.speedup)};
        for (double s : r.perWorkload)
            row.push_back(ReportTable::num(s));
        front.row(std::move(row));
    }
    front.print(out);
}

void
writeExploreJson(std::ostream &os, const ExploreReport &report)
{
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value("msim-explore-v1"));
    doc.set("base_shape", json::Value(report.baseShape));
    json::Value workloads = json::Value::array();
    for (const std::string &w : report.workloads)
        workloads.push(json::Value(w));
    doc.set("workloads", std::move(workloads));

    json::Value points = json::Value::array();
    for (const ExplorePointResult &r : report.points) {
        json::Value p = json::Value::object();
        p.set("id", json::Value(r.id));
        p.set("units", json::Value(r.ms.numUnits));
        p.set("ring_hop_latency", json::Value(r.ms.ringHopLatency));
        p.set("arb_entries_per_bank",
              json::Value(r.ms.arbEntriesPerBank));
        p.set("arb_full_policy",
              json::Value(r.ms.arbFullPolicy == ArbFullPolicy::kSquash
                              ? "squash"
                              : "stall"));
        p.set("predictor", json::Value(r.ms.predictor));
        p.set("cost", json::Value(r.cost));
        p.set("speedup", json::Value(r.speedup));
        p.set("on_frontier", json::Value(r.onFrontier));
        json::Value per = json::Value::object();
        for (std::size_t i = 0; i < report.workloads.size(); ++i)
            per.set(report.workloads[i],
                    json::Value(i < r.perWorkload.size()
                                    ? r.perWorkload[i]
                                    : 0.0));
        p.set("per_workload", std::move(per));
        points.push(std::move(p));
    }
    doc.set("points", std::move(points));

    json::Value frontier = json::Value::array();
    for (std::size_t i : report.frontier)
        frontier.push(json::Value(report.points[i].id));
    doc.set("frontier", std::move(frontier));
    os << doc.dump() << "\n";
}

} // namespace msim::exp
