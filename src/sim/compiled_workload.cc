#include "sim/compiled_workload.hh"

#include "asm/assembler.hh"
#include "common/logging.hh"

namespace msim {

std::shared_ptr<const CompiledWorkload>
compileWorkload(const workloads::Workload &workload, bool multiscalar,
                const std::set<std::string> &defines, unsigned scale)
{
    assembler::AsmOptions opts;
    opts.multiscalar = multiscalar;
    opts.defines = defines;
    opts.fileName = workload.name + (multiscalar ? ".ms.s" : ".sc.s");

    auto cw = std::make_shared<CompiledWorkload>();
    cw->workload = workload;
    cw->program = assembler::assemble(workload.source, opts);
    cw->multiscalar = multiscalar;
    cw->defines = defines;
    cw->scale = scale;
    return cw;
}

std::shared_ptr<const CompiledWorkload>
compileWorkload(const std::string &name, bool multiscalar,
                const std::set<std::string> &defines, unsigned scale)
{
    return compileWorkload(workloads::get(name, scale), multiscalar,
                           defines, scale);
}

std::string
ProgramCache::key(const std::string &name, bool multiscalar,
                  const std::set<std::string> &defines, unsigned scale)
{
    std::string k = name;
    k += multiscalar ? "|ms|" : "|sc|";
    for (const std::string &d : defines) {
        k += d;
        k += ',';
    }
    k += '|';
    k += std::to_string(scale);
    return k;
}

std::shared_ptr<const CompiledWorkload>
ProgramCache::get(const std::string &name, bool multiscalar,
                  const std::set<std::string> &defines, unsigned scale)
{
    const std::string k = key(name, multiscalar, defines, scale);

    std::promise<Ptr> promise;
    std::shared_future<Ptr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            ++hits_;
            future = it->second;
        } else {
            ++misses_;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(k, future);
        }
    }
    if (owner) {
        // Assemble outside the lock so distinct keys compile in
        // parallel; same-key waiters block on the future instead.
        try {
            promise.set_value(
                compileWorkload(name, multiscalar, defines, scale));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::uint64_t
ProgramCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ProgramCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace msim
