#include "sim/compiled_workload.hh"

#include <cstdio>

#include "asm/assembler.hh"
#include "common/logging.hh"

namespace msim {

namespace {

/** FNV-1a 64-bit over a byte range. */
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    // Hash the terminator too, so concatenated fields cannot alias
    // ("ab" + "c" vs "a" + "bc").
    return fnv1a(fnv1a(h, s.data(), s.size()), "\0", 1);
}

} // namespace

std::uint64_t
workloadContentHash(const workloads::Workload &workload, bool multiscalar,
                    const std::set<std::string> &defines, unsigned scale)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, workload.source);
    h = fnv1a(h, multiscalar ? "ms" : "sc", 2);
    for (const std::string &d : defines)
        h = fnv1a(h, d);
    h = fnv1a(h, &scale, sizeof(scale));
    return h;
}

std::shared_ptr<const CompiledWorkload>
compileWorkload(const workloads::Workload &workload, bool multiscalar,
                const std::set<std::string> &defines, unsigned scale)
{
    assembler::AsmOptions opts;
    opts.multiscalar = multiscalar;
    opts.defines = defines;
    opts.fileName = workload.name + (multiscalar ? ".ms.s" : ".sc.s");

    auto cw = std::make_shared<CompiledWorkload>();
    cw->workload = workload;
    cw->program = assembler::assemble(workload.source, opts);
    cw->multiscalar = multiscalar;
    cw->defines = defines;
    cw->scale = scale;
    cw->contentHash =
        workloadContentHash(workload, multiscalar, defines, scale);
    return cw;
}

std::shared_ptr<const CompiledWorkload>
compileWorkload(const std::string &name, bool multiscalar,
                const std::set<std::string> &defines, unsigned scale)
{
    return compileWorkload(workloads::get(name, scale), multiscalar,
                           defines, scale);
}

namespace {

std::string
contentKey(const workloads::Workload &workload, bool multiscalar,
           const std::set<std::string> &defines, unsigned scale)
{
    const std::uint64_t h =
        workloadContentHash(workload, multiscalar, defines, scale);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  (unsigned long long)h);
    return workload.name + "@" + hex;
}

} // namespace

std::string
ProgramCache::key(const std::string &name, bool multiscalar,
                  const std::set<std::string> &defines, unsigned scale)
{
    return contentKey(workloads::get(name, scale), multiscalar, defines,
                      scale);
}

std::shared_ptr<const CompiledWorkload>
ProgramCache::get(const std::string &name, bool multiscalar,
                  const std::set<std::string> &defines, unsigned scale)
{
    // Build the workload up front: the content key hashes its
    // generated source (unknown names throw here, before the map).
    const workloads::Workload workload = workloads::get(name, scale);
    const std::string k =
        contentKey(workload, multiscalar, defines, scale);

    std::promise<Ptr> promise;
    std::shared_future<Ptr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            ++hits_;
            future = it->second;
        } else {
            ++misses_;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(k, future);
        }
    }
    if (owner) {
        // Assemble outside the lock so distinct keys compile in
        // parallel; same-key waiters block on the future instead.
        try {
            promise.set_value(
                compileWorkload(workload, multiscalar, defines, scale));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

bool
ProgramCache::contains(const std::string &name, bool multiscalar,
                       const std::set<std::string> &defines,
                       unsigned scale) const
{
    const std::string k = key(name, multiscalar, defines, scale);
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(k) != 0;
}

std::uint64_t
ProgramCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ProgramCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace msim
