/**
 * @file
 * Compiled workloads and the program cache.
 *
 * A CompiledWorkload is the immutable, shareable half of a simulation
 * session: the workload definition plus its assembled Program for one
 * (mode, defines, scale) point. Once constructed it is never written
 * again, so any number of concurrent sessions (threads) may run the
 * same CompiledWorkload simultaneously — each session builds its own
 * processor, memory image and syscall state from it.
 *
 * ProgramCache memoizes compilation behind a mutex, keyed by a
 * content hash: FNV-1a 64 over the workload's assembly source, the
 * machine mode, the assembler defines and the input scale (prefixed
 * with the workload name, because a Workload bundles host-side
 * input/init/expected state beyond the source text). Repeat requests
 * for the same content never recompile, and a workload whose
 * generated source changes can never be served a stale program. Each
 * key is assembled exactly once even when many worker threads request
 * it at the same instant (late arrivals block on a shared future
 * instead of re-assembling), and hit/miss counters let sweeps assert
 * that no cell paid for a duplicate assembly.
 */

#ifndef MSIM_SIM_COMPILED_WORKLOAD_HH
#define MSIM_SIM_COMPILED_WORKLOAD_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "program/program.hh"
#include "workloads/workload.hh"

namespace msim {

/**
 * An assembled workload, immutable after construction.
 *
 * Thread-safety contract: every member is const after the factory
 * returns. `workload.init` lambdas capture their inputs by value and
 * write only into the MainMemory they are handed, and `runCompiled`
 * copies `workload.input` into the per-session processor, so sharing
 * one instance across threads is safe.
 */
struct CompiledWorkload
{
    /** The workload definition (source, input, golden model). */
    workloads::Workload workload;
    /** The assembled program for this mode/defines point. */
    Program program;
    /** Mode the program was assembled for. */
    bool multiscalar = true;
    /** Assembler defines the program was assembled with. */
    std::set<std::string> defines;
    /** Input scale the workload was built with. */
    unsigned scale = 1;
    /**
     * Content hash of (source, mode, defines, scale) — the
     * ProgramCache addressing key, also surfaced by msim-server so
     * clients can observe cache identity.
     */
    std::uint64_t contentHash = 0;
};

/**
 * FNV-1a 64 content hash over the compilation point: the workload's
 * assembly source text, the machine mode, the (sorted) assembler
 * defines and the input scale.
 */
std::uint64_t workloadContentHash(const workloads::Workload &workload,
                                  bool multiscalar,
                                  const std::set<std::string> &defines,
                                  unsigned scale);

/**
 * Assemble a registry workload into a CompiledWorkload.
 * Throws FatalError on unknown workloads or assembly errors.
 */
std::shared_ptr<const CompiledWorkload>
compileWorkload(const std::string &name, bool multiscalar,
                const std::set<std::string> &defines = {},
                unsigned scale = 1);

/** Assemble an already-built workload (custom workloads, tests). */
std::shared_ptr<const CompiledWorkload>
compileWorkload(const workloads::Workload &workload, bool multiscalar,
                const std::set<std::string> &defines = {},
                unsigned scale = 1);

/**
 * Memoized compilation, content-addressed by
 * workloadContentHash(source, mode, defines, scale).
 *
 * get() is safe to call from any number of threads; a key is
 * assembled exactly once (misses() counts assemblies). Compilation
 * runs outside the map lock, so distinct keys assemble in parallel;
 * concurrent requests for the same key wait on the winner's future.
 */
class ProgramCache
{
  public:
    std::shared_ptr<const CompiledWorkload>
    get(const std::string &name, bool multiscalar,
        const std::set<std::string> &defines = {}, unsigned scale = 1);

    /** Lookups served from the cache. */
    std::uint64_t hits() const;
    /** Lookups that triggered an assembly (== distinct keys seen). */
    std::uint64_t misses() const;
    /** Entries currently resident. */
    std::size_t size() const;
    /** True when the compilation point is already resident. */
    bool contains(const std::string &name, bool multiscalar,
                  const std::set<std::string> &defines = {},
                  unsigned scale = 1) const;
    /** Drop every entry and reset the counters. */
    void clear();

    /**
     * The content-addressed memoization key for a compilation point:
     * "<name>@<hex content hash>". Builds the workload to hash its
     * generated source (exposed for tests and the experiment
     * engine's memoization invariant).
     */
    static std::string key(const std::string &name, bool multiscalar,
                           const std::set<std::string> &defines,
                           unsigned scale);

  private:
    using Ptr = std::shared_ptr<const CompiledWorkload>;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Ptr>> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace msim

#endif // MSIM_SIM_COMPILED_WORKLOAD_HH
