#include "sim/runner.hh"

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"
#include "core/multiscalar_processor.hh"

namespace msim {

Program
assembleWorkload(const workloads::Workload &workload, bool multiscalar,
                 const std::set<std::string> &defines)
{
    assembler::AsmOptions opts;
    opts.multiscalar = multiscalar;
    opts.defines = defines;
    opts.fileName = workload.name + (multiscalar ? ".ms.s" : ".sc.s");
    return assembler::assemble(workload.source, opts);
}

namespace {

/** Build a processor, run the session, return the raw result. */
template <typename Proc, typename Config>
RunResult
runSession(const CompiledWorkload &compiled, Config cfg,
           const RunSpec &spec)
{
    if (spec.trace.enabled)
        cfg.trace = spec.trace;
    Proc proc(compiled.program, cfg);
    if (compiled.workload.init)
        compiled.workload.init(proc.memory(), compiled.program);
    proc.setInput(compiled.workload.input);
    return proc.run(spec.maxCycles);
}

} // namespace

RunResult
runCompiled(const CompiledWorkload &compiled, const RunSpec &spec)
{
    fatalIf(spec.multiscalar != compiled.multiscalar,
            "runCompiled: spec wants the ",
            spec.multiscalar ? "multiscalar" : "scalar",
            " machine but '", compiled.workload.name,
            "' was assembled for the ",
            compiled.multiscalar ? "multiscalar" : "scalar", " one");
    fatalIf(spec.defines != compiled.defines,
            "runCompiled: spec defines differ from the ones '",
            compiled.workload.name, "' was assembled with");

    if (spec.strictAnnotations) {
        const analysis::AnnotationVerifier verifier(compiled.program);
        const analysis::AnalysisReport report = verifier.verify();
        fatalIf(report.hasErrors(), "workload ", compiled.workload.name,
                " fails strict annotation verification:\n",
                report.toText());
    }

    RunResult result =
        spec.multiscalar
            ? runSession<MultiscalarProcessor>(compiled, spec.ms, spec)
            : runSession<ScalarProcessor>(compiled, spec.scalar, spec);

    if (result.hitMaxCycles) {
        std::ostringstream os;
        os << "fatal: workload " << compiled.workload.name
           << " exhausted its cycle budget (maxCycles=" << spec.maxCycles
           << ") without reaching the exit syscall after "
           << result.cycles << " cycles";
        throw BudgetExhaustedError(os.str(), result.cycles,
                                   spec.maxCycles);
    }
    fatalIf(!result.exited, "workload ", compiled.workload.name,
            " stopped without exiting (and without hitting the cycle "
            "budget — simulator bug?)");
    if (spec.checkOutput) {
        fatalIf(result.output != compiled.workload.expected,
                "workload ", compiled.workload.name,
                " produced wrong output.\n  expected: ",
                compiled.workload.expected, "\n  actual:   ",
                result.output);
    }
    return result;
}

RunResult
runWorkload(const workloads::Workload &workload, const RunSpec &spec)
{
    auto compiled =
        compileWorkload(workload, spec.multiscalar, spec.defines);
    return runCompiled(*compiled, spec);
}

} // namespace msim
