#include "sim/runner.hh"

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "core/multiscalar_processor.hh"

namespace msim {

Program
assembleWorkload(const workloads::Workload &workload, bool multiscalar,
                 const std::set<std::string> &defines)
{
    assembler::AsmOptions opts;
    opts.multiscalar = multiscalar;
    opts.defines = defines;
    opts.fileName = workload.name + (multiscalar ? ".ms.s" : ".sc.s");
    return assembler::assemble(workload.source, opts);
}

RunResult
runWorkload(const workloads::Workload &workload, const RunSpec &spec)
{
    Program prog =
        assembleWorkload(workload, spec.multiscalar, spec.defines);

    RunResult result;
    if (spec.multiscalar) {
        MsConfig cfg = spec.ms;
        if (spec.trace.enabled)
            cfg.trace = spec.trace;
        MultiscalarProcessor proc(prog, cfg);
        if (workload.init)
            workload.init(proc.memory(), prog);
        proc.setInput(workload.input);
        result = proc.run(spec.maxCycles);
    } else {
        ScalarConfig cfg = spec.scalar;
        if (spec.trace.enabled)
            cfg.trace = spec.trace;
        ScalarProcessor proc(prog, cfg);
        if (workload.init)
            workload.init(proc.memory(), prog);
        proc.setInput(workload.input);
        result = proc.run(spec.maxCycles);
    }

    fatalIf(!result.exited, "workload ", workload.name,
            " did not finish within ", spec.maxCycles, " cycles");
    if (spec.checkOutput) {
        fatalIf(result.output != workload.expected,
                "workload ", workload.name,
                " produced wrong output.\n  expected: ",
                workload.expected, "\n  actual:   ", result.output);
    }
    return result;
}

} // namespace msim
