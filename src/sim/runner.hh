/**
 * @file
 * Convenience harness: assemble a workload, build a processor,
 * initialize inputs, run, and verify the output against the
 * workload's golden model. All benchmarks and most integration tests
 * go through this interface.
 */

#ifndef MSIM_SIM_RUNNER_HH
#define MSIM_SIM_RUNNER_HH

#include <optional>
#include <set>
#include <string>

#include "core/ms_config.hh"
#include "core/run_result.hh"
#include "core/scalar_processor.hh"
#include "trace/trace_config.hh"
#include "workloads/workload.hh"

namespace msim {

/** How to run a workload. */
struct RunSpec
{
    /** True = multiscalar machine, false = scalar baseline. */
    bool multiscalar = true;
    MsConfig ms;
    ScalarConfig scalar;
    /** Extra assembler defines (workload variants). */
    std::set<std::string> defines;
    Cycle maxCycles = 1'000'000'000;
    /** Verify output against the workload's golden model. */
    bool checkOutput = true;
    /**
     * Event tracing. When enabled, overrides the trace config of
     * whichever machine the spec selects.
     */
    TraceConfig trace;
};

/**
 * Assemble and run a workload under the given spec.
 *
 * Throws FatalError when the program does not assemble, does not
 * terminate within maxCycles, or (with checkOutput) produces output
 * different from the golden model.
 */
RunResult runWorkload(const workloads::Workload &workload,
                      const RunSpec &spec);

/** Assemble a workload for the given mode (exposed for tests). */
Program assembleWorkload(const workloads::Workload &workload,
                         bool multiscalar,
                         const std::set<std::string> &defines = {});

} // namespace msim

#endif // MSIM_SIM_RUNNER_HH
