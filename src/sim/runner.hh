/**
 * @file
 * The run path, layered for re-entrancy:
 *
 *   compileWorkload / ProgramCache  (compiled_workload.hh)
 *           │  immutable CompiledWorkload, shareable across threads
 *           ▼
 *   runCompiled(compiled, spec)     — one stateless session: builds a
 *           │                         fresh processor + memory, runs,
 *           │                         verifies against the golden model
 *           ▼
 *   runWorkload(workload, spec)     — convenience one-shot (compile +
 *                                     run, no caching)
 *
 * All benchmarks and most integration tests go through this
 * interface; the parallel sweep engine (src/exp) calls runCompiled
 * from its worker threads.
 */

#ifndef MSIM_SIM_RUNNER_HH
#define MSIM_SIM_RUNNER_HH

#include <optional>
#include <set>
#include <string>

#include "common/logging.hh"
#include "core/ms_config.hh"
#include "core/run_result.hh"
#include "core/scalar_processor.hh"
#include "sim/compiled_workload.hh"
#include "trace/trace_config.hh"
#include "workloads/workload.hh"

namespace msim {

/**
 * Thrown by runCompiled when a run stops because it exhausted its
 * cycle budget (RunSpec::maxCycles) instead of exiting. A FatalError
 * subclass, so existing catch sites keep working, but it additionally
 * carries the budget and the cycles actually consumed so callers
 * (msim-server's `budget_exhausted` protocol error in particular) can
 * tell clients exactly how much to raise the budget on retry.
 */
class BudgetExhaustedError : public FatalError
{
  public:
    BudgetExhaustedError(const std::string &msg, Cycle consumed,
                         Cycle limit)
        : FatalError(msg), cyclesConsumed(consumed), budget(limit)
    {
    }

    /** Cycles simulated before the run was cut off (== the budget). */
    Cycle cyclesConsumed = 0;
    /** The budget that was exhausted (RunSpec::maxCycles). */
    Cycle budget = 0;
};

/** How to run a workload. */
struct RunSpec
{
    /** True = multiscalar machine, false = scalar baseline. */
    bool multiscalar = true;
    MsConfig ms;
    ScalarConfig scalar;
    /** Extra assembler defines (workload variants). */
    std::set<std::string> defines;
    Cycle maxCycles = 1'000'000'000;
    /** Verify output against the workload's golden model. */
    bool checkOutput = true;
    /**
     * Strict annotation mode: run the static annotation verifier
     * (src/analysis/) over the assembled program before simulating
     * and fail (FatalError, with the full diagnostic text) when it
     * reports any error. Warnings are not fatal. Off by default —
     * msim-lint covers the workloads in CI; this is the opt-in for
     * runs that want the same gate inline.
     */
    bool strictAnnotations = false;
    /**
     * Event tracing. When enabled, overrides the trace config of
     * whichever machine the spec selects.
     */
    TraceConfig trace;
};

/**
 * Run one simulation session over a compiled workload.
 *
 * Stateless and re-entrant: every piece of mutable state (processor,
 * memory image, syscall handler) is built locally, and @p compiled is
 * only read. Any number of threads may run the same CompiledWorkload
 * concurrently; identical (compiled, spec) sessions produce
 * bit-identical RunResults.
 *
 * The spec's mode and defines must match what @p compiled was
 * assembled with (FatalError otherwise — the mismatch would silently
 * run the wrong binary).
 *
 * Throws FatalError when the program does not terminate within
 * maxCycles or (with checkOutput) produces output different from the
 * golden model.
 */
RunResult runCompiled(const CompiledWorkload &compiled,
                      const RunSpec &spec);

/**
 * Assemble and run a workload under the given spec (one-shot
 * convenience wrapper: compileWorkload + runCompiled, no caching).
 */
RunResult runWorkload(const workloads::Workload &workload,
                      const RunSpec &spec);

/** Assemble a workload for the given mode (exposed for tests). */
Program assembleWorkload(const workloads::Workload &workload,
                         bool multiscalar,
                         const std::set<std::string> &defines = {});

} // namespace msim

#endif // MSIM_SIM_RUNNER_HH
