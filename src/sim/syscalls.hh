/**
 * @file
 * Syscall emulation. The paper's simulator executes all program code
 * cycle by cycle and traps system calls to the host OS; we do the
 * same with a small fixed syscall surface (SPIM-flavored codes):
 *
 *   $v0 = 1   print integer in $a0
 *   $v0 = 4   print NUL-terminated string at $a0
 *   $v0 = 5   read one integer from the input stream -> $v0 (-1 EOF)
 *   $v0 = 9   sbrk($a0) -> previous break
 *   $v0 = 10  exit
 *   $v0 = 11  print character in $a0
 *
 * In a multiscalar processor only the head (non-speculative) unit may
 * execute a syscall, so these never need to be undone.
 */

#ifndef MSIM_SIM_SYSCALLS_HH
#define MSIM_SIM_SYSCALLS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/exec.hh"

namespace msim {

/** Host-side syscall emulation shared by both processor models. */
class SyscallHandler
{
  public:
    /** Reads one byte of program-visible memory (through the ARB). */
    using ByteReader = std::function<std::uint8_t(Addr)>;

    SyscallHandler(ByteReader reader, Addr heap_start)
        : readByte_(std::move(reader)), brk_(heap_start)
    {
    }

    /** Provide the integer input stream (syscall 5 consumes it). */
    void
    setInput(std::deque<std::int32_t> input)
    {
        input_ = std::move(input);
    }

    /**
     * Execute a syscall.
     *
     * @param v0 Syscall code.
     * @param a0 First argument.
     * @param a1 Second argument.
     * @return the value left in $v0.
     */
    isa::RegValue
    execute(isa::RegValue v0, isa::RegValue a0, isa::RegValue a1)
    {
        (void)a1;
        switch (v0.asWord()) {
          case 1:
            output_ += std::to_string(a0.asSWord());
            return v0;
          case 4: {
            Addr p = a0.asWord();
            for (unsigned i = 0; i < 65536; ++i) {
                char c = char(readByte_(p + i));
                if (c == '\0')
                    break;
                output_.push_back(c);
            }
            return v0;
          }
          case 5: {
            if (input_.empty())
                return isa::RegValue::fromWord(Word(-1));
            std::int32_t v = input_.front();
            input_.pop_front();
            return isa::RegValue::fromWord(Word(v));
          }
          case 9: {
            Addr old = brk_;
            brk_ += a0.asWord();
            return isa::RegValue::fromWord(old);
          }
          case 10:
            exited_ = true;
            return v0;
          case 11:
            output_.push_back(char(a0.asWord() & 0xff));
            return v0;
          default:
            fatal("unknown syscall code ", v0.asWord());
        }
    }

    bool exited() const { return exited_; }
    const std::string &output() const { return output_; }
    Addr brk() const { return brk_; }

  private:
    ByteReader readByte_;
    Addr brk_;
    std::deque<std::int32_t> input_;
    std::string output_;
    bool exited_ = false;
};

} // namespace msim

#endif // MSIM_SIM_SYSCALLS_HH
