/**
 * @file
 * A sequential reference interpreter: executes a Program one
 * instruction at a time with plain sequential semantics and no
 * timing. This is the definition of correctness that both processor
 * models must reproduce — the property-based tests run random
 * programs on the reference, the scalar pipeline, and the multiscalar
 * machine and require identical outputs.
 */

#ifndef MSIM_SIM_REFERENCE_HH
#define MSIM_SIM_REFERENCE_HH

#include <deque>
#include <functional>
#include <string>

#include "mem/main_memory.hh"
#include "program/program.hh"

namespace msim {

/** Result of a reference interpretation. */
struct ReferenceResult
{
    bool exited = false;
    std::string output;
    std::uint64_t instructions = 0;
};

/**
 * Interpret @p prog sequentially until the exit syscall (or
 * @p max_steps instructions).
 *
 * @param prog The program (multiscalar annotations are ignored).
 * @param init Optional memory initialization hook.
 * @param input Integer stream for syscall 5.
 */
ReferenceResult referenceRun(
    const Program &prog,
    const std::function<void(MainMemory &, const Program &)> &init = {},
    std::deque<std::int32_t> input = {},
    std::uint64_t max_steps = 100'000'000);

} // namespace msim

#endif // MSIM_SIM_REFERENCE_HH
