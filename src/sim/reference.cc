#include "sim/reference.hh"

#include <array>

#include "common/logging.hh"
#include "isa/exec.hh"
#include "isa/registers.hh"
#include "sim/syscalls.hh"

namespace msim {

ReferenceResult
referenceRun(
    const Program &prog,
    const std::function<void(MainMemory &, const Program &)> &init,
    std::deque<std::int32_t> input, std::uint64_t max_steps)
{
    using isa::InstClass;
    using isa::RegValue;

    MainMemory mem;
    mem.loadProgram(prog);
    if (init)
        init(mem, prog);

    SyscallHandler syscalls(
        [&mem](Addr a) { return std::uint8_t(mem.read(a, 1)); },
        prog.heapStart);
    syscalls.setInput(std::move(input));

    std::array<RegValue, kNumRegs> regs{};
    regs[size_t(isa::kRegSp)] = RegValue::fromWord(kStackTop);

    auto read = [&](RegIndex r) {
        return r <= 0 ? RegValue{} : regs[size_t(r)];
    };
    auto write = [&](RegIndex r, RegValue v) {
        if (r > 0 && r < kNumRegs)
            regs[size_t(r)] = v;
    };

    ReferenceResult result;
    Addr pc = prog.entry;
    for (std::uint64_t step = 0; step < max_steps; ++step) {
        const isa::Instruction *inst = prog.instrAt(pc);
        fatalIf(!inst, "reference interpreter ran off the program "
                       "text at 0x", std::hex, pc, std::dec);
        result.instructions += 1;
        Addr next = pc + kInstrBytes;
        switch (inst->cls()) {
          case InstClass::kLoad: {
            const Addr addr = isa::memAddr(*inst, read(inst->rs));
            const unsigned size = isa::memSize(inst->op);
            write(inst->rd,
                  isa::loadResult(inst->op, mem.read(addr, size)));
            break;
          }
          case InstClass::kStore: {
            const Addr addr = isa::memAddr(*inst, read(inst->rs));
            const unsigned size = isa::memSize(inst->op);
            mem.write(addr, isa::storeBytes(inst->op, read(inst->rt)),
                      size);
            break;
          }
          case InstClass::kBranch: {
            auto out =
                isa::evalBranch(*inst, read(inst->rs), read(inst->rt));
            if (inst->rd != kNoReg)  // jal/jalr link
                write(inst->rd, isa::evalAlu(*inst, read(inst->rs),
                                             read(inst->rt), pc));
            if (out.taken)
                next = out.target;
            break;
          }
          case InstClass::kSyscall: {
            const RegValue v0 = syscalls.execute(
                read(isa::intReg(isa::kRegV0)),
                read(isa::intReg(isa::kRegA0)),
                read(isa::intReg(isa::kRegA1)));
            write(isa::intReg(isa::kRegV0), v0);
            if (syscalls.exited()) {
                // The exiting syscall never reaches writeback in the
                // pipelines, so it is not a committed instruction.
                result.instructions -= 1;
                result.exited = true;
                result.output = syscalls.output();
                return result;
            }
            break;
          }
          case InstClass::kRelease:
          case InstClass::kNop:
            break;
          default:
            write(inst->rd, isa::evalAlu(*inst, read(inst->rs),
                                         read(inst->rt), pc));
            break;
        }
        pc = next;
    }
    result.output = syscalls.output();
    return result;
}

} // namespace msim
