#include "server/protocol.hh"

#include <cerrno>
#include <cstring>
#include <set>

#include <sys/socket.h>
#include <unistd.h>

#include "config/machine_shape.hh"
#include "trace/cycle_accounting.hh"

namespace msim::server {

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::kParseError: return "parse_error";
      case ErrCode::kBadRequest: return "bad_request";
      case ErrCode::kUnknownType: return "unknown_type";
      case ErrCode::kUnknownWorkload: return "unknown_workload";
      case ErrCode::kBudgetExhausted: return "budget_exhausted";
      case ErrCode::kRunFailed: return "run_failed";
      case ErrCode::kTimeout: return "timeout";
      case ErrCode::kOverloaded: return "overloaded";
      case ErrCode::kShuttingDown: return "shutting_down";
      case ErrCode::kInternal: return "internal";
    }
    return "internal";
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

namespace {

/** Read exactly @p n bytes; returns bytes read (< n only on EOF). */
std::size_t
readFully(int fd, void *buf, std::size_t n)
{
    auto *p = static_cast<char *>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(ErrCode::kInternal,
                                std::string("read failed: ") +
                                    std::strerror(errno));
        }
        got += std::size_t(r);
    }
    return got;
}

} // namespace

bool
readFrame(int fd, std::string &payload)
{
    unsigned char hdr[4];
    const std::size_t got = readFully(fd, hdr, sizeof(hdr));
    if (got == 0)
        return false; // clean EOF between frames
    if (got < sizeof(hdr))
        throw ProtocolError(ErrCode::kBadRequest,
                            "truncated frame header");
    const std::uint32_t len = (std::uint32_t(hdr[0]) << 24) |
                              (std::uint32_t(hdr[1]) << 16) |
                              (std::uint32_t(hdr[2]) << 8) |
                              std::uint32_t(hdr[3]);
    // Reject before allocating: the prefix is attacker-controlled.
    if (len > kMaxFrameBytes)
        throw ProtocolError(ErrCode::kBadRequest,
                            "frame length " + std::to_string(len) +
                                " exceeds the " +
                                std::to_string(kMaxFrameBytes) +
                                "-byte limit");
    payload.resize(len);
    if (len != 0 && readFully(fd, payload.data(), len) < len)
        throw ProtocolError(ErrCode::kBadRequest,
                            "truncated frame payload");
    return true;
}

void
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw ProtocolError(ErrCode::kInternal,
                            "response frame exceeds the frame limit");
    const std::uint32_t len = std::uint32_t(payload.size());
    std::string wire;
    wire.reserve(4 + payload.size());
    wire += char((len >> 24) & 0xFF);
    wire += char((len >> 16) & 0xFF);
    wire += char((len >> 8) & 0xFF);
    wire += char(len & 0xFF);
    wire += payload;

    std::size_t sent = 0;
    while (sent < wire.size()) {
        // MSG_NOSIGNAL: a vanished peer must surface as an error on
        // this connection, not SIGPIPE for the whole daemon.
        const ssize_t r = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(ErrCode::kInternal,
                                std::string("send failed: ") +
                                    std::strerror(errno));
        }
        sent += std::size_t(r);
    }
}

// ---------------------------------------------------------------------
// Request parsing.
// ---------------------------------------------------------------------

namespace {

[[noreturn]] void
badRequest(const std::string &msg)
{
    throw ProtocolError(ErrCode::kBadRequest, msg);
}

std::string
requireString(const json::Value &obj, const char *field)
{
    const json::Value *v = obj.find(field);
    if (v == nullptr || !v->isString())
        badRequest(std::string("'") + field +
                   "' must be a string and is required");
    return v->asString();
}

bool
optionalBool(const json::Value &obj, const char *field, bool dflt)
{
    const json::Value *v = obj.find(field);
    if (v == nullptr)
        return dflt;
    if (!v->isBool())
        badRequest(std::string("'") + field + "' must be a boolean");
    return v->asBool();
}

std::uint64_t
optionalUint(const json::Value &obj, const char *field,
             std::uint64_t dflt, std::uint64_t min, std::uint64_t max)
{
    const json::Value *v = obj.find(field);
    if (v == nullptr)
        return dflt;
    if (!v->isNumber() || v->asDouble() < 0 ||
        double(v->asInt()) != v->asDouble())
        badRequest(std::string("'") + field +
                   "' must be a non-negative integer");
    const std::uint64_t u = std::uint64_t(v->asInt());
    if (u < min || u > max)
        badRequest(std::string("'") + field + "' must be in [" +
                   std::to_string(min) + ", " + std::to_string(max) +
                   "]");
    return u;
}

std::set<std::string>
optionalDefines(const json::Value &obj)
{
    std::set<std::string> defines;
    const json::Value *v = obj.find("defines");
    if (v == nullptr)
        return defines;
    if (!v->isArray())
        badRequest("'defines' must be an array of strings");
    for (const json::Value &d : v->items()) {
        if (!d.isString())
            badRequest("'defines' must be an array of strings");
        defines.insert(d.asString());
    }
    return defines;
}

} // namespace

RunSpec
specFromJson(const json::Value *spec)
{
    RunSpec out;
    if (spec == nullptr)
        return out;
    if (!spec->isObject())
        badRequest("'spec' must be an object");
    // The declarative machine (a full msim-shape-v1 document) is
    // applied first so the flat fields below can override it.
    if (const json::Value *machine = spec->find("machine")) {
        try {
            config::applyShape(out, config::shapeFromJson(*machine));
        } catch (const config::ConfigError &e) {
            badRequest(std::string("'machine': ") + e.what());
        }
    }
    for (const auto &[key, value] : spec->entries()) {
        (void)value;
        if (key == "machine") {
            // handled above
        } else if (key == "multiscalar") {
            out.multiscalar = optionalBool(*spec, "multiscalar", true);
        } else if (key == "units") {
            out.ms.numUnits = unsigned(
                optionalUint(*spec, "units", 4, 1, 64));
        } else if (key == "issue_width") {
            const unsigned w = unsigned(
                optionalUint(*spec, "issue_width", 1, 1, 16));
            out.ms.pu.issueWidth = w;
            out.scalar.pu.issueWidth = w;
        } else if (key == "out_of_order") {
            const bool ooo = optionalBool(*spec, "out_of_order", false);
            out.ms.pu.outOfOrder = ooo;
            out.scalar.pu.outOfOrder = ooo;
        } else if (key == "ring_hop_latency") {
            out.ms.ringHopLatency = unsigned(
                optionalUint(*spec, "ring_hop_latency", 1, 0, 64));
        } else if (key == "arb_entries_per_bank") {
            out.ms.arbEntriesPerBank = unsigned(optionalUint(
                *spec, "arb_entries_per_bank", 256, 1, 1u << 20));
        } else if (key == "arb_full_policy") {
            const std::string p =
                requireString(*spec, "arb_full_policy");
            if (p == "squash")
                out.ms.arbFullPolicy = ArbFullPolicy::kSquash;
            else if (p == "stall")
                out.ms.arbFullPolicy = ArbFullPolicy::kStall;
            else
                badRequest("'arb_full_policy' must be \"squash\" or "
                           "\"stall\"");
        } else if (key == "predictor") {
            const std::string p = requireString(*spec, "predictor");
            if (p != "pas" && p != "last" && p != "static")
                badRequest("'predictor' must be \"pas\", \"last\" or "
                           "\"static\"");
            out.ms.predictor = p;
        } else if (key == "defines") {
            out.defines = optionalDefines(*spec);
        } else if (key == "max_cycles") {
            out.maxCycles = optionalUint(*spec, "max_cycles",
                                         out.maxCycles, 1,
                                         std::uint64_t(1) << 62);
        } else if (key == "check_output") {
            out.checkOutput = optionalBool(*spec, "check_output", true);
        } else if (key == "strict_annotations") {
            out.strictAnnotations =
                optionalBool(*spec, "strict_annotations", false);
        } else {
            // Typos must not silently run a default machine.
            badRequest("unknown spec field '" + key + "'");
        }
    }
    return out;
}

json::Value
specToJson(const RunSpec &spec)
{
    const PuConfig &pu = spec.multiscalar ? spec.ms.pu
                                          : spec.scalar.pu;
    json::Value v = json::Value::object();
    v.set("multiscalar", json::Value(spec.multiscalar));
    if (spec.multiscalar) {
        v.set("units", json::Value(spec.ms.numUnits));
        v.set("ring_hop_latency", json::Value(spec.ms.ringHopLatency));
        v.set("arb_entries_per_bank",
              json::Value(spec.ms.arbEntriesPerBank));
        v.set("arb_full_policy",
              json::Value(spec.ms.arbFullPolicy ==
                                  ArbFullPolicy::kSquash
                              ? "squash"
                              : "stall"));
        v.set("predictor", json::Value(spec.ms.predictor));
    }
    v.set("issue_width", json::Value(pu.issueWidth));
    v.set("out_of_order", json::Value(pu.outOfOrder));
    if (!spec.defines.empty()) {
        json::Value defs = json::Value::array();
        for (const std::string &d : spec.defines)
            defs.push(json::Value(d));
        v.set("defines", std::move(defs));
    }
    v.set("max_cycles", json::Value(spec.maxCycles));
    v.set("check_output", json::Value(spec.checkOutput));
    if (spec.strictAnnotations)
        v.set("strict_annotations", json::Value(true));
    return v;
}

namespace {

AssembleRequest
parseAssemble(const json::Value &obj)
{
    AssembleRequest req;
    req.workload = requireString(obj, "workload");
    req.multiscalar = optionalBool(obj, "multiscalar", true);
    req.defines = optionalDefines(obj);
    req.scale = unsigned(optionalUint(obj, "scale", 1, 1, 10000));
    return req;
}

RunRequest
parseRun(const json::Value &obj)
{
    RunRequest req;
    req.workload = requireString(obj, "workload");
    req.scale = unsigned(optionalUint(obj, "scale", 1, 1, 10000));
    req.spec = specFromJson(obj.find("spec"));
    return req;
}

SweepRequest
parseSweep(const json::Value &obj)
{
    SweepRequest req;
    const json::Value *cells = obj.find("cells");
    if (cells == nullptr || !cells->isArray())
        badRequest("'cells' must be an array and is required");
    if (cells->items().empty())
        badRequest("'cells' must not be empty");
    if (cells->items().size() > kMaxSweepCells)
        badRequest("'cells' exceeds the " +
                   std::to_string(kMaxSweepCells) + "-cell limit");
    std::set<std::string> names;
    for (const json::Value &c : cells->items()) {
        if (!c.isObject())
            badRequest("every sweep cell must be an object");
        exp::Cell cell;
        cell.name = requireString(c, "name");
        if (!names.insert(cell.name).second)
            badRequest("duplicate cell name '" + cell.name + "'");
        cell.workload = requireString(c, "workload");
        cell.scale = unsigned(optionalUint(c, "scale", 1, 1, 10000));
        cell.spec = specFromJson(c.find("spec"));
        req.cells.push_back(std::move(cell));
    }
    return req;
}

} // namespace

Request
parseRequest(const std::string &payload)
{
    json::Value doc;
    try {
        doc = json::Value::parse(payload);
    } catch (const json::ParseError &e) {
        throw ProtocolError(ErrCode::kParseError, e.what());
    }
    if (!doc.isObject())
        badRequest("request must be a JSON object");

    Request req;
    if (const json::Value *id = doc.find("id")) {
        if (!id->isNumber())
            badRequest("'id' must be a number");
        req.id = id->asInt();
    }
    req.timeoutMs = optionalUint(doc, "timeout_ms", 0, 0,
                                 24ull * 3600 * 1000);

    const std::string type = requireString(doc, "type");
    if (type == "ping") {
        req.kind = Request::Kind::Ping;
    } else if (type == "stats") {
        req.kind = Request::Kind::Stats;
    } else if (type == "assemble") {
        req.kind = Request::Kind::Assemble;
        req.assemble = parseAssemble(doc);
    } else if (type == "run") {
        req.kind = Request::Kind::Run;
        req.run = parseRun(doc);
    } else if (type == "sweep") {
        req.kind = Request::Kind::Sweep;
        req.sweep = parseSweep(doc);
    } else {
        throw ProtocolError(ErrCode::kUnknownType,
                            "unknown request type '" + type + "'");
    }
    return req;
}

// ---------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------

json::Value
makeResponse(const char *type, std::int64_t id)
{
    json::Value v = json::Value::object();
    v.set("rpc", json::Value(kRpcVersion));
    v.set("type", json::Value(type));
    v.set("id", json::Value(id));
    return v;
}

std::string
errorFrame(std::int64_t id, ErrCode code, const std::string &message,
           const json::Value *extra)
{
    json::Value v = makeResponse("error", id);
    v.set("code", json::Value(errCodeName(code)));
    v.set("message", json::Value(message));
    if (extra != nullptr && extra->isObject())
        for (const auto &[k, field] : extra->entries())
            v.set(k, field);
    return v.dump();
}

json::Value
resultToJson(const RunResult &r)
{
    json::Value v = json::Value::object();
    v.set("cycles", json::Value(r.cycles));
    v.set("instructions", json::Value(r.instructions));
    v.set("squashed_instructions",
          json::Value(r.squashedInstructions));
    v.set("ipc", json::Value(r.ipc()));
    v.set("exited", json::Value(r.exited));
    v.set("fast_forwarded_cycles",
          json::Value(r.fastForwardedCycles));
    v.set("tasks_retired", json::Value(r.tasksRetired));
    v.set("tasks_squashed", json::Value(r.tasksSquashed));
    v.set("task_predictions", json::Value(r.taskPredictions));
    v.set("task_pred_hits", json::Value(r.taskPredHits));
    v.set("pred_accuracy", json::Value(r.predAccuracy()));
    v.set("control_squashes", json::Value(r.controlSquashes));
    v.set("memory_squashes", json::Value(r.memorySquashes));
    v.set("arb_full_squashes", json::Value(r.arbFullSquashes));
    json::Value acct = json::Value::object();
    for (std::size_t i = 0; i < kNumCycleCats; ++i)
        acct.set(cycleCatName(CycleCat(i)),
                 json::Value(r.accounting[CycleCat(i)]));
    v.set("accounting", std::move(acct));
    v.set("output", json::Value(r.output));
    return v;
}

json::Value
makeRunRequest(const std::string &workload, const RunSpec &spec,
               unsigned scale, std::int64_t id,
               std::uint64_t timeoutMs)
{
    json::Value v = json::Value::object();
    v.set("type", json::Value("run"));
    v.set("id", json::Value(id));
    if (timeoutMs != 0)
        v.set("timeout_ms", json::Value(timeoutMs));
    v.set("workload", json::Value(workload));
    v.set("scale", json::Value(scale));
    v.set("spec", specToJson(spec));
    return v;
}

json::Value
makeAssembleRequest(const AssembleRequest &req, std::int64_t id)
{
    json::Value v = json::Value::object();
    v.set("type", json::Value("assemble"));
    v.set("id", json::Value(id));
    v.set("workload", json::Value(req.workload));
    v.set("multiscalar", json::Value(req.multiscalar));
    if (!req.defines.empty()) {
        json::Value defs = json::Value::array();
        for (const std::string &d : req.defines)
            defs.push(json::Value(d));
        v.set("defines", std::move(defs));
    }
    v.set("scale", json::Value(req.scale));
    return v;
}

json::Value
makeSweepRequest(const std::vector<exp::Cell> &cells, std::int64_t id,
                 std::uint64_t timeoutMs)
{
    json::Value v = json::Value::object();
    v.set("type", json::Value("sweep"));
    v.set("id", json::Value(id));
    if (timeoutMs != 0)
        v.set("timeout_ms", json::Value(timeoutMs));
    json::Value arr = json::Value::array();
    for (const exp::Cell &c : cells) {
        json::Value cell = json::Value::object();
        cell.set("name", json::Value(c.name));
        cell.set("workload", json::Value(c.workload));
        cell.set("scale", json::Value(c.scale));
        cell.set("spec", specToJson(c.spec));
        arr.push(std::move(cell));
    }
    v.set("cells", std::move(arr));
    return v;
}

} // namespace msim::server
