/**
 * @file
 * Compatibility shim: the JSON library moved to src/common so the
 * machine shape configuration layer (src/config) can share it with
 * the msim-rpc-v1 protocol. Include "common/json.hh" in new code;
 * this header only keeps historical `server/json.hh` includes (and
 * external users of the server headers) building.
 */

#ifndef MSIM_SERVER_JSON_SHIM_HH
#define MSIM_SERVER_JSON_SHIM_HH

#include "common/json.hh"

#endif // MSIM_SERVER_JSON_SHIM_HH
