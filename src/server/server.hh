/**
 * @file
 * The msim-server TCP front end.
 *
 * Server binds a loopback listener (port 0 = ephemeral, reported by
 * port()), runs an accept thread, and gives every connection its own
 * reader thread. A connection speaks msim-rpc-v1 (protocol.hh): the
 * reader parses each frame, hands it to the shared SimService — which
 * shards the simulation work onto the daemon-wide worker pool — and
 * writes the response frames back; only the connection's own thread
 * writes to its socket, so streamed sweep cells never interleave with
 * other responses.
 *
 * Graceful shutdown (requestShutdown, used by the daemon's
 * SIGINT/SIGTERM handlers):
 *   1. new work is refused: requests arriving on existing
 *      connections and brand-new connections both receive a
 *      `shutting_down` error frame;
 *   2. in-flight requests — including a sweep mid-stream — drain to
 *      completion and their responses are fully written;
 *   3. sockets are closed, every thread is joined, and shutdown()
 *      returns so the daemon can exit 0.
 */

#ifndef MSIM_SERVER_SERVER_HH
#define MSIM_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "server/service.hh"

namespace msim::server {

/** Daemon configuration: the service tunables plus the socket's. */
struct ServerConfig
{
    ServiceConfig service;
    /** Bind address (loopback by default; this is a local service). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Cap on concurrently open client connections. */
    unsigned maxConnections = 64;
};

/** A running msim-server instance. */
class Server
{
  public:
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and start accepting (FatalError on bind errors). */
    void start();

    /** The bound TCP port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /**
     * Flip into drain mode: refuse new work with `shutting_down`.
     * Cheap and thread-safe — the daemon's signal path calls it from
     * the main loop, tests call it mid-sweep.
     */
    void requestShutdown();

    /** True once requestShutdown was called. */
    bool shuttingDown() const { return shuttingDown_.load(); }

    /**
     * Graceful stop: requestShutdown, wait for in-flight requests to
     * drain, close every socket, join every thread. Idempotent.
     */
    void shutdown();

    SimService &service() { return service_; }
    const ServerConfig &config() const { return config_; }

  private:
    struct Conn
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void connectionLoop(Conn *conn);
    /** Join and close finished connections (under connsMutex_). */
    void reapLocked();
    /** Begin/end one in-flight request (drain bookkeeping). */
    bool beginRequest();
    void endRequest();

    ServerConfig config_;
    SimService service_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;

    std::atomic<bool> shuttingDown_{false};
    bool stopped_ = false;

    std::mutex connsMutex_;
    std::list<Conn> conns_;

    std::mutex inflightMutex_;
    std::condition_variable inflightCv_;
    std::size_t inflight_ = 0;
};

} // namespace msim::server

#endif // MSIM_SERVER_SERVER_HH
