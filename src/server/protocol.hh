/**
 * @file
 * msim-rpc-v1: the wire protocol of msim-server.
 *
 * Framing: every message is a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON. Frames above
 * kMaxFrameBytes are rejected before any allocation and the
 * connection is dropped (an attacker-controlled length prefix must
 * never size a buffer).
 *
 * Requests are JSON objects with a "type" field — "ping", "stats",
 * "assemble", "run" or "sweep" — an optional numeric "id" echoed in
 * every response frame, and type-specific fields documented in
 * DESIGN.md ("msim-server" section). Responses are single frames,
 * except sweeps, which stream one "sweep_cell" frame per cell as it
 * completes (carrying the exact msim-sweep-v1 cell row) and end with
 * a "sweep_done" summary frame.
 *
 * Every failure is a structured "error" frame with a stable "code"
 * from ErrCode; `budget_exhausted` errors additionally carry
 * "cycles_consumed" and "budget" so clients can retry with a larger
 * cycle budget.
 */

#ifndef MSIM_SERVER_PROTOCOL_HH
#define MSIM_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "common/json.hh"
#include "sim/runner.hh"

namespace msim::server {

/** Protocol identifier, echoed in every response frame. */
inline constexpr const char *kRpcVersion = "msim-rpc-v1";

/** Hard cap on a frame payload (4 MiB requests are already absurd). */
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/** Hard cap on cells in one sweep request. */
inline constexpr std::size_t kMaxSweepCells = 4096;

/** Stable error codes of msim-rpc-v1 error frames. */
enum class ErrCode
{
    kParseError,       //!< frame payload is not valid JSON
    kBadRequest,       //!< JSON is valid but violates the schema
    kUnknownType,      //!< unrecognized request "type"
    kUnknownWorkload,  //!< workload name not in the registry
    kBudgetExhausted,  //!< run hit its cycle budget (hitMaxCycles)
    kRunFailed,        //!< simulation failed (bad output, assembler…)
    kTimeout,          //!< wall-clock deadline exceeded
    kOverloaded,       //!< admission queue full, request shed
    kShuttingDown,     //!< server is draining, try another instance
    kInternal,         //!< unexpected server-side error
};

/** Wire name of an error code (e.g. "budget_exhausted"). */
const char *errCodeName(ErrCode code);

/** A protocol-level failure: maps to one error frame. */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(ErrCode code, const std::string &message)
        : std::runtime_error(message), code(code)
    {
    }

    ProtocolError(ErrCode code, const std::string &message,
                  json::Value extraFields)
        : std::runtime_error(message), code(code),
          extra(std::move(extraFields))
    {
    }

    ErrCode code;
    /** Extra top-level fields merged into the error frame (object). */
    json::Value extra;
};

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * @return false on clean EOF before any byte of a frame; throws
 * ProtocolError on truncated frames, read errors, or a length prefix
 * above kMaxFrameBytes.
 */
bool readFrame(int fd, std::string &payload);

/** Write one frame (4-byte big-endian length + payload). Throws
 *  ProtocolError(kInternal) on write errors / closed peers. */
void writeFrame(int fd, const std::string &payload);

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/** Parsed "assemble" request. */
struct AssembleRequest
{
    std::string workload;
    bool multiscalar = true;
    std::set<std::string> defines;
    unsigned scale = 1;
};

/** Parsed "run" request (a single cell without a name). */
struct RunRequest
{
    std::string workload;
    unsigned scale = 1;
    RunSpec spec;
};

/** Parsed "sweep" request. */
struct SweepRequest
{
    std::vector<exp::Cell> cells;
};

/** Any parsed request. */
struct Request
{
    enum class Kind { Ping, Stats, Assemble, Run, Sweep };

    Kind kind = Kind::Ping;
    /** Client-chosen id echoed in responses (0 when absent). */
    std::int64_t id = 0;
    /** Wall-clock deadline for this request, ms (0 = server default). */
    std::uint64_t timeoutMs = 0;

    AssembleRequest assemble;
    RunRequest run;
    SweepRequest sweep;
};

/**
 * Parse and validate one request payload. Throws ProtocolError with
 * kParseError / kBadRequest / kUnknownType on anything malformed;
 * never crashes on attacker-controlled input (fuzzed in
 * tests/test_server.cc).
 */
Request parseRequest(const std::string &payload);

/**
 * Build a RunSpec from a request's "spec" object (nullptr = all
 * defaults). Understands: multiscalar, units, issue_width,
 * out_of_order, ring_hop_latency, arb_entries_per_bank,
 * arb_full_policy ("squash"/"stall"), predictor, defines, max_cycles,
 * check_output, and a "machine" object holding a full msim-shape-v1
 * document (src/config) — the same schema as the shipped shape files,
 * so any declarative machine a client can describe on disk it can
 * submit inline. The machine object is applied first and the flat
 * fields override it, so requests that carry both stay consistent.
 * Unknown spec fields and malformed machine objects are a kBadRequest
 * error (typos must not silently run a default machine).
 */
RunSpec specFromJson(const json::Value *spec);

/** Serialize a RunSpec into the "spec" object schema above. */
json::Value specToJson(const RunSpec &spec);

// ---------------------------------------------------------------------
// Response builders (server side) and request builders (client side).
// ---------------------------------------------------------------------

/** Common response envelope: {"rpc", "type", "id"}. */
json::Value makeResponse(const char *type, std::int64_t id);

/** Build an error frame payload. */
std::string errorFrame(std::int64_t id, ErrCode code,
                       const std::string &message,
                       const json::Value *extra = nullptr);

/** Serialize a RunResult (headline counters + accounting + output). */
json::Value resultToJson(const RunResult &result);

/** Build the JSON for a "run" request. */
json::Value makeRunRequest(const std::string &workload,
                           const RunSpec &spec, unsigned scale = 1,
                           std::int64_t id = 0,
                           std::uint64_t timeoutMs = 0);

/** Build the JSON for an "assemble" request. */
json::Value makeAssembleRequest(const AssembleRequest &req,
                                std::int64_t id = 0);

/** Build the JSON for a "sweep" request over @p cells. */
json::Value makeSweepRequest(const std::vector<exp::Cell> &cells,
                             std::int64_t id = 0,
                             std::uint64_t timeoutMs = 0);

} // namespace msim::server

#endif // MSIM_SERVER_PROTOCOL_HH
