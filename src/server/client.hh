/**
 * @file
 * msim-rpc-v1 client: one TCP connection to an msim-server. Shared
 * by the msim-client CLI, the load-generator benchmark and the
 * tests. call() covers single-response requests; sweep() drives a
 * streamed sweep, invoking a callback per "sweep_cell" frame and
 * returning the "sweep_done" summary (cells are reported back in
 * registration order via CollectedSweep when the caller wants a
 * full msim-sweep-v1 document).
 */

#ifndef MSIM_SERVER_CLIENT_HH
#define MSIM_SERVER_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "server/protocol.hh"

namespace msim::server {

/** A connected msim-rpc-v1 client. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to host:port (FatalError on failure). */
    void connect(const std::string &host, std::uint16_t port);
    bool connected() const { return fd_ >= 0; }
    void close();

    /** Send one request document. */
    void send(const json::Value &request);
    /**
     * Read the next response frame (parsed). Throws FatalError on
     * EOF or malformed frames from the server.
     */
    json::Value recv();
    /** send() + recv() for single-response requests. */
    json::Value call(const json::Value &request);

    /**
     * Per-cell record of a streamed sweep: the raw msim-sweep-v1
     * cell row (JSON text) plus its registration index.
     */
    struct StreamedCell
    {
        std::size_t index = 0;
        /** Parsed cell row ("name", "ok", "cycles", …). */
        json::Value cell;
    };

    /** Result of a sweep() call. */
    struct SweepOutcome
    {
        /** The "sweep_done" summary frame. */
        json::Value done;
        /** Cells in registration order (index-sorted). */
        std::vector<StreamedCell> cells;
    };

    /**
     * Send a sweep request and consume the stream. @p onCell (may be
     * null) sees every cell in completion order, as streamed; the
     * returned outcome holds them sorted back into registration
     * order. Throws FatalError when the server answers with an error
     * frame instead of a stream.
     */
    SweepOutcome
    sweep(const json::Value &request,
          const std::function<void(const StreamedCell &)> &onCell =
              nullptr);

  private:
    int fd_ = -1;
};

/** True when a parsed response frame is an "error" frame. */
bool isErrorFrame(const json::Value &response);

/** "code" of an error frame ("" when not an error frame). */
std::string errorCode(const json::Value &response);

} // namespace msim::server

#endif // MSIM_SERVER_CLIENT_HH
