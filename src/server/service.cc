#include "server/service.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <sstream>

#include "exp/report.hh"
#include "exp/scheduler.hh"
#include "workloads/workload.hh"

namespace msim::server {

namespace {

double
secondsSince(SimService::Clock::time_point t0)
{
    return std::chrono::duration<double>(SimService::Clock::now() - t0)
        .count();
}

std::string
programKey(const CompiledWorkload &cw)
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  (unsigned long long)cw.contentHash);
    return cw.workload.name + "@" + hex;
}

/** One streamed sweep cell: the exact msim-sweep-v1 cell row. */
std::string
cellFrame(std::int64_t id, std::size_t index,
          const exp::CellResult &cell)
{
    std::ostringstream os;
    os << "{\"rpc\":\"" << kRpcVersion
       << "\",\"type\":\"sweep_cell\",\"id\":" << id
       << ",\"index\":" << index << ",\"cell\":\n";
    exp::writeJsonCell(os, cell, "");
    os << "}";
    return os.str();
}

} // namespace

SimService::SimService(const ServiceConfig &config)
    : config_(config),
      pool_(config.jobs == 0 ? exp::SweepScheduler::defaultJobs()
                             : config.jobs,
            config.queueCapacity)
{
}

SimService::Clock::time_point
SimService::deadlineFor(const Request &req) const
{
    const std::uint64_t ms =
        req.timeoutMs != 0 ? req.timeoutMs : config_.defaultTimeoutMs;
    if (ms == 0)
        return Clock::time_point::max();
    return Clock::now() + std::chrono::milliseconds(ms);
}

json::Value
SimService::statsJson() const
{
    json::Value v = stats_.toJson();
    json::Value queue = json::Value::object();
    queue.set("capacity", json::Value(pool_.queueCapacity()));
    queue.set("depth", json::Value(pool_.queued()));
    v.set("queue", std::move(queue));
    v.set("workers", json::Value(pool_.threads()));
    json::Value cache = json::Value::object();
    cache.set("hits", json::Value(cache_.hits()));
    cache.set("misses", json::Value(cache_.misses()));
    cache.set("entries", json::Value(cache_.size()));
    v.set("program_cache", std::move(cache));
    return v;
}

std::string
SimService::handlePayload(const std::string &payload, const Emit &emit)
{
    Request req;
    try {
        req = parseRequest(payload);
    } catch (const ProtocolError &e) {
        ++stats_.responsesError;
        return errorFrame(0, e.code, e.what(), &e.extra);
    }
    return handle(req, emit);
}

std::string
SimService::handle(const Request &req, const Emit &emit)
{
    switch (req.kind) {
      case Request::Kind::Ping:
        ++stats_.requestsPing;
        ++stats_.responsesOk;
        return makeResponse("pong", req.id).dump();
      case Request::Kind::Stats: {
        ++stats_.requestsStats;
        ++stats_.responsesOk;
        json::Value v = makeResponse("stats", req.id);
        v.set("stats", statsJson());
        return v.dump();
      }
      case Request::Kind::Assemble:
        ++stats_.requestsAssemble;
        return handleAssemble(req);
      case Request::Kind::Run:
        ++stats_.requestsRun;
        return handleRun(req);
      case Request::Kind::Sweep:
        ++stats_.requestsSweep;
        return handleSweep(req, emit);
    }
    ++stats_.responsesError;
    return errorFrame(req.id, ErrCode::kInternal,
                      "unhandled request kind");
}

namespace {

/** Error payload builders shared by the handlers below. */
std::string
errorPayload(ServerStats &stats, std::int64_t id, ErrCode code,
             const std::string &message,
             const json::Value *extra = nullptr)
{
    ++stats.responsesError;
    return errorFrame(id, code, message, extra);
}

} // namespace

std::string
SimService::handleAssemble(const Request &req)
{
    const AssembleRequest a = req.assemble;
    const std::int64_t id = req.id;
    auto result = std::make_shared<std::promise<std::string>>();
    std::future<std::string> future = result->get_future();

    auto job = [this, a, id, result] {
        std::string payload;
        try {
            if (workloads::registry().count(a.workload) == 0) {
                payload = errorPayload(stats_, id,
                                       ErrCode::kUnknownWorkload,
                                       "unknown workload '" +
                                           a.workload + "'");
            } else {
                const bool cached = cache_.contains(
                    a.workload, a.multiscalar, a.defines, a.scale);
                auto compiled = cache_.get(a.workload, a.multiscalar,
                                           a.defines, a.scale);
                json::Value v = makeResponse("assemble_result", id);
                v.set("workload", json::Value(a.workload));
                v.set("multiscalar", json::Value(a.multiscalar));
                v.set("scale", json::Value(a.scale));
                v.set("program_key", json::Value(programKey(*compiled)));
                v.set("cached", json::Value(cached));
                v.set("instructions",
                      json::Value(compiled->program.code.size()));
                v.set("tasks",
                      json::Value(compiled->program.tasks.size()));
                v.set("text_bytes",
                      json::Value(compiled->program.textBytes.size()));
                ++stats_.responsesOk;
                payload = v.dump();
            }
        } catch (const FatalError &e) {
            payload = errorPayload(stats_, id, ErrCode::kRunFailed,
                                   e.what());
        } catch (const std::exception &e) {
            payload = errorPayload(stats_, id, ErrCode::kInternal,
                                   e.what());
        }
        result->set_value(std::move(payload));
    };

    if (!pool_.tryEnqueue(std::move(job))) {
        ++stats_.shedOverload;
        return errorPayload(
            stats_, id, ErrCode::kOverloaded,
            "admission queue full (capacity " +
                std::to_string(pool_.queueCapacity()) + "), retry");
    }
    return awaitPayload(std::move(future), deadlineFor(req), id);
}

std::string
SimService::handleRun(const Request &req)
{
    const RunRequest rr = req.run;
    const std::int64_t id = req.id;
    const Clock::time_point deadline = deadlineFor(req);
    auto result = std::make_shared<std::promise<std::string>>();
    std::future<std::string> future = result->get_future();

    auto job = [this, rr, id, deadline, result] {
        std::string payload;
        try {
            if (deadline != Clock::time_point::max() &&
                Clock::now() > deadline) {
                // Doomed before it started (queue wait ate the
                // deadline): skip the simulation, the waiter answers.
                ++stats_.responsesError;
                payload = errorFrame(id, ErrCode::kTimeout,
                                     "deadline exceeded while queued");
            } else if (workloads::registry().count(rr.workload) == 0) {
                payload = errorPayload(stats_, id,
                                       ErrCode::kUnknownWorkload,
                                       "unknown workload '" +
                                           rr.workload + "'");
            } else {
                RunSpec spec = rr.spec;
                spec.maxCycles = std::min(
                    spec.maxCycles, config_.maxCyclesPerRequest);
                auto compiled =
                    cache_.get(rr.workload, spec.multiscalar,
                               spec.defines, rr.scale);
                const RunResult r = runCompiled(*compiled, spec);
                json::Value v = makeResponse("run_result", id);
                v.set("workload", json::Value(rr.workload));
                v.set("scale", json::Value(rr.scale));
                v.set("program_key", json::Value(programKey(*compiled)));
                v.set("result", resultToJson(r));
                ++stats_.responsesOk;
                payload = v.dump();
            }
        } catch (const BudgetExhaustedError &e) {
            ++stats_.budgetExhausted;
            json::Value extra = json::Value::object();
            extra.set("cycles_consumed",
                      json::Value(e.cyclesConsumed));
            extra.set("budget", json::Value(e.budget));
            payload = errorPayload(stats_, id,
                                   ErrCode::kBudgetExhausted, e.what(),
                                   &extra);
        } catch (const FatalError &e) {
            payload = errorPayload(stats_, id, ErrCode::kRunFailed,
                                   e.what());
        } catch (const std::exception &e) {
            payload = errorPayload(stats_, id, ErrCode::kInternal,
                                   e.what());
        }
        result->set_value(std::move(payload));
    };

    if (!pool_.tryEnqueue(std::move(job))) {
        ++stats_.shedOverload;
        return errorPayload(
            stats_, id, ErrCode::kOverloaded,
            "admission queue full (capacity " +
                std::to_string(pool_.queueCapacity()) + "), retry");
    }
    return awaitPayload(std::move(future), deadline, id);
}

std::string
SimService::awaitPayload(std::future<std::string> future,
                         Clock::time_point deadline, std::int64_t id)
{
    if (deadline == Clock::time_point::max()) {
        return future.get();
    }
    if (future.wait_until(deadline) == std::future_status::ready)
        return future.get();
    // The job keeps running (simulation sessions cannot be aborted
    // mid-run) but its result is discarded; the client hears now.
    ++stats_.timeouts;
    return errorPayload(stats_, id, ErrCode::kTimeout,
                        "wall-clock deadline exceeded");
}

exp::CellResult
SimService::runCell(const exp::Cell &cell, Clock::time_point deadline)
{
    exp::CellResult out;
    out.name = cell.name;
    out.workload = cell.workload;
    const auto t0 = Clock::now();
    try {
        if (deadline != Clock::time_point::max() &&
            Clock::now() > deadline) {
            ++stats_.timeouts;
            out.error = "timeout: wall-clock deadline exceeded "
                        "before the cell started";
        } else {
            RunSpec spec = cell.spec;
            spec.maxCycles =
                std::min(spec.maxCycles, config_.maxCyclesPerRequest);
            auto compiled = cache_.get(cell.workload, spec.multiscalar,
                                       spec.defines, cell.scale);
            out.result = runCompiled(*compiled, spec);
            out.ok = true;
        }
    } catch (const BudgetExhaustedError &e) {
        ++stats_.budgetExhausted;
        out.error = e.what();
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    out.wallSeconds = secondsSince(t0);
    return out;
}

std::string
SimService::handleSweep(const Request &req, const Emit &emit)
{
    const std::int64_t id = req.id;
    const std::vector<exp::Cell> &cells = req.sweep.cells;
    const Clock::time_point deadline = deadlineFor(req);

    struct Channel
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::pair<std::size_t, exp::CellResult>> done;
    };
    auto ch = std::make_shared<Channel>();

    const std::uint64_t hits0 = cache_.hits();
    const std::uint64_t misses0 = cache_.misses();
    const auto t0 = Clock::now();

    std::vector<WorkerPool::Job> jobs;
    jobs.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        jobs.push_back([this, ch, cell = cells[i], deadline, i] {
            exp::CellResult out = runCell(cell, deadline);
            {
                std::lock_guard<std::mutex> lock(ch->m);
                ch->done.emplace_back(i, std::move(out));
            }
            ch->cv.notify_one();
        });
    }
    if (!pool_.tryEnqueueAll(std::move(jobs))) {
        ++stats_.shedOverload;
        return errorPayload(
            stats_, id, ErrCode::kOverloaded,
            "admission queue cannot hold " +
                std::to_string(cells.size()) + " cells (capacity " +
                std::to_string(pool_.queueCapacity()) + "), retry");
    }

    // Stream cells in completion order; "index" lets the client
    // restore registration order for a full msim-sweep-v1 report.
    std::size_t received = 0, failed = 0;
    while (received < cells.size()) {
        std::pair<std::size_t, exp::CellResult> item;
        {
            std::unique_lock<std::mutex> lock(ch->m);
            ch->cv.wait(lock, [&] { return !ch->done.empty(); });
            item = std::move(ch->done.front());
            ch->done.pop_front();
        }
        ++received;
        if (!item.second.ok)
            ++failed;
        ++stats_.cellsStreamed;
        emit(cellFrame(id, item.first, item.second));
    }

    json::Value v = makeResponse("sweep_done", id);
    v.set("cells_total", json::Value(cells.size()));
    v.set("cells_failed", json::Value(failed));
    v.set("wall_seconds", json::Value(secondsSince(t0)));
    json::Value cache = json::Value::object();
    cache.set("hits", json::Value(cache_.hits() - hits0));
    cache.set("misses", json::Value(cache_.misses() - misses0));
    v.set("program_cache", std::move(cache));
    ++stats_.responsesOk;
    return v.dump();
}

} // namespace msim::server
