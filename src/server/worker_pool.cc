#include "server/worker_pool.hh"

#include "common/logging.hh"

namespace msim::server {

WorkerPool::WorkerPool(unsigned threads, std::size_t queueCapacity)
    : capacity_(queueCapacity)
{
    fatalIf(threads == 0, "WorkerPool needs at least one thread");
    fatalIf(queueCapacity == 0,
            "WorkerPool needs a non-empty admission queue");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    drain();
}

bool
WorkerPool::tryEnqueue(Job job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
}

bool
WorkerPool::tryEnqueueAll(std::vector<Job> jobs)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_ || queue_.size() + jobs.size() > capacity_)
            return false;
        for (Job &j : jobs)
            queue_.push_back(std::move(j));
    }
    cv_.notify_all();
    return true;
}

void
WorkerPool::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_ && workers_.empty())
            return;
        draining_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
}

std::size_t
WorkerPool::queued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
WorkerPool::workerLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return draining_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // draining and dry
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job(); // jobs capture their own error handling
    }
}

} // namespace msim::server
