/**
 * @file
 * msim-server counters. Plain relaxed atomics bumped from worker and
 * connection threads; snapshot via toJson for the "stats" request and
 * the load-generator benchmark (cache hit-rate, shed count, …).
 */

#ifndef MSIM_SERVER_STATS_HH
#define MSIM_SERVER_STATS_HH

#include <atomic>
#include <cstdint>

#include "common/json.hh"

namespace msim::server {

/** One daemon-lifetime set of counters. */
struct ServerStats
{
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> connectionsRejected{0};

    std::atomic<std::uint64_t> requestsPing{0};
    std::atomic<std::uint64_t> requestsStats{0};
    std::atomic<std::uint64_t> requestsAssemble{0};
    std::atomic<std::uint64_t> requestsRun{0};
    std::atomic<std::uint64_t> requestsSweep{0};

    std::atomic<std::uint64_t> responsesOk{0};
    std::atomic<std::uint64_t> responsesError{0};

    /** Requests refused because the admission queue was full. */
    std::atomic<std::uint64_t> shedOverload{0};
    /** Requests cut off by their wall-clock deadline. */
    std::atomic<std::uint64_t> timeouts{0};
    /** Runs that exhausted their cycle budget (hitMaxCycles). */
    std::atomic<std::uint64_t> budgetExhausted{0};
    /** Requests refused because the server was shutting down. */
    std::atomic<std::uint64_t> shedShutdown{0};
    /** Sweep cell rows streamed to clients. */
    std::atomic<std::uint64_t> cellsStreamed{0};

    std::uint64_t
    requestsTotal() const
    {
        return requestsPing + requestsStats + requestsAssemble +
               requestsRun + requestsSweep;
    }

    /** Snapshot as the body of a "stats" response. */
    json::Value
    toJson() const
    {
        json::Value v = json::Value::object();
        json::Value conns = json::Value::object();
        conns.set("accepted", json::Value(connectionsAccepted.load()));
        conns.set("rejected", json::Value(connectionsRejected.load()));
        v.set("connections", std::move(conns));
        json::Value reqs = json::Value::object();
        reqs.set("ping", json::Value(requestsPing.load()));
        reqs.set("stats", json::Value(requestsStats.load()));
        reqs.set("assemble", json::Value(requestsAssemble.load()));
        reqs.set("run", json::Value(requestsRun.load()));
        reqs.set("sweep", json::Value(requestsSweep.load()));
        reqs.set("total", json::Value(requestsTotal()));
        v.set("requests", std::move(reqs));
        json::Value resp = json::Value::object();
        resp.set("ok", json::Value(responsesOk.load()));
        resp.set("error", json::Value(responsesError.load()));
        v.set("responses", std::move(resp));
        v.set("shed_overload", json::Value(shedOverload.load()));
        v.set("shed_shutdown", json::Value(shedShutdown.load()));
        v.set("timeouts", json::Value(timeouts.load()));
        v.set("budget_exhausted", json::Value(budgetExhausted.load()));
        v.set("cells_streamed", json::Value(cellsStreamed.load()));
        return v;
    }
};

} // namespace msim::server

#endif // MSIM_SERVER_STATS_HH
