/**
 * @file
 * The server's fixed worker pool with a bounded admission queue.
 *
 * Follows the SweepScheduler threading model (src/exp): plain
 * std::thread workers pulling jobs under one mutex, with simulation
 * work itself stateless and re-entrant. The differences are that the
 * pool is long-lived (one pool for the daemon's whole life, shared by
 * every connection) and that admission is bounded: tryEnqueue /
 * tryEnqueueAll refuse work when the queue is full instead of
 * growing it, which is what lets the server shed load with an
 * explicit `overloaded` error rather than stalling every client.
 *
 * drain() supports graceful shutdown: stop admitting, run the queue
 * dry, join the workers.
 */

#ifndef MSIM_SERVER_WORKER_POOL_HH
#define MSIM_SERVER_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msim::server {

/** Fixed-size thread pool with a bounded FIFO admission queue. */
class WorkerPool
{
  public:
    using Job = std::function<void()>;

    /**
     * @param threads worker threads (>= 1).
     * @param queueCapacity max queued (not yet running) jobs.
     */
    WorkerPool(unsigned threads, std::size_t queueCapacity);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Admit one job. @return false (shedding load) when the queue is
     * full or the pool is draining.
     */
    bool tryEnqueue(Job job);

    /**
     * Admit @p jobs all-or-nothing: either every job fits in the
     * remaining queue capacity or none is admitted. Keeps a sweep
     * from being half-shed.
     */
    bool tryEnqueueAll(std::vector<Job> jobs);

    /** Stop admitting, run every queued job, join the workers. */
    void drain();

    unsigned threads() const { return unsigned(workers_.size()); }
    std::size_t queueCapacity() const { return capacity_; }
    /** Queued (not yet running) jobs right now. */
    std::size_t queued() const;

  private:
    void workerLoop();

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    bool draining_ = false;
    std::vector<std::thread> workers_;
};

} // namespace msim::server

#endif // MSIM_SERVER_WORKER_POOL_HH
