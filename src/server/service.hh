/**
 * @file
 * The simulation service: protocol requests in, response frames out,
 * no sockets. SimService owns the shared ProgramCache (so every
 * connection benefits from every other connection's compilations —
 * content-addressed, one assembly per distinct source/mode/defines/
 * scale point), the bounded WorkerPool that all simulation work is
 * sharded onto, and the daemon's counters.
 *
 * Execution model per request kind:
 *  - ping/stats answer inline on the connection thread;
 *  - assemble/run become one pool job; the connection thread waits
 *    for the job's payload, bounded by the request's wall-clock
 *    deadline (an expired wait answers `timeout` and the job's late
 *    result is discarded; a job that starts after the deadline skips
 *    the simulation entirely);
 *  - sweep becomes one pool job per cell, admitted all-or-nothing;
 *    cell results stream back through @p emit in completion order,
 *    each as an exact msim-sweep-v1 cell row, followed by a
 *    "sweep_done" summary.
 *
 * When the pool cannot admit a request's jobs the request is shed
 * with an `overloaded` error immediately — the admission queue never
 * blocks a connection thread.
 *
 * Budget semantics: a request's spec.max_cycles is clamped to the
 * server-wide maxCyclesPerRequest cap; a run that exhausts it answers
 * the distinct `budget_exhausted` error carrying cycles_consumed and
 * budget (from sim/runner's BudgetExhaustedError) so clients can
 * retry with a larger budget.
 */

#ifndef MSIM_SERVER_SERVICE_HH
#define MSIM_SERVER_SERVICE_HH

#include <chrono>
#include <functional>
#include <future>
#include <string>

#include "exp/experiment.hh"
#include "exp/scheduler.hh"
#include "server/protocol.hh"
#include "server/stats.hh"
#include "server/worker_pool.hh"
#include "sim/compiled_workload.hh"

namespace msim::server {

/** Tunables shared by the daemon, the bench and the tests. */
struct ServiceConfig
{
    /** Worker threads (0 = MSIM_JOBS / hardware concurrency). */
    unsigned jobs = 0;
    /** Bounded admission queue capacity (jobs, not requests). */
    std::size_t queueCapacity = 256;
    /** Server-wide cap on any request's cycle budget. */
    Cycle maxCyclesPerRequest = 1'000'000'000;
    /** Default wall-clock deadline, ms (0 = none). */
    std::uint64_t defaultTimeoutMs = 0;
};

/** The socket-free core of msim-server. */
class SimService
{
  public:
    using Clock = std::chrono::steady_clock;
    /** Sink for streamed frames (sweep cells). */
    using Emit = std::function<void(const std::string &)>;

    explicit SimService(const ServiceConfig &config);

    /**
     * Execute one parsed request and return the final response
     * payload. Sweeps additionally push one "sweep_cell" frame per
     * cell through @p emit as cells complete (emit runs on the
     * calling thread; an exception from emit aborts the streaming
     * and propagates, but already-admitted cells still run).
     * Never throws for simulation-level failures — those become
     * structured error payloads.
     */
    std::string handle(const Request &request, const Emit &emit);

    /** Parse + handle one raw payload (error frames on bad input). */
    std::string handlePayload(const std::string &payload,
                              const Emit &emit);

    ServerStats &stats() { return stats_; }
    ProgramCache &cache() { return cache_; }
    WorkerPool &pool() { return pool_; }
    const ServiceConfig &config() const { return config_; }

    /** Stop admitting and run the queue dry (graceful shutdown). */
    void drain() { pool_.drain(); }

    /** Full stats snapshot (counters + cache + queue). */
    json::Value statsJson() const;

  private:
    std::string handleAssemble(const Request &req);
    std::string handleRun(const Request &req);
    std::string handleSweep(const Request &req, const Emit &emit);

    /** One sweep cell (SweepScheduler's runOne, plus budget clamp). */
    exp::CellResult runCell(const exp::Cell &cell,
                            Clock::time_point deadline);

    /**
     * Wait for a job's payload, bounded by @p deadline; a timed-out
     * wait answers `timeout` and discards the job's late result.
     */
    std::string awaitPayload(std::future<std::string> future,
                             Clock::time_point deadline,
                             std::int64_t id);

    /** Deadline for a request; Clock::time_point::max() = none. */
    Clock::time_point deadlineFor(const Request &req) const;

    ServiceConfig config_;
    ServerStats stats_;
    ProgramCache cache_;
    WorkerPool pool_;
};

} // namespace msim::server

#endif // MSIM_SERVER_SERVICE_HH
