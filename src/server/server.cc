#include "server/server.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace msim::server {

Server::Server(const ServerConfig &config)
    : config_(config), service_(config.service)
{
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    fatalIf(listenFd_ >= 0, "msim-server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0, "socket() failed: ", std::strerror(errno));

    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1) {
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("invalid bind address '", config_.host, "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("cannot bind ", config_.host, ":", config_.port, ": ",
              std::strerror(err));
    }
    if (::listen(listenFd_, 64) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("listen() failed: ", std::strerror(err));
    }

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listener closed by shutdown(): exit the loop. Any
            // other error on a closed-down server means the same.
            return;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        if (shuttingDown_.load()) {
            // Satellite contract: a draining server *answers* new
            // connections with shutting_down instead of hanging them.
            ++service_.stats().connectionsRejected;
            try {
                writeFrame(fd, errorFrame(0, ErrCode::kShuttingDown,
                                          "server is shutting down"));
            } catch (...) {
            }
            ::close(fd);
            continue;
        }

        std::lock_guard<std::mutex> lock(connsMutex_);
        reapLocked();
        if (conns_.size() >= config_.maxConnections) {
            ++service_.stats().connectionsRejected;
            try {
                writeFrame(fd,
                           errorFrame(0, ErrCode::kOverloaded,
                                      "connection limit reached"));
            } catch (...) {
            }
            ::close(fd);
            continue;
        }
        ++service_.stats().connectionsAccepted;
        conns_.emplace_back();
        Conn *conn = &conns_.back();
        conn->fd = fd;
        conn->thread =
            std::thread([this, conn] { connectionLoop(conn); });
    }
}

void
Server::connectionLoop(Conn *conn)
{
    const int fd = conn->fd;
    try {
        std::string payload;
        while (readFrame(fd, payload)) {
            if (!beginRequest()) {
                ++service_.stats().shedShutdown;
                writeFrame(fd,
                           errorFrame(0, ErrCode::kShuttingDown,
                                      "server is shutting down"));
                continue;
            }
            try {
                const std::string response = service_.handlePayload(
                    payload, [fd](const std::string &frame) {
                        writeFrame(fd, frame);
                    });
                writeFrame(fd, response);
            } catch (...) {
                endRequest();
                throw;
            }
            endRequest();
        }
    } catch (const ProtocolError &e) {
        // Broken framing (oversized length prefix, truncated frame):
        // the stream position is unrecoverable, so answer with a
        // structured error when the socket still works, then drop
        // the connection. Malformed JSON and schema violations never
        // reach here — SimService answers those and the connection
        // lives on.
        ++service_.stats().responsesError;
        try {
            writeFrame(fd, errorFrame(0, e.code, e.what()));
        } catch (...) {
        }
    } catch (...) {
        // Vanished peer mid-write or an unexpected error: drop.
    }
    // Signal EOF to the peer now — the descriptor itself is closed
    // later by reapLocked()/shutdown(), which also own the join, so
    // a client waiting on a dropped connection is never left hanging
    // until the next accept.
    ::shutdown(fd, SHUT_RDWR);
    conn->done.store(true);
}

bool
Server::beginRequest()
{
    std::lock_guard<std::mutex> lock(inflightMutex_);
    if (shuttingDown_.load())
        return false;
    ++inflight_;
    return true;
}

void
Server::endRequest()
{
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        --inflight_;
    }
    inflightCv_.notify_all();
}

void
Server::requestShutdown()
{
    std::lock_guard<std::mutex> lock(inflightMutex_);
    shuttingDown_.store(true);
}

void
Server::reapLocked()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done.load()) {
            if (it->thread.joinable())
                it->thread.join();
            ::close(it->fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::shutdown()
{
    if (stopped_)
        return;
    stopped_ = true;

    requestShutdown();

    if (listenFd_ >= 0) {
        // Drain: every accepted request finishes and its response is
        // fully written before any socket is touched. New work keeps
        // being answered with shutting_down meanwhile.
        {
            std::unique_lock<std::mutex> lock(inflightMutex_);
            inflightCv_.wait(lock, [this] { return inflight_ == 0; });
        }

        // Stop the accept loop (accept() fails once the fd closes)…
        const int lfd = listenFd_;
        listenFd_ = -1;
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
        if (acceptThread_.joinable())
            acceptThread_.join();

        // …then unblock every idle reader and join. The accept
        // thread is gone, so conns_ can no longer grow.
        {
            std::lock_guard<std::mutex> lock(connsMutex_);
            for (Conn &c : conns_)
                if (!c.done.load())
                    ::shutdown(c.fd, SHUT_RDWR);
        }
        for (Conn &c : conns_)
            if (c.thread.joinable())
                c.thread.join();
        {
            std::lock_guard<std::mutex> lock(connsMutex_);
            for (Conn &c : conns_)
                ::close(c.fd);
            conns_.clear();
        }
    }

    service_.drain();
}

} // namespace msim::server
