#include "server/client.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace msim::server {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Client::connect(const std::string &host, std::uint16_t port)
{
    fatalIf(fd_ >= 0, "client already connected");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "socket() failed: ", std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("invalid server address '", host, "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("cannot connect to ", host, ":", port, ": ",
              std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::send(const json::Value &request)
{
    fatalIf(fd_ < 0, "client is not connected");
    try {
        writeFrame(fd_, request.dump());
    } catch (const ProtocolError &e) {
        fatal("send failed: ", e.what());
    }
}

json::Value
Client::recv()
{
    fatalIf(fd_ < 0, "client is not connected");
    std::string payload;
    bool more = false;
    try {
        more = readFrame(fd_, payload);
    } catch (const ProtocolError &e) {
        fatal("receive failed: ", e.what());
    }
    fatalIf(!more, "server closed the connection");
    try {
        return json::Value::parse(payload);
    } catch (const json::ParseError &e) {
        fatal("server sent malformed JSON: ", e.what());
    }
}

json::Value
Client::call(const json::Value &request)
{
    send(request);
    return recv();
}

Client::SweepOutcome
Client::sweep(const json::Value &request,
              const std::function<void(const StreamedCell &)> &onCell)
{
    send(request);
    SweepOutcome outcome;
    while (true) {
        json::Value frame = recv();
        const json::Value *type = frame.find("type");
        fatalIf(type == nullptr || !type->isString(),
                "malformed frame in sweep stream");
        if (type->asString() == "error")
            fatal("sweep failed: ",
                  frame.find("message") != nullptr &&
                          frame.find("message")->isString()
                      ? frame.find("message")->asString()
                      : "(no message)",
                  " [", errorCode(frame), "]");
        if (type->asString() == "sweep_done") {
            outcome.done = std::move(frame);
            break;
        }
        fatalIf(type->asString() != "sweep_cell",
                "unexpected frame type '", type->asString(),
                "' in sweep stream");
        StreamedCell cell;
        const json::Value *index = frame.find("index");
        fatalIf(index == nullptr || !index->isNumber(),
                "sweep_cell frame without index");
        cell.index = std::size_t(index->asInt());
        const json::Value *row = frame.find("cell");
        fatalIf(row == nullptr || !row->isObject(),
                "sweep_cell frame without cell row");
        cell.cell = *row;
        if (onCell)
            onCell(cell);
        outcome.cells.push_back(std::move(cell));
    }
    std::sort(outcome.cells.begin(), outcome.cells.end(),
              [](const StreamedCell &a, const StreamedCell &b) {
                  return a.index < b.index;
              });
    return outcome;
}

bool
isErrorFrame(const json::Value &response)
{
    const json::Value *type = response.find("type");
    return type != nullptr && type->isString() &&
           type->asString() == "error";
}

std::string
errorCode(const json::Value &response)
{
    if (!isErrorFrame(response))
        return "";
    const json::Value *code = response.find("code");
    return code != nullptr && code->isString() ? code->asString()
                                               : "";
}

} // namespace msim::server
