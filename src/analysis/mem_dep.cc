#include "analysis/mem_dep.hh"

#include <algorithm>
#include <bit>
#include <deque>
#include <sstream>
#include <utility>

#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace msim::analysis {

namespace {

using isa::InstClass;
using isa::Instruction;
using isa::Opcode;

/** Trailing zeros of a 32-bit difference; 32 for zero. */
unsigned
tz(Word w)
{
    return w == 0 ? 32u : unsigned(std::countr_zero(w));
}

/** Access width in bytes of a load/store opcode. */
unsigned
accessWidth(Opcode op)
{
    switch (op) {
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kSb:
        return 1;
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kSh:
        return 2;
      case Opcode::kLw:
      case Opcode::kSw:
      case Opcode::kLwc1:
      case Opcode::kSwc1:
        return 4;
      case Opcode::kLdc1:
      case Opcode::kSdc1:
        return 8;
      default:
        return 0;
    }
}

/** Bottom absorbs: an unreached operand yields an unreached result. */
AbsVal
widen(const AbsVal &a)
{
    return a.kind == AbsVal::Kind::kBottom ? AbsVal::bottom()
                                           : AbsVal::top();
}

} // namespace

// --------------------------------------------------------------------
// AbsVal lattice
// --------------------------------------------------------------------

AbsVal
AbsVal::stride(Word base, unsigned grain_log)
{
    if (grain_log == 0)
        return top();
    if (grain_log >= 32)
        return constant(base);
    return {Kind::kStride, base, grain_log};
}

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::kBottom)
        return b;
    if (b.kind == Kind::kBottom)
        return a;
    if (a.kind == Kind::kTop || b.kind == Kind::kTop)
        return AbsVal::top();
    // Both cosets (a constant is the grain-2^32 coset): the join is
    // the smallest coset containing both, whose grain divides both
    // grains and the difference of the bases.
    unsigned ga = a.kind == Kind::kConst ? 32 : a.grainLog;
    unsigned gb = b.kind == Kind::kConst ? 32 : b.grainLog;
    unsigned g = std::min({ga, gb, tz(a.base - b.base)});
    return AbsVal::stride(a.base, g);
}

AbsVal
add(const AbsVal &a, const AbsVal &b)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::kBottom || b.kind == Kind::kBottom)
        return AbsVal::bottom();
    if (a.kind == Kind::kTop || b.kind == Kind::kTop)
        return AbsVal::top();
    unsigned ga = a.kind == Kind::kConst ? 32 : a.grainLog;
    unsigned gb = b.kind == Kind::kConst ? 32 : b.grainLog;
    return AbsVal::stride(a.base + b.base, std::min(ga, gb));
}

AbsVal
negate(const AbsVal &a)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::kConst)
        return AbsVal::constant(Word(0) - a.base);
    if (a.kind == Kind::kStride)
        return AbsVal::stride(Word(0) - a.base, a.grainLog);
    return a;
}

AbsVal
shiftLeft(const AbsVal &a, unsigned amount)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::kConst)
        return AbsVal::constant(a.base << amount);
    if (a.kind == Kind::kStride)
        return AbsVal::stride(a.base << amount, a.grainLog + amount);
    return a;
}

// --------------------------------------------------------------------
// Regions and summaries
// --------------------------------------------------------------------

bool
MemRegion::overlaps(const MemRegion &other) const
{
    // The difference a2 - a1 over all element pairs ranges over the
    // coset (other.base - base) + <2^min(grains)>. The byte intervals
    // [a1, a1+w1) and [a2, a2+w2) intersect iff some difference lies
    // in (-w2, w1); with r the difference's residue in [0, g), that
    // means r < w1 (a2 ahead, within our width) or g - r < w2 (a2
    // behind, within the other's width).
    const std::uint64_t g = std::uint64_t(1)
                            << std::min({grainLog, other.grainLog, 32u});
    const std::uint64_t r = Word(other.base - base) % g;
    return r < width || g - r < other.width;
}

bool
MemRegion::covers(Addr addr, unsigned size) const
{
    const std::uint64_t g = std::uint64_t(1) << std::min(grainLog, 32u);
    for (unsigned i = 0; i < size; ++i) {
        if (Word(addr + i - base) % g >= width)
            return false;
    }
    return true;
}

bool
MemSummary::mayLoad(Addr addr, unsigned size) const
{
    if (loadUnknown)
        return true;
    const MemRegion probe{addr, 32, size, 0};
    for (const MemRegion &r : loads)
        if (r.overlaps(probe))
            return true;
    return false;
}

bool
MemSummary::storesCover(Addr addr, unsigned size) const
{
    if (storeUnknown)
        return true;
    for (unsigned i = 0; i < size; ++i) {
        bool hit = false;
        for (const MemRegion &r : stores) {
            if (r.covers(Addr(addr + i), 1)) {
                hit = true;
                break;
            }
        }
        if (!hit)
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// MemDepAnalysis
// --------------------------------------------------------------------

MemDepAnalysis::MemDepAnalysis(const Program &prog,
                               const AnnotationVerifier &verifier)
    : prog_(prog), verifier_(verifier)
{
    for (const auto &[name, addr] : prog.symbols) {
        if (!names_.count(addr))
            names_[addr] = name;
    }

    // Task-graph successors, the same construction as the verifier:
    // kCall targets walk to the callee, and every task with a kReturn
    // target conservatively reaches every call continuation.
    const auto &facts = verifier_.allFacts();
    std::set<Addr> continuations;
    std::set<Addr> retTasks;
    for (const auto &[addr, f] : facts) {
        auto &out = succs_[addr];
        for (const TaskTarget &t : f.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                retTasks.insert(addr);
                continue;
            }
            if (facts.count(t.addr))
                out.push_back(t.addr);
            if (t.spec == TargetSpec::kCall && facts.count(t.returnTo))
                continuations.insert(t.returnTo);
        }
    }
    for (Addr addr : retTasks) {
        auto &out = succs_[addr];
        out.insert(out.end(), continuations.begin(), continuations.end());
    }
    for (auto &[addr, out] : succs_) {
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }

    // The CFG walker silently cuts call edges past its depth cap
    // (kMaxWalkCallDepth), leaving blocks with no successors that
    // neither exit nor halt. Paths beyond the cut perform memory
    // accesses the walk never saw, so such tasks must be treated
    // exactly like truncated ones: summaries unknown, oracle
    // trivially contained.
    for (const auto &[addr, f] : facts) {
        if (f.incomplete) {
            cut_.insert(addr);
            continue;
        }
        const TaskCfg *cfg = verifier_.cfg(addr);
        if (!cfg)
            continue;
        for (const CfgBlock &b : cfg->blocks()) {
            if (b.succs.empty() && !b.exitsTask() && !b.haltEnd &&
                !b.opaqueEnd) {
                cut_.insert(addr);
                break;
            }
        }
    }

    // Reachability from the program entry (the sequencer only ever
    // walks declared targets, so unreachable tasks never run).
    if (facts.count(prog.entry)) {
        std::deque<Addr> work{prog.entry};
        while (!work.empty()) {
            Addr t = work.front();
            work.pop_front();
            if (!reachable_.insert(t).second)
                continue;
            for (Addr s : succs_.at(t))
                work.push_back(s);
        }
    }

    // One-or-more-edge reachability per task (conflict pair scope).
    for (const auto &[addr, out] : succs_) {
        std::set<Addr> &seen = reachFrom_[addr];
        std::deque<Addr> work(out.begin(), out.end());
        while (!work.empty()) {
            Addr t = work.front();
            work.pop_front();
            if (!seen.insert(t).second)
                continue;
            for (Addr s : succs_.at(t))
                work.push_back(s);
        }
    }

    // Inter-task fixpoint of the entry environments. The program
    // entry starts from the architectural reset state; values only
    // climb the (finite) lattice, so joining into the accumulated
    // environment converges.
    if (facts.count(prog.entry)) {
        Env seed;
        seed.fill(AbsVal::constant(0));
        seed[size_t(isa::kRegSp)] = AbsVal::constant(kStackTop);
        entryEnv_[prog.entry] = seed;

        std::deque<Addr> work{prog.entry};
        std::set<Addr> queued{prog.entry};
        while (!work.empty()) {
            const Addr t = work.front();
            work.pop_front();
            queued.erase(t);

            const TaskFacts &f = facts.at(t);
            const Env &in = entryEnv_.at(t);
            Env out;
            if (cut_.count(t)) {
                out.fill(AbsVal::top());
            } else {
                const TaskEnvs envs = solveTask(t, in);
                for (int r = 0; r < kNumRegs; ++r) {
                    // Mask registers leave the task through the ring
                    // (at a forward point or retirement); everything
                    // else reverts to the walk-ledger value from
                    // before the task.
                    if (f.desc->createMask.test(r)) {
                        out[size_t(r)] = join(envs.exitJoin[size_t(r)],
                                              envs.fwdVals[size_t(r)]);
                    } else {
                        out[size_t(r)] = in[size_t(r)];
                    }
                }
            }
            for (Addr s : succs_.at(t)) {
                auto [it, inserted] = entryEnv_.try_emplace(s);
                Env &sin = it->second;
                bool changed = inserted;
                for (size_t r = 0; r < kNumRegs; ++r) {
                    AbsVal v = join(sin[r], out[r]);
                    if (!(v == sin[r])) {
                        sin[r] = v;
                        changed = true;
                    }
                }
                if (changed && queued.insert(s).second)
                    work.push_back(s);
            }
        }
    }

    buildSummaries();
    buildConflicts();
}

const MemSummary *
MemDepAnalysis::summary(Addr task) const
{
    auto it = summaries_.find(task);
    return it == summaries_.end() ? nullptr : &it->second;
}

AbsVal
MemDepAnalysis::valueOf(const Env &env, RegIndex reg) const
{
    if (reg == 0)
        return AbsVal::constant(0);
    if (reg < 0)
        return AbsVal::top();
    return env[size_t(reg)];
}

void
MemDepAnalysis::transfer(Env &env, const Instruction &inst) const
{
    const RegIndex d = isa::destOf(inst);
    if (d <= 0)
        return;

    const AbsVal a = valueOf(env, inst.rs);
    const AbsVal b = valueOf(env, inst.rt);
    AbsVal v;
    switch (inst.op) {
      case Opcode::kAddi:
      case Opcode::kAddiu:
        v = add(a, AbsVal::constant(Word(inst.imm)));
        break;
      case Opcode::kAdd:
      case Opcode::kAddu:
        v = add(a, b);
        break;
      case Opcode::kSub:
      case Opcode::kSubu:
        v = add(a, negate(b));
        break;
      case Opcode::kLui:
        v = AbsVal::constant(Word(inst.imm) << 16);
        break;
      case Opcode::kOri:
        v = a.kind == AbsVal::Kind::kConst
                ? AbsVal::constant(a.base | Word(inst.imm))
                : widen(a);
        break;
      case Opcode::kAndi:
        v = a.kind == AbsVal::Kind::kConst
                ? AbsVal::constant(a.base & Word(inst.imm))
                : widen(a);
        break;
      case Opcode::kXori:
        v = a.kind == AbsVal::Kind::kConst
                ? AbsVal::constant(a.base ^ Word(inst.imm))
                : widen(a);
        break;
      case Opcode::kSll:
        v = shiftLeft(a, unsigned(inst.imm) & 31u);
        break;
      case Opcode::kSrl:
        v = a.kind == AbsVal::Kind::kConst
                ? AbsVal::constant(a.base >> (unsigned(inst.imm) & 31u))
                : widen(a);
        break;
      case Opcode::kSra:
        v = a.kind == AbsVal::Kind::kConst
                ? AbsVal::constant(Word(std::int32_t(a.base) >>
                                        (unsigned(inst.imm) & 31u)))
                : widen(a);
        break;
      case Opcode::kOr:
        if (a.kind == AbsVal::Kind::kConst &&
            b.kind == AbsVal::Kind::kConst) {
            v = AbsVal::constant(a.base | b.base);
        } else {
            v = widen(join(a, b));
        }
        break;
      case Opcode::kMul:
        if (a.kind == AbsVal::Kind::kConst &&
            b.kind == AbsVal::Kind::kConst) {
            // Truncated product: identical bits signed or unsigned.
            v = AbsVal::constant(a.base * b.base);
        } else {
            v = widen(join(a, b));
        }
        break;
      default:
        // Loads, divisions, FP, jumps, syscalls: not address
        // arithmetic we track. Stay Bottom on unreached inputs.
        v = widen(join(a, b));
        break;
    }
    env[size_t(d)] = v;
}

MemDepAnalysis::TaskEnvs
MemDepAnalysis::solveTask(Addr start, const Env &entry) const
{
    const TaskCfg *cfg = verifier_.cfg(start);
    TaskEnvs out;

    Env bottom;
    bottom.fill(AbsVal::bottom());
    out.exitJoin = bottom;
    out.fwdVals = bottom;
    if (!cfg || cfg->blocks().empty())
        return out;

    const auto &blocks = cfg->blocks();
    const auto &preds = cfg->preds();
    const size_t n = blocks.size();
    out.blockIn.assign(n, bottom);
    std::vector<Env> blockOut(n, bottom);

    auto joinEnv = [](Env &into, const Env &from) {
        for (size_t r = 0; r < kNumRegs; ++r)
            into[r] = join(into[r], from[r]);
    };
    auto runBlock = [&](size_t b, Env env) {
        for (Addr pc : blocks[b].pcs)
            transfer(env, *prog_.instrAt(pc));
        return env;
    };

    std::deque<unsigned> work;
    std::vector<bool> queued(n, true);
    for (unsigned b = 0; b < n; ++b)
        work.push_back(b);

    while (!work.empty()) {
        const unsigned b = work.front();
        work.pop_front();
        queued[b] = false;

        Env in = bottom;
        if (b == 0)
            in = entry;
        for (unsigned p : preds[b])
            joinEnv(in, blockOut[p]);
        out.blockIn[b] = in;
        Env newOut = runBlock(b, std::move(in));
        if (newOut == blockOut[b])
            continue;
        blockOut[b] = std::move(newOut);
        for (unsigned s : blocks[b].succs) {
            if (!queued[s]) {
                work.push_back(s);
                queued[s] = true;
            }
        }
    }

    // Collect exit and forward-point values from the converged
    // environments. A forwarded definition sends the value the
    // instruction just computed; a release sends the current values
    // of its operands.
    for (size_t b = 0; b < n; ++b) {
        Env env = out.blockIn[b];
        for (Addr pc : blocks[b].pcs) {
            const Instruction *inst = prog_.instrAt(pc);
            if (inst->cls() == InstClass::kRelease) {
                if (inst->rs > 0) {
                    out.fwdVals[size_t(inst->rs)] =
                        join(out.fwdVals[size_t(inst->rs)],
                             valueOf(env, inst->rs));
                }
                if (inst->rel2 > 0) {
                    out.fwdVals[size_t(inst->rel2)] =
                        join(out.fwdVals[size_t(inst->rel2)],
                             valueOf(env, inst->rel2));
                }
            }
            transfer(env, *inst);
            const RegIndex d = isa::destOf(*inst);
            if (inst->tags.forward && d > 0) {
                out.fwdVals[size_t(d)] =
                    join(out.fwdVals[size_t(d)], env[size_t(d)]);
            }
        }
        if (blocks[b].exitsTask()) {
            out.anyExit = true;
            joinEnv(out.exitJoin, env);
        }
    }
    return out;
}

void
MemDepAnalysis::buildSummaries()
{
    Env top;
    top.fill(AbsVal::top());

    for (const auto &[addr, f] : verifier_.allFacts()) {
        MemSummary s;
        s.start = addr;
        s.incomplete = cut_.count(addr) != 0;
        if (s.incomplete) {
            // The walk left the analyzable region: the sets are
            // lower bounds, so the summary claims nothing.
            s.loadUnknown = s.storeUnknown = true;
            summaries_.emplace(addr, std::move(s));
            continue;
        }

        // Tasks never reached by the inter-task fixpoint (or not
        // reachable at all) are analyzed with an all-Top entry so the
        // lint passes still see them.
        auto eit = entryEnv_.find(addr);
        const Env &entry = eit != entryEnv_.end() ? eit->second : top;
        const TaskEnvs envs = solveTask(addr, entry);
        const TaskCfg *cfg = verifier_.cfg(addr);

        auto addRegion = [](std::vector<MemRegion> &regions,
                            const MemRegion &region) {
            for (const MemRegion &r : regions) {
                if (r.base == region.base &&
                    r.grainLog == region.grainLog &&
                    r.width >= region.width) {
                    return;
                }
            }
            regions.push_back(region);
        };

        for (size_t b = 0; b < cfg->blocks().size(); ++b) {
            Env env = envs.blockIn[b];
            for (Addr pc : cfg->blocks()[b].pcs) {
                const Instruction *inst = prog_.instrAt(pc);
                if (inst->isMemOp()) {
                    const AbsVal v =
                        add(valueOf(env, inst->rs),
                            AbsVal::constant(Word(inst->imm)));
                    const unsigned width = accessWidth(inst->op);
                    const bool isLoad =
                        inst->cls() == InstClass::kLoad;
                    if (v.kind == AbsVal::Kind::kConst ||
                        v.kind == AbsVal::Kind::kStride) {
                        const MemRegion region{
                            v.base,
                            v.kind == AbsVal::Kind::kConst ? 32u
                                                           : v.grainLog,
                            width, pc};
                        addRegion(isLoad ? s.loads : s.stores, region);
                    } else {
                        // Top (or a blocked Bottom path, folded in
                        // conservatively): may touch anything.
                        (isLoad ? s.loadUnknown : s.storeUnknown) =
                            true;
                    }
                }
                transfer(env, *inst);
            }
        }
        summaries_.emplace(addr, std::move(s));
    }
}

void
MemDepAnalysis::buildConflicts()
{
    for (Addr e : reachable_) {
        const MemSummary &se = summaries_.at(e);
        const bool anyStore = se.storeUnknown || !se.stores.empty();
        for (Addr l : reachFrom_.at(e)) {
            if (!reachable_.count(l))
                continue;
            ++orderedPairs_;
            if (!anyStore)
                continue;
            const MemSummary &sl = summaries_.at(l);
            bool hit = false;
            if (se.storeUnknown) {
                hit = sl.loadUnknown || !sl.loads.empty();
            } else if (sl.loadUnknown) {
                hit = true;
            } else {
                for (const MemRegion &st : se.stores) {
                    for (const MemRegion &ld : sl.loads) {
                        if (st.overlaps(ld)) {
                            hit = true;
                            break;
                        }
                    }
                    if (hit)
                        break;
                }
            }
            if (hit)
                conflictPairs_.insert({e, l});
        }
    }
}

bool
MemDepAnalysis::violationPredicted(Addr store_task, Addr load_task,
                                   Addr addr, unsigned size) const
{
    const MemSummary *se = summary(store_task);
    const MemSummary *sl = summary(load_task);
    if (!se || !sl)
        return false;
    if (se->incomplete || sl->incomplete)
        return true;
    if (!conflict(store_task, load_task))
        return false;
    // The store wrote every byte of [addr, addr+size); the violated
    // task loaded at least one of them.
    return se->storesCover(addr, size) && sl->mayLoad(addr, size);
}

std::string
MemDepAnalysis::labelFor(Addr addr) const
{
    auto it = names_.find(addr);
    if (it != names_.end())
        return it->second;
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

Diagnostic
MemDepAnalysis::makeDiag(PassId pass, Severity sev, Addr task, Addr pc,
                         std::string message) const
{
    Diagnostic d;
    d.pass = pass;
    d.severity = sev;
    d.task = task;
    d.taskName = labelFor(task);
    d.pc = pc;
    d.file = prog_.sourceName;
    if (pc != 0) {
        d.line = prog_.lineOf(pc);
    } else if (const TaskDescriptor *desc = prog_.taskAt(task)) {
        d.line = desc->lineNo;
    }
    d.message = std::move(message);
    return d;
}

AnalysisReport
MemDepAnalysis::lint() const
{
    AnalysisReport rep;
    rep.numTasks = unsigned(summaries_.size());
    for (const auto &[addr, s] : summaries_)
        if (s.incomplete)
            ++rep.truncatedTasks;

    lintStackDiscipline(rep);
    lintDeadStore(rep);
    lintMemConflict(rep);

    rep.mem.present = true;
    rep.mem.tasks = unsigned(summaries_.size());
    rep.mem.reachableTasks = unsigned(reachable_.size());
    rep.mem.orderedPairs = orderedPairs_;
    rep.mem.conflictPairs = unsigned(conflictPairs_.size());
    for (const auto &[addr, s] : summaries_) {
        if (s.loadUnknown)
            ++rep.mem.unknownLoadTasks;
        if (s.storeUnknown)
            ++rep.mem.unknownStoreTasks;
    }
    return rep;
}

void
MemDepAnalysis::lintStackDiscipline(AnalysisReport &rep) const
{
    for (const auto &[addr, f] : verifier_.allFacts()) {
        (void)f;
        if (cut_.count(addr))
            continue;
        const TaskCfg *cfg = verifier_.cfg(addr);
        if (!cfg || cfg->blocks().empty())
            continue;
        // Track $sp relative to task entry: seed it with 0 and every
        // other register with Top, then check each exit path's
        // displacement.
        Env entry;
        entry.fill(AbsVal::top());
        entry[size_t(isa::kRegSp)] = AbsVal::constant(0);
        const TaskEnvs envs = solveTask(addr, entry);

        for (size_t b = 0; b < cfg->blocks().size(); ++b) {
            const CfgBlock &blk = cfg->blocks()[b];
            if (!blk.exitsTask())
                continue;
            Env env = envs.blockIn[b];
            for (Addr pc : blk.pcs)
                transfer(env, *prog_.instrAt(pc));
            const AbsVal sp = env[size_t(isa::kRegSp)];
            if (sp.kind != AbsVal::Kind::kConst || sp.base == 0)
                continue;
            std::ostringstream msg;
            msg << "task " << labelFor(addr)
                << " reaches a task exit with $sp displaced by "
                << std::int32_t(sp.base)
                << " bytes from its entry value; unbalanced "
                   "save/restore breaks the stack-discipline "
                   "assumption the annotation verifier relies on "
                   "(restore $sp before every stop)";
            rep.diagnostics.push_back(
                makeDiag(PassId::kStackDiscipline, Severity::kError,
                         addr, blk.pcs.back(), msg.str()));
            break; // one finding per task is enough
        }
    }
}

void
MemDepAnalysis::lintDeadStore(AnalysisReport &rep) const
{
    for (const auto &[addr, f] : verifier_.allFacts()) {
        (void)f;
        if (cut_.count(addr))
            continue;
        const TaskCfg *cfg = verifier_.cfg(addr);
        if (!cfg || cfg->blocks().empty())
            continue;
        const auto &blocks = cfg->blocks();

        Env top;
        top.fill(AbsVal::top());
        auto eit = entryEnv_.find(addr);
        const TaskEnvs envs = solveTask(
            addr, eit != entryEnv_.end() ? eit->second : top);

        // Precompute one memory event per instruction occurrence.
        struct Event
        {
            enum class Kind : std::uint8_t {
                kNone,
                kLoad,
                kStore,
                kSyscall
            };
            Kind kind = Kind::kNone;
            MemRegion region;
            bool unknown = false;
        };
        std::vector<std::vector<Event>> events(blocks.size());
        for (size_t b = 0; b < blocks.size(); ++b) {
            Env env = envs.blockIn[b];
            events[b].resize(blocks[b].pcs.size());
            for (size_t i = 0; i < blocks[b].pcs.size(); ++i) {
                const Instruction *inst =
                    prog_.instrAt(blocks[b].pcs[i]);
                Event &ev = events[b][i];
                if (inst->cls() == InstClass::kSyscall) {
                    ev.kind = Event::Kind::kSyscall;
                } else if (inst->isMemOp()) {
                    ev.kind = inst->cls() == InstClass::kLoad
                                  ? Event::Kind::kLoad
                                  : Event::Kind::kStore;
                    const AbsVal v =
                        add(valueOf(env, inst->rs),
                            AbsVal::constant(Word(inst->imm)));
                    if (v.kind == AbsVal::Kind::kConst ||
                        v.kind == AbsVal::Kind::kStride) {
                        ev.region = MemRegion{
                            v.base,
                            v.kind == AbsVal::Kind::kConst ? 32u
                                                           : v.grainLog,
                            accessWidth(inst->op), blocks[b].pcs[i]};
                    } else {
                        ev.unknown = true;
                    }
                }
                transfer(env, *inst);
            }
        }

        // Is the exact store R at (block b0, index i0) overwritten on
        // every path before anything can observe it? A path is
        // observing when it reaches a may-aliasing load, any syscall,
        // or a task exit (successor tasks may read); it is killed by
        // a covering store or a machine halt.
        auto isDead = [&](size_t b0, size_t i0, const MemRegion &R) {
            std::set<size_t> visited;
            std::deque<std::pair<size_t, size_t>> work;
            work.push_back({b0, i0 + 1});
            while (!work.empty()) {
                auto [b, i] = work.front();
                work.pop_front();
                bool killed = false;
                for (; i < events[b].size(); ++i) {
                    const Event &ev = events[b][i];
                    if (ev.kind == Event::Kind::kSyscall)
                        return false;
                    if (ev.kind == Event::Kind::kLoad) {
                        if (ev.unknown || ev.region.overlaps(R))
                            return false;
                    } else if (ev.kind == Event::Kind::kStore) {
                        if (!ev.unknown && ev.region.exact() &&
                            ev.region.covers(R.base, R.width)) {
                            killed = true;
                            break;
                        }
                    }
                }
                if (killed)
                    continue;
                const CfgBlock &blk = blocks[b];
                if (blk.exitsTask() || blk.opaqueEnd)
                    return false;
                if (blk.haltEnd)
                    continue; // the machine halts: unobservable
                for (unsigned s : blk.succs) {
                    if (visited.insert(s).second)
                        work.push_back({s, 0});
                }
            }
            return true;
        };

        // A store overwritten inside its task is still transiently
        // visible to concurrently-live later tasks through the ARB;
        // removing it would change violation timing. Only stores no
        // reachable successor task may load are truly unobservable.
        auto loadedDownstream = [&](const MemRegion &R) {
            auto rit = reachFrom_.find(addr);
            if (rit == reachFrom_.end())
                return false;
            for (Addr t : rit->second) {
                const MemSummary &s = summaries_.at(t);
                if (s.loadUnknown)
                    return true;
                for (const MemRegion &ld : s.loads)
                    if (ld.overlaps(R))
                        return true;
            }
            return false;
        };

        // A store instruction may appear in several call contexts;
        // report it only when every occurrence is dead.
        std::map<Addr, std::pair<bool, MemRegion>> verdicts;
        for (size_t b = 0; b < blocks.size(); ++b) {
            for (size_t i = 0; i < events[b].size(); ++i) {
                const Event &ev = events[b][i];
                if (ev.kind != Event::Kind::kStore || ev.unknown ||
                    !ev.region.exact()) {
                    continue;
                }
                if (loadedDownstream(ev.region))
                    continue;
                const bool dead = isDead(b, i, ev.region);
                auto [it, inserted] = verdicts.try_emplace(
                    ev.region.pc, dead, ev.region);
                if (!inserted)
                    it->second.first &= dead;
            }
        }
        for (const auto &[pc, verdict] : verdicts) {
            if (!verdict.first)
                continue;
            std::ostringstream msg;
            msg << "task " << labelFor(addr) << " stores to 0x"
                << std::hex << verdict.second.base << std::dec
                << " but every path overwrites the value before any "
                   "load, syscall, or task exit can observe it "
                   "(remove the store or forward the value)";
            rep.diagnostics.push_back(
                makeDiag(PassId::kDeadStore, Severity::kWarning, addr,
                         pc, msg.str()));
        }
    }
}

void
MemDepAnalysis::lintMemConflict(AnalysisReport &rep) const
{
    // Per-CFG set of pcs that sit on an intra-task cycle, for the
    // loop-depth ranking.
    std::map<Addr, std::set<Addr>> cyclicPcs;
    auto pcsInCycles = [&](Addr task) -> const std::set<Addr> & {
        auto it = cyclicPcs.find(task);
        if (it != cyclicPcs.end())
            return it->second;
        std::set<Addr> &pcs = cyclicPcs[task];
        const TaskCfg *cfg = verifier_.cfg(task);
        if (!cfg)
            return pcs;
        const auto &blocks = cfg->blocks();
        for (size_t b = 0; b < blocks.size(); ++b) {
            // Can block b reach itself?
            std::set<unsigned> seen;
            std::deque<unsigned> work(blocks[b].succs.begin(),
                                      blocks[b].succs.end());
            bool cyclic = false;
            while (!work.empty() && !cyclic) {
                unsigned s = work.front();
                work.pop_front();
                if (s == b) {
                    cyclic = true;
                    break;
                }
                if (!seen.insert(s).second)
                    continue;
                for (unsigned nxt : blocks[s].succs)
                    work.push_back(nxt);
            }
            if (cyclic)
                pcs.insert(blocks[b].pcs.begin(), blocks[b].pcs.end());
        }
        return pcs;
    };

    struct Finding
    {
        unsigned depth;
        Addr store;
        Addr load;
        Addr pc;
        std::string message;
    };
    std::vector<Finding> findings;

    for (const auto &[e, l] : conflictPairs_) {
        const MemSummary &se = summaries_.at(e);
        const MemSummary &sl = summaries_.at(l);
        // Anchor the finding at the first conflicting store site.
        Addr sitePc = 0;
        if (!se.storeUnknown) {
            for (const MemRegion &st : se.stores) {
                if (sl.loadUnknown) {
                    sitePc = st.pc;
                    break;
                }
                for (const MemRegion &ld : sl.loads) {
                    if (st.overlaps(ld)) {
                        sitePc = st.pc;
                        break;
                    }
                }
                if (sitePc != 0)
                    break;
            }
        }

        unsigned depth = 0;
        // The pair sits on a task-graph cycle: the conflict recurs
        // every traversal.
        auto rit = reachFrom_.find(l);
        if (rit != reachFrom_.end() && rit->second.count(e))
            ++depth;
        if (sitePc != 0 && pcsInCycles(e).count(sitePc))
            ++depth;

        std::ostringstream msg;
        msg << "task " << labelFor(e)
            << " may store to an address task " << labelFor(l)
            << " speculatively loads (predicted ARB squash source, "
               "loop depth "
            << depth << ")";
        findings.push_back({depth, e, l, sitePc, msg.str()});
    }

    // Rank by loop depth, deepest (most squash-prone) first.
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.depth != b.depth)
                             return a.depth > b.depth;
                         if (a.store != b.store)
                             return a.store < b.store;
                         return a.load < b.load;
                     });
    for (const Finding &f : findings) {
        rep.diagnostics.push_back(makeDiag(
            PassId::kMemConflict, Severity::kInfo, f.store, f.pc,
            f.message));
    }
}

} // namespace msim::analysis
