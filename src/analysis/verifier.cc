#include "analysis/verifier.hh"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/dataflow.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace msim::analysis {

namespace {

using isa::InstClass;
using isa::Instruction;
using isa::Opcode;

RegMask
fullMask()
{
    RegMask m;
    for (int r = 0; r < kNumRegs; ++r)
        m.set(r);
    return m;
}

/** $sp/$fp: exempt under the stack-discipline assumption. */
RegMask
stackRegs()
{
    return RegMask{isa::kRegSp, isa::kRegFp};
}

/** The register an instruction defines, or kNoReg ($0 filtered). */
RegIndex
defOf(const Instruction &inst)
{
    RegIndex d = isa::destOf(inst);
    return d > 0 ? d : kNoReg;
}

/** Registers an instruction explicitly forwards (!f or release). */
RegMask
fwdPointsOf(const Instruction &inst)
{
    RegMask m;
    if (inst.tags.forward) {
        RegIndex d = defOf(inst);
        if (d > 0)
            m.set(d);
    }
    if (inst.cls() == InstClass::kRelease) {
        if (inst.rs > 0)
            m.set(inst.rs);
        if (inst.rel2 > 0)
            m.set(inst.rel2);
    }
    return m;
}

/** @return true when syscall @p code semantically reads $a0. */
bool
syscallReadsA0(int code)
{
    return code == 1 || code == 4 || code == 9 || code == 11;
}

/**
 * Source registers whose values must be meaningful at this
 * instruction, for use-before-def purposes. Exemptions (see file
 * comment in verifier.hh): release operands; the data operand of a
 * callee-save store through $sp/$fp; syscall argument registers the
 * (constant-propagated) syscall code does not read.
 *
 * @param v0Const the value of $v0 when a block-local li established
 *                it, used to resolve which arguments a syscall reads.
 */
unsigned
usesForUbd(const Instruction &inst, std::optional<int> v0Const,
           RegIndex out[4])
{
    unsigned n = 0;
    switch (inst.cls()) {
      case InstClass::kRelease:
        return 0;
      case InstClass::kSyscall:
        out[n++] = isa::intReg(isa::kRegV0);
        if (!v0Const || syscallReadsA0(*v0Const))
            out[n++] = isa::intReg(isa::kRegA0);
        return n;
      case InstClass::kStore:
        if (inst.rs > 0)
            out[n++] = inst.rs;
        if (inst.rt > 0 &&
            !(inst.rs == isa::kRegSp || inst.rs == isa::kRegFp))
            out[n++] = inst.rt;
        return n;
      default:
        if (inst.rs > 0)
            out[n++] = inst.rs;
        if (inst.rt > 0)
            out[n++] = inst.rt;
        return n;
    }
}

/**
 * Track block-local knowledge of $v0 for syscall-argument
 * resolution: a `li $v0, code` (addiu/ori with $zero source) pins
 * it; any other write invalidates it.
 */
void
trackV0(const Instruction &inst, std::optional<int> &v0Const)
{
    RegIndex d = defOf(inst);
    if (d != isa::intReg(isa::kRegV0))
        return;
    if ((inst.op == Opcode::kAddiu || inst.op == Opcode::kAddi ||
         inst.op == Opcode::kOri) &&
        inst.rs == isa::kRegZero) {
        v0Const = inst.imm;
    } else {
        v0Const = std::nullopt;
    }
}

/** Per-block GEN sets for the def and forward dataflow problems. */
struct BlockGens
{
    std::vector<RegMask> def;
    std::vector<RegMask> fwd;
};

BlockGens
blockGens(const TaskCfg &cfg)
{
    BlockGens g;
    g.def.resize(cfg.blocks().size());
    g.fwd.resize(cfg.blocks().size());
    for (size_t b = 0; b < cfg.blocks().size(); ++b) {
        for (Addr pc : cfg.blocks()[b].pcs) {
            const Instruction *inst = cfg.program().instrAt(pc);
            RegIndex d = defOf(*inst);
            if (d > 0)
                g.def[b].set(d);
            g.fwd[b] |= fwdPointsOf(*inst);
        }
    }
    return g;
}

} // namespace

AnnotationVerifier::AnnotationVerifier(const Program &prog) : prog_(prog)
{
    for (const auto &[name, addr] : prog.symbols) {
        if (!names_.count(addr))
            names_[addr] = name;
    }
    for (const auto &[addr, desc] : prog.tasks)
        computeFacts(addr);
}

const TaskFacts *
AnnotationVerifier::facts(Addr task) const
{
    auto it = facts_.find(task);
    return it == facts_.end() ? nullptr : &it->second;
}

const TaskCfg *
AnnotationVerifier::cfg(Addr task) const
{
    auto it = cfgs_.find(task);
    return it == cfgs_.end() ? nullptr : it->second.get();
}

std::string
AnnotationVerifier::labelFor(Addr addr) const
{
    auto it = names_.find(addr);
    if (it != names_.end())
        return it->second;
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

Diagnostic
AnnotationVerifier::makeDiag(PassId pass, Severity sev, Addr task,
                             Addr pc, RegIndex reg,
                             std::string message) const
{
    Diagnostic d;
    d.pass = pass;
    d.severity = sev;
    d.task = task;
    d.taskName = labelFor(task);
    d.pc = pc;
    d.reg = reg;
    d.file = prog_.sourceName;
    if (pc != 0) {
        d.line = prog_.lineOf(pc);
    } else if (const TaskDescriptor *desc = prog_.taskAt(task)) {
        d.line = desc->lineNo;
    }
    d.message = std::move(message);
    return d;
}

void
AnnotationVerifier::computeFacts(Addr start)
{
    auto cfgPtr = std::make_unique<TaskCfg>(prog_, start);
    const TaskCfg &cfg = *cfgPtr;

    TaskFacts f;
    f.start = start;
    f.desc = prog_.taskAt(start);
    f.incomplete = cfg.truncated();
    for (const CfgBlock &b : cfg.blocks())
        if (b.opaqueEnd)
            f.incomplete = true;

    const BlockGens gens = blockGens(cfg);

    // May-facts and first sites: a linear scan is enough.
    for (const CfgBlock &b : cfg.blocks()) {
        for (Addr pc : b.pcs) {
            const Instruction *inst = prog_.instrAt(pc);
            RegIndex d = defOf(*inst);
            if (d > 0) {
                f.mayWrite.set(d);
                if (f.firstWritePc[d] == 0)
                    f.firstWritePc[d] = pc;
            }
            f.mayForward |= fwdPointsOf(*inst);
            if (inst->cls() == InstClass::kRelease) {
                if (inst->rs > 0)
                    f.releases.set(inst->rs);
                if (inst->rel2 > 0)
                    f.releases.set(inst->rel2);
            }
        }
    }

    // Use-before-def: walk each block with the must-define IN set.
    const std::vector<RegMask> mustDefIn =
        solveForward(cfg, gens.def, Meet::kMust);
    const RegMask exempt = stackRegs();
    for (size_t b = 0; b < cfg.blocks().size(); ++b) {
        RegMask defined = mustDefIn[b];
        std::optional<int> v0Const;
        for (Addr pc : cfg.blocks()[b].pcs) {
            const Instruction *inst = prog_.instrAt(pc);
            RegIndex uses[4];
            unsigned n = usesForUbd(*inst, v0Const, uses);
            for (unsigned i = 0; i < n; ++i) {
                RegIndex u = uses[i];
                if (u <= 0 || exempt.test(u) || defined.test(u))
                    continue;
                f.useBeforeDef.set(u);
                if (f.firstUbdPc[u] == 0)
                    f.firstUbdPc[u] = pc;
            }
            trackV0(*inst, v0Const);
            RegIndex d = defOf(*inst);
            if (d > 0)
                defined.set(d);
        }
    }

    // Must-write: intersection of OUT over every task exit. A task
    // with no reachable exit never hands values to a successor, so
    // the vacuous intersection (everything) is safe. Opaque ends are
    // exits for this purpose: the writes seen so far are a lower
    // bound on what that path writes by the real task end.
    bool anyExit = false;
    RegMask mustWrite = fullMask();
    for (size_t b = 0; b < cfg.blocks().size(); ++b) {
        const CfgBlock &blk = cfg.blocks()[b];
        if (!blk.exitsTask() && !blk.opaqueEnd)
            continue;
        anyExit = true;
        mustWrite &= mustDefIn[b] | gens.def[b];
    }
    f.mustWrite = anyExit ? mustWrite : fullMask();

    facts_.emplace(start, std::move(f));
    cfgs_.emplace(start, std::move(cfgPtr));
}

AnalysisReport
AnnotationVerifier::verify() const
{
    AnalysisReport rep;
    rep.numTasks = unsigned(facts_.size());
    for (const auto &[addr, f] : facts_)
        if (f.incomplete)
            ++rep.truncatedTasks;

    // Task-graph successor map. kCall targets walk to the callee;
    // the continuation resumes when some descendant takes a kReturn
    // exit, so every task with a kReturn target conservatively gets
    // an edge to every continuation in the program.
    std::map<Addr, std::vector<Addr>> succs;
    std::set<Addr> continuations;
    std::set<Addr> retTasks;
    for (const auto &[addr, f] : facts_) {
        auto &out = succs[addr];
        for (const TaskTarget &t : f.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                retTasks.insert(addr);
                continue;
            }
            if (facts_.count(t.addr))
                out.push_back(t.addr);
            if (t.spec == TargetSpec::kCall && facts_.count(t.returnTo))
                continuations.insert(t.returnTo);
        }
    }
    for (Addr addr : retTasks) {
        auto &out = succs[addr];
        out.insert(out.end(), continuations.begin(), continuations.end());
    }
    for (auto &[addr, out] : succs) {
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }

    const RegMask exempt = stackRegs();

    // Pass 2: mask precision. Also collected for pass 4 suppression
    // (a dead mask entry trivially reaches every stop unforwarded).
    std::map<Addr, RegMask> deadMaskEntries;
    for (const auto &[addr, f] : facts_) {
        if (f.incomplete)
            continue;
        RegMask dead = f.desc->createMask - f.mayWrite - f.releases;
        deadMaskEntries[addr] = dead;
        for (int r = 0; r < kNumRegs; ++r) {
            if (!dead.test(r))
                continue;
            rep.diagnostics.push_back(makeDiag(
                PassId::kMaskPrecision, Severity::kWarning, addr, 0,
                RegIndex(r),
                "create-mask entry " + isa::regName(RegIndex(r)) +
                    " of task " + labelFor(addr) +
                    " is never written and never released; successors "
                    "needing it wait until the task retires (drop it "
                    "from the mask or add a release)"));
        }
    }

    // Passes 3 and 4 share the forward-point GEN sets per task.
    for (const auto &[addr, f] : facts_) {
        const TaskCfg &cfg = *cfgs_.at(addr);
        const BlockGens gens = blockGens(cfg);

        // Pass 3: premature forward. May-analysis: on SOME path the
        // register was already sent when this write executes.
        const std::vector<RegMask> mayFwdIn =
            solveForward(cfg, gens.fwd, Meet::kMay);
        std::set<std::pair<Addr, RegIndex>> reported;
        for (size_t b = 0; b < cfg.blocks().size(); ++b) {
            RegMask forwarded = mayFwdIn[b];
            for (Addr pc : cfg.blocks()[b].pcs) {
                const Instruction *inst = prog_.instrAt(pc);
                RegIndex d = defOf(*inst);
                if (d > 0 && forwarded.test(d) &&
                    reported.emplace(pc, d).second) {
                    rep.diagnostics.push_back(makeDiag(
                        PassId::kPrematureForward, Severity::kError,
                        addr, pc, d,
                        "task " + labelFor(addr) + " writes " +
                            isa::regName(d) +
                            " after already forwarding it; successors "
                            "may have consumed the stale value (move "
                            "the !f/release to the last update)"));
                }
                forwarded |= fwdPointsOf(*inst);
            }
        }

        // Pass 4: missing last-update. Must-analysis: warn when a
        // mask register reaches a stop unforwarded on that path.
        if (f.desc->targets.empty())
            continue; // terminal task: nobody waits on its values
        const std::vector<RegMask> mustFwdIn =
            solveForward(cfg, gens.fwd, Meet::kMust);
        RegMask warned;
        auto deadIt = deadMaskEntries.find(addr);
        if (deadIt != deadMaskEntries.end())
            warned = deadIt->second;
        for (size_t b = 0; b < cfg.blocks().size(); ++b) {
            const CfgBlock &blk = cfg.blocks()[b];
            if (!blk.exitsTask())
                continue;
            const RegMask missing =
                f.desc->createMask - (mustFwdIn[b] | gens.fwd[b]) -
                warned;
            for (int r = 0; r < kNumRegs; ++r) {
                if (!missing.test(r))
                    continue;
                warned.set(r);
                const Addr stopPc = blk.pcs.back();
                rep.diagnostics.push_back(makeDiag(
                    PassId::kMissingLastUpdate, Severity::kWarning,
                    addr, stopPc, RegIndex(r),
                    "create-mask register " + isa::regName(RegIndex(r)) +
                        " of task " + labelFor(addr) +
                        " reaches the stop on some path without a "
                        "forward or release; successors stall until "
                        "the task retires (tag the last update with "
                        "!f or release the register)"));
            }
        }
    }

    // Pass 1: mask soundness. A write outside the mask is invisible
    // to successors in multiscalar execution but visible in scalar
    // execution; it is an error exactly when some successor task can
    // read the register before redefining it.
    std::set<std::pair<Addr, RegIndex>> staleReaders;
    for (const auto &[addr, f] : facts_) {
        RegMask stale = f.mayWrite - f.desc->createMask - exempt;
        for (int r = 0; r < kNumRegs; ++r) {
            if (!stale.test(r))
                continue;
            // Propagate the stale value through the task graph until
            // every path redefines the register.
            std::set<Addr> visited;
            std::deque<Addr> work;
            for (Addr s : succs.at(addr))
                work.push_back(s);
            Addr firstReader = 0;
            while (!work.empty()) {
                Addr s = work.front();
                work.pop_front();
                if (!visited.insert(s).second)
                    continue;
                const TaskFacts &sf = facts_.at(s);
                if (sf.useBeforeDef.test(r)) {
                    staleReaders.emplace(s, RegIndex(r));
                    if (firstReader == 0)
                        firstReader = s;
                }
                const bool kills = !sf.incomplete &&
                                   sf.mustWrite.test(r) &&
                                   !sf.useBeforeDef.test(r);
                if (kills)
                    continue;
                for (Addr nxt : succs.at(s))
                    work.push_back(nxt);
            }
            if (firstReader == 0)
                continue;
            const Addr pc = f.firstWritePc[r];
            const TaskFacts &rf = facts_.at(firstReader);
            std::ostringstream msg;
            msg << "task " << labelFor(addr) << " writes "
                << isa::regName(RegIndex(r))
                << " which is not in its create mask, so the write "
                   "never leaves the task; task "
                << labelFor(firstReader) << " (line "
                << prog_.lineOf(rf.firstUbdPc[r])
                << ") reads the stale value (add "
                << isa::regName(RegIndex(r))
                << " to the create mask or keep it task-local)";
            rep.diagnostics.push_back(
                makeDiag(PassId::kMaskSoundness, Severity::kError,
                         addr, pc, RegIndex(r), msg.str()));
        }
    }

    // Pass 5: use-before-def. Inter-task must-analysis of which
    // registers are well-defined (scalar and multiscalar execution
    // agree on their value) at task entry.
    const TaskFacts *entry = facts(prog_.entry);
    if (entry) {
        std::set<Addr> reachable;
        std::deque<Addr> work{prog_.entry};
        while (!work.empty()) {
            Addr t = work.front();
            work.pop_front();
            if (!reachable.insert(t).second)
                continue;
            for (Addr s : succs.at(t))
                work.push_back(s);
        }

        std::map<Addr, std::vector<Addr>> preds;
        for (Addr t : reachable)
            for (Addr s : succs.at(t))
                if (reachable.count(s))
                    preds[s].push_back(t);

        const RegMask full = fullMask();
        auto transfer = [&](Addr t, RegMask in) {
            const TaskFacts &tf = facts_.at(t);
            // A truncated or opaque walk has unreliable write sets.
            // Treat the task as the identity so its conservatism does
            // not cascade into errors elsewhere: a linter that killed
            // every fact through such a task (e.g. one whose walk
            // blew the state budget on a recursive callee) would cry
            // wolf on every register flowing around its loop.
            if (tf.incomplete)
                return in;
            const RegMask mask = tf.desc->createMask;
            // Mask registers leave the task: defined when inherited
            // defined or written on every path. Unmasked registers
            // revert to pre-task state in multiscalar but keep the
            // write in scalar: any may-write poisons them ($sp/$fp
            // exempt under stack discipline).
            const RegMask masked = (in | tf.mustWrite) & mask;
            const RegMask unmasked = (in - mask) - (tf.mayWrite - exempt);
            return masked | unmasked;
        };

        std::map<Addr, RegMask> wdIn, wdOut;
        for (Addr t : reachable) {
            wdIn[t] = full;
            wdOut[t] = transfer(t, full);
        }
        std::deque<Addr> wl(reachable.begin(), reachable.end());
        std::set<Addr> queued(reachable.begin(), reachable.end());
        while (!wl.empty()) {
            Addr t = wl.front();
            wl.pop_front();
            queued.erase(t);
            // The entry task's IN meets the program-start boundary,
            // where nothing but the runtime-initialized stack
            // registers (exempt anyway) is considered defined: a read
            // of a register no task ever defines is the classic
            // use-before-def even though the zeroed register files
            // happen to agree on it. Non-entry tasks start the meet
            // from the full set (they always have a predecessor — the
            // reachability BFS found them through one).
            RegMask in = (t == prog_.entry) ? RegMask{} : full;
            for (Addr p : preds[t])
                in &= wdOut.at(p);
            RegMask out = transfer(t, in);
            wdIn[t] = in;
            if (out == wdOut.at(t))
                continue;
            wdOut[t] = out;
            for (Addr s : succs.at(t)) {
                if (reachable.count(s) && queued.insert(s).second)
                    wl.push_back(s);
            }
        }

        for (Addr t : reachable) {
            const TaskFacts &tf = facts_.at(t);
            const RegMask undef = tf.useBeforeDef - wdIn.at(t);
            for (int r = 0; r < kNumRegs; ++r) {
                if (!undef.test(r))
                    continue;
                if (staleReaders.count({t, RegIndex(r)}))
                    continue; // already explained by pass 1
                rep.diagnostics.push_back(makeDiag(
                    PassId::kUseBeforeDef, Severity::kError, t,
                    tf.firstUbdPc[r], RegIndex(r),
                    "task " + labelFor(t) + " reads " +
                        isa::regName(RegIndex(r)) +
                        " before any definition, and no inter-task "
                        "path guarantees a well-defined value at "
                        "task entry (forward it from a predecessor "
                        "or define it locally)"));
            }
        }
    }

    // Deterministic order: by pass, then task, then pc, then reg.
    std::stable_sort(
        rep.diagnostics.begin(), rep.diagnostics.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.pass != b.pass)
                return a.pass < b.pass;
            if (a.task != b.task)
                return a.task < b.task;
            if (a.pc != b.pc)
                return a.pc < b.pc;
            return a.reg < b.reg;
        });
    return rep;
}

} // namespace msim::analysis
