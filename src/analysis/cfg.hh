/**
 * @file
 * Per-task control flow graphs for multiscalar programs.
 *
 * A task's code region is not a syntactic range: it is everything
 * reachable from the task's start address by following intra-task
 * control flow (conditional branches, direct jumps, and calls with a
 * bounded static call stack) until a satisfied stop condition hands
 * control to the sequencer. TaskCfg performs that walk once,
 * context-sensitively — a walk state is (pc, return stack), so one
 * helper function called from two sites is analyzed per call site and
 * its returns go back to the right continuation — and condenses the
 * reachable states into basic blocks.
 *
 * The CFG is the shared substrate of the static tooling: TaskGraph
 * derives its per-task facts (exits, stop reachability, instruction
 * counts) from it, and the annotation verifier (verifier.hh) runs
 * bit-vector dataflow over its blocks. It replaces the two ad-hoc
 * walkers TaskGraph used to carry.
 */

#ifndef MSIM_ANALYSIS_CFG_HH
#define MSIM_ANALYSIS_CFG_HH

#include <set>
#include <vector>

#include "program/program.hh"

namespace msim::analysis {

/** Exploration limits of the static walk (shared with TaskGraph). */
inline constexpr size_t kMaxWalkStates = 20000;
inline constexpr size_t kMaxWalkCallDepth = 16;

/**
 * One basic block: a maximal straight-line run of walk states.
 *
 * Because the walk is context-sensitive, the same instruction address
 * can appear in more than one block (one per distinct call context);
 * dataflow over the blocks is then automatically context-sensitive.
 */
struct CfgBlock
{
    /** Instruction addresses in execution order. */
    std::vector<Addr> pcs;
    /** Intra-task successor blocks. */
    std::vector<unsigned> succs;
    /**
     * Task-exit addresses reachable through a satisfied stop
     * condition on the last instruction of this block.
     */
    std::vector<Addr> exits;
    /** A stop on a jr/jalr makes this block's exit dynamic. */
    bool stopDynamicExit = false;
    /**
     * Control leaves the analyzable region without a stop: an
     * indirect call with no stop, or a return with no statically
     * known caller. TaskGraph reports these as dynamic exits too.
     */
    bool opaqueEnd = false;
    /**
     * This block ends in an exit syscall (`li $v0, 10; syscall`):
     * the machine halts, so the path neither continues nor hands
     * values to a successor task.
     */
    bool haltEnd = false;

    /** @return true when a stop condition can exit the task here. */
    bool
    exitsTask() const
    {
        return !exits.empty() || stopDynamicExit;
    }
};

/** The control flow graph of one task. */
class TaskCfg
{
  public:
    /**
     * Build the CFG by walking the task starting at @p start. The
     * program must outlive the graph.
     */
    TaskCfg(const Program &prog, Addr start);

    const Program &program() const { return prog_; }
    Addr start() const { return start_; }

    /** @return the basic blocks; block 0 is the entry (when any). */
    const std::vector<CfgBlock> &blocks() const { return blocks_; }

    /** @return every distinct instruction address in the task. */
    const std::set<Addr> &reachablePcs() const { return reachable_; }

    /** @return sorted distinct task-exit addresses through stops. */
    const std::vector<Addr> &staticExits() const { return staticExits_; }

    /** @return true when any satisfied stop condition is reachable. */
    bool stopReachable() const { return stopReachable_; }

    /**
     * @return true when the task can leave through an address not
     * known statically (jr/jalr stop, unmatched return, indirect
     * call with no stop).
     */
    bool dynamicExit() const { return dynamicExit_; }

    /** @return true when the walk hit kMaxWalkStates and gave up. */
    bool truncated() const { return truncated_; }

    /** @return block predecessor lists (parallel to blocks()). */
    const std::vector<std::vector<unsigned>> &preds() const
    {
        return preds_;
    }

  private:
    void build();

    const Program &prog_;
    Addr start_;
    std::vector<CfgBlock> blocks_;
    std::vector<std::vector<unsigned>> preds_;
    std::set<Addr> reachable_;
    std::vector<Addr> staticExits_;
    bool stopReachable_ = false;
    bool dynamicExit_ = false;
    bool truncated_ = false;
};

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_CFG_HH
