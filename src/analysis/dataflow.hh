/**
 * @file
 * Worklist bit-vector dataflow over a TaskCfg.
 *
 * Facts are RegMask bit vectors (one bit per unified register); the
 * transfer function of a block is IN | GEN (the annotation analyses
 * have no kills — a written register stays written, a forwarded
 * register stays forwarded). Two meets cover all five passes:
 *
 *  - kMay (union): a fact holds if it holds on SOME path. Used for
 *    "may be forwarded by now" in the premature-forward pass.
 *  - kMust (intersection): a fact holds only if it holds on EVERY
 *    path. Used for must-define (use-before-def, last-update) facts.
 *
 * The solver returns the IN set of each block; OUT is IN | GEN.
 * Convergence is immediate from monotonicity: facts only ever grow
 * (kMay) or shrink from the full set (kMust) on a finite lattice.
 */

#ifndef MSIM_ANALYSIS_DATAFLOW_HH
#define MSIM_ANALYSIS_DATAFLOW_HH

#include <deque>
#include <vector>

#include "analysis/cfg.hh"
#include "common/reg_mask.hh"

namespace msim::analysis {

/** Meet operator of a forward dataflow problem. */
enum class Meet { kMay, kMust };

/**
 * Solve a forward gen-only dataflow problem over @p cfg.
 *
 * @param cfg   the task CFG
 * @param gen   per-block generated facts (parallel to cfg.blocks())
 * @param meet  kMay joins with union, kMust with intersection
 * @return per-block IN sets; the task entry's IN is empty (nothing
 *         is established at task entry; inherited state is modeled
 *         by the caller, not the lattice)
 */
inline std::vector<RegMask>
solveForward(const TaskCfg &cfg, const std::vector<RegMask> &gen,
             Meet meet)
{
    const auto &blocks = cfg.blocks();
    const auto &preds = cfg.preds();
    const size_t n = blocks.size();

    RegMask full;
    for (RegIndex r = 0; r < kNumRegs; ++r)
        full.set(r);

    // kMust starts optimistic (everything holds) and intersects
    // downward; kMay starts empty and unions upward. The entry block
    // additionally meets with the empty boundary fact, which for
    // kMust pins its IN to empty even when a loop re-enters it.
    std::vector<RegMask> in(n, meet == Meet::kMust ? full : RegMask{});
    if (n > 0)
        in[0] = RegMask{};

    std::deque<unsigned> work;
    std::vector<bool> queued(n, false);
    for (unsigned b = 0; b < n; ++b) {
        work.push_back(b);
        queued[b] = true;
    }

    while (!work.empty()) {
        const unsigned b = work.front();
        work.pop_front();
        queued[b] = false;

        RegMask newIn = meet == Meet::kMust ? full : RegMask{};
        for (unsigned p : preds[b]) {
            const RegMask out = in[p] | gen[p];
            if (meet == Meet::kMust)
                newIn = newIn & out;
            else
                newIn = newIn | out;
        }
        if (b == 0)
            newIn = RegMask{}; // boundary: nothing holds at entry
        if (newIn == in[b])
            continue;
        in[b] = newIn;
        for (unsigned s : blocks[b].succs) {
            if (!queued[s]) {
                work.push_back(s);
                queued[s] = true;
            }
        }
    }
    return in;
}

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_DATAFLOW_HH
