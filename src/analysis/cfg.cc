#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace msim::analysis {

namespace {

using isa::InstClass;
using isa::Instruction;
using isa::Opcode;
using isa::StopKind;

/** Exploration state: a pc plus a bounded static call stack. */
struct WalkState
{
    Addr pc;
    std::vector<Addr> retStack;

    bool
    operator<(const WalkState &o) const
    {
        if (pc != o.pc)
            return pc < o.pc;
        return retStack < o.retStack;
    }
};

/** Per-state facts gathered during the walk. */
struct StateInfo
{
    std::vector<unsigned> succs;
    std::vector<Addr> exits;
    bool stopDyn = false;
    bool opaque = false;
    bool halt = false;

    bool
    endsBlock() const
    {
        return !exits.empty() || stopDyn || opaque || halt ||
               succs.size() != 1;
    }
};

/**
 * Peephole for the exit syscall: a syscall whose textual predecessor
 * is `li $v0, 10` halts the machine, so the walk must not fall
 * through it (the code below an exit sequence is typically a helper
 * function whose reads belong to its callers, not to this task).
 * Arriving at such a syscall by a jump with a different $v0 would be
 * misclassified, but the pre-peephole behavior — falling through
 * unconditionally — was wrong for that case too.
 */
bool
isExitSyscall(const Program &prog, Addr pc)
{
    const Instruction *prev = prog.instrAt(pc - kInstrBytes);
    if (!prev)
        return false;
    if (prev->op != Opcode::kAddiu && prev->op != Opcode::kAddi &&
        prev->op != Opcode::kOri)
        return false;
    return isa::destOf(*prev) == isa::intReg(isa::kRegV0) &&
           prev->rs == isa::kRegZero && prev->imm == 10;
}

} // namespace

TaskCfg::TaskCfg(const Program &prog, Addr start)
    : prog_(prog), start_(start)
{
    build();
}

void
TaskCfg::build()
{
    // Phase 1: explore the state graph. States whose pc has no
    // instruction are never interned: a path that runs off the text
    // image simply dead-ends (the runtime guards it).
    std::map<WalkState, unsigned> ids;
    std::vector<WalkState> states;
    std::vector<StateInfo> info;
    std::deque<unsigned> work;

    auto intern = [&](WalkState st) -> int {
        auto it = ids.find(st);
        if (it != ids.end())
            return int(it->second);
        if (states.size() >= kMaxWalkStates) {
            truncated_ = true;
            return -1;
        }
        unsigned id = unsigned(states.size());
        ids.emplace(st, id);
        states.push_back(std::move(st));
        info.emplace_back();
        work.push_back(id);
        return int(id);
    };

    if (prog_.instrAt(start_))
        intern({start_, {}});

    std::set<Addr> exitSet;

    while (!work.empty()) {
        const unsigned id = work.front();
        work.pop_front();
        // Copy: intern() may grow `states` while we hold references.
        const WalkState st = states[id];
        const Instruction *inst = prog_.instrAt(st.pc);
        reachable_.insert(st.pc);

        const StopKind stop = inst->tags.stop;
        const Addr fallthrough = st.pc + kInstrBytes;

        auto addEdge = [&](Addr pc, std::vector<Addr> retStack) {
            if (!prog_.instrAt(pc))
                return;
            int t = intern({pc, std::move(retStack)});
            if (t >= 0)
                info[id].succs.push_back(unsigned(t));
        };
        auto addExit = [&](Addr a) {
            stopReachable_ = true;
            info[id].exits.push_back(a);
            exitSet.insert(a);
        };

        if (inst->isCondBranch()) {
            // The "b" pseudo (beq r,r) and its bne r,r dual have only
            // one real path.
            if (inst->isAlwaysTaken() || inst->isNeverTaken()) {
                const Addr next = inst->isAlwaysTaken()
                                      ? inst->target
                                      : fallthrough;
                const bool exits =
                    stop == StopKind::kAlways ||
                    (stop == StopKind::kIfTaken &&
                     inst->isAlwaysTaken()) ||
                    (stop == StopKind::kIfNotTaken &&
                     inst->isNeverTaken());
                if (exits)
                    addExit(next);
                else
                    addEdge(next, st.retStack);
                continue;
            }
            switch (stop) {
              case StopKind::kAlways:
                addExit(inst->target);
                addExit(fallthrough);
                continue;
              case StopKind::kIfTaken:
                addExit(inst->target);
                addEdge(fallthrough, st.retStack);
                continue;
              case StopKind::kIfNotTaken:
                addExit(fallthrough);
                addEdge(inst->target, st.retStack);
                continue;
              case StopKind::kNone:
                addEdge(inst->target, st.retStack);
                addEdge(fallthrough, st.retStack);
                continue;
            }
        }
        if (inst->op == Opcode::kJ) {
            if (stop == StopKind::kAlways)
                addExit(inst->target);
            else
                addEdge(inst->target, st.retStack);
            continue;
        }
        if (inst->op == Opcode::kJal || inst->op == Opcode::kJalr) {
            if (stop == StopKind::kAlways) {
                stopReachable_ = true;
                if (inst->op == Opcode::kJal) {
                    info[id].exits.push_back(inst->target);
                    exitSet.insert(inst->target);
                } else {
                    info[id].stopDyn = true;
                    dynamicExit_ = true;
                }
                continue;
            }
            if (inst->op == Opcode::kJalr) {
                // Indirect call with no stop: cannot follow.
                info[id].opaque = true;
                dynamicExit_ = true;
                continue;
            }
            if (st.retStack.size() < kMaxWalkCallDepth) {
                std::vector<Addr> callee = st.retStack;
                callee.push_back(fallthrough);
                addEdge(inst->target, std::move(callee));
            }
            continue;
        }
        if (inst->op == Opcode::kJr) {
            if (stop == StopKind::kAlways) {
                stopReachable_ = true;
                info[id].stopDyn = true;
                dynamicExit_ = true;
                continue;
            }
            if (!st.retStack.empty()) {
                std::vector<Addr> ret = st.retStack;
                ret.pop_back();
                addEdge(st.retStack.back(), std::move(ret));
            } else {
                // A return with no statically known caller.
                info[id].opaque = true;
                dynamicExit_ = true;
            }
            continue;
        }
        // Straight-line instruction. An exit syscall halts the
        // machine: no successors, and the halt outranks any stop tag.
        if (inst->cls() == InstClass::kSyscall &&
            isExitSyscall(prog_, st.pc)) {
            info[id].halt = true;
            continue;
        }
        if (stop == StopKind::kAlways) {
            addExit(fallthrough);
            continue;
        }
        addEdge(fallthrough, st.retStack);
    }

    staticExits_.assign(exitSet.begin(), exitSet.end());

    // Phase 2: condense states into basic blocks. A state leads a
    // block when it is the entry, has other than exactly one
    // predecessor, or its predecessor ends a block (multiple
    // successors or exit facts of its own).
    const size_t n = states.size();
    if (n == 0)
        return;

    std::vector<unsigned> predCount(n, 0);
    for (const StateInfo &si : info)
        for (unsigned t : si.succs)
            ++predCount[t];

    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (size_t s = 0; s < n; ++s) {
        if (predCount[s] != 1)
            leader[s] = true;
        if (info[s].endsBlock())
            for (unsigned t : info[s].succs)
                leader[t] = true;
    }

    std::vector<int> blockOf(n, -1);
    for (size_t s = 0; s < n; ++s) {
        if (!leader[s])
            continue;
        const unsigned b = unsigned(blocks_.size());
        blocks_.emplace_back();
        unsigned cur = unsigned(s);
        for (;;) {
            blockOf[cur] = int(b);
            blocks_[b].pcs.push_back(states[cur].pc);
            if (info[cur].endsBlock() || leader[info[cur].succs[0]])
                break;
            cur = info[cur].succs[0];
        }
        blocks_[b].exits = info[cur].exits;
        blocks_[b].stopDynamicExit = info[cur].stopDyn;
        blocks_[b].opaqueEnd = info[cur].opaque;
        blocks_[b].haltEnd = info[cur].halt;
        // Record the terminal state; succs resolve after all blocks
        // exist.
        blocks_[b].succs.assign(info[cur].succs.begin(),
                                info[cur].succs.end());
    }
    for (CfgBlock &b : blocks_)
        for (unsigned &t : b.succs)
            t = unsigned(blockOf[t]);

    preds_.assign(blocks_.size(), {});
    for (unsigned b = 0; b < blocks_.size(); ++b)
        for (unsigned t : blocks_[b].succs)
            preds_[t].push_back(b);
}

} // namespace msim::analysis
