/**
 * @file
 * Static memory-dependence analysis for multiscalar programs.
 *
 * The ARB (src/arb) resolves speculative memory dependences at run
 * time: a later task loading bytes an earlier task then stores is a
 * violation, squashing the later task. This module is the static
 * counterpart: it predicts, before a single cycle is simulated, which
 * (earlier, later) task pairs *can* conflict through memory — and
 * therefore where squashes can come from.
 *
 * The address domain is the power-of-two coset lattice over Z_2^32:
 * a register's value is Bottom (unreached), Const c (exactly c),
 * Stride(b, 2^k) — the set { b + m * 2^k mod 2^32 : any integer m } —
 * or Top. A coset is closed under the ISA's address arithmetic
 * (addiu/addu/subu shift cosets, sll scales them), joins reduce to
 * counting trailing zeros of differences, and the lattice is finite
 * (k only ever shrinks), so loop induction variables converge without
 * a widening: joining c and c + 4 immediately yields Stride(c, 4),
 * which also absorbs every further += 4. A decrementing induction
 * (-= 4 is += 0xfffffffc) lands in the same coset. The price is that
 * a non-power-of-two stride coarsens to its largest power-of-two
 * divisor — sound, just blunter.
 *
 * Values propagate in two tiers, mirroring the machine:
 *
 *  - intra-task: a worklist dataflow over the task's CFG (cfg.hh),
 *    with per-opcode transfer functions (anything not affine in a
 *    tracked value widens to Top);
 *  - inter-task: a fixpoint over the task graph. A successor task
 *    inherits create-mask registers from the join of its
 *    predecessors' exit and forward-point values, and every other
 *    register from the predecessor's *entry* (non-mask writes never
 *    leave a task — the sequencer's walk ledger restores the prior
 *    value), seeded at the program entry with the architectural
 *    reset state ($sp = kStackTop, everything else 0).
 *
 * Every load/store instruction then yields a MemRegion (its address
 * coset times its access width); per task these collect into a
 * MemSummary (may-load / may-store sets, with an unknown flag once
 * any address widens to Top). Syscall memory reads are deliberately
 * excluded: syscalls execute at the head unit only, and head loads
 * can never be violated, so they are irrelevant to conflict
 * prediction (and to the oracle below).
 *
 * Three lint passes ride on the summaries:
 *
 *  - mem-conflict (info): an earlier live task's may-store set
 *    intersects a later task's may-load set — the exact hazard the
 *    ARB exists to catch. Info severity: shipped workloads genuinely
 *    squash, the pass names the predicted sources, ranked by loop
 *    depth (task-graph cycle + store-site CFG cycle).
 *  - stack-discipline (error): some path through a task provably
 *    leaves $sp displaced relative to task entry, which breaks the
 *    balanced-stack exemption the annotation verifier documents.
 *    Only reported when the displacement is a known constant.
 *  - dead-store (warning): a store to an exact address that every
 *    path overwrites (with a covering store) before any may-aliasing
 *    load, syscall, or task exit can observe it. Stores whose
 *    address a reachable successor task may load are exempt: they
 *    are transiently visible through the ARB, so removing them
 *    would change dynamic violation timing even though the final
 *    value is always overwritten.
 *
 * The dynamic memDepOracle (MsConfig::memDepOracle) asserts at every
 * ARB violation that the (store-task, load-task, address) triple lies
 * inside the static prediction: the pair must be a predicted conflict
 * pair, the stored bytes must be contained in the store task's
 * may-store set, and the load task's may-load set must intersect
 * them. Tasks whose CFG walk was incomplete are trivially contained.
 */

#ifndef MSIM_ANALYSIS_MEM_DEP_HH
#define MSIM_ANALYSIS_MEM_DEP_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analysis/report.hh"
#include "analysis/verifier.hh"
#include "common/types.hh"
#include "program/program.hh"

namespace msim::analysis {

/** An abstract address value: a power-of-two coset of Z_2^32. */
struct AbsVal
{
    enum class Kind : std::uint8_t { kBottom, kConst, kStride, kTop };

    Kind kind = Kind::kBottom;
    /** A representative element of the coset (exact for kConst). */
    Word base = 0;
    /** log2 of the coset grain, in [1, 31] (kStride only). */
    unsigned grainLog = 0;

    static AbsVal bottom() { return {}; }
    static AbsVal top() { return {Kind::kTop, 0, 0}; }
    static AbsVal constant(Word c) { return {Kind::kConst, c, 0}; }

    /** Build a stride value, normalizing the degenerate grains. */
    static AbsVal stride(Word base, unsigned grain_log);

    bool operator==(const AbsVal &) const = default;
};

/** Least upper bound of two abstract values. */
AbsVal join(const AbsVal &a, const AbsVal &b);
/** Abstract addition (exact on cosets). */
AbsVal add(const AbsVal &a, const AbsVal &b);
/** Abstract negation (cosets are symmetric under negation). */
AbsVal negate(const AbsVal &a);
/** Abstract left shift by a constant amount. */
AbsVal shiftLeft(const AbsVal &a, unsigned amount);

/**
 * A may-touch region: the bytes [a, a + width) for every address a
 * in a coset of Z_2^32. grainLog 32 denotes the exact single address
 * `base`; grainLog 0 denotes every address.
 */
struct MemRegion
{
    Word base = 0;
    unsigned grainLog = 32;
    /** Access width in bytes (1, 2, 4, or 8). */
    unsigned width = 0;
    /** Instruction address of the access site (diagnostics). */
    Addr pc = 0;

    bool exact() const { return grainLog >= 32; }

    /** @return true when the two regions share at least one byte. */
    bool overlaps(const MemRegion &other) const;

    /** @return true when every byte of [addr, addr+size) is here. */
    bool covers(Addr addr, unsigned size) const;
};

/** The may-load / may-store summary of one task. */
struct MemSummary
{
    Addr start = 0;
    std::vector<MemRegion> loads;
    std::vector<MemRegion> stores;
    /** Some load address widened to Top: may load anything. */
    bool loadUnknown = false;
    /** Some store address widened to Top: may store anything. */
    bool storeUnknown = false;
    /** Mirrors TaskFacts::incomplete: sets are lower bounds only. */
    bool incomplete = false;

    /** @return true when a load may touch [addr, addr+size). */
    bool mayLoad(Addr addr, unsigned size) const;
    /** @return true when every byte of [addr, addr+size) may be
     *  stored (union over store regions). */
    bool storesCover(Addr addr, unsigned size) const;
};

/**
 * The program-wide analysis: per-task address dataflow, summaries,
 * conflict pairs, the three lint passes, and the dynamic-oracle
 * containment query.
 */
class MemDepAnalysis
{
  public:
    /**
     * Build summaries and conflict pairs from the verifier's CFGs
     * and facts. Both must outlive the analysis.
     */
    MemDepAnalysis(const Program &prog,
                   const AnnotationVerifier &verifier);
    MemDepAnalysis(Program &&, const AnnotationVerifier &) = delete;

    /** @return the summary of the task at @p task, or nullptr. */
    const MemSummary *summary(Addr task) const;

    /** @return all summaries, keyed by task start address. */
    const std::map<Addr, MemSummary> &summaries() const
    {
        return summaries_;
    }

    /**
     * @return the predicted conflict pairs: ordered (earlier, later)
     * task pairs, later reachable from earlier over the task graph,
     * whose may-store and may-load sets overlap.
     */
    const std::set<std::pair<Addr, Addr>> &conflictPairs() const
    {
        return conflictPairs_;
    }

    /** @return true when (earlier, later) is a predicted conflict. */
    bool
    conflict(Addr earlier, Addr later) const
    {
        return conflictPairs_.count({earlier, later}) != 0;
    }

    /**
     * The memDepOracle query: is a dynamic ARB violation where the
     * task at @p store_task stored [addr, addr+size) and the task at
     * @p load_task had loaded some of those bytes contained in the
     * static prediction? Incomplete summaries are trivially
     * contained; unknown tasks are not (the oracle should trip).
     */
    bool violationPredicted(Addr store_task, Addr load_task, Addr addr,
                            unsigned size) const;

    /**
     * Run the three memory passes and return their report (the mem
     * stats block filled in; numTasks mirrors the verifier's count).
     */
    AnalysisReport lint() const;

  private:
    using Env = std::array<AbsVal, kNumRegs>;

    /** Per-block environments of one intra-task dataflow solve. */
    struct TaskEnvs
    {
        /** Environment at each block entry. */
        std::vector<Env> blockIn;
        /** Join over exit blocks of the end-of-block environment. */
        Env exitJoin;
        /** Join of each register's value at its forward points. */
        Env fwdVals;
        bool anyExit = false;
    };

    TaskEnvs solveTask(Addr start, const Env &entry) const;
    void transfer(Env &env, const isa::Instruction &inst) const;
    AbsVal valueOf(const Env &env, RegIndex reg) const;
    void buildSummaries();
    void buildConflicts();
    Diagnostic makeDiag(PassId pass, Severity sev, Addr task, Addr pc,
                        std::string message) const;
    std::string labelFor(Addr addr) const;

    void lintMemConflict(AnalysisReport &rep) const;
    void lintStackDiscipline(AnalysisReport &rep) const;
    void lintDeadStore(AnalysisReport &rep) const;

    const Program &prog_;
    const AnnotationVerifier &verifier_;
    /** Task-graph successors (same construction as the verifier). */
    std::map<Addr, std::vector<Addr>> succs_;
    /** Tasks whose walk is unreliable: truncated, opaque, or with
     *  call edges cut at the walker's depth cap. */
    std::set<Addr> cut_;
    /** Tasks reachable from the program entry. */
    std::set<Addr> reachable_;
    /** Tasks reachable from each task via at least one edge. */
    std::map<Addr, std::set<Addr>> reachFrom_;
    /** Converged task-entry environments. */
    std::map<Addr, Env> entryEnv_;
    std::map<Addr, MemSummary> summaries_;
    std::set<std::pair<Addr, Addr>> conflictPairs_;
    /** Ordered reachable pairs considered (density denominator). */
    unsigned orderedPairs_ = 0;
    /** Reverse symbol table for diagnostics. */
    std::map<Addr, std::string> names_;
};

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_MEM_DEP_HH
