#include "analysis/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace msim::analysis {

const char *
passName(PassId pass)
{
    switch (pass) {
      case PassId::kMaskSoundness:
        return "mask-soundness";
      case PassId::kMaskPrecision:
        return "mask-precision";
      case PassId::kPrematureForward:
        return "premature-forward";
      case PassId::kMissingLastUpdate:
        return "missing-last-update";
      case PassId::kUseBeforeDef:
        return "use-before-def";
    }
    return "unknown";
}

unsigned
AnalysisReport::errorCount() const
{
    return unsigned(std::count_if(
        diagnostics.begin(), diagnostics.end(),
        [](const Diagnostic &d) { return d.severity == Severity::kError; }));
}

unsigned
AnalysisReport::warningCount() const
{
    return unsigned(diagnostics.size()) - errorCount();
}

namespace {

void
renderLine(std::ostringstream &os, const Diagnostic &d)
{
    if (!d.file.empty())
        os << d.file << ":";
    if (d.line > 0)
        os << d.line << ":";
    if (!d.file.empty() || d.line > 0)
        os << " ";
    os << (d.severity == Severity::kError ? "error: " : "warning: ")
       << d.message << " [" << passName(d.pass) << "]\n";
}

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
AnalysisReport::toText() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::kError)
            renderLine(os, d);
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::kWarning)
            renderLine(os, d);
    if (!diagnostics.empty()) {
        os << errorCount() << " error(s), " << warningCount()
           << " warning(s) across " << numTasks << " task(s)\n";
    }
    return os.str();
}

std::string
AnalysisReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"msim-lint-v1\",\n";
    os << "  \"tasks\": " << numTasks << ",\n";
    os << "  \"truncated_tasks\": " << truncatedTasks << ",\n";
    os << "  \"errors\": " << errorCount() << ",\n";
    os << "  \"warnings\": " << warningCount() << ",\n";
    os << "  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &d : diagnostics) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"pass\": \"" << passName(d.pass) << "\", "
           << "\"severity\": \""
           << (d.severity == Severity::kError ? "error" : "warning")
           << "\", "
           << "\"task\": \"" << jsonEscape(d.taskName) << "\", "
           << "\"pc\": " << d.pc << ", "
           << "\"reg\": " << int(d.reg) << ", "
           << "\"file\": \"" << jsonEscape(d.file) << "\", "
           << "\"line\": " << d.line << ", "
           << "\"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

} // namespace msim::analysis
