#include "analysis/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace msim::analysis {

const char *
passName(PassId pass)
{
    switch (pass) {
      case PassId::kMaskSoundness:
        return "mask-soundness";
      case PassId::kMaskPrecision:
        return "mask-precision";
      case PassId::kPrematureForward:
        return "premature-forward";
      case PassId::kMissingLastUpdate:
        return "missing-last-update";
      case PassId::kUseBeforeDef:
        return "use-before-def";
      case PassId::kMemConflict:
        return "mem-conflict";
      case PassId::kStackDiscipline:
        return "stack-discipline";
      case PassId::kDeadStore:
        return "dead-store";
    }
    return "unknown";
}

std::optional<PassId>
passByName(std::string_view name)
{
    for (auto pass :
         {PassId::kMaskSoundness, PassId::kMaskPrecision,
          PassId::kPrematureForward, PassId::kMissingLastUpdate,
          PassId::kUseBeforeDef, PassId::kMemConflict,
          PassId::kStackDiscipline, PassId::kDeadStore}) {
        if (name == passName(pass))
            return pass;
    }
    return std::nullopt;
}

namespace {

unsigned
countOf(const std::vector<Diagnostic> &diags, Severity sev)
{
    return unsigned(std::count_if(
        diags.begin(), diags.end(),
        [sev](const Diagnostic &d) { return d.severity == sev; }));
}

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::kError:
        return "error";
      case Severity::kWarning:
        return "warning";
      case Severity::kInfo:
        return "info";
    }
    return "unknown";
}

void
renderLine(std::ostringstream &os, const Diagnostic &d)
{
    if (!d.file.empty())
        os << d.file << ":";
    if (d.line > 0)
        os << d.line << ":";
    if (!d.file.empty() || d.line > 0)
        os << " ";
    os << severityName(d.severity) << ": " << d.message << " ["
       << passName(d.pass) << "]\n";
}

} // namespace

unsigned
AnalysisReport::errorCount() const
{
    return countOf(diagnostics, Severity::kError);
}

unsigned
AnalysisReport::warningCount() const
{
    return countOf(diagnostics, Severity::kWarning);
}

unsigned
AnalysisReport::infoCount() const
{
    return countOf(diagnostics, Severity::kInfo);
}

namespace {

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
AnalysisReport::toText() const
{
    std::ostringstream os;
    for (auto sev :
         {Severity::kError, Severity::kWarning, Severity::kInfo}) {
        for (const Diagnostic &d : diagnostics)
            if (d.severity == sev)
                renderLine(os, d);
    }
    if (!diagnostics.empty()) {
        os << errorCount() << " error(s), " << warningCount()
           << " warning(s)";
        if (infoCount() > 0)
            os << ", " << infoCount() << " info(s)";
        os << " across " << numTasks << " task(s)\n";
    }
    return os.str();
}

std::string
AnalysisReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"msim-lint-v1\",\n";
    os << "  \"tasks\": " << numTasks << ",\n";
    os << "  \"truncated_tasks\": " << truncatedTasks << ",\n";
    os << "  \"errors\": " << errorCount() << ",\n";
    os << "  \"warnings\": " << warningCount() << ",\n";
    os << "  \"infos\": " << infoCount() << ",\n";
    if (mem.present) {
        char density[32];
        std::snprintf(density, sizeof(density), "%.4f", mem.density());
        os << "  \"mem\": {\"tasks\": " << mem.tasks
           << ", \"reachable_tasks\": " << mem.reachableTasks
           << ", \"ordered_pairs\": " << mem.orderedPairs
           << ", \"conflict_pairs\": " << mem.conflictPairs
           << ", \"unknown_load_tasks\": " << mem.unknownLoadTasks
           << ", \"unknown_store_tasks\": " << mem.unknownStoreTasks
           << ", \"conflict_density\": " << density << "},\n";
    }
    os << "  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &d : diagnostics) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"pass\": \"" << passName(d.pass) << "\", "
           << "\"severity\": \"" << severityName(d.severity) << "\", "
           << "\"task\": \"" << jsonEscape(d.taskName) << "\", "
           << "\"pc\": " << d.pc << ", "
           << "\"reg\": " << int(d.reg) << ", "
           << "\"file\": \"" << jsonEscape(d.file) << "\", "
           << "\"line\": " << d.line << ", "
           << "\"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

} // namespace msim::analysis
