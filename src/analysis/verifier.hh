/**
 * @file
 * Static verification of multiscalar task annotations.
 *
 * Annotation bugs in a multiscalar program are miserable to debug at
 * run time: a register written outside the create mask silently stays
 * task-local, a forward placed before the last update sends successors
 * a stale value, and a missing forward merely makes the program slow.
 * The verifier finds these statically, by running bit-vector dataflow
 * (dataflow.hh) over each task's CFG (cfg.hh) and then propagating
 * per-task summaries over the task graph.
 *
 * The soundness criterion is semantic divergence between scalar and
 * multiscalar execution of the same program. In the multiscalar model
 * only create-mask registers leave a task (the retiring unit merges
 * exactly the mask registers into architectural state; everything
 * else is task-local scratch), while a scalar machine keeps every
 * write. The analyses encode that asymmetry.
 *
 * Five passes:
 *
 *  1. mask-soundness (error): a register written on some path but
 *     absent from the create mask, where some successor task reads
 *     the value before redefining it — scalar execution sees the
 *     write, multiscalar does not.
 *  2. mask-precision (warning): a create-mask entry never written
 *     and never released — successors that need the value wait for
 *     the task to retire (the auto-release at task end is the only
 *     thing that unblocks them).
 *  3. premature-forward (error): a path that writes a register after
 *     it was forwarded (!f) or released — successors already
 *     consumed the stale value. Catches !f inside loops.
 *  4. missing-last-update (warning): a create-mask register that
 *     reaches a stop with no forward or release on that path — the
 *     paper's section 4 last-update stall.
 *  5. use-before-def (error): a task reads a register that is
 *     neither well-defined at task entry (on every inter-task path
 *     from program start, where nothing starts defined) nor defined
 *     locally first.
 *
 * Assumptions, applied as documented exemptions: $sp/$fp follow stack
 * discipline (balanced save/restore across tasks), so they are
 * treated as always well-defined and their task-local adjustment is
 * not a mask-soundness error; stores of callee-saved registers
 * through $sp/$fp are not use-before-def reads (the restore pairs
 * with the save); release operands are deliberate reads of inherited
 * state. Tasks whose walk was truncated or left the analyzable
 * region (incomplete facts) are treated optimistically: the linter
 * trusts rather than poisons facts flowing through them, so it may
 * miss a bug there but never invents one.
 */

#ifndef MSIM_ANALYSIS_VERIFIER_HH
#define MSIM_ANALYSIS_VERIFIER_HH

#include <array>
#include <map>
#include <memory>

#include "analysis/cfg.hh"
#include "analysis/report.hh"
#include "common/reg_mask.hh"
#include "program/program.hh"

namespace msim::analysis {

/**
 * Per-task dataflow summary. This is also the interface to the
 * dynamic write-set oracle: at run time the actual set of registers
 * a task wrote must be contained in mayWrite, and the explicitly
 * forwarded set in mayForward (see MsConfig::writeSetOracle).
 */
struct TaskFacts
{
    Addr start = 0;
    const TaskDescriptor *desc = nullptr;

    /** Registers some path may write (union over reachable instrs). */
    RegMask mayWrite;
    /** Registers every path to every task exit writes. */
    RegMask mustWrite;
    /** Registers some path explicitly forwards (!f or release). */
    RegMask mayForward;
    /** Registers some path releases. */
    RegMask releases;
    /** Registers read before any local definition on some path. */
    RegMask useBeforeDef;

    /**
     * True when the CFG walk was truncated or left the analyzable
     * region (indirect call / unmatched return): may-sets are lower
     * bounds only and must not back a dynamic oracle.
     */
    bool incomplete = false;

    /** First write site per register (0 = none). */
    std::array<Addr, kNumRegs> firstWritePc{};
    /** First use-before-def site per register (0 = none). */
    std::array<Addr, kNumRegs> firstUbdPc{};
};

/** Runs the five annotation passes over one program. */
class AnnotationVerifier
{
  public:
    /** Build CFGs and per-task facts. The program must outlive the
     *  verifier (rvalue overload deleted to prevent a temporary). */
    explicit AnnotationVerifier(const Program &prog);
    explicit AnnotationVerifier(Program &&) = delete;

    /** @return facts for the task starting at @p task, or nullptr. */
    const TaskFacts *facts(Addr task) const;

    /** @return all per-task facts, keyed by task start address. */
    const std::map<Addr, TaskFacts> &allFacts() const { return facts_; }

    /** @return the CFG of the task at @p task, or nullptr. */
    const TaskCfg *cfg(Addr task) const;

    /** Run all five passes. */
    AnalysisReport verify() const;

  private:
    void computeFacts(Addr start);
    std::string labelFor(Addr addr) const;
    Diagnostic makeDiag(PassId pass, Severity sev, Addr task, Addr pc,
                        RegIndex reg, std::string message) const;

    const Program &prog_;
    std::map<Addr, TaskFacts> facts_;
    std::map<Addr, std::unique_ptr<TaskCfg>> cfgs_;
    /** Reverse symbol table for diagnostics. */
    std::map<Addr, std::string> names_;
};

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_VERIFIER_HH
