/**
 * @file
 * Diagnostics produced by the static annotation verifier.
 *
 * A diagnostic carries enough source context (file, line, task,
 * register) to render either as GCC-style one-per-line text —
 * `file:line: error: message` — or as a JSON document for tooling.
 */

#ifndef MSIM_ANALYSIS_REPORT_HH
#define MSIM_ANALYSIS_REPORT_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace msim::analysis {

/**
 * The verification passes: five annotation passes (verifier.hh) and
 * three memory-dependence passes (mem_dep.hh).
 */
enum class PassId : std::uint8_t {
    kMaskSoundness,      //!< write outside mask reaches a stale read
    kMaskPrecision,      //!< mask entry never written nor released
    kPrematureForward,   //!< write after the register was forwarded
    kMissingLastUpdate,  //!< path reaches a stop without forwarding
    kUseBeforeDef,       //!< read of a value no path defines
    kMemConflict,        //!< cross-task may-store/may-load overlap
    kStackDiscipline,    //!< unbalanced $sp adjustment across a task
    kDeadStore,          //!< store overwritten before any may-read
};

/**
 * Finding severities. kInfo never gates an exit status (even under
 * --strict): it marks expected-but-noteworthy behavior, like the
 * predicted ARB squash sources of mem-conflict.
 */
enum class Severity : std::uint8_t { kInfo, kWarning, kError };

/** @return the stable kebab-case name of a pass ("mask-soundness"). */
const char *passName(PassId pass);

/** @return the pass with the given kebab-case name, if any. */
std::optional<PassId> passByName(std::string_view name);

/** One finding. */
struct Diagnostic
{
    PassId pass;
    Severity severity = Severity::kError;
    /** Start address of the task the finding belongs to. */
    Addr task = 0;
    /** Symbolic name of the task (label), when known. */
    std::string taskName;
    /** Instruction address the finding anchors to (0 = task-level). */
    Addr pc = 0;
    /** Unified register index the finding is about. */
    RegIndex reg = kNoReg;
    /** Source file (from the program; may be empty). */
    std::string file;
    /** Source line (0 = unknown). */
    int line = 0;
    /** Human-readable description, no file/line prefix. */
    std::string message;
};

/**
 * Aggregate numbers of the memory-dependence analysis (mem_dep.hh):
 * the statically predicted cross-task conflict density of a program,
 * for correlating lint output with measured squash counters.
 */
struct MemDepStats
{
    /** True once a MemDepAnalysis filled these numbers in. */
    bool present = false;
    /** Tasks with a memory summary. */
    unsigned tasks = 0;
    /** Tasks reachable from the program entry over the task graph. */
    unsigned reachableTasks = 0;
    /** Ordered reachable (earlier, later) task pairs considered. */
    unsigned orderedPairs = 0;
    /** Pairs whose may-store/may-load sets overlap. */
    unsigned conflictPairs = 0;
    /** Tasks whose may-load set widened to unknown. */
    unsigned unknownLoadTasks = 0;
    /** Tasks whose may-store set widened to unknown. */
    unsigned unknownStoreTasks = 0;

    /** @return predicted conflict density in [0, 1]. */
    double
    density() const
    {
        return orderedPairs ? double(conflictPairs) / orderedPairs : 0.0;
    }
};

/** Everything the verifier found for one program. */
struct AnalysisReport
{
    std::vector<Diagnostic> diagnostics;
    /** Number of task descriptors analyzed. */
    unsigned numTasks = 0;
    /** Tasks whose CFG walk hit the state cap (facts incomplete). */
    unsigned truncatedTasks = 0;
    /** Predicted conflict density (filled by MemDepAnalysis::lint). */
    MemDepStats mem;

    unsigned errorCount() const;
    unsigned warningCount() const;
    unsigned infoCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /**
     * Render one `file:line: severity: message [pass]` line per
     * diagnostic, errors first, then a summary line when anything
     * was found.
     */
    std::string toText() const;

    /** Render as a JSON document (schema "msim-lint-v1"). */
    std::string toJson() const;
};

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_REPORT_HH
