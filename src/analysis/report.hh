/**
 * @file
 * Diagnostics produced by the static annotation verifier.
 *
 * A diagnostic carries enough source context (file, line, task,
 * register) to render either as GCC-style one-per-line text —
 * `file:line: error: message` — or as a JSON document for tooling.
 */

#ifndef MSIM_ANALYSIS_REPORT_HH
#define MSIM_ANALYSIS_REPORT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace msim::analysis {

/** The five verification passes (see verifier.hh). */
enum class PassId : std::uint8_t {
    kMaskSoundness,      //!< write outside mask reaches a stale read
    kMaskPrecision,      //!< mask entry never written nor released
    kPrematureForward,   //!< write after the register was forwarded
    kMissingLastUpdate,  //!< path reaches a stop without forwarding
    kUseBeforeDef,       //!< read of a value no path defines
};

enum class Severity : std::uint8_t { kWarning, kError };

/** @return the stable kebab-case name of a pass ("mask-soundness"). */
const char *passName(PassId pass);

/** One finding. */
struct Diagnostic
{
    PassId pass;
    Severity severity = Severity::kError;
    /** Start address of the task the finding belongs to. */
    Addr task = 0;
    /** Symbolic name of the task (label), when known. */
    std::string taskName;
    /** Instruction address the finding anchors to (0 = task-level). */
    Addr pc = 0;
    /** Unified register index the finding is about. */
    RegIndex reg = kNoReg;
    /** Source file (from the program; may be empty). */
    std::string file;
    /** Source line (0 = unknown). */
    int line = 0;
    /** Human-readable description, no file/line prefix. */
    std::string message;
};

/** Everything the verifier found for one program. */
struct AnalysisReport
{
    std::vector<Diagnostic> diagnostics;
    /** Number of task descriptors analyzed. */
    unsigned numTasks = 0;
    /** Tasks whose CFG walk hit the state cap (facts incomplete). */
    unsigned truncatedTasks = 0;

    unsigned errorCount() const;
    unsigned warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }

    /**
     * Render one `file:line: severity: message [pass]` line per
     * diagnostic, errors first, then a summary line when anything
     * was found.
     */
    std::string toText() const;

    /** Render as a JSON document (schema "msim-lint-v1"). */
    std::string toJson() const;
};

} // namespace msim::analysis

#endif // MSIM_ANALYSIS_REPORT_HH
