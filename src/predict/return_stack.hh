/**
 * @file
 * The sequencer's return address stack (64 entries in the paper's
 * configuration).
 *
 * When the sequencer follows a task target with spec kCall, it pushes
 * the continuation address; when it follows a kReturn target, it pops
 * the predicted continuation. Because task assignment is speculative,
 * the stack supports checkpointing: the sequencer snapshots the top
 * pointer when assigning a task and restores it when the task is
 * squashed (the usual RAS recovery scheme; entries overwritten by
 * wrong-path pushes may still be lost, as in real hardware).
 */

#ifndef MSIM_PREDICT_RETURN_STACK_HH
#define MSIM_PREDICT_RETURN_STACK_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace msim {

/** Circular return address stack with checkpointable top pointer. */
class ReturnStack
{
  public:
    explicit ReturnStack(unsigned entries = 64)
        : slots_(entries, 0)
    {
        fatalIf(entries == 0, "return stack needs entries");
    }

    /** Push a continuation address. */
    void
    push(Addr addr)
    {
        top_ = (top_ + 1) % slots_.size();
        slots_[top_] = addr;
        if (depth_ < slots_.size())
            ++depth_;
    }

    /** Pop the predicted return address (0 when empty). */
    Addr
    pop()
    {
        if (depth_ == 0)
            return 0;
        Addr addr = slots_[top_];
        top_ = (top_ + slots_.size() - 1) % slots_.size();
        --depth_;
        return addr;
    }

    /** Capture the current position for later recovery. */
    struct Checkpoint
    {
        size_t top = 0;
        size_t depth = 0;
    };

    Checkpoint
    checkpoint() const
    {
        return {top_, depth_};
    }

    /** Restore a previously captured position. */
    void
    restore(const Checkpoint &cp)
    {
        top_ = cp.top;
        depth_ = cp.depth;
    }

    size_t depth() const { return depth_; }

    void
    clear()
    {
        top_ = 0;
        depth_ = 0;
    }

  private:
    std::vector<Addr> slots_;
    size_t top_ = 0;
    size_t depth_ = 0;
};

} // namespace msim

#endif // MSIM_PREDICT_RETURN_STACK_HH
