/**
 * @file
 * The sequencer's task descriptor cache: 1024 entries, direct mapped
 * (paper section 5.1). Timing model only — descriptors are read
 * functionally from the Program. A miss fetches the descriptor (one
 * bus transfer) before the task can be assigned.
 */

#ifndef MSIM_PREDICT_DESCRIPTOR_CACHE_HH
#define MSIM_PREDICT_DESCRIPTOR_CACHE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"

namespace msim {

/** Direct-mapped cache of task descriptors (timing only). */
class DescriptorCache
{
  public:
    DescriptorCache(StatGroup &stats, MemoryBus &bus,
                    unsigned entries = 1024)
        : stats_(stats), bus_(bus), tags_(entries, kBadAddr)
    {
        fatalIf(entries == 0, "descriptor cache needs entries");
    }

    /**
     * Look up the descriptor for the task at @p addr.
     *
     * @return the cycle the descriptor is available (hit: now + 1).
     */
    Cycle
    access(Cycle now, Addr addr)
    {
        const size_t idx = size_t(addr / kInstrBytes) % tags_.size();
        if (tags_[idx] == addr) {
            stats_.add("hits");
            return now + 1;
        }
        stats_.add("misses");
        tags_[idx] = addr;
        // A descriptor is 4 words (mask, targets); one bus beat.
        return bus_.request(now, 4) + 1;
    }

    /** Invalidate the cache (between runs). */
    void
    clear()
    {
        std::fill(tags_.begin(), tags_.end(), kBadAddr);
    }

  private:
    StatGroup &stats_;
    MemoryBus &bus_;
    std::vector<Addr> tags_;
};

} // namespace msim

#endif // MSIM_PREDICT_DESCRIPTOR_CACHE_HH
