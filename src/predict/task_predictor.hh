/**
 * @file
 * Control flow prediction for the task sequencer (paper section 5.1).
 *
 * The sequencer does not predict individual branches; it predicts
 * which of a task's (up to four) successor targets the program will
 * take — this is the key to speculating across hundreds of branches
 * (section 4.1). The paper's configuration is a PAs two-level
 * predictor [Yeh & Patt]: a 64-entry first-level table of 12-bit
 * per-task histories (6 outcomes x 2-bit target numbers) indexing
 * 4096-entry second-level pattern tables of 3-bit entries (a 2-bit
 * target number plus a hysteresis bit), supplemented by a 64-entry
 * return address stack (managed by the sequencer).
 *
 * Simpler predictors (static target-0, last-target) are provided for
 * the predictor ablation benchmark.
 */

#ifndef MSIM_PREDICT_TASK_PREDICTOR_HH
#define MSIM_PREDICT_TASK_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "program/task_descriptor.hh"

namespace msim {

/** Abstract task-successor predictor. */
class TaskPredictor
{
  public:
    virtual ~TaskPredictor() = default;

    /**
     * Predict which target of @p desc the task at @p task_addr will
     * exit to.
     *
     * @return a target index in [0, desc.targets.size()).
     */
    virtual unsigned predict(Addr task_addr,
                             const TaskDescriptor &desc) = 0;

    /** Train with the actual outcome. */
    virtual void update(Addr task_addr, const TaskDescriptor &desc,
                        unsigned actual_index) = 0;

    /** @return a short name for reports. */
    virtual std::string name() const = 0;
};

/** Always predicts target 0 (the compiler's preferred successor). */
class StaticTaskPredictor : public TaskPredictor
{
  public:
    unsigned
    predict(Addr, const TaskDescriptor &) override
    {
        return 0;
    }

    void update(Addr, const TaskDescriptor &, unsigned) override {}

    std::string name() const override { return "static"; }
};

/** Predicts the most recent outcome of each task (1-entry history). */
class LastTargetPredictor : public TaskPredictor
{
  public:
    explicit LastTargetPredictor(unsigned table_size = 1024)
        : table_(table_size, 0)
    {
    }

    unsigned
    predict(Addr task_addr, const TaskDescriptor &desc) override
    {
        unsigned t = table_[index(task_addr)];
        return t < desc.targets.size() ? t : 0;
    }

    void
    update(Addr task_addr, const TaskDescriptor &,
           unsigned actual_index) override
    {
        table_[index(task_addr)] = std::uint8_t(actual_index);
    }

    std::string name() const override { return "last-target"; }

  private:
    size_t
    index(Addr addr) const
    {
        return (addr / kInstrBytes) % table_.size();
    }

    std::vector<std::uint8_t> table_;
};

/** The paper's PAs two-level predictor. */
class PAsTaskPredictor : public TaskPredictor
{
  public:
    struct Params
    {
        unsigned historyEntries = 64;    //!< first-level table entries
        unsigned historyOutcomes = 6;    //!< outcomes per history
        unsigned patternEntries = 4096;  //!< second-level entries
    };

    PAsTaskPredictor() : PAsTaskPredictor(Params{}) {}
    explicit PAsTaskPredictor(const Params &params);

    unsigned predict(Addr task_addr, const TaskDescriptor &desc) override;
    void update(Addr task_addr, const TaskDescriptor &desc,
                unsigned actual_index) override;
    std::string name() const override { return "PAs"; }

  private:
    /** 3-bit pattern table entry. */
    struct PatternEntry
    {
        std::uint8_t target = 0;    //!< 2-bit predicted target number
        bool hysteresis = false;    //!< resists one mispredict
    };

    size_t historyIndex(Addr addr) const;
    size_t patternIndex(std::uint16_t history) const;

    Params params_;
    std::uint16_t historyMask_;
    std::vector<std::uint16_t> histories_;
    std::vector<PatternEntry> patterns_;
};

/** Factory by name: "pas", "last", "static". */
std::unique_ptr<TaskPredictor> makeTaskPredictor(const std::string &kind);

} // namespace msim

#endif // MSIM_PREDICT_TASK_PREDICTOR_HH
