#include "predict/task_predictor.hh"

#include "common/logging.hh"

namespace msim {

PAsTaskPredictor::PAsTaskPredictor(const Params &params)
    : params_(params)
{
    fatalIf(params.historyEntries == 0 || params.patternEntries == 0,
            "PAs predictor needs non-empty tables");
    fatalIf(params.historyOutcomes == 0 || params.historyOutcomes > 8,
            "PAs history depth must be 1-8");
    const unsigned bits = 2 * params.historyOutcomes;
    historyMask_ = std::uint16_t((1u << bits) - 1);
    histories_.assign(params.historyEntries, 0);
    patterns_.assign(params.patternEntries, PatternEntry{});
}

size_t
PAsTaskPredictor::historyIndex(Addr addr) const
{
    return size_t(addr / kInstrBytes) % params_.historyEntries;
}

size_t
PAsTaskPredictor::patternIndex(std::uint16_t history) const
{
    return size_t(history) % params_.patternEntries;
}

unsigned
PAsTaskPredictor::predict(Addr task_addr, const TaskDescriptor &desc)
{
    const std::uint16_t history = histories_[historyIndex(task_addr)];
    const PatternEntry &entry = patterns_[patternIndex(history)];
    if (entry.target < desc.targets.size())
        return entry.target;
    return 0;
}

void
PAsTaskPredictor::update(Addr task_addr, const TaskDescriptor &desc,
                         unsigned actual_index)
{
    panicIf(actual_index >= desc.targets.size(),
            "PAs update with bad target index");
    std::uint16_t &history = histories_[historyIndex(task_addr)];
    PatternEntry &entry = patterns_[patternIndex(history)];
    if (entry.target == actual_index) {
        entry.hysteresis = true;
    } else if (entry.hysteresis) {
        entry.hysteresis = false;
    } else {
        entry.target = std::uint8_t(actual_index & 0x3);
        entry.hysteresis = false;
    }
    // Shift the 2-bit outcome into the per-task history register.
    history = std::uint16_t(((history << 2) | (actual_index & 0x3)) &
                            historyMask_);
}

std::unique_ptr<TaskPredictor>
makeTaskPredictor(const std::string &kind)
{
    if (kind == "pas")
        return std::make_unique<PAsTaskPredictor>();
    if (kind == "last")
        return std::make_unique<LastTargetPredictor>();
    if (kind == "static")
        return std::make_unique<StaticTaskPredictor>();
    fatal("unknown task predictor '", kind, "'");
}

} // namespace msim
