/**
 * @file
 * The scalar baseline processor of the paper's evaluation: a single
 * processing unit identical to a multiscalar unit (same pipeline,
 * same FU latencies), with its own 32 KB icache and a 64 KB data
 * cache with a 1-cycle hit time (vs 2 cycles through the multiscalar
 * crossbar), both in front of the shared memory bus. It executes the
 * scalar binary (no multiscalar annotations).
 */

#ifndef MSIM_CORE_SCALAR_PROCESSOR_HH
#define MSIM_CORE_SCALAR_PROCESSOR_HH

#include <deque>
#include <memory>
#include <optional>

#include "common/stats.hh"
#include "core/run_result.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/l2_cache.hh"
#include "mem/main_memory.hh"
#include "mem/mem_level.hh"
#include "program/program.hh"
#include "pu/processing_unit.hh"
#include "pu/pu_context.hh"
#include "sim/syscalls.hh"
#include "trace/cycle_accounting.hh"
#include "trace/tracer.hh"

namespace msim {

/** Scalar baseline configuration (paper section 5.1). */
struct ScalarConfig
{
    PuConfig pu;
    Cache::Params icache{32 * 1024, 64, 1};
    Cache::Params dcache{64 * 1024, 64, 1};

    /** Optional shared L2 (see MsConfig::l2); null = direct to bus. */
    std::optional<L2Params> l2;

    MemoryBus::Params bus;

    /** Event tracing (off by default; see src/trace/). */
    TraceConfig trace;

    /** Cycle-exact fast-forward (see MsConfig::fastForward). */
    bool fastForward = true;

    /**
     * Consistency check in the spirit of MsConfig::validate():
     * throws FatalError with a "scalar config: <field>: <why>"
     * message on bad pipeline widths or cache geometry. Called at
     * ScalarProcessor construction and on every parsed scalar shape.
     */
    void validate() const;
};

/** The scalar baseline machine. */
class ScalarProcessor : public PuContext
{
  public:
    ScalarProcessor(const Program &program, const ScalarConfig &config);

    /** Provide the integer input stream for syscall 5. */
    void setInput(std::deque<std::int32_t> input);

    /** Run to the exit syscall (or @p max_cycles). */
    RunResult run(Cycle max_cycles = 1'000'000'000);

    /** @return direct access to the functional memory (test setup). */
    MainMemory &memory() { return mem_; }

    /** @return the collected statistics. */
    const StatRegistry &stats() const { return stats_; }

    // --- PuContext ---------------------------------------------------
    const isa::Instruction *instrAt(Addr pc) override;
    Cycle icacheAccess(unsigned unit, Cycle now, Addr pc) override;
    Cycle dcacheAccess(unsigned unit, Cycle now, Addr addr,
                       bool write) override;
    bool memHasSpace(unsigned unit, Addr addr, unsigned size,
                     bool is_load) override;
    std::uint64_t memLoad(unsigned unit, Addr addr,
                          unsigned size) override;
    void memStore(unsigned unit, Addr addr, unsigned size,
                  std::uint64_t value) override;
    void forwardReg(unsigned unit, RegIndex reg,
                    isa::RegValue value) override;
    bool syscallAllowed(unsigned unit) override;
    isa::RegValue doSyscall(unsigned unit, isa::RegValue v0,
                            isa::RegValue a0, isa::RegValue a1) override;
    void taskExited(unsigned unit, Addr next_task) override;

  private:
    const Program &program_;
    ScalarConfig config_;
    StatRegistry stats_;
    /** Only constructed when config.trace.enabled. */
    std::unique_ptr<Tracer> tracer_;
    CycleAccounting acct_;
    MainMemory mem_;
    std::unique_ptr<MemoryBus> bus_;
    /** The L1s' next level: the shared L2, or the bus adapter. */
    std::unique_ptr<L2Cache> l2_;
    std::unique_ptr<BusMemLevel> busLevel_;
    std::unique_ptr<Cache> icache_;
    std::unique_ptr<Cache> dcache_;
    std::unique_ptr<SyscallHandler> syscalls_;
    std::unique_ptr<ProcessingUnit> unit_;
    bool started_ = false;
    /** Cycle-exact fast-forward (see MsConfig::fastForward). */
    bool fastForward_ = false;
};

} // namespace msim

#endif // MSIM_CORE_SCALAR_PROCESSOR_HH
