#include "core/scalar_processor.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim {

ScalarProcessor::ScalarProcessor(const Program &program,
                                 const ScalarConfig &config)
    : program_(program), config_(config), acct_(1)
{
    config.validate();
    mem_.loadProgram(program);
    if (config.trace.enabled) {
        tracer_ = std::make_unique<Tracer>(config.trace);
        tracer_->threadName(0, "pu0");
        tracer_->threadName(kTidBus, "bus");
        tracer_->threadName(kTidIcacheBase, "icache");
        tracer_->threadName(kTidDcacheBase, "dcache");
    }
    Tracer *tracer = tracer_.get();
    bus_ = std::make_unique<MemoryBus>(stats_.group("bus"), config.bus,
                                       tracer);
    MemLevel *l1next;
    if (config.l2) {
        l2_ = std::make_unique<L2Cache>(stats_.group("l2"), *bus_,
                                        *config.l2, tracer);
        l1next = l2_.get();
        if (tracer_)
            tracer_->threadName(kTidL2Base, "l2");
    } else {
        busLevel_ = std::make_unique<BusMemLevel>(*bus_);
        l1next = busLevel_.get();
    }
    icache_ = std::make_unique<Cache>(stats_.group("icache"), *l1next,
                                      config.icache, tracer,
                                      kTidIcacheBase);
    dcache_ = std::make_unique<Cache>(stats_.group("dcache"), *l1next,
                                      config.dcache, tracer,
                                      kTidDcacheBase);
    if (l2_) {
        // Both scalar L1s address memory directly, so the global
        // block address is their local one.
        l2_->setBackInvalidate([this](Addr addr) {
            const bool d0 = dcache_->invalidateBlock(addr);
            const bool d1 = icache_->invalidateBlock(addr);
            return d0 || d1;
        });
    }
    syscalls_ = std::make_unique<SyscallHandler>(
        [this](Addr a) { return std::uint8_t(mem_.read(a, 1)); },
        program.heapStart);
    unit_ = std::make_unique<ProcessingUnit>(0, config.pu, *this,
                                             stats_.group("pu0"),
                                             &acct_, tracer);
    fastForward_ = config.fastForward && !tracer_ &&
                   !std::getenv("MSIM_NO_FASTFORWARD");
}

void
ScalarProcessor::setInput(std::deque<std::int32_t> input)
{
    syscalls_->setInput(std::move(input));
}

RunResult
ScalarProcessor::run(Cycle max_cycles)
{
    panicIf(started_, "ScalarProcessor::run may only be called once");
    started_ = true;

    std::array<isa::RegValue, kNumRegs> init{};
    init[size_t(isa::kRegSp)] = isa::RegValue::fromWord(kStackTop);
    unit_->assignTask(0, program_.entry, RegMask(), RegMask(),
                      init.data());

    RunResult result;
    Cycle now = 0;
    Cycle cycles_done = 0;
    std::uint64_t last_progress_count = 0;
    Cycle last_progress_cycle = 0;
    for (; now < max_cycles; ++now) {
        if (tracer_)
            tracer_->setNow(now);
        acct_.beginCycle();
        unit_->tick(now);
        acct_.endCycle();
        ++cycles_done;
        if (syscalls_->exited())
            break;
        const std::uint64_t done = unit_->currentTaskStats().instructions;
        if (done != last_progress_count) {
            last_progress_count = done;
            last_progress_cycle = now;
        }
        panicIf(now - last_progress_cycle > 100000,
                "scalar processor made no progress for 100000 cycles "
                "(pc region near 0x", std::hex,
                program_.entry, std::dec, ")");

        // Cycle-exact fast-forward: the single unit is the only
        // event source (the caches and bus are call-time models), so
        // when it is quiescent until a known cycle the intervening
        // stall cycles can be bulk-accounted and skipped.
        if (fastForward_ && unit_->quiescentLastTick()) {
            Cycle next = unit_->nextEventCycle(now);
            // An in-flight L2 MSHR fill bounds the jump (the L2 is a
            // call-time model, so this only shortens skips).
            if (l2_) {
                const Cycle l2next = l2_->nextEventCycle(now);
                if (l2next < next)
                    next = l2next;
            }
            if (next > now + 1 && next != kCycleNever) {
                const Cycle target = next < max_cycles ? next
                                                       : max_cycles;
                if (target > now + 1) {
                    const std::uint64_t n = target - now - 1;
                    unit_->accountSkippedCycles(n);
                    cycles_done += n;
                    result.fastForwardedCycles += n;
                    now += n;
                }
            }
        }
    }

    acct_.commitTask(0);
    result.cycles = cycles_done;
    result.exited = syscalls_->exited();
    result.hitMaxCycles = !result.exited;
    result.instructions = unit_->currentTaskStats().instructions;
    result.usefulCycles = unit_->currentTaskStats().cycles;
    result.tasksRetired = 1;
    result.output = syscalls_->output();
    result.accounting = acct_.finish(cycles_done);
    acct_.exportStats(stats_.group("cycles"));
    if (tracer_)
        tracer_->flush();
    return result;
}

const isa::Instruction *
ScalarProcessor::instrAt(Addr pc)
{
    return program_.instrAt(pc);
}

Cycle
ScalarProcessor::icacheAccess(unsigned, Cycle now, Addr pc)
{
    return icache_->access(now, pc, false);
}

Cycle
ScalarProcessor::dcacheAccess(unsigned, Cycle now, Addr addr, bool write)
{
    return dcache_->access(now, addr, write);
}

bool
ScalarProcessor::memHasSpace(unsigned, Addr, unsigned, bool)
{
    return true;
}

std::uint64_t
ScalarProcessor::memLoad(unsigned, Addr addr, unsigned size)
{
    return mem_.read(addr, size);
}

void
ScalarProcessor::memStore(unsigned, Addr addr, unsigned size,
                          std::uint64_t value)
{
    mem_.write(addr, value, size);
}

void
ScalarProcessor::forwardReg(unsigned, RegIndex, isa::RegValue)
{
    panic("scalar execution must not forward registers "
          "(multiscalar tags in a scalar binary?)");
}

bool
ScalarProcessor::syscallAllowed(unsigned)
{
    return true;
}

isa::RegValue
ScalarProcessor::doSyscall(unsigned, isa::RegValue v0, isa::RegValue a0,
                           isa::RegValue a1)
{
    return syscalls_->execute(v0, a0, a1);
}

void
ScalarProcessor::taskExited(unsigned, Addr)
{
    panic("scalar execution must not exit tasks "
          "(multiscalar tags in a scalar binary?)");
}

} // namespace msim
