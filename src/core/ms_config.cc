#include "core/ms_config.hh"

#include "common/logging.hh"
#include "core/scalar_processor.hh"

namespace msim {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

[[noreturn]] void
bad(const char *scope, const char *field, const std::string &why)
{
    fatal(scope, " config: ", field, ": ", why);
}

/** Shared geometry rules of the Cache timing model. */
void
checkCacheGeometry(const char *scope, const char *field,
                   std::size_t size_bytes, std::size_t block_bytes)
{
    if (size_bytes == 0)
        bad(scope, field, "size must be non-zero");
    if (!isPow2(block_bytes))
        bad(scope, field,
            "block size " + std::to_string(block_bytes) +
                " is not a power of two");
    if (size_bytes % block_bytes != 0 ||
        !isPow2(size_bytes / block_bytes))
        bad(scope, field,
            "size " + std::to_string(size_bytes) +
                " must be a power-of-two multiple of the " +
                std::to_string(block_bytes) + "-byte block");
}

void
checkPu(const char *scope, const PuConfig &pu)
{
    if (pu.issueWidth == 0 || pu.issueWidth > 16)
        bad(scope, "pu.issueWidth", "must be in [1, 16]");
    if (pu.windowSize == 0)
        bad(scope, "pu.windowSize", "must be non-zero");
    if (pu.fetchBufferSize == 0)
        bad(scope, "pu.fetchBufferSize", "must be non-zero");
    if (pu.branchPredictorEntries == 0 ||
        !isPow2(pu.branchPredictorEntries))
        bad(scope, "pu.branchPredictorEntries",
            "must be a non-zero power of two");
}

void
checkBus(const char *scope, const MemoryBus::Params &bus)
{
    if (bus.firstBeatLatency == 0)
        bad(scope, "bus.firstBeatLatency", "must be non-zero");
    if (bus.beatWords == 0)
        bad(scope, "bus.beatWords", "must be non-zero");
}

} // namespace

void
MsConfig::validate() const
{
    if (numUnits == 0)
        bad("ms", "numUnits", "need at least one processing unit");
    if (numUnits > 64)
        bad("ms", "numUnits",
            std::to_string(numUnits) + " exceeds the 64-unit limit");
    checkPu("ms", pu);
    checkCacheGeometry("ms", "icache", icache.sizeBytes,
                       icache.blockBytes);
    if (effectiveBanks() > 1024)
        bad("ms", "numBanks",
            "effective bank count " +
                std::to_string(effectiveBanks()) +
                " exceeds the 1024-bank limit");
    checkCacheGeometry("ms", "dcache", bankSizeBytes, blockBytes);
    if (arbEntriesPerBank == 0)
        bad("ms", "arbEntriesPerBank",
            "ARB needs at least one entry per bank");
    if (predictor != "pas" && predictor != "last" &&
        predictor != "static")
        bad("ms", "predictor",
            "unknown kind '" + predictor +
                "' (expected pas, last or static)");
    if (rasEntries == 0)
        bad("ms", "rasEntries",
            "return address stack needs at least one entry");
    if (descCacheEntries == 0)
        bad("ms", "descCacheEntries",
            "descriptor cache needs at least one entry");
    checkBus("ms", bus);
}

void
ScalarConfig::validate() const
{
    checkPu("scalar", pu);
    checkCacheGeometry("scalar", "icache", icache.sizeBytes,
                       icache.blockBytes);
    checkCacheGeometry("scalar", "dcache", dcache.sizeBytes,
                       dcache.blockBytes);
    checkBus("scalar", bus);
}

} // namespace msim
