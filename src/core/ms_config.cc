#include "core/ms_config.hh"

#include <initializer_list>

#include "common/logging.hh"
#include "core/scalar_processor.hh"

namespace msim {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

[[noreturn]] void
bad(const char *scope, const char *field, const std::string &why)
{
    fatal(scope, " config: ", field, ": ", why);
}

/** Shared geometry rules of the Cache timing model. */
void
checkCacheGeometry(const char *scope, const char *field,
                   std::size_t size_bytes, std::size_t block_bytes)
{
    if (size_bytes == 0)
        bad(scope, field, "size must be non-zero");
    if (!isPow2(block_bytes))
        bad(scope, field,
            "block size " + std::to_string(block_bytes) +
                " is not a power of two");
    if (size_bytes % block_bytes != 0 ||
        !isPow2(size_bytes / block_bytes))
        bad(scope, field,
            "size " + std::to_string(size_bytes) +
                " must be a power-of-two multiple of the " +
                std::to_string(block_bytes) + "-byte block");
}

void
checkPu(const char *scope, const PuConfig &pu)
{
    if (pu.issueWidth == 0 || pu.issueWidth > 16)
        bad(scope, "pu.issueWidth", "must be in [1, 16]");
    if (pu.windowSize == 0)
        bad(scope, "pu.windowSize", "must be non-zero");
    if (pu.fetchBufferSize == 0)
        bad(scope, "pu.fetchBufferSize", "must be non-zero");
    if (pu.branchPredictorEntries == 0 ||
        !isPow2(pu.branchPredictorEntries))
        bad(scope, "pu.branchPredictorEntries",
            "must be a non-zero power of two");
}

/**
 * The optional shared L2. @p l1_block_bytes lists the block sizes of
 * the L1s above it: the timing model maps L1 blocks 1:1 onto L2
 * blocks (back-invalidation, MSHR merging), so they must agree.
 */
void
checkL2(const char *scope, const L2Params &l2,
        std::initializer_list<std::size_t> l1_block_bytes)
{
    if (l2.numBanks == 0 || l2.numBanks > 64)
        bad(scope, "l2.numBanks", "must be in [1, 64]");
    if (l2.assoc == 0 || l2.assoc > 64)
        bad(scope, "l2.assoc", "must be in [1, 64]");
    if (l2.mshrsPerBank == 0 || l2.mshrsPerBank > 1024)
        bad(scope, "l2.mshrsPerBank", "must be in [1, 1024]");
    if (!isPow2(l2.blockBytes))
        bad(scope, "l2.blockBytes",
            "block size " + std::to_string(l2.blockBytes) +
                " is not a power of two");
    for (std::size_t l1_block : l1_block_bytes) {
        if (l2.blockBytes != l1_block)
            bad(scope, "l2.blockBytes",
                "L2 block size " + std::to_string(l2.blockBytes) +
                    " must match the L1 block size " +
                    std::to_string(l1_block));
    }
    if (l2.sizeBytes == 0 || l2.sizeBytes % l2.numBanks != 0)
        bad(scope, "l2.sizeBytes",
            "size " + std::to_string(l2.sizeBytes) +
                " must divide evenly over " +
                std::to_string(l2.numBanks) + " banks");
    const std::size_t bank_bytes = l2.sizeBytes / l2.numBanks;
    const std::size_t set_bytes = l2.blockBytes * l2.assoc;
    if (bank_bytes % set_bytes != 0 ||
        !isPow2(bank_bytes / set_bytes))
        bad(scope, "l2.sizeBytes",
            "each " + std::to_string(bank_bytes) +
                "-byte bank must hold a power-of-two number of " +
                std::to_string(set_bytes) + "-byte sets");
}

void
checkBus(const char *scope, const MemoryBus::Params &bus)
{
    if (bus.firstBeatLatency == 0)
        bad(scope, "bus.firstBeatLatency", "must be non-zero");
    if (bus.beatWords == 0)
        bad(scope, "bus.beatWords", "must be non-zero");
}

} // namespace

void
MsConfig::validate() const
{
    if (numUnits == 0)
        bad("ms", "numUnits", "need at least one processing unit");
    if (numUnits > 64)
        bad("ms", "numUnits",
            std::to_string(numUnits) + " exceeds the 64-unit limit");
    checkPu("ms", pu);
    checkCacheGeometry("ms", "icache", icache.sizeBytes,
                       icache.blockBytes);
    if (effectiveBanks() > 1024)
        bad("ms", "numBanks",
            "effective bank count " +
                std::to_string(effectiveBanks()) +
                " exceeds the 1024-bank limit");
    checkCacheGeometry("ms", "dcache", bankSizeBytes, blockBytes);
    if (arbEntriesPerBank == 0)
        bad("ms", "arbEntriesPerBank",
            "ARB needs at least one entry per bank");
    if (predictor != "pas" && predictor != "last" &&
        predictor != "static")
        bad("ms", "predictor",
            "unknown kind '" + predictor +
                "' (expected pas, last or static)");
    if (rasEntries == 0)
        bad("ms", "rasEntries",
            "return address stack needs at least one entry");
    if (descCacheEntries == 0)
        bad("ms", "descCacheEntries",
            "descriptor cache needs at least one entry");
    if (l2)
        checkL2("ms", *l2, {icache.blockBytes, blockBytes});
    checkBus("ms", bus);
}

void
ScalarConfig::validate() const
{
    checkPu("scalar", pu);
    checkCacheGeometry("scalar", "icache", icache.sizeBytes,
                       icache.blockBytes);
    checkCacheGeometry("scalar", "dcache", dcache.sizeBytes,
                       dcache.blockBytes);
    if (l2)
        checkL2("scalar", *l2,
                {icache.blockBytes, dcache.blockBytes});
    checkBus("scalar", bus);
}

} // namespace msim
