/**
 * @file
 * The multiscalar processor (paper Figure 1): a sequencer walking the
 * program's control flow graph task by task, assigning tasks to a
 * circular queue of processing units, with register values forwarded
 * over a unidirectional ring and memory speculation resolved by the
 * ARB.
 *
 * Sequencing per cycle:
 *   1. the ring moves register values one hop;
 *   2. every unit advances one cycle (head first);
 *   3. deferred events are processed: memory dependence violations
 *      (squash the violating task and all after it), task exits
 *      (validate the successor prediction; mispredicts squash all
 *      later tasks and redirect the walk), and ARB capacity policy;
 *   4. the head task retires if done (ARB stores commit);
 *   5. one new task is assigned at the tail if a unit is free and
 *      the task descriptor is available (descriptor cache).
 *
 * Register state at assignment follows the multi-version register
 * file of Breach et al. [1], modeled as the sequencer's "walk
 * ledger": for every register, the walk state is either a known
 * value (the last value forwarded on the ring by any task up to this
 * point of the walk) or a reservation naming the active producer
 * task that will forward it. A new task starts from the ledger:
 * known values are available immediately (the hardware's register
 * banks latched them as they passed on the ring); reserved registers
 * wait for the producer's physical ring message, paying real ring
 * latency and bandwidth. On a squash the ledger is rebuilt from the
 * architectural state plus the surviving tasks' create/forwarded
 * masks, just as the hardware's bank valid bits are restored.
 */

#ifndef MSIM_CORE_MULTISCALAR_PROCESSOR_HH
#define MSIM_CORE_MULTISCALAR_PROCESSOR_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/mem_dep.hh"
#include "analysis/verifier.hh"
#include "arb/arb.hh"
#include "common/stats.hh"
#include "core/ms_config.hh"
#include "core/run_result.hh"
#include "mem/banked_dcache.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/l2_cache.hh"
#include "mem/main_memory.hh"
#include "mem/mem_level.hh"
#include "predict/descriptor_cache.hh"
#include "predict/return_stack.hh"
#include "predict/task_predictor.hh"
#include "program/program.hh"
#include "pu/processing_unit.hh"
#include "pu/pu_context.hh"
#include "ring/forward_ring.hh"
#include "sim/syscalls.hh"
#include "trace/cycle_accounting.hh"
#include "trace/tracer.hh"

namespace msim {

/** The multiscalar machine. */
class MultiscalarProcessor : public PuContext
{
  public:
    MultiscalarProcessor(const Program &program, const MsConfig &config);

    /** Provide the integer input stream for syscall 5. */
    void setInput(std::deque<std::int32_t> input);

    /** Run to the exit syscall (or @p max_cycles). */
    RunResult run(Cycle max_cycles = 1'000'000'000);

    /** @return direct access to the functional memory (test setup). */
    MainMemory &memory() { return mem_; }

    /** @return the collected statistics. */
    const StatRegistry &stats() const { return stats_; }

    // --- PuContext ---------------------------------------------------
    const isa::Instruction *instrAt(Addr pc) override;
    Cycle icacheAccess(unsigned unit, Cycle now, Addr pc) override;
    Cycle dcacheAccess(unsigned unit, Cycle now, Addr addr,
                       bool write) override;
    bool memHasSpace(unsigned unit, Addr addr, unsigned size,
                     bool is_load) override;
    std::uint64_t memLoad(unsigned unit, Addr addr,
                          unsigned size) override;
    void memStore(unsigned unit, Addr addr, unsigned size,
                  std::uint64_t value) override;
    void forwardReg(unsigned unit, RegIndex reg,
                    isa::RegValue value) override;
    bool syscallAllowed(unsigned unit) override;
    isa::RegValue doSyscall(unsigned unit, isa::RegValue v0,
                            isa::RegValue a0, isa::RegValue a1) override;
    void taskExited(unsigned unit, Addr next_task) override;

  private:
    /** Sequencer bookkeeping for an assigned task. */
    struct ActiveTask
    {
        TaskSeq seq = 0;
        Addr start = 0;
        const TaskDescriptor *desc = nullptr;
        /** Resolved address the sequencer predicted we exit to. */
        Addr predictedNext = 0;
        /** Did the prediction count toward accuracy statistics? */
        bool counted = false;
        /** RAS state before this task's successor was predicted. */
        ReturnStack::Checkpoint rasCp;
    };

    /** A task-exit event deferred to the end of the cycle. */
    struct ExitEvent
    {
        unsigned unit;
        TaskSeq seq;
        Addr actual;
    };

    // --- cycle phases -------------------------------------------------
    void ringPhase(Cycle now);
    void unitsPhase(Cycle now);
    void deferredPhase(Cycle now);
    void retirePhase(Cycle now);
    void assignPhase(Cycle now);

    /**
     * The earliest cycle after @p now at which any component (ring,
     * sequencer, retirement, any processing unit) can make progress.
     * Side-effect free; called after a full cycle has been ticked.
     * now + 1 means "no skip possible"; kCycleNever means nothing is
     * scheduled (a stopped walk with no active task — deadlock).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Bulk-account @p n skipped quiescent cycles on every unit. */
    void accountSkip(std::uint64_t n);

    // --- helpers ------------------------------------------------------
    unsigned unitAt(unsigned position) const;
    unsigned positionOf(unsigned unit) const;
    bool unitIsHead(unsigned unit) const;
    TaskSeq seqOf(unsigned unit) const;
    ProcessingUnit &pu(unsigned unit) { return *units_[unit]; }
    const ProcessingUnit &pu(unsigned unit) const { return *units_[unit]; }

    /** Squash every active task with seq >= @p from. */
    void squashFrom(TaskSeq from, const char *reason);

    /** Resolve a predicted target to an address (RAS effects). */
    Addr resolveTarget(const TaskTarget &target);

    /** Find the target index a task actually exited through. */
    unsigned actualTargetIndex(const ActiveTask &task, Addr actual) const;

    void validateExit(const ExitEvent &event);

    // --- members ------------------------------------------------------
    const Program &program_;
    MsConfig config_;
    StatRegistry stats_;
    StatGroup *coreStats_ = nullptr;
    /** Only constructed when config.trace.enabled. */
    std::unique_ptr<Tracer> tracer_;
    CycleAccounting acct_;
    MainMemory mem_;
    std::unique_ptr<MemoryBus> bus_;
    /** The L1s' next level: the shared L2, or the bus adapter. */
    std::unique_ptr<L2Cache> l2_;
    std::unique_ptr<BusMemLevel> busLevel_;
    std::vector<std::unique_ptr<Cache>> icaches_;
    std::unique_ptr<BankedDataCache> dcache_;
    std::unique_ptr<Arb> arb_;
    std::unique_ptr<ForwardRing> ring_;
    std::unique_ptr<TaskPredictor> predictor_;
    std::unique_ptr<ReturnStack> ras_;
    std::unique_ptr<DescriptorCache> descCache_;
    std::unique_ptr<SyscallHandler> syscalls_;
    /** Static per-task facts backing the write-set oracle. */
    std::unique_ptr<analysis::AnnotationVerifier> oracle_;
    /** Static conflict prediction backing the mem-dep oracle. */
    std::unique_ptr<analysis::MemDepAnalysis> memDep_;
    std::vector<std::unique_ptr<ProcessingUnit>> units_;
    std::vector<ActiveTask> taskInfo_;

    /** Circular queue state. */
    unsigned head_ = 0;
    unsigned numActive_ = 0;
    TaskSeq nextSeq_ = 1;

    /** The sequencer's next step in the CFG walk (none = stopped). */
    std::optional<Addr> nextTaskAddr_;
    Addr descFetchAddr_ = kBadAddr;
    Cycle descReadyAt_ = 0;

    /** Architectural registers as of the last retired task. */
    std::array<isa::RegValue, kNumRegs> archRegs_{};

    /** The sequencer's per-register walk state (see class comment). */
    struct WalkReg
    {
        isa::RegValue value;
        bool pending = false;
        TaskSeq producer = 0;
    };
    std::array<WalkReg, kNumRegs> walkRegs_{};

    /** Rebuild the walk ledger after a squash. */
    void rebuildWalkRegs();

    /** Deferred events. */
    std::vector<ExitEvent> exitEvents_;
    std::optional<TaskSeq> pendingViolation_;
    bool arbFullEvent_ = false;

    /** Accumulating results. */
    RunResult result_;
    bool started_ = false;

    /**
     * Cycle-exact fast-forward enabled for this run (config flag,
     * minus the MSIM_NO_FASTFORWARD escape hatch, minus tracing —
     * skipping would drop per-cycle trace samples).
     */
    bool fastForward_ = false;
};

} // namespace msim

#endif // MSIM_CORE_MULTISCALAR_PROCESSOR_HH
