#include "core/multiscalar_processor.hh"

#include <algorithm>

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim {

MultiscalarProcessor::MultiscalarProcessor(const Program &program,
                                           const MsConfig &config)
    : program_(program), config_(config), acct_(config.numUnits)
{
    config.validate();
    mem_.loadProgram(program);
    coreStats_ = &stats_.group("core");
    if (config.trace.enabled) {
        tracer_ = std::make_unique<Tracer>(config.trace);
        tracer_->threadName(kTidSequencer, "sequencer");
        tracer_->threadName(kTidBus, "bus");
        tracer_->threadName(kTidRing, "ring");
        tracer_->threadName(kTidArb, "arb");
        for (unsigned u = 0; u < config.numUnits; ++u) {
            tracer_->threadName(u, "pu" + std::to_string(u));
            tracer_->threadName(kTidIcacheBase + u,
                                "icache" + std::to_string(u));
        }
        for (unsigned b = 0; b < config.effectiveBanks(); ++b) {
            tracer_->threadName(kTidDcacheBase + b,
                                "dcache" + std::to_string(b));
        }
        if (config.l2)
            tracer_->threadName(kTidL2Base, "l2");
    }
    Tracer *tracer = tracer_.get();
    bus_ = std::make_unique<MemoryBus>(stats_.group("bus"), config.bus,
                                       tracer);
    MemLevel *l1next;
    if (config.l2) {
        l2_ = std::make_unique<L2Cache>(stats_.group("l2"), *bus_,
                                        *config.l2, tracer);
        l1next = l2_.get();
    } else {
        busLevel_ = std::make_unique<BusMemLevel>(*bus_);
        l1next = busLevel_.get();
    }
    for (unsigned u = 0; u < config.numUnits; ++u) {
        icaches_.push_back(std::make_unique<Cache>(
            stats_.group("icache" + std::to_string(u)), *l1next,
            config.icache, tracer, kTidIcacheBase + u));
    }
    dcache_ = std::make_unique<BankedDataCache>(
        stats_, *l1next,
        BankedDataCache::Params{config.effectiveBanks(),
                                config.bankSizeBytes, config.blockBytes,
                                config.dcacheHitLatency},
        tracer);
    if (l2_) {
        // Inclusive-policy back-invalidation: an evicted L2 block
        // must leave every L1 above (icache fetches use the global
        // pc as their local address; the banked dcache translates).
        l2_->setBackInvalidate([this](Addr addr) {
            bool dirty = dcache_->invalidateBlock(addr);
            for (auto &icache : icaches_)
                dirty = icache->invalidateBlock(addr) || dirty;
            return dirty;
        });
    }
    arb_ = std::make_unique<Arb>(
        stats_.group("arb"), mem_,
        Arb::Params{config.effectiveBanks(), config.blockBytes,
                    config.arbEntriesPerBank},
        tracer);
    ring_ = std::make_unique<ForwardRing>(stats_.group("ring"),
                                          config.numUnits,
                                          config.pu.issueWidth,
                                          config.ringHopLatency,
                                          tracer);
    predictor_ = makeTaskPredictor(config.predictor);
    ras_ = std::make_unique<ReturnStack>(config.rasEntries);
    descCache_ = std::make_unique<DescriptorCache>(
        stats_.group("desccache"), *bus_, config.descCacheEntries);
    syscalls_ = std::make_unique<SyscallHandler>(
        [this](Addr a) {
            // Head-visible memory: committed state plus the head
            // task's own buffered stores.
            if (numActive_ > 0) {
                return std::uint8_t(arb_->load(seqOf(unitAt(0)), a, 1,
                                               /*is_head=*/true));
            }
            return std::uint8_t(mem_.read(a, 1));
        },
        program.heapStart);
    for (unsigned u = 0; u < config.numUnits; ++u) {
        units_.push_back(std::make_unique<ProcessingUnit>(
            u, config.pu, *this, stats_.group("pu" + std::to_string(u)),
            &acct_, tracer));
    }
    taskInfo_.resize(config.numUnits);
    // Tracing wants a sample of every cycle, so skipping is reserved
    // for untraced runs (where the hot loop must stay lean anyway).
    fastForward_ = config.fastForward && !tracer_ &&
                   !std::getenv("MSIM_NO_FASTFORWARD");
    if (config.writeSetOracle || config.memDepOracle)
        oracle_ = std::make_unique<analysis::AnnotationVerifier>(program);
    if (config.memDepOracle) {
        memDep_ =
            std::make_unique<analysis::MemDepAnalysis>(program, *oracle_);
    }
}

void
MultiscalarProcessor::setInput(std::deque<std::int32_t> input)
{
    syscalls_->setInput(std::move(input));
}

unsigned
MultiscalarProcessor::unitAt(unsigned position) const
{
    return (head_ + position) % config_.numUnits;
}

unsigned
MultiscalarProcessor::positionOf(unsigned unit) const
{
    return (unit + config_.numUnits - head_) % config_.numUnits;
}

bool
MultiscalarProcessor::unitIsHead(unsigned unit) const
{
    return numActive_ > 0 && unit == head_;
}

TaskSeq
MultiscalarProcessor::seqOf(unsigned unit) const
{
    return taskInfo_[unit].seq;
}

// --------------------------------------------------------------------
// PuContext implementation
// --------------------------------------------------------------------

const isa::Instruction *
MultiscalarProcessor::instrAt(Addr pc)
{
    return program_.instrAt(pc);
}

Cycle
MultiscalarProcessor::icacheAccess(unsigned unit, Cycle now, Addr pc)
{
    return icaches_[unit]->access(now, pc, false);
}

Cycle
MultiscalarProcessor::dcacheAccess(unsigned unit, Cycle now, Addr addr,
                                   bool write)
{
    (void)unit;
    return dcache_->access(now, addr, write);
}

bool
MultiscalarProcessor::memHasSpace(unsigned unit, Addr addr, unsigned size,
                                  bool is_load)
{
    const bool ok = arb_->hasSpaceFor(seqOf(unit), addr, size, is_load,
                                      unitIsHead(unit));
    if (!ok) {
        coreStats_->add("arbFullStalls");
        if (tracer_ && tracer_->wants(TraceCat::kArb)) {
            tracer_->instant(TraceCat::kArb, "arb_full", tracer_->now(),
                             kTidArb, "unit", unit, "addr", addr);
        }
        if (config_.arbFullPolicy == ArbFullPolicy::kSquash)
            arbFullEvent_ = true;
    }
    return ok;
}

std::uint64_t
MultiscalarProcessor::memLoad(unsigned unit, Addr addr, unsigned size)
{
    return arb_->load(seqOf(unit), addr, size, unitIsHead(unit));
}

void
MultiscalarProcessor::memStore(unsigned unit, Addr addr, unsigned size,
                               std::uint64_t value)
{
    auto violator = arb_->store(seqOf(unit), addr, size, value,
                                unitIsHead(unit));
    if (violator) {
        if (memDep_) {
            // The earliest violated task must be active: find its
            // unit to learn which static task it is running.
            const Addr storeTask = taskInfo_[unit].start;
            Addr loadTask = 0;
            for (unsigned p = 0; p < numActive_; ++p) {
                if (seqOf(unitAt(p)) == *violator) {
                    loadTask = taskInfo_[unitAt(p)].start;
                    break;
                }
            }
            panicIf(loadTask == 0,
                    "mem-dep oracle: violated seq ", *violator,
                    " is not an active task");
            if (!memDep_->violationPredicted(storeTask, loadTask, addr,
                                             size)) {
                char what[128];
                std::snprintf(what, sizeof(what),
                              "store task 0x%x -> load task 0x%x at "
                              "addr 0x%x size %u",
                              storeTask, loadTask, addr, size);
                panic("mem-dep oracle: ARB violation (", what,
                      ") outside the static may-conflict prediction");
            }
        }
        if (!pendingViolation_ || *violator < *pendingViolation_)
            pendingViolation_ = *violator;
    }
}

void
MultiscalarProcessor::forwardReg(unsigned unit, RegIndex reg,
                                 isa::RegValue value)
{
    RingMessage msg;
    msg.reg = reg;
    msg.value = value;
    msg.producer = seqOf(unit);
    ring_->send(unit, msg);
    // Update the sequencer's walk ledger: the value the walk was
    // waiting on from this producer is now known.
    WalkReg &wr = walkRegs_[size_t(reg)];
    if (wr.pending && wr.producer == msg.producer) {
        wr.value = value;
        wr.pending = false;
    }
}

bool
MultiscalarProcessor::syscallAllowed(unsigned unit)
{
    return unitIsHead(unit);
}

isa::RegValue
MultiscalarProcessor::doSyscall(unsigned, isa::RegValue v0,
                                isa::RegValue a0, isa::RegValue a1)
{
    return syscalls_->execute(v0, a0, a1);
}

void
MultiscalarProcessor::taskExited(unsigned unit, Addr next_task)
{
    exitEvents_.push_back({unit, seqOf(unit), next_task});
}

// --------------------------------------------------------------------
// Sequencer
// --------------------------------------------------------------------

Addr
MultiscalarProcessor::resolveTarget(const TaskTarget &target)
{
    switch (target.spec) {
      case TargetSpec::kReturn:
        return ras_->pop();
      case TargetSpec::kCall:
        ras_->push(target.returnTo);
        return target.addr;
      default:
        return target.addr;
    }
}

unsigned
MultiscalarProcessor::actualTargetIndex(const ActiveTask &task,
                                        Addr actual) const
{
    int return_index = -1;
    for (unsigned i = 0; i < task.desc->targets.size(); ++i) {
        const TaskTarget &t = task.desc->targets[i];
        if (t.spec == TargetSpec::kReturn) {
            return_index = int(i);
            continue;
        }
        if (t.addr == actual)
            return i;
    }
    if (return_index >= 0)
        return unsigned(return_index);
    panic("task at 0x", std::hex, task.start,
          " exited to undeclared successor 0x", actual, std::dec,
          " (missing .targets entry?)");
}

void
MultiscalarProcessor::squashFrom(TaskSeq from, const char *reason)
{
    while (numActive_ > 0) {
        const unsigned tail_unit = unitAt(numActive_ - 1);
        if (taskInfo_[tail_unit].seq < from)
            break;
        TaskStats ts = pu(tail_unit).flush();
        result_.squashedInstructions += ts.instructions;
        result_.squashedCycles += ts.cycles;
        result_.tasksSquashed += 1;
        acct_.squashTask(tail_unit);
        if (tracer_ && tracer_->wants(TraceCat::kTask)) {
            // Sinks stream synchronously, so a temporary name is safe.
            tracer_->instant(TraceCat::kTask,
                             std::string("squash_") + reason,
                             tracer_->now(), tail_unit, "seq",
                             taskInfo_[tail_unit].seq);
            tracer_->end(TraceCat::kTask, tracer_->now(), tail_unit);
        }
        arb_->squash(taskInfo_[tail_unit].seq);
        taskInfo_[tail_unit] = ActiveTask{};
        --numActive_;
    }
    coreStats_->add(std::string("squash_") + reason);
    rebuildWalkRegs();
    // The sequencer loses a step: any descriptor prefetch in progress
    // is abandoned.
    descFetchAddr_ = kBadAddr;
}

void
MultiscalarProcessor::rebuildWalkRegs()
{
    for (int r = 0; r < kNumRegs; ++r)
        walkRegs_[size_t(r)] = {archRegs_[size_t(r)], false, 0};
    for (unsigned p = 0; p < numActive_; ++p) {
        const unsigned unit = unitAt(p);
        const RegMask &create = pu(unit).createMask();
        const RegMask &fwd = pu(unit).forwardedMask();
        for (int r = 1; r < kNumRegs; ++r) {
            if (!create.test(r))
                continue;
            if (fwd.test(r)) {
                walkRegs_[size_t(r)] = {
                    pu(unit).forwardedValue(RegIndex(r)), false, 0};
            } else {
                walkRegs_[size_t(r)] = {isa::RegValue{}, true,
                                        taskInfo_[unit].seq};
            }
        }
    }
}

void
MultiscalarProcessor::validateExit(const ExitEvent &event)
{
    const unsigned unit = event.unit;
    // The task may have been squashed since the event fired.
    if (positionOf(unit) >= numActive_)
        return;
    ActiveTask &task = taskInfo_[unit];
    if (task.seq != event.seq || !pu(unit).hasExited())
        return;

    if (std::getenv("MSIM_TRACE")) {
        std::fprintf(stderr, "exit seq=%llu unit=%u actual=0x%x pred=0x%x\n",
                     (unsigned long long)task.seq, unit, event.actual,
                     task.predictedNext);
    }
    const unsigned actual_idx = actualTargetIndex(task, event.actual);
    predictor_->update(task.start, *task.desc, actual_idx);
    if (task.counted) {
        result_.taskPredictions += 1;
        if (event.actual == task.predictedNext)
            result_.taskPredHits += 1;
    }
    if (event.actual == task.predictedNext)
        return;

    // Control misprediction: squash every later task and restart the
    // walk from the actual successor.
    result_.controlSquashes += 1;
    squashFrom(task.seq + 1, "control");
    ras_->restore(task.rasCp);
    const TaskTarget &t = task.desc->targets[actual_idx];
    if (t.spec == TargetSpec::kCall)
        ras_->push(t.returnTo);
    else if (t.spec == TargetSpec::kReturn)
        ras_->pop();  // consume the (stale) predicted entry
    nextTaskAddr_ = event.actual;
}

void
MultiscalarProcessor::deferredPhase(Cycle)
{
    // 1. Memory dependence violations (earliest wins).
    if (pendingViolation_) {
        const TaskSeq v = *pendingViolation_;
        pendingViolation_.reset();
        // Find the violated task; it restarts at its own address.
        for (unsigned p = 0; p < numActive_; ++p) {
            const unsigned unit = unitAt(p);
            if (taskInfo_[unit].seq >= v) {
                const Addr restart = taskInfo_[unit].start;
                const auto ras_cp = taskInfo_[unit].rasCp;
                result_.memorySquashes += 1;
                squashFrom(taskInfo_[unit].seq, "memory");
                ras_->restore(ras_cp);
                nextTaskAddr_ = restart;
                break;
            }
        }
    }

    // 2. Task exits in task order.
    std::sort(exitEvents_.begin(), exitEvents_.end(),
              [](const ExitEvent &a, const ExitEvent &b) {
                  return a.seq < b.seq;
              });
    for (const ExitEvent &event : exitEvents_)
        validateExit(event);
    exitEvents_.clear();

    // 3. ARB capacity policy.
    if (arbFullEvent_) {
        arbFullEvent_ = false;
        if (config_.arbFullPolicy == ArbFullPolicy::kSquash &&
            numActive_ > 1) {
            const unsigned tail_unit = unitAt(numActive_ - 1);
            const Addr restart = taskInfo_[tail_unit].start;
            const auto ras_cp = taskInfo_[tail_unit].rasCp;
            result_.arbFullSquashes += 1;
            squashFrom(taskInfo_[tail_unit].seq, "arbfull");
            ras_->restore(ras_cp);
            nextTaskAddr_ = restart;
        }
    }
}

void
MultiscalarProcessor::retirePhase(Cycle now)
{
    if (numActive_ == 0)
        return;
    const unsigned head_unit = unitAt(0);
    if (!pu(head_unit).isDone())
        return;
    acct_.commitTask(head_unit);
    if (tracer_ && tracer_->wants(TraceCat::kTask)) {
        tracer_->instant(TraceCat::kTask, "retire", now, head_unit,
                         "seq", taskInfo_[head_unit].seq);
        tracer_->end(TraceCat::kTask, now, head_unit);
    }
    arb_->commit(taskInfo_[head_unit].seq);
    // Architectural register state advances by the values this task
    // forwarded (a done task has forwarded its whole create mask).
    for (int r = 1; r < kNumRegs; ++r) {
        if (pu(head_unit).createMask().test(r))
            archRegs_[size_t(r)] =
                pu(head_unit).forwardedValue(RegIndex(r));
    }
    TaskStats ts = pu(head_unit).retire();
    result_.instructions += ts.instructions;
    result_.usefulCycles += ts.cycles;
    result_.tasksRetired += 1;
    taskInfo_[head_unit] = ActiveTask{};
    head_ = (head_ + 1) % config_.numUnits;
    --numActive_;
}

void
MultiscalarProcessor::assignPhase(Cycle now)
{
    if (!nextTaskAddr_ || numActive_ >= config_.numUnits)
        return;
    const Addr addr = *nextTaskAddr_;

    // Task descriptor availability (descriptor cache timing).
    if (descFetchAddr_ != addr) {
        descFetchAddr_ = addr;
        descReadyAt_ = descCache_->access(now, addr);
    }
    if (now < descReadyAt_)
        return;

    const TaskDescriptor *desc = program_.taskAt(addr);
    fatalIf(!desc, "no task descriptor at 0x",
            std::hex, addr, std::dec,
            " — the multiscalar walk needs one at every task entry");

    const unsigned unit = unitAt(numActive_);
    panicIf(!pu(unit).isFree(), "tail unit is not free");

    // Initial register state from the sequencer's walk ledger:
    // registers whose producing task has already forwarded them are
    // available immediately; the rest become reservations on their
    // specific producer, satisfied by physical ring messages.
    RegMask busy;
    std::array<TaskSeq, kNumRegs> producers{};
    std::array<isa::RegValue, kNumRegs> init{};
    for (int r = 0; r < kNumRegs; ++r) {
        const WalkReg &wr = walkRegs_[size_t(r)];
        init[size_t(r)] = wr.value;
        if (r != 0 && wr.pending) {
            busy.set(r);
            producers[size_t(r)] = wr.producer;
        }
    }

    // Predict this task's successor and continue the walk there.
    ActiveTask info;
    info.seq = nextSeq_++;
    info.start = addr;
    info.desc = desc;
    info.rasCp = ras_->checkpoint();
    if (desc->targets.empty()) {
        // Terminal task: the walk stops here.
        info.predictedNext = 0;
        info.counted = false;
        nextTaskAddr_.reset();
    } else {
        unsigned idx = 0;
        if (desc->targets.size() > 1)
            idx = predictor_->predict(addr, *desc);
        panicIf(idx >= desc->targets.size(), "predictor returned a bad "
                "target index");
        info.predictedNext = resolveTarget(desc->targets[idx]);
        info.counted = desc->targets.size() > 1;
        if (info.predictedNext == 0) {
            // An empty return stack leaves the walk with no target;
            // stop until the task exits and corrects us.
            nextTaskAddr_.reset();
        } else {
            nextTaskAddr_ = info.predictedNext;
        }
    }

    if (std::getenv("MSIM_TRACE")) {
        std::fprintf(stderr,
                     "[%llu] assign seq=%llu unit=%u addr=0x%x "
                     "pred=0x%x r20=0x%x r21=0x%x busy20=%d\n",
                     (unsigned long long)now,
                     (unsigned long long)info.seq, unit, addr,
                     info.predictedNext, init[20].asWord(),
                     init[21].asWord(), int(busy.test(20)));
    }
    pu(unit).assignTask(info.seq, addr, desc->createMask, busy,
                        init.data(), producers.data());
    if (oracle_ && config_.writeSetOracle) {
        const analysis::TaskFacts *facts = oracle_->facts(addr);
        if (facts && !facts->incomplete)
            pu(unit).setWriteOracle(facts->mayWrite, facts->mayForward);
    }
    taskInfo_[unit] = info;
    ++numActive_;
    descFetchAddr_ = kBadAddr;
    coreStats_->add("assignments");
    if (tracer_ && tracer_->wants(TraceCat::kTask)) {
        char name[32];
        std::snprintf(name, sizeof(name), "task@0x%x", unsigned(addr));
        tracer_->begin(TraceCat::kTask, name, now, unit, "seq",
                       info.seq, "pred", info.predictedNext);
    }
    if (tracer_ && tracer_->wants(TraceCat::kSeq)) {
        tracer_->instant(TraceCat::kSeq, "assign", now, kTidSequencer,
                         "unit", unit, "seq", info.seq);
    }

    // The walk moves past this task: everything it may create is now
    // pending on it.
    for (int r = 1; r < kNumRegs; ++r) {
        if (desc->createMask.test(r))
            walkRegs_[size_t(r)] = {isa::RegValue{}, true, info.seq};
    }
}

void
MultiscalarProcessor::ringPhase(Cycle)
{
    ring_->tick([this](unsigned unit, const RingMessage &msg) {
        ProcessingUnit &u = pu(unit);
        u.deliverForward(msg.reg, msg.value, msg.producer);
        // Values travel the whole ring (numUnits-1 hops). Stopping
        // early at a unit whose create mask holds the register looks
        // attractive, but once the task window wraps the ring, a
        // reassigned unit may carry a *newer* task than a consumer
        // further along the ring, and the early kill starves that
        // consumer. Delivery is already producer-guarded, so extra
        // hops are harmless.
        return true;
    });
}

void
MultiscalarProcessor::unitsPhase(Cycle now)
{
    for (unsigned p = 0; p < config_.numUnits; ++p)
        pu(unitAt(p)).tick(now);
}

Cycle
MultiscalarProcessor::nextEventCycle(Cycle now) const
{
    const Cycle soon = now + 1;
    // Cheap pre-filter: a unit whose last tick changed state may act
    // again immediately — don't bother scanning windows.
    for (unsigned u = 0; u < config_.numUnits; ++u) {
        if (!pu(u).quiescentLastTick())
            return soon;
    }
    // Ring traffic is delivered (and re-launched) every tick; any
    // queued or in-flight message means progress next cycle.
    if (!ring_->idle())
        return soon;
    // A done head task retires next cycle.
    if (numActive_ > 0 && pu(unitAt(0)).isDone())
        return soon;
    Cycle next = kCycleNever;
    // The sequencer: a descriptor fetch in flight has a known ready
    // cycle; otherwise an unblocked walk acts (starts a descriptor
    // access or assigns) next cycle.
    if (nextTaskAddr_ && numActive_ < config_.numUnits) {
        if (descFetchAddr_ == *nextTaskAddr_ && now < descReadyAt_)
            next = descReadyAt_;
        else
            return soon;
    }
    for (unsigned u = 0; u < config_.numUnits; ++u) {
        const Cycle e = pu(u).nextEventCycle(now);
        if (e <= soon)
            return soon;
        if (e < next)
            next = e;
    }
    // The shared L2's in-flight MSHR fills bound the jump too: the
    // L2 never acts on its own (it is a call-time model), so this
    // only shortens skips, keeping FF-on timing identical while the
    // quiescence claim stays honest about outstanding misses.
    if (l2_) {
        const Cycle e = l2_->nextEventCycle(now);
        if (e <= soon)
            return soon;
        if (e < next)
            next = e;
    }
    return next;
}

void
MultiscalarProcessor::accountSkip(std::uint64_t n)
{
    for (unsigned u = 0; u < config_.numUnits; ++u)
        pu(u).accountSkippedCycles(n);
    result_.idleCycles += (config_.numUnits - numActive_) * n;
    result_.fastForwardedCycles += n;
    coreStats_->add("ffJumps");
    coreStats_->add("ffSkippedCycles", n);
}

RunResult
MultiscalarProcessor::run(Cycle max_cycles)
{
    panicIf(started_, "MultiscalarProcessor::run may only be called once");
    started_ = true;

    fatalIf(!program_.taskAt(program_.entry),
            "multiscalar program needs a task descriptor at the entry "
            "point");
    archRegs_ = {};
    archRegs_[size_t(isa::kRegSp)] = isa::RegValue::fromWord(kStackTop);
    rebuildWalkRegs();
    nextTaskAddr_ = program_.entry;

    Cycle now = 0;
    Cycle cycles_done = 0;
    std::uint64_t last_progress = 0;
    Cycle last_progress_cycle = 0;
    for (; now < max_cycles; ++now) {
        if (tracer_)
            tracer_->setNow(now);
        acct_.beginCycle();
        ringPhase(now);
        unitsPhase(now);
        if (syscalls_->exited()) {
            acct_.endCycle();
            ++cycles_done;
            break;
        }
        deferredPhase(now);
        retirePhase(now);
        assignPhase(now);
        acct_.endCycle();
        ++cycles_done;
        result_.idleCycles += config_.numUnits - numActive_;

        const std::uint64_t progress =
            result_.instructions + result_.tasksRetired +
            result_.squashedInstructions;
        std::uint64_t live = 0;
        for (unsigned u = 0; u < config_.numUnits; ++u)
            live += units_[u]->currentTaskStats().instructions;
        if (progress + live != last_progress) {
            last_progress = progress + live;
            last_progress_cycle = now;
        }
        if (now - last_progress_cycle > 100000) {
            std::ostringstream os;
            os << "multiscalar processor made no progress for 100000 "
                  "cycles (deadlock?). State:";
            for (unsigned p = 0; p < numActive_; ++p) {
                const unsigned unit = unitAt(p);
                os << "\n  unit " << unit << " seq "
                   << taskInfo_[unit].seq << " task@0x" << std::hex
                   << taskInfo_[unit].start << std::dec << " status "
                   << int(pu(unit).status()) << " awaiting {"
                   << (pu(unit).createMask() -
                       pu(unit).forwardedMask()).toString()
                   << "}";
            }
            panic(os.str());
        }

        // Cycle-exact fast-forward: when every component is
        // quiescent until some future cycle, the skipped cycles are
        // provably pure stalls — bulk-account them and jump. A
        // kCycleNever result (nothing scheduled at all) falls back
        // to stepping so the deadlock watchdog above still fires.
        if (fastForward_) {
            const Cycle next = nextEventCycle(now);
            if (next > now + 1 && next != kCycleNever) {
                const Cycle target = next < max_cycles ? next
                                                       : max_cycles;
                if (target > now + 1) {
                    const std::uint64_t n = target - now - 1;
                    accountSkip(n);
                    cycles_done += n;
                    now += n;
                }
            }
        }
    }

    // Fold the remaining active tasks: the head is architecturally
    // committed work; later tasks are speculative and do not count.
    for (unsigned p = 0; p < numActive_; ++p) {
        const unsigned unit = unitAt(p);
        const TaskStats &ts = pu(unit).currentTaskStats();
        if (p == 0) {
            result_.instructions += ts.instructions;
            result_.usefulCycles += ts.cycles;
            result_.tasksRetired += 1;
            acct_.commitTask(unit);
        } else {
            result_.squashedInstructions += ts.instructions;
            result_.squashedCycles += ts.cycles;
            result_.tasksSquashed += 1;
            acct_.squashTask(unit);
        }
    }

    result_.cycles = cycles_done;
    result_.exited = syscalls_->exited();
    result_.hitMaxCycles = !result_.exited;
    result_.output = syscalls_->output();
    result_.accounting = acct_.finish(cycles_done);
    acct_.exportStats(stats_.group("cycles"));
    if (tracer_) {
        tracer_->flush();
        coreStats_->add("traceEvents", tracer_->recorded());
        coreStats_->add("traceDropped", tracer_->dropped());
    }
    return result_;
}

} // namespace msim
