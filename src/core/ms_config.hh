/**
 * @file
 * Configuration of a multiscalar processor (paper section 5.1
 * defaults): N processing units in a circular queue, a unidirectional
 * ring (1 cycle/hop, width = issue width), 32 KB per-unit icaches,
 * 2N interleaved 8 KB data cache banks behind a crossbar (2-cycle
 * hit), a 256-entry-per-bank ARB, a PAs task predictor with a
 * 64-entry return address stack, and a 1024-entry task descriptor
 * cache, all sharing one split-transaction memory bus.
 */

#ifndef MSIM_CORE_MS_CONFIG_HH
#define MSIM_CORE_MS_CONFIG_HH

#include <optional>
#include <string>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/l2_cache.hh"
#include "pu/pu_config.hh"
#include "trace/trace_config.hh"

namespace msim {

/** What to do when an ARB bank fills up (paper section 2.3). */
enum class ArbFullPolicy
{
    kSquash,  //!< squash the latest task to reclaim entries
    kStall,   //!< stall everyone but the head until entries free up
};

/** Full multiscalar machine configuration. */
struct MsConfig
{
    unsigned numUnits = 4;
    PuConfig pu;

    /** Ring hop latency in cycles (width always = issue width). */
    unsigned ringHopLatency = 1;

    Cache::Params icache{32 * 1024, 64, 1};

    /** Data bank geometry; numBanks 0 means 2 * numUnits. */
    unsigned numBanks = 0;
    size_t bankSizeBytes = 8 * 1024;
    size_t blockBytes = 64;
    unsigned dcacheHitLatency = 2;

    unsigned arbEntriesPerBank = 256;
    ArbFullPolicy arbFullPolicy = ArbFullPolicy::kSquash;

    /** Task predictor kind: "pas", "last", "static". */
    std::string predictor = "pas";
    unsigned rasEntries = 64;
    unsigned descCacheEntries = 1024;

    /**
     * Optional shared L2 between the L1s (per-unit icaches + data
     * banks) and the memory bus; std::nullopt (the default, shape
     * key "l2": null) reproduces the historical two-level-free
     * machine bit for bit. See src/mem/l2_cache.hh.
     */
    std::optional<L2Params> l2;

    MemoryBus::Params bus;

    /** Event tracing (off by default; see src/trace/). */
    TraceConfig trace;

    /**
     * Cycle-exact fast-forward: when every component is quiescent,
     * the run loop jumps straight to the next scheduled event
     * instead of ticking the stalled cycles one by one. Observable
     * timing (cycle counts, accounting, results) is bit-identical
     * either way — the golden-cycle snapshot tests verify it. The
     * MSIM_NO_FASTFORWARD environment variable force-disables it.
     */
    bool fastForward = true;

    /**
     * Dynamic write-set oracle: run the static annotation verifier
     * (src/analysis/) over the program at construction and assert,
     * as every task retires, that the registers it actually wrote
     * and explicitly forwarded are contained in the static may-write
     * and forward-point sets. Purely a checking mode (used by the
     * property/fuzz tests); no effect on timing. Tasks whose CFG the
     * static walk could not fully explore are skipped.
     */
    bool writeSetOracle = false;

    /**
     * Dynamic memory-dependence oracle: run the static
     * memory-dependence analysis (src/analysis/mem_dep.hh) over the
     * program at construction and assert, at every ARB violation,
     * that the (store-task, load-task, address) triple is contained
     * in the static may-conflict prediction. Purely a checking mode
     * (used by the property/fuzz tests); no effect on timing. Tasks
     * whose CFG the static walk could not fully explore are
     * trivially contained.
     */
    bool memDepOracle = false;

    /** @return the effective number of data banks. */
    unsigned
    effectiveBanks() const
    {
        return numBanks != 0 ? numBanks : 2 * numUnits;
    }

    /**
     * Check every field for internal consistency and throw
     * FatalError with a "ms config: <field>: <why>" message on the
     * first violation: zero units, non-power-of-two block sizes or
     * cache geometry, a zero-entry ARB, an unknown predictor kind…
     * MultiscalarProcessor calls this at construction so a bad
     * configuration fails with a clear diagnostic instead of a
     * downstream assert, and the declarative shape layer
     * (src/config) runs the same check on every parsed shape.
     */
    void validate() const;
};

} // namespace msim

#endif // MSIM_CORE_MS_CONFIG_HH
