/**
 * @file
 * The outcome of one simulated program run, with everything the
 * paper's evaluation reports: cycle count, committed dynamic
 * instruction count (Table 2), IPC and speedup inputs (Tables 3/4),
 * task prediction accuracy, squash counts by cause, and the
 * distribution of processing unit cycles (section 3).
 */

#ifndef MSIM_CORE_RUN_RESULT_HH
#define MSIM_CORE_RUN_RESULT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "pu/processing_unit.hh"
#include "trace/cycle_accounting.hh"

namespace msim {

/** Aggregate results of a simulation run. */
struct RunResult
{
    /** Total cycles simulated. */
    Cycle cycles = 0;
    /** Dynamic instructions committed (retired tasks + head). */
    std::uint64_t instructions = 0;
    /** Instructions executed in tasks that were later squashed. */
    std::uint64_t squashedInstructions = 0;
    /** True when the program ran to its exit syscall. */
    bool exited = false;
    /**
     * True when the run stopped because it exhausted its cycle
     * budget (RunSpec::maxCycles) instead of exiting — a distinct
     * error condition, not a normal exit.
     */
    bool hitMaxCycles = false;
    /** Everything the program printed. */
    std::string output;

    /**
     * Cycles covered by the quiescence fast-forward instead of being
     * ticked individually (included in @ref cycles; identical timing
     * either way). Zero when fast-forward is disabled.
     */
    std::uint64_t fastForwardedCycles = 0;

    /** Tasks retired / squashed. */
    std::uint64_t tasksRetired = 0;
    std::uint64_t tasksSquashed = 0;

    /** Task-successor predictions made (multi-target tasks only). */
    std::uint64_t taskPredictions = 0;
    std::uint64_t taskPredHits = 0;

    /** Squash events by cause. */
    std::uint64_t controlSquashes = 0;
    std::uint64_t memorySquashes = 0;
    std::uint64_t arbFullSquashes = 0;

    /** Cycle distribution over units (section 3). */
    CycleBreakdown usefulCycles;    //!< cycles of retired tasks
    CycleBreakdown squashedCycles;  //!< cycles of squashed tasks
    std::uint64_t idleCycles = 0;   //!< unit-cycles with no task

    /**
     * Exact per-unit cycle accounting (src/trace/): every unit-cycle
     * classified into exactly one category, with
     * accounting.sum() == cycles × accounting.numUnits.
     */
    CycleAccountingResult accounting;

    /** @return committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0 : double(instructions) / double(cycles);
    }

    /** @return task prediction accuracy in [0, 1]. */
    double
    predAccuracy() const
    {
        return taskPredictions == 0
                   ? 1.0
                   : double(taskPredHits) / double(taskPredictions);
    }
};

} // namespace msim

#endif // MSIM_CORE_RUN_RESULT_HH
