#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace msim::isa {

namespace {

using enum Format;
using enum InstClass;

constexpr size_t kNumOps = size_t(Opcode::kNumOpcodes);

/** Indexed by Opcode value; order must match the enum exactly. */
const std::array<OpInfo, kNumOps> kOpTable = {{
    {"add", kR3, kIntAlu},
    {"addu", kR3, kIntAlu},
    {"sub", kR3, kIntAlu},
    {"subu", kR3, kIntAlu},
    {"and", kR3, kIntAlu},
    {"or", kR3, kIntAlu},
    {"xor", kR3, kIntAlu},
    {"nor", kR3, kIntAlu},
    {"sllv", kR3, kIntAlu},
    {"srlv", kR3, kIntAlu},
    {"srav", kR3, kIntAlu},
    {"slt", kR3, kIntAlu},
    {"sltu", kR3, kIntAlu},
    {"addi", kRI, kIntAlu},
    {"addiu", kRI, kIntAlu},
    {"andi", kRI, kIntAlu},
    {"ori", kRI, kIntAlu},
    {"xori", kRI, kIntAlu},
    {"slti", kRI, kIntAlu},
    {"sltiu", kRI, kIntAlu},
    {"lui", kLui, kIntAlu},
    {"sll", kSh, kIntAlu},
    {"srl", kSh, kIntAlu},
    {"sra", kSh, kIntAlu},
    {"mul", kR3, kIntMult},
    {"div", kR3, kIntDiv},
    {"rem", kR3, kIntDiv},
    {"lw", kLS, kLoad},
    {"lh", kLS, kLoad},
    {"lhu", kLS, kLoad},
    {"lb", kLS, kLoad},
    {"lbu", kLS, kLoad},
    {"sw", kLS, kStore},
    {"sh", kLS, kStore},
    {"sb", kLS, kStore},
    {"ldc1", kLS, kLoad},
    {"sdc1", kLS, kStore},
    {"lwc1", kLS, kLoad},
    {"swc1", kLS, kStore},
    {"beq", kBr2, kBranch},
    {"bne", kBr2, kBranch},
    {"blez", kBr1, kBranch},
    {"bgtz", kBr1, kBranch},
    {"bltz", kBr1, kBranch},
    {"bgez", kBr1, kBranch},
    {"j", Format::kJ, kBranch},
    {"jal", Format::kJ, kBranch},
    {"jr", kJr, kBranch},
    {"jalr", Format::kJalr, kBranch},
    {"add.s", kR3, kFpAddSP},
    {"sub.s", kR3, kFpAddSP},
    {"mul.s", kR3, kFpMulSP},
    {"div.s", kR3, kFpDivSP},
    {"add.d", kR3, kFpAddDP},
    {"sub.d", kR3, kFpAddDP},
    {"mul.d", kR3, kFpMulDP},
    {"div.d", kR3, kFpDivDP},
    {"mov.d", kR2, kFpMove},
    {"neg.d", kR2, kFpMove},
    {"abs.d", kR2, kFpMove},
    {"cvt.d.w", kR2, kFpMove},
    {"cvt.w.d", kR2, kFpMove},
    {"c.lt.d", kR3, kFpMove},
    {"c.le.d", kR3, kFpMove},
    {"c.eq.d", kR3, kFpMove},
    {"release", kRel, kRelease},
    {"syscall", kNone, kSyscall},
    {"nop", kNone, InstClass::kNop},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = size_t(op);
    panicIf(idx >= kNumOps, "opInfo: bad opcode ", idx);
    return kOpTable[idx];
}

std::optional<Opcode>
parseMnemonic(std::string_view mnemonic)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        if (mnemonic == kOpTable[i].mnemonic)
            return Opcode(i);
    }
    return std::nullopt;
}

FuKind
fuKind(InstClass cls)
{
    switch (cls) {
      case kIntAlu:
      case kRelease:
      case kSyscall:
      case InstClass::kNop:
        return FuKind::kSimpleInt;
      case kIntMult:
      case kIntDiv:
        return FuKind::kComplexInt;
      case kLoad:
      case kStore:
        return FuKind::kMem;
      case kBranch:
        return FuKind::kBranch;
      default:
        return FuKind::kFp;
    }
}

unsigned
execLatency(InstClass cls)
{
    switch (cls) {
      case kIntAlu:
      case kRelease:
      case kSyscall:
      case InstClass::kNop:
        return 1;
      case kIntMult:
        return 4;
      case kIntDiv:
        return 12;
      case kLoad:
        return 1;  // address generation; cache supplies access time
      case kStore:
        return 1;
      case kBranch:
        return 1;
      case kFpAddSP:
        return 2;
      case kFpMulSP:
        return 4;
      case kFpDivSP:
        return 12;
      case kFpAddDP:
        return 2;
      case kFpMulDP:
        return 5;
      case kFpDivDP:
        return 18;
      case kFpMove:
        return 1;
    }
    panic("execLatency: bad class");
}

bool
isControl(InstClass cls)
{
    return cls == kBranch;
}

bool
isMem(InstClass cls)
{
    return cls == kLoad || cls == kStore;
}

} // namespace msim::isa
