/**
 * @file
 * Opcode definitions for the msim ISA.
 *
 * The ISA is of secondary importance to the multiscalar paradigm
 * (paper section 2.2); this one is a clean MIPS-flavored RISC with a
 * handful of multiscalar-specific additions (the release instruction;
 * forward and stop tag bits live beside the instruction, see
 * program/tag bits).
 */

#ifndef MSIM_ISA_OPCODES_HH
#define MSIM_ISA_OPCODES_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace msim::isa {

/** Every opcode in the ISA. The enumerator value is the binary code. */
enum class Opcode : std::uint8_t {
    // Integer ALU, register forms.
    kAdd, kAddu, kSub, kSubu, kAnd, kOr, kXor, kNor,
    kSllv, kSrlv, kSrav, kSlt, kSltu,
    // Integer ALU, immediate forms.
    kAddi, kAddiu, kAndi, kOri, kXori, kSlti, kSltiu, kLui,
    // Shifts by immediate amount.
    kSll, kSrl, kSra,
    // Complex integer.
    kMul, kDiv, kRem,
    // Loads and stores.
    kLw, kLh, kLhu, kLb, kLbu, kSw, kSh, kSb,
    kLdc1, kSdc1, kLwc1, kSwc1,
    // Control transfer.
    kBeq, kBne, kBlez, kBgtz, kBltz, kBgez,
    kJ, kJal, kJr, kJalr,
    // Floating point.
    kAddS, kSubS, kMulS, kDivS,
    kAddD, kSubD, kMulD, kDivD,
    kMovD, kNegD, kAbsD,
    kCvtDW, kCvtWD,
    kCLtD, kCLeD, kCEqD,
    // Multiscalar specific.
    kRelease,
    // System.
    kSyscall, kNop,

    kNumOpcodes,
};

/** Operand format of an instruction. */
enum class Format : std::uint8_t {
    kR3,    //!< op rd, rs, rt
    kR2,    //!< op rd, rs
    kRI,    //!< op rd, rs, imm
    kSh,    //!< op rd, rs, shamt
    kLui,   //!< op rd, imm
    kLS,    //!< op rt, imm(rs)
    kBr2,   //!< op rs, rt, label
    kBr1,   //!< op rs, label
    kJ,     //!< op target
    kJr,    //!< op rs
    kJalr,  //!< op rd, rs
    kRel,   //!< release r1[, r2]
    kNone,  //!< no operands
};

/** Instruction class; selects functional unit and latency (Table 1). */
enum class InstClass : std::uint8_t {
    kIntAlu,    //!< simple integer FU, 1 cycle
    kIntMult,   //!< complex integer FU, 4 cycles
    kIntDiv,    //!< complex integer FU, 12 cycles
    kLoad,      //!< memory FU; latency from the cache model
    kStore,     //!< memory FU, 1 cycle address generation
    kBranch,    //!< branch FU, 1 cycle
    kFpAddSP,   //!< FP FU, 2 cycles
    kFpMulSP,   //!< FP FU, 4 cycles
    kFpDivSP,   //!< FP FU, 12 cycles
    kFpAddDP,   //!< FP FU, 2 cycles
    kFpMulDP,   //!< FP FU, 5 cycles
    kFpDivDP,   //!< FP FU, 18 cycles
    kFpMove,    //!< FP FU, 1 cycle (moves, compares)
    kRelease,   //!< simple integer FU, 1 cycle
    kSyscall,   //!< executes at the head unit only
    kNop,
};

/** The functional units inside a processing unit (paper section 5.1). */
enum class FuKind : std::uint8_t {
    kSimpleInt,
    kComplexInt,
    kFp,
    kBranch,
    kMem,
    kNumFuKinds,
};

/** Static description of one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    InstClass cls;
};

/** @return the static description of @p op. */
const OpInfo &opInfo(Opcode op);

/** @return the opcode for a mnemonic, if it names a real instruction. */
std::optional<Opcode> parseMnemonic(std::string_view mnemonic);

/** @return the functional unit an instruction class executes on. */
FuKind fuKind(InstClass cls);

/**
 * @return the execution latency in cycles of an instruction class,
 * per Table 1 of the paper. Loads return the 1-cycle address
 * generation component; the memory access itself is timed by the
 * cache hierarchy.
 */
unsigned execLatency(InstClass cls);

/** @return true for conditional branches and jumps. */
bool isControl(InstClass cls);

/** @return true for loads and stores. */
bool isMem(InstClass cls);

} // namespace msim::isa

#endif // MSIM_ISA_OPCODES_HH
