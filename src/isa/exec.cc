#include "isa/exec.hh"

#include <cmath>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim::isa {

namespace {

Word
shiftAmount(RegValue v)
{
    return v.asWord() & 0x1f;
}

} // namespace

RegIndex
destOf(const Instruction &inst)
{
    if (inst.cls() == InstClass::kSyscall)
        return intReg(kRegV0);
    if (inst.cls() == InstClass::kStore)
        return kNoReg;
    return inst.rd;
}

unsigned
sourcesOf(const Instruction &inst, RegIndex out[4])
{
    unsigned n = 0;
    switch (inst.cls()) {
      case InstClass::kSyscall:
        out[n++] = intReg(kRegV0);
        out[n++] = intReg(kRegA0);
        out[n++] = intReg(kRegA1);
        return n;
      case InstClass::kRelease:
        if (inst.rs != kNoReg)
            out[n++] = inst.rs;
        if (inst.rel2 != kNoReg)
            out[n++] = inst.rel2;
        return n;
      default:
        if (inst.rs != kNoReg)
            out[n++] = inst.rs;
        if (inst.rt != kNoReg)
            out[n++] = inst.rt;
        return n;
    }
}

RegValue
evalAlu(const Instruction &inst, RegValue rs_val, RegValue rt_val, Addr pc)
{
    using enum Opcode;
    const Word a = rs_val.asWord();
    const Word b = rt_val.asWord();
    const std::int32_t sa = rs_val.asSWord();
    const std::int32_t sb = rt_val.asSWord();
    const double fa = rs_val.asDouble();
    const double fb = rt_val.asDouble();

    switch (inst.op) {
      case kAdd:
      case kAddu:
        return RegValue::fromWord(a + b);
      case kSub:
      case kSubu:
        return RegValue::fromWord(a - b);
      case kAnd:
        return RegValue::fromWord(a & b);
      case kOr:
        return RegValue::fromWord(a | b);
      case kXor:
        return RegValue::fromWord(a ^ b);
      case kNor:
        return RegValue::fromWord(~(a | b));
      case kSllv:
        return RegValue::fromWord(a << shiftAmount(rt_val));
      case kSrlv:
        return RegValue::fromWord(a >> shiftAmount(rt_val));
      case kSrav:
        return RegValue::fromWord(Word(sa >> shiftAmount(rt_val)));
      case kSlt:
        return RegValue::fromWord(sa < sb ? 1 : 0);
      case kSltu:
        return RegValue::fromWord(a < b ? 1 : 0);
      case kAddi:
      case kAddiu:
        return RegValue::fromWord(a + Word(inst.imm));
      case kAndi:
        return RegValue::fromWord(a & Word(inst.imm));
      case kOri:
        return RegValue::fromWord(a | Word(inst.imm));
      case kXori:
        return RegValue::fromWord(a ^ Word(inst.imm));
      case kSlti:
        return RegValue::fromWord(sa < inst.imm ? 1 : 0);
      case kSltiu:
        return RegValue::fromWord(a < Word(inst.imm) ? 1 : 0);
      case kLui:
        return RegValue::fromWord(Word(inst.imm) << 16);
      case kSll:
        return RegValue::fromWord(a << unsigned(inst.imm));
      case kSrl:
        return RegValue::fromWord(a >> unsigned(inst.imm));
      case kSra:
        return RegValue::fromWord(Word(sa >> unsigned(inst.imm)));
      case kMul:
        return RegValue::fromWord(Word(std::int64_t(sa) * sb));
      case kDiv:
        // Division by zero is defined to produce zero (no trap).
        if (sb == 0)
            return RegValue::fromWord(0);
        if (sa == std::int32_t(0x80000000) && sb == -1)
            return RegValue::fromWord(0x80000000u);
        return RegValue::fromWord(Word(sa / sb));
      case kRem:
        if (sb == 0)
            return RegValue::fromWord(Word(sa));
        if (sa == std::int32_t(0x80000000) && sb == -1)
            return RegValue::fromWord(0);
        return RegValue::fromWord(Word(sa % sb));
      case kJal:
      case kJalr:
        return RegValue::fromWord(pc + kInstrBytes);
      case kAddS:
        return RegValue::fromDouble(double(float(fa) + float(fb)));
      case kSubS:
        return RegValue::fromDouble(double(float(fa) - float(fb)));
      case kMulS:
        return RegValue::fromDouble(double(float(fa) * float(fb)));
      case kDivS:
        return RegValue::fromDouble(double(float(fa) / float(fb)));
      case kAddD:
        return RegValue::fromDouble(fa + fb);
      case kSubD:
        return RegValue::fromDouble(fa - fb);
      case kMulD:
        return RegValue::fromDouble(fa * fb);
      case kDivD:
        return RegValue::fromDouble(fa / fb);
      case kMovD:
        return rs_val;
      case kNegD:
        return RegValue::fromDouble(-fa);
      case kAbsD:
        return RegValue::fromDouble(std::fabs(fa));
      case kCvtDW:
        return RegValue::fromDouble(double(sa));
      case kCvtWD:
        return RegValue::fromWord(Word(std::int32_t(fa)));
      case kCLtD:
        return RegValue::fromWord(fa < fb ? 1 : 0);
      case kCLeD:
        return RegValue::fromWord(fa <= fb ? 1 : 0);
      case kCEqD:
        return RegValue::fromWord(fa == fb ? 1 : 0);
      default:
        panic("evalAlu: not an ALU op: ", opInfo(inst.op).mnemonic);
    }
}

BranchResult
evalBranch(const Instruction &inst, RegValue rs_val, RegValue rt_val)
{
    using enum Opcode;
    const std::int32_t sa = rs_val.asSWord();

    switch (inst.op) {
      case kBeq:
        return {rs_val.asWord() == rt_val.asWord(), inst.target};
      case kBne:
        return {rs_val.asWord() != rt_val.asWord(), inst.target};
      case kBlez:
        return {sa <= 0, inst.target};
      case kBgtz:
        return {sa > 0, inst.target};
      case kBltz:
        return {sa < 0, inst.target};
      case kBgez:
        return {sa >= 0, inst.target};
      case kJ:
      case kJal:
        return {true, inst.target};
      case kJr:
      case kJalr:
        return {true, rs_val.asWord()};
      default:
        panic("evalBranch: not a control op: ", opInfo(inst.op).mnemonic);
    }
}

Addr
memAddr(const Instruction &inst, RegValue rs_val)
{
    return rs_val.asWord() + Word(inst.imm);
}

unsigned
memSize(Opcode op)
{
    using enum Opcode;
    switch (op) {
      case kLb: case kLbu: case kSb:
        return 1;
      case kLh: case kLhu: case kSh:
        return 2;
      case kLw: case kSw: case kLwc1: case kSwc1:
        return 4;
      case kLdc1: case kSdc1:
        return 8;
      default:
        panic("memSize: not a memory op");
    }
}

RegValue
loadResult(Opcode op, std::uint64_t raw_bytes)
{
    using enum Opcode;
    switch (op) {
      case kLb:
        return RegValue::fromWord(Word(std::int32_t(
            std::int8_t(raw_bytes & 0xff))));
      case kLbu:
        return RegValue::fromWord(Word(raw_bytes & 0xff));
      case kLh:
        return RegValue::fromWord(Word(std::int32_t(
            std::int16_t(raw_bytes & 0xffff))));
      case kLhu:
        return RegValue::fromWord(Word(raw_bytes & 0xffff));
      case kLw:
        return RegValue::fromWord(Word(raw_bytes & 0xffffffffu));
      case kLwc1: {
        float f;
        Word w = Word(raw_bytes & 0xffffffffu);
        std::memcpy(&f, &w, sizeof(f));
        return RegValue::fromDouble(double(f));
      }
      case kLdc1:
        return RegValue{raw_bytes};
      default:
        panic("loadResult: not a load");
    }
}

std::uint64_t
storeBytes(Opcode op, RegValue value)
{
    using enum Opcode;
    switch (op) {
      case kSb:
        return value.asWord() & 0xff;
      case kSh:
        return value.asWord() & 0xffff;
      case kSw:
        return value.asWord();
      case kSwc1: {
        float f = float(value.asDouble());
        Word w;
        std::memcpy(&w, &f, sizeof(w));
        return w;
      }
      case kSdc1:
        return value.raw;
      default:
        panic("storeBytes: not a store");
    }
}

} // namespace msim::isa
