/**
 * @file
 * Architectural register names for the msim ISA.
 *
 * The ISA is MIPS-flavored: 32 integer registers $0-$31 (with the
 * usual symbolic aliases) and 32 floating point registers $f0-$f31.
 * Internally both files share one unified index space, 0-31 for
 * integer and 32-63 for floating point, so that create/accum masks
 * (RegMask) cover both in a single 64-bit word.
 */

#ifndef MSIM_ISA_REGISTERS_HH
#define MSIM_ISA_REGISTERS_HH

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace msim::isa {

/** Conventional integer register numbers. */
enum IntReg : int {
    kRegZero = 0,  //!< hardwired zero
    kRegAt = 1,    //!< assembler temporary
    kRegV0 = 2,    //!< result / syscall code
    kRegV1 = 3,
    kRegA0 = 4,    //!< first argument
    kRegA1 = 5,
    kRegA2 = 6,
    kRegA3 = 7,
    kRegGp = 28,
    kRegSp = 29,   //!< stack pointer
    kRegFp = 30,
    kRegRa = 31,   //!< return address
};

/** @return unified index for integer register @p n (0-31). */
constexpr RegIndex
intReg(int n)
{
    return RegIndex(n);
}

/** @return unified index for floating point register @p n (0-31). */
constexpr RegIndex
fpReg(int n)
{
    return RegIndex(kNumIntRegs + n);
}

/** @return true when @p reg is a floating point register index. */
constexpr bool
isFpReg(RegIndex reg)
{
    return reg >= kNumIntRegs && reg < kNumRegs;
}

/**
 * Parse a register name ("$5", "$zero", "$sp", "$f12") into a unified
 * register index.
 *
 * @return the index, or std::nullopt when the name is not a register.
 */
std::optional<RegIndex> parseRegName(std::string_view name);

/** Render a unified register index as an assembly name. */
std::string regName(RegIndex reg);

} // namespace msim::isa

#endif // MSIM_ISA_REGISTERS_HH
