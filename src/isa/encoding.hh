/**
 * @file
 * Binary encoding of the msim ISA (classic MIPS-style layout).
 *
 * Layout (32 bits):
 *   R-format: [31:26]=0, [25:21] rs, [20:16] rt, [15:11] rd,
 *             [10:6] shamt/aux, [5:0] funct
 *   I-format: [31:26] primary, [25:21] rs, [20:16] rt/rd, [15:0] imm16
 *   J-format: [31:26] primary, [25:0] absolute word address
 *
 * Arithmetic immediates, load/store offsets and branch offsets are
 * signed 16 bits; logical immediates (andi/ori/xori) are zero
 * extended; branch offsets are word offsets relative to the next
 * instruction. Tag bits are not part of the encoding; they live in a
 * table beside the program text (paper section 2.2).
 */

#ifndef MSIM_ISA_ENCODING_HH
#define MSIM_ISA_ENCODING_HH

#include <optional>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace msim::isa {

/**
 * Encode a decoded instruction into its 32-bit binary form.
 *
 * @param inst The instruction to encode.
 * @param pc The address the instruction will occupy (for branches).
 * @return the 32-bit word.
 *
 * Throws FatalError when an operand does not fit its field (e.g. an
 * immediate outside the signed 16-bit range).
 */
Word encode(const Instruction &inst, Addr pc);

/**
 * Decode a 32-bit word into an instruction (without tag bits).
 *
 * @param word The binary instruction.
 * @param pc The address it was fetched from (for branches).
 * @return the decoded instruction, or std::nullopt for an illegal
 *         opcode or funct field.
 */
std::optional<Instruction> decode(Word word, Addr pc);

/** Immediate range limits for the signed I-format immediate. */
inline constexpr std::int32_t kMinImm16 = -(1 << 15);
inline constexpr std::int32_t kMaxImm16 = (1 << 15) - 1;

/** Unsigned immediate limit for logical immediates and lui. */
inline constexpr std::int64_t kMaxUImm16 = 0xffff;

} // namespace msim::isa

#endif // MSIM_ISA_ENCODING_HH
