#include "isa/encoding.hh"

#include <array>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim::isa {

namespace {

constexpr size_t kNumOps = size_t(Opcode::kNumOpcodes);

/** Which register operands of an opcode live in the FP file. */
struct Banks
{
    bool rdFp = false;
    bool rsFp = false;
    bool rtFp = false;
};

Banks
operandBanks(Opcode op)
{
    using enum Opcode;
    switch (op) {
      case kAddS: case kSubS: case kMulS: case kDivS:
      case kAddD: case kSubD: case kMulD: case kDivD:
        return {true, true, true};
      case kMovD: case kNegD: case kAbsD:
        return {true, true, false};
      case kCvtDW:
        return {true, false, false};
      case kCvtWD:
        return {false, true, false};
      case kCLtD: case kCLeD: case kCEqD:
        return {false, true, true};
      case kLdc1: case kLwc1:
        return {true, false, false};
      case kSdc1: case kSwc1:
        return {false, false, true};
      default:
        return {false, false, false};
    }
}

/** True when the opcode encodes in the R-format (primary opcode 0). */
bool
isRFormat(Opcode op)
{
    switch (opInfo(op).format) {
      case Format::kR3:
      case Format::kR2:
      case Format::kSh:
      case Format::kJr:
      case Format::kJalr:
      case Format::kRel:
      case Format::kNone:
        return true;
      default:
        return false;
    }
}

/** True for zero-extended (logical) immediates. */
bool
isZeroExtImm(Opcode op)
{
    return op == Opcode::kAndi || op == Opcode::kOri ||
           op == Opcode::kXori || op == Opcode::kLui;
}

/** Encoding tables built once: opcode <-> (primary, funct). */
struct CodeTables
{
    std::array<unsigned, kNumOps> primary{};
    std::array<unsigned, kNumOps> funct{};
    // Reverse maps. 64 primaries, 64 functs.
    std::array<int, 64> primaryToOp;
    std::array<int, 64> functToOp;

    CodeTables()
    {
        primaryToOp.fill(-1);
        functToOp.fill(-1);
        unsigned next_funct = 0;
        unsigned next_primary = 1;
        for (size_t i = 0; i < kNumOps; ++i) {
            auto op = Opcode(i);
            if (isRFormat(op)) {
                panicIf(next_funct >= 64, "too many R-format opcodes");
                primary[i] = 0;
                funct[i] = next_funct;
                functToOp[next_funct] = int(i);
                ++next_funct;
            } else {
                panicIf(next_primary >= 64, "too many primary opcodes");
                primary[i] = next_primary;
                funct[i] = 0;
                primaryToOp[next_primary] = int(i);
                ++next_primary;
            }
        }
    }
};

const CodeTables &
tables()
{
    static const CodeTables t;
    return t;
}

unsigned
regField(RegIndex reg)
{
    if (reg == kNoReg)
        return 0;
    return unsigned(reg) & 0x1f;
}

std::int32_t
signExtend16(Word v)
{
    return std::int32_t(std::int16_t(v & 0xffff));
}

} // namespace

Word
encode(const Instruction &inst, Addr pc)
{
    const OpInfo &info = opInfo(inst.op);
    const CodeTables &t = tables();
    const unsigned primary = t.primary[size_t(inst.op)];
    const unsigned funct = t.funct[size_t(inst.op)];

    auto check_simm = [&](std::int64_t v) {
        fatalIf(v < kMinImm16 || v > kMaxImm16,
                "immediate ", v, " out of signed 16-bit range in ",
                info.mnemonic);
        return Word(v) & 0xffff;
    };
    auto check_uimm = [&](std::int64_t v) {
        fatalIf(v < 0 || v > kMaxUImm16,
                "immediate ", v, " out of unsigned 16-bit range in ",
                info.mnemonic);
        return Word(v) & 0xffff;
    };

    if (isRFormat(inst.op)) {
        unsigned shamt = 0;
        unsigned rs = regField(inst.rs);
        unsigned rt = regField(inst.rt);
        unsigned rd = regField(inst.rd);
        switch (info.format) {
          case Format::kSh:
            fatalIf(inst.imm < 0 || inst.imm > 31,
                    "shift amount out of range in ", info.mnemonic);
            shamt = unsigned(inst.imm);
            break;
          case Format::kRel:
            // aux = number of registers released.
            rt = regField(inst.rel2);
            shamt = inst.rel2 == kNoReg ? 1 : 2;
            break;
          default:
            break;
        }
        return (0u << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
               (shamt << 6) | funct;
    }

    switch (info.format) {
      case Format::kRI: {
        Word imm = isZeroExtImm(inst.op) ? check_uimm(inst.imm)
                                         : check_simm(inst.imm);
        return (primary << 26) | (regField(inst.rs) << 21) |
               (regField(inst.rd) << 16) | imm;
      }
      case Format::kLui: {
        Word imm = check_uimm(std::uint32_t(inst.imm) & 0xffff);
        return (primary << 26) | (regField(inst.rd) << 16) | imm;
      }
      case Format::kLS: {
        // Loads carry the destination in rd; stores carry the value
        // register in rt. Both use rs as the base.
        RegIndex data = inst.cls() == InstClass::kLoad ? inst.rd : inst.rt;
        Word imm = check_simm(inst.imm);
        return (primary << 26) | (regField(inst.rs) << 21) |
               (regField(data) << 16) | imm;
      }
      case Format::kBr2:
      case Format::kBr1: {
        std::int64_t diff = std::int64_t(inst.target) -
                            (std::int64_t(pc) + kInstrBytes);
        fatalIf(diff % kInstrBytes != 0, "misaligned branch target");
        Word imm = check_simm(diff / kInstrBytes);
        return (primary << 26) | (regField(inst.rs) << 21) |
               (regField(inst.rt) << 16) | imm;
      }
      case Format::kJ: {
        fatalIf(inst.target % kInstrBytes != 0, "misaligned jump target");
        Word idx = inst.target / kInstrBytes;
        fatalIf(idx >= (1u << 26), "jump target out of range");
        return (primary << 26) | idx;
      }
      default:
        panic("encode: unexpected format for ", info.mnemonic);
    }
}

std::optional<Instruction>
decode(Word word, Addr pc)
{
    const CodeTables &t = tables();
    const unsigned primary = (word >> 26) & 0x3f;
    Instruction inst;

    if (primary == 0) {
        const unsigned funct = word & 0x3f;
        int opi = t.functToOp[funct];
        if (opi < 0)
            return std::nullopt;
        inst.op = Opcode(opi);
        const OpInfo &info = opInfo(inst.op);
        const Banks banks = operandBanks(inst.op);
        const unsigned rs = (word >> 21) & 0x1f;
        const unsigned rt = (word >> 16) & 0x1f;
        const unsigned rd = (word >> 11) & 0x1f;
        const unsigned shamt = (word >> 6) & 0x1f;
        auto mk = [](unsigned n, bool fp) {
            return fp ? fpReg(int(n)) : intReg(int(n));
        };
        switch (info.format) {
          case Format::kR3:
            inst.rd = mk(rd, banks.rdFp);
            inst.rs = mk(rs, banks.rsFp);
            inst.rt = mk(rt, banks.rtFp);
            break;
          case Format::kR2:
            inst.rd = mk(rd, banks.rdFp);
            inst.rs = mk(rs, banks.rsFp);
            break;
          case Format::kSh:
            inst.rd = intReg(int(rd));
            inst.rs = intReg(int(rs));
            inst.imm = std::int32_t(shamt);
            break;
          case Format::kJr:
            inst.rs = intReg(int(rs));
            break;
          case Format::kJalr:
            inst.rd = intReg(int(rd));
            inst.rs = intReg(int(rs));
            break;
          case Format::kRel:
            inst.rs = intReg(int(rs));
            inst.rel2 = shamt >= 2 ? intReg(int(rt)) : kNoReg;
            break;
          case Format::kNone:
            break;
          default:
            panic("decode: unexpected R format");
        }
        return inst;
    }

    int opi = t.primaryToOp[primary];
    if (opi < 0)
        return std::nullopt;
    inst.op = Opcode(opi);
    const OpInfo &info = opInfo(inst.op);
    const Banks banks = operandBanks(inst.op);
    const unsigned rs = (word >> 21) & 0x1f;
    const unsigned rt = (word >> 16) & 0x1f;
    const Word imm16 = word & 0xffff;

    switch (info.format) {
      case Format::kRI:
        inst.rs = intReg(int(rs));
        inst.rd = intReg(int(rt));
        inst.imm = isZeroExtImm(inst.op) ? std::int32_t(imm16)
                                         : signExtend16(imm16);
        break;
      case Format::kLui:
        inst.rd = intReg(int(rt));
        inst.imm = std::int32_t(imm16);
        break;
      case Format::kLS:
        inst.rs = intReg(int(rs));
        if (info.cls == InstClass::kLoad)
            inst.rd = banks.rdFp ? fpReg(int(rt)) : intReg(int(rt));
        else
            inst.rt = banks.rtFp ? fpReg(int(rt)) : intReg(int(rt));
        inst.imm = signExtend16(imm16);
        break;
      case Format::kBr2:
        inst.rs = intReg(int(rs));
        inst.rt = intReg(int(rt));
        inst.target = Addr(std::int64_t(pc) + kInstrBytes +
                           std::int64_t(signExtend16(imm16)) * kInstrBytes);
        break;
      case Format::kBr1:
        inst.rs = intReg(int(rs));
        inst.target = Addr(std::int64_t(pc) + kInstrBytes +
                           std::int64_t(signExtend16(imm16)) * kInstrBytes);
        break;
      case Format::kJ:
        inst.target = (word & 0x03ffffff) * kInstrBytes;
        if (inst.op == Opcode::kJal)
            inst.rd = intReg(kRegRa);
        break;
      default:
        panic("decode: unexpected I format");
    }
    return inst;
}

} // namespace msim::isa
