/**
 * @file
 * Pure functional semantics of the msim ISA.
 *
 * These helpers compute instruction results from operand values with
 * no timing or machine state, and are shared by the scalar pipeline,
 * the multiscalar processing units, and the unit tests (which check
 * them directly against reference computations).
 */

#ifndef MSIM_ISA_EXEC_HH
#define MSIM_ISA_EXEC_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace msim::isa {

/**
 * A register value. Integer registers keep their 32-bit value in the
 * low word; floating point registers keep a double bit pattern.
 */
struct RegValue
{
    std::uint64_t raw = 0;

    static RegValue
    fromWord(Word w)
    {
        return RegValue{w};
    }

    static RegValue
    fromDouble(double d)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        return RegValue{bits};
    }

    Word asWord() const { return Word(raw & 0xffffffffu); }

    std::int32_t asSWord() const { return std::int32_t(asWord()); }

    double
    asDouble() const
    {
        double d;
        std::memcpy(&d, &raw, sizeof(d));
        return d;
    }

    bool operator==(const RegValue &) const = default;
};

/** Outcome of evaluating a control-transfer instruction. */
struct BranchResult
{
    bool taken = false;   //!< true when control leaves the fall-through
    Addr target = 0;      //!< target address when taken
};

/**
 * Destination register of an instruction as the pipelines see it:
 * $v0 for syscalls, none for stores, inst.rd otherwise. This is the
 * single operand model shared by the processing units and the static
 * annotation verifier (src/analysis/) — the two must agree or the
 * dynamic write-set oracle would diverge from the static may-write
 * sets.
 */
RegIndex destOf(const Instruction &inst);

/**
 * Collect the source registers of an instruction into @p out (at
 * most 4). Syscalls read $v0/$a0/$a1; releases read the registers
 * they release; everything else reads rs/rt when present.
 */
unsigned sourcesOf(const Instruction &inst, RegIndex out[4]);

/**
 * Evaluate a register-writing computation (ALU, FP, lui, link).
 *
 * @param inst The instruction (non-memory, non-release).
 * @param rs_val Value of the rs operand (ignored when absent).
 * @param rt_val Value of the rt operand (ignored when absent).
 * @param pc The instruction's own address (for jal/jalr links).
 * @return the value to write to inst.rd.
 */
RegValue evalAlu(const Instruction &inst, RegValue rs_val, RegValue rt_val,
                 Addr pc);

/**
 * Evaluate a branch or jump.
 *
 * @param inst The control instruction.
 * @param rs_val Value of rs (register target for jr/jalr).
 * @param rt_val Value of rt (for beq/bne).
 * @return taken/target outcome.
 */
BranchResult evalBranch(const Instruction &inst, RegValue rs_val,
                        RegValue rt_val);

/** @return the effective address of a load or store. */
Addr memAddr(const Instruction &inst, RegValue rs_val);

/** @return the access size in bytes of a load or store opcode. */
unsigned memSize(Opcode op);

/**
 * Convert raw little-endian memory bytes into a load result
 * (sign/zero extension, float-to-double widening for lwc1).
 */
RegValue loadResult(Opcode op, std::uint64_t raw_bytes);

/**
 * Convert a register value into the raw bytes a store writes
 * (double-to-float narrowing for swc1).
 */
std::uint64_t storeBytes(Opcode op, RegValue value);

} // namespace msim::isa

#endif // MSIM_ISA_EXEC_HH
