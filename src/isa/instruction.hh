/**
 * @file
 * The decoded instruction representation used by the pipelines.
 *
 * The simulator executes from decoded instructions; the 32-bit binary
 * encoding (see isa/encoding.hh) exists so programs have a real
 * memory image, and the two forms round-trip. Tag bits (forward and
 * stop bits, paper section 2.2) conceptually live in a table beside
 * the program text and are concatenated with the instruction on
 * icache fill; here they ride in the decoded form.
 */

#ifndef MSIM_ISA_INSTRUCTION_HH
#define MSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace msim::isa {

/** Stop-bit conditions that demarcate the end of a task. */
enum class StopKind : std::uint8_t {
    kNone,        //!< not a task boundary
    kAlways,      //!< task completes after this instruction
    kIfTaken,     //!< task completes if this branch is taken
    kIfNotTaken,  //!< task completes if this branch falls through
};

/** Tag bits carried beside each instruction of a multiscalar program. */
struct TagBits
{
    bool forward = false;           //!< forward result on the ring
    StopKind stop = StopKind::kNone;

    bool operator==(const TagBits &) const = default;
};

/** A fully decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::kNop;
    /** Destination register (unified index) or kNoReg. */
    RegIndex rd = kNoReg;
    /** First source register or kNoReg. */
    RegIndex rs = kNoReg;
    /** Second source register or kNoReg. */
    RegIndex rt = kNoReg;
    /** Immediate operand (sign-extended) or shift amount. */
    std::int32_t imm = 0;
    /** Absolute jump/branch target address, when applicable. */
    Addr target = 0;
    /** Second register released by a release instruction, or kNoReg. */
    RegIndex rel2 = kNoReg;
    /** Multiscalar tag bits. */
    TagBits tags;

    /** @return the instruction class of this opcode. */
    InstClass cls() const { return opInfo(op).cls; }

    /** @return true for loads and stores. */
    bool isMemOp() const { return isMem(cls()); }

    /** @return true for branches and jumps. */
    bool isControlOp() const { return isControl(cls()); }

    /** @return true for conditional branches (not jumps). */
    bool
    isCondBranch() const
    {
        auto f = opInfo(op).format;
        return f == Format::kBr1 || f == Format::kBr2;
    }

    /** @return true for beq r,r (the "b" pseudo): always taken. */
    bool
    isAlwaysTaken() const
    {
        return op == Opcode::kBeq && rs == rt;
    }

    /** @return true for bne r,r: never taken. */
    bool
    isNeverTaken() const
    {
        return op == Opcode::kBne && rs == rt;
    }

    /** @return true for direct or indirect jumps. */
    bool
    isJump() const
    {
        return op == Opcode::kJ || op == Opcode::kJal ||
               op == Opcode::kJr || op == Opcode::kJalr;
    }

    /** @return true when this instruction writes a register. */
    bool writesReg() const { return rd != kNoReg; }

    /** Render in assembly syntax (tags appended as !f/!s suffixes). */
    std::string toString() const;
};

} // namespace msim::isa

#endif // MSIM_ISA_INSTRUCTION_HH
