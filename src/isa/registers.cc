#include "isa/registers.hh"

#include <array>
#include <cctype>

namespace msim::isa {

namespace {

/** Symbolic aliases for the integer registers, by number. */
const std::array<const char *, 32> kIntAliases = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

std::optional<int>
parseDecimal(std::string_view s)
{
    if (s.empty())
        return std::nullopt;
    int value = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        value = value * 10 + (c - '0');
        if (value > 255)
            return std::nullopt;
    }
    return value;
}

} // namespace

std::optional<RegIndex>
parseRegName(std::string_view name)
{
    if (name.size() < 2 || name[0] != '$')
        return std::nullopt;
    std::string_view body = name.substr(1);

    // Floating point: $fN.
    if (body.size() >= 2 && body[0] == 'f' &&
        std::isdigit(static_cast<unsigned char>(body[1]))) {
        auto n = parseDecimal(body.substr(1));
        if (n && *n < kNumFpRegs)
            return fpReg(*n);
        return std::nullopt;
    }

    // Numeric: $N.
    if (auto n = parseDecimal(body)) {
        if (*n < kNumIntRegs)
            return intReg(*n);
        return std::nullopt;
    }

    // Symbolic alias.
    for (int i = 0; i < kNumIntRegs; ++i) {
        if (body == kIntAliases[size_t(i)])
            return intReg(i);
    }
    // "$fp" collides with no fp register (those need a digit), and is
    // handled by the alias table above.
    return std::nullopt;
}

std::string
regName(RegIndex reg)
{
    if (reg < 0 || reg >= kNumRegs)
        return "$?";
    if (reg < kNumIntRegs)
        return "$" + std::to_string(int(reg));
    return "$f" + std::to_string(int(reg) - kNumIntRegs);
}

} // namespace msim::isa
