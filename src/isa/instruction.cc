#include "isa/instruction.hh"

#include <sstream>

#include "isa/registers.hh"

namespace msim::isa {

std::string
Instruction::toString() const
{
    const OpInfo &info = opInfo(op);
    std::ostringstream os;
    os << info.mnemonic;
    auto hex = [](Addr a) {
        std::ostringstream h;
        h << "0x" << std::hex << a;
        return h.str();
    };
    switch (info.format) {
      case Format::kR3:
        os << " " << regName(rd) << ", " << regName(rs) << ", "
           << regName(rt);
        break;
      case Format::kR2:
        os << " " << regName(rd) << ", " << regName(rs);
        break;
      case Format::kRI:
        os << " " << regName(rd) << ", " << regName(rs) << ", " << imm;
        break;
      case Format::kSh:
        os << " " << regName(rd) << ", " << regName(rs) << ", " << imm;
        break;
      case Format::kLui:
        os << " " << regName(rd) << ", " << imm;
        break;
      case Format::kLS:
        os << " " << regName(rd == kNoReg ? rt : rd) << ", " << imm
           << "(" << regName(rs) << ")";
        break;
      case Format::kBr2:
        os << " " << regName(rs) << ", " << regName(rt) << ", "
           << hex(target);
        break;
      case Format::kBr1:
        os << " " << regName(rs) << ", " << hex(target);
        break;
      case Format::kJ:
        os << " " << hex(target);
        break;
      case Format::kJr:
        os << " " << regName(rs);
        break;
      case Format::kJalr:
        os << " " << regName(rd) << ", " << regName(rs);
        break;
      case Format::kRel:
        os << " " << regName(rs);
        if (rel2 != kNoReg)
            os << ", " << regName(rel2);
        break;
      case Format::kNone:
        break;
    }
    if (tags.forward)
        os << " !f";
    switch (tags.stop) {
      case StopKind::kAlways:
        os << " !s";
        break;
      case StopKind::kIfTaken:
        os << " !st";
        break;
      case StopKind::kIfNotTaken:
        os << " !sn";
        break;
      case StopKind::kNone:
        break;
    }
    return os.str();
}

} // namespace msim::isa
