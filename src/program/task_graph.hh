/**
 * @file
 * Static task graph analysis for multiscalar programs.
 *
 * The sequencer's walk only works if the annotations are coherent:
 * every exit a task can actually take must be one of its declared
 * targets, every declared target must have a descriptor, and every
 * forwarded or released register must be in the owning task's create
 * mask. Violations surface at run time as panics deep inside a
 * simulation; this analyzer finds them statically by walking each
 * task's reachable instructions (following intra-task branches and
 * calls) and checking everything against the descriptors.
 *
 * The analyzer also renders the task graph in Graphviz dot form —
 * effectively reconstructing the paper's Figure 2 view of a program.
 */

#ifndef MSIM_PROGRAM_TASK_GRAPH_HH
#define MSIM_PROGRAM_TASK_GRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "program/program.hh"

namespace msim {

/** One problem found by TaskGraph::validate(). */
struct TaskGraphIssue
{
    enum class Kind
    {
        kNoEntryDescriptor,   //!< entry point is not a task
        kMissingDescriptor,   //!< declared target has no descriptor
        kUndeclaredExit,      //!< reachable exit not in .targets
        kMissingReturnSpec,   //!< jr-stop but no "ret" target declared
        kForwardOutsideMask,  //!< !f on a reg outside the create mask
        kReleaseOutsideMask,  //!< release of a reg outside the mask
        kNoStopReachable,     //!< task with targets but no stop found
        kFlowsIntoTask,       //!< falls into another task, no stop
    };

    Kind kind;
    /** Task the issue belongs to (0 for program-level issues). */
    Addr task = 0;
    /** Instruction or target address involved, when applicable. */
    Addr where = 0;
    std::string message;
};

/** The static task graph of a multiscalar program. */
class TaskGraph
{
  public:
    /** Per-task facts discovered by the static walk. */
    struct Node
    {
        Addr start = 0;
        const TaskDescriptor *desc = nullptr;
        /** Exit addresses reachable through stop conditions. */
        std::vector<Addr> staticExits;
        /** True when a jr/jalr stop makes an exit dynamic. */
        bool dynamicExit = false;
        /** Static instructions reachable inside the task. */
        unsigned reachableInstructions = 0;
        /** True when any stop-tagged instruction is reachable. */
        bool stopReachable = false;
        /** The reachable instruction addresses themselves. */
        std::set<Addr> reachable;
    };

    /** Build the graph by statically walking every task. The program
     *  must outlive the graph (the rvalue overload is deleted to
     *  prevent binding a temporary). */
    explicit TaskGraph(const Program &prog);
    explicit TaskGraph(Program &&) = delete;

    /** @return the per-task nodes, ordered by start address. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Run all checks. An empty result means the program is clean. */
    std::vector<TaskGraphIssue> validate() const;

    /** Render the task graph in Graphviz dot format. */
    std::string toDot() const;

  private:
    std::string labelFor(Addr addr) const;

    const Program &prog_;
    std::vector<Node> nodes_;
    /** reverse symbol table for labeling */
    std::map<Addr, std::string> names_;
};

} // namespace msim

#endif // MSIM_PROGRAM_TASK_GRAPH_HH
