#include "program/task_graph.hh"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace msim {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::StopKind;

/** Exploration state: a pc plus a bounded static call stack. */
struct WalkState
{
    Addr pc;
    std::vector<Addr> retStack;

    bool
    operator<(const WalkState &o) const
    {
        if (pc != o.pc)
            return pc < o.pc;
        return retStack < o.retStack;
    }
};

constexpr size_t kMaxStates = 20000;
constexpr size_t kMaxCallDepth = 16;

} // namespace

TaskGraph::TaskGraph(const Program &prog) : prog_(prog)
{
    for (const auto &[name, addr] : prog.symbols) {
        // Prefer the first symbol alphabetically per address.
        if (!names_.count(addr))
            names_[addr] = name;
    }
    for (const auto &[addr, desc] : prog.tasks) {
        Node node;
        node.start = addr;
        node.desc = &desc;
        nodes_.push_back(node);
    }
    std::sort(nodes_.begin(), nodes_.end(),
              [](const Node &a, const Node &b) {
                  return a.start < b.start;
              });
    for (Node &node : nodes_)
        walkTask(node);
}

void
TaskGraph::walkTask(Node &node)
{
    std::set<WalkState> visited;
    std::set<Addr> counted;
    std::set<Addr> exits;
    std::deque<WalkState> work;
    work.push_back({node.start, {}});

    auto add_exit = [&](Addr a) { exits.insert(a); };

    while (!work.empty() && visited.size() < kMaxStates) {
        WalkState st = work.front();
        work.pop_front();
        if (!visited.insert(st).second)
            continue;
        const Instruction *inst = prog_.instrAt(st.pc);
        if (!inst)
            continue;  // ran off the text on some path; runtime guards
        counted.insert(st.pc);

        const StopKind stop = inst->tags.stop;
        const Addr fallthrough = st.pc + kInstrBytes;

        if (inst->isCondBranch()) {
            // The "b" pseudo (beq r,r) and its bne r,r dual have only
            // one real path.
            if (inst->isAlwaysTaken() || inst->isNeverTaken()) {
                const Addr next = inst->isAlwaysTaken()
                                      ? inst->target
                                      : fallthrough;
                const bool exits =
                    stop == StopKind::kAlways ||
                    (stop == StopKind::kIfTaken &&
                     inst->isAlwaysTaken()) ||
                    (stop == StopKind::kIfNotTaken &&
                     inst->isNeverTaken());
                if (exits) {
                    node.stopReachable = true;
                    add_exit(next);
                } else {
                    work.push_back({next, st.retStack});
                }
                continue;
            }
            switch (stop) {
              case StopKind::kAlways:
                node.stopReachable = true;
                add_exit(inst->target);
                add_exit(fallthrough);
                continue;
              case StopKind::kIfTaken:
                node.stopReachable = true;
                add_exit(inst->target);
                work.push_back({fallthrough, st.retStack});
                continue;
              case StopKind::kIfNotTaken:
                node.stopReachable = true;
                add_exit(fallthrough);
                work.push_back({inst->target, st.retStack});
                continue;
              case StopKind::kNone:
                work.push_back({inst->target, st.retStack});
                work.push_back({fallthrough, st.retStack});
                continue;
            }
        }
        if (inst->op == Opcode::kJ) {
            if (stop == StopKind::kAlways) {
                node.stopReachable = true;
                add_exit(inst->target);
            } else {
                work.push_back({inst->target, st.retStack});
            }
            continue;
        }
        if (inst->op == Opcode::kJal || inst->op == Opcode::kJalr) {
            if (stop == StopKind::kAlways) {
                node.stopReachable = true;
                if (inst->op == Opcode::kJal)
                    add_exit(inst->target);
                else
                    node.dynamicExit = true;
                continue;
            }
            if (inst->op == Opcode::kJalr) {
                // Indirect call with no stop: cannot follow.
                node.dynamicExit = true;
                continue;
            }
            if (st.retStack.size() < kMaxCallDepth) {
                WalkState callee{inst->target, st.retStack};
                callee.retStack.push_back(fallthrough);
                work.push_back(std::move(callee));
            }
            continue;
        }
        if (inst->op == Opcode::kJr) {
            if (stop == StopKind::kAlways) {
                node.stopReachable = true;
                node.dynamicExit = true;
                continue;
            }
            if (!st.retStack.empty()) {
                WalkState ret{st.retStack.back(), st.retStack};
                ret.retStack.pop_back();
                work.push_back(std::move(ret));
            } else {
                // A return with no statically known caller.
                node.dynamicExit = true;
            }
            continue;
        }
        // Straight-line instruction.
        if (stop == StopKind::kAlways) {
            node.stopReachable = true;
            add_exit(fallthrough);
            continue;
        }
        work.push_back({fallthrough, st.retStack});
    }

    node.staticExits.assign(exits.begin(), exits.end());
    node.reachableInstructions = unsigned(counted.size());
}

std::vector<TaskGraphIssue>
TaskGraph::validate() const
{
    std::vector<TaskGraphIssue> issues;
    using Kind = TaskGraphIssue::Kind;

    auto hex = [](Addr a) {
        std::ostringstream os;
        os << "0x" << std::hex << a;
        return os.str();
    };

    if (!prog_.taskAt(prog_.entry)) {
        issues.push_back({Kind::kNoEntryDescriptor, 0, prog_.entry,
                          "entry point " + hex(prog_.entry) +
                              " has no task descriptor"});
    }

    for (const Node &node : nodes_) {
        const std::string name = labelFor(node.start);
        bool has_ret_target = false;
        std::set<Addr> declared;
        for (const TaskTarget &t : node.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                has_ret_target = true;
                continue;
            }
            declared.insert(t.addr);
            if (!prog_.taskAt(t.addr)) {
                issues.push_back(
                    {Kind::kMissingDescriptor, node.start, t.addr,
                     "task " + name + " declares target " +
                         labelFor(t.addr) +
                         " which has no task descriptor"});
            }
            if (t.spec == TargetSpec::kCall &&
                !prog_.taskAt(t.returnTo)) {
                issues.push_back(
                    {Kind::kMissingDescriptor, node.start, t.returnTo,
                     "task " + name + " declares continuation " +
                         labelFor(t.returnTo) +
                         " which has no task descriptor"});
            }
        }

        for (Addr exit : node.staticExits) {
            if (!declared.count(exit) && !has_ret_target) {
                issues.push_back(
                    {Kind::kUndeclaredExit, node.start, exit,
                     "task " + name + " can exit to " +
                         labelFor(exit) +
                         " which is not a declared target"});
            }
        }
        if (node.dynamicExit && !has_ret_target &&
            !node.desc->targets.empty()) {
            issues.push_back(
                {Kind::kMissingReturnSpec, node.start, 0,
                 "task " + name + " has a dynamic (jr) exit but no "
                 "'ret' target"});
        }
        if (!node.desc->targets.empty() && !node.stopReachable &&
            !node.dynamicExit) {
            issues.push_back(
                {Kind::kNoStopReachable, node.start, 0,
                 "task " + name +
                     " declares successors but no stop condition is "
                     "statically reachable"});
        }
    }

    // Forward/release mask checks need instruction->task ownership;
    // do one more pass per task using the same walker.
    for (const Node &node : nodes_) {
        const std::string name = labelFor(node.start);
        // Walk the task region again (pc-only, which over-approximates
        // reachability and so only strengthens the check), validating
        // tag bits against the create mask.
        std::set<Addr> seen;
        std::deque<Addr> work;
        work.push_back(node.start);
        // A simplified pc-only walk is enough for tag checking: it
        // over-approximates reachability, which only makes the check
        // stricter within the task's own code region.
        size_t guard = 0;
        while (!work.empty() && ++guard < kMaxStates) {
            const Addr pc = work.front();
            work.pop_front();
            if (!seen.insert(pc).second)
                continue;
            const Instruction *inst = prog_.instrAt(pc);
            if (!inst)
                continue;
            if (inst->tags.forward && inst->rd > 0 &&
                !node.desc->createMask.test(inst->rd)) {
                issues.push_back(
                    {TaskGraphIssue::Kind::kForwardOutsideMask,
                     node.start, pc,
                     "task " + name + " forwards " +
                         isa::regName(inst->rd) + " at " +
                         labelFor(pc) +
                         " outside its create mask"});
            }
            if (inst->cls() == isa::InstClass::kRelease) {
                for (RegIndex r : {inst->rs, inst->rel2}) {
                    if (r > 0 && !node.desc->createMask.test(r)) {
                        issues.push_back(
                            {TaskGraphIssue::Kind::kReleaseOutsideMask,
                             node.start, pc,
                             "task " + name + " releases " +
                                 isa::regName(r) + " at " +
                                 labelFor(pc) +
                                 " outside its create mask"});
                    }
                }
            }
            // Stop conditions end the task's code region.
            const StopKind stop = inst->tags.stop;
            if (stop == StopKind::kAlways)
                continue;
            if (inst->isCondBranch()) {
                if (!inst->isNeverTaken() &&
                    stop != StopKind::kIfTaken)
                    work.push_back(inst->target);
                if (!inst->isAlwaysTaken() &&
                    stop != StopKind::kIfNotTaken)
                    work.push_back(pc + kInstrBytes);
                continue;
            }
            if (inst->isJump()) {
                if (inst->op == Opcode::kJ ||
                    inst->op == Opcode::kJal)
                    work.push_back(inst->target);
                if (inst->op == Opcode::kJal)
                    work.push_back(pc + kInstrBytes);
                continue;
            }
            work.push_back(pc + kInstrBytes);
        }
    }
    return issues;
}

std::string
TaskGraph::labelFor(Addr addr) const
{
    auto it = names_.find(addr);
    if (it != names_.end())
        return it->second;
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

std::string
TaskGraph::toDot() const
{
    std::ostringstream os;
    os << "digraph tasks {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const Node &node : nodes_) {
        os << "  \"" << labelFor(node.start) << "\" [label=\""
           << labelFor(node.start) << "\\ncreate {"
           << node.desc->createMask.toString() << "}\\n"
           << node.reachableInstructions << " static instrs\"];\n";
        for (const TaskTarget &t : node.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                os << "  \"" << labelFor(node.start)
                   << "\" -> \"(return)\" [style=dashed];\n";
                continue;
            }
            os << "  \"" << labelFor(node.start) << "\" -> \""
               << labelFor(t.addr) << "\"";
            switch (t.spec) {
              case TargetSpec::kLoop:
                os << " [color=blue, label=loop]";
                break;
              case TargetSpec::kCall:
                os << " [color=darkgreen, label=\"call ret="
                   << labelFor(t.returnTo) << "\"]";
                break;
              default:
                break;
            }
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace msim
