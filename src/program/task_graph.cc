#include "program/task_graph.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/cfg.hh"
#include "isa/exec.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace msim {

using isa::Instruction;
using isa::StopKind;

TaskGraph::TaskGraph(const Program &prog) : prog_(prog)
{
    for (const auto &[name, addr] : prog.symbols) {
        // Prefer the first symbol alphabetically per address.
        if (!names_.count(addr))
            names_[addr] = name;
    }
    for (const auto &[addr, desc] : prog.tasks) {
        Node node;
        node.start = addr;
        node.desc = &desc;
        nodes_.push_back(node);
    }
    std::sort(nodes_.begin(), nodes_.end(),
              [](const Node &a, const Node &b) {
                  return a.start < b.start;
              });
    // The per-task facts all derive from the shared CFG walker
    // (src/analysis/cfg.hh), which the annotation verifier also runs
    // its dataflow passes over.
    for (Node &node : nodes_) {
        const analysis::TaskCfg cfg(prog_, node.start);
        node.staticExits = cfg.staticExits();
        node.dynamicExit = cfg.dynamicExit();
        node.stopReachable = cfg.stopReachable();
        node.reachableInstructions = unsigned(cfg.reachablePcs().size());
        node.reachable = cfg.reachablePcs();
    }
}

std::vector<TaskGraphIssue>
TaskGraph::validate() const
{
    std::vector<TaskGraphIssue> issues;
    using Kind = TaskGraphIssue::Kind;

    auto hex = [](Addr a) {
        std::ostringstream os;
        os << "0x" << std::hex << a;
        return os.str();
    };

    if (!prog_.taskAt(prog_.entry)) {
        issues.push_back({Kind::kNoEntryDescriptor, 0, prog_.entry,
                          "entry point " + hex(prog_.entry) +
                              " has no task descriptor"});
    }

    for (const Node &node : nodes_) {
        const std::string name = labelFor(node.start);
        bool has_ret_target = false;
        std::set<Addr> declared;
        for (const TaskTarget &t : node.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                has_ret_target = true;
                continue;
            }
            declared.insert(t.addr);
            if (!prog_.taskAt(t.addr)) {
                issues.push_back(
                    {Kind::kMissingDescriptor, node.start, t.addr,
                     "task " + name + " declares target " +
                         labelFor(t.addr) +
                         " which has no task descriptor"});
            }
            if (t.spec == TargetSpec::kCall &&
                !prog_.taskAt(t.returnTo)) {
                issues.push_back(
                    {Kind::kMissingDescriptor, node.start, t.returnTo,
                     "task " + name + " declares continuation " +
                         labelFor(t.returnTo) +
                         " which has no task descriptor"});
            }
        }

        for (Addr exit : node.staticExits) {
            if (!declared.count(exit) && !has_ret_target) {
                issues.push_back(
                    {Kind::kUndeclaredExit, node.start, exit,
                     "task " + name + " can exit to " +
                         labelFor(exit) +
                         " which is not a declared target"});
            }
        }
        if (node.dynamicExit && !has_ret_target &&
            !node.desc->targets.empty()) {
            issues.push_back(
                {Kind::kMissingReturnSpec, node.start, 0,
                 "task " + name + " has a dynamic (jr) exit but no "
                 "'ret' target"});
        }
        if (!node.desc->targets.empty() && !node.stopReachable &&
            !node.dynamicExit) {
            issues.push_back(
                {Kind::kNoStopReachable, node.start, 0,
                 "task " + name +
                     " declares successors but no stop condition is "
                     "statically reachable"});
        }

        // Forward/release mask checks over the task's reachable
        // instructions, as recorded by the shared CFG walk. These
        // are membership checks, so the pc set is all they need.
        for (Addr pc : node.reachable) {
            const Instruction *inst = prog_.instrAt(pc);
            const RegIndex fwd = isa::destOf(*inst);
            if (inst->tags.forward && fwd > 0 &&
                !node.desc->createMask.test(fwd)) {
                issues.push_back(
                    {Kind::kForwardOutsideMask, node.start, pc,
                     "task " + name + " forwards " +
                         isa::regName(fwd) + " at " + labelFor(pc) +
                         " outside its create mask"});
            }
            if (inst->cls() == isa::InstClass::kRelease) {
                for (RegIndex r : {inst->rs, inst->rel2}) {
                    if (r > 0 && !node.desc->createMask.test(r)) {
                        issues.push_back(
                            {Kind::kReleaseOutsideMask, node.start, pc,
                             "task " + name + " releases " +
                                 isa::regName(r) + " at " +
                                 labelFor(pc) +
                                 " outside its create mask"});
                    }
                }
            }
        }
    }
    return issues;
}

std::string
TaskGraph::labelFor(Addr addr) const
{
    auto it = names_.find(addr);
    if (it != names_.end())
        return it->second;
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

std::string
TaskGraph::toDot() const
{
    std::ostringstream os;
    os << "digraph tasks {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const Node &node : nodes_) {
        os << "  \"" << labelFor(node.start) << "\" [label=\""
           << labelFor(node.start) << "\\ncreate {"
           << node.desc->createMask.toString() << "}\\n"
           << node.reachableInstructions << " static instrs\"];\n";
        for (const TaskTarget &t : node.desc->targets) {
            if (t.spec == TargetSpec::kReturn) {
                os << "  \"" << labelFor(node.start)
                   << "\" -> \"(return)\" [style=dashed];\n";
                continue;
            }
            os << "  \"" << labelFor(node.start) << "\" -> \""
               << labelFor(t.addr) << "\"";
            switch (t.spec) {
              case TargetSpec::kLoop:
                os << " [color=blue, label=loop]";
                break;
              case TargetSpec::kCall:
                os << " [color=darkgreen, label=\"call ret="
                   << labelFor(t.returnTo) << "\"]";
                break;
              default:
                break;
            }
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace msim
