/**
 * @file
 * Task descriptors: the static per-task information a multiscalar
 * program carries beside the code (paper section 2.2). A descriptor
 * names the registers the task may create (create mask) and the
 * possible successor tasks the sequencer can choose from (up to four
 * targets, each with a spec that tells the predictor how to treat it).
 */

#ifndef MSIM_PROGRAM_TASK_DESCRIPTOR_HH
#define MSIM_PROGRAM_TASK_DESCRIPTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/reg_mask.hh"
#include "common/types.hh"

namespace msim {

/** How the sequencer should treat a successor target. */
enum class TargetSpec : std::uint8_t {
    kNormal,  //!< plain static successor
    kLoop,    //!< back edge to the same (or an enclosing) loop task
    kCall,    //!< enters a function; push returnTo on the RAS
    kReturn,  //!< successor comes from the return address stack
};

/** One possible successor task. */
struct TaskTarget
{
    /** Successor task start address (unused for kReturn). */
    Addr addr = 0;
    TargetSpec spec = TargetSpec::kNormal;
    /** Continuation pushed on the RAS for kCall targets. */
    Addr returnTo = 0;

    bool operator==(const TaskTarget &) const = default;
};

/** Maximum number of successor targets per task (paper section 5.1). */
inline constexpr unsigned kMaxTaskTargets = 4;

/** Static description of one task. */
struct TaskDescriptor
{
    /** Address of the first instruction of the task. */
    Addr start = 0;
    /** Registers this task may produce (paper: create mask). */
    RegMask createMask;
    /** Possible successors, at most kMaxTaskTargets. */
    std::vector<TaskTarget> targets;

    /** Source line of the .task directive (0 = unknown). */
    int lineNo = 0;

    /** Render for diagnostics. */
    std::string toString() const;
};

} // namespace msim

#endif // MSIM_PROGRAM_TASK_DESCRIPTOR_HH
