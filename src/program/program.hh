/**
 * @file
 * A loaded msim program: encoded text image, decoded side table,
 * data segments, task descriptors, and a symbol table.
 *
 * The decoded side table is the standard simulator shortcut: timing
 * still flows through the icache on the real byte image, but the
 * pipelines execute pre-decoded instructions.
 */

#ifndef MSIM_PROGRAM_PROGRAM_HH
#define MSIM_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "program/task_descriptor.hh"

namespace msim {

/** Default memory layout. */
inline constexpr Addr kTextBase = 0x00400000;
inline constexpr Addr kDataBase = 0x10000000;
inline constexpr Addr kStackTop = 0x7ffffff0;

/** A raw initialized data segment. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/** An assembled program ready to run. */
class Program
{
  public:
    /** Entry point address. */
    Addr entry = kTextBase;

    /** Base address of the text segment. */
    Addr textBase = kTextBase;

    /** Encoded text image (little endian words). */
    std::vector<std::uint8_t> textBytes;

    /** Decoded instructions; index i is address textBase + 4*i. */
    std::vector<isa::Instruction> code;

    /** Initialized data segments. */
    std::vector<DataSegment> data;

    /** Task descriptors keyed by task start address. */
    std::unordered_map<Addr, TaskDescriptor> tasks;

    /** Source file name the program was assembled from (diagnostics). */
    std::string sourceName;

    /**
     * Source line of each instruction (parallel to @ref code); empty
     * for programs built without the assembler. Line 0 = unknown.
     */
    std::vector<int> lineNos;

    /** Symbol table (labels from the assembly source). */
    std::map<std::string, Addr> symbols;

    /** First free address after the data segments (initial brk). */
    Addr heapStart = kDataBase;

    /** @return the decoded instruction at @p addr, or nullptr. */
    const isa::Instruction *
    instrAt(Addr addr) const
    {
        if (addr < textBase || (addr - textBase) % kInstrBytes != 0)
            return nullptr;
        size_t idx = (addr - textBase) / kInstrBytes;
        if (idx >= code.size())
            return nullptr;
        return &code[idx];
    }

    /** @return the task descriptor starting at @p addr, or nullptr. */
    const TaskDescriptor *
    taskAt(Addr addr) const
    {
        auto it = tasks.find(addr);
        return it == tasks.end() ? nullptr : &it->second;
    }

    /** @return the address of a symbol, or std::nullopt. */
    std::optional<Addr>
    symbol(const std::string &name) const
    {
        auto it = symbols.find(name);
        if (it == symbols.end())
            return std::nullopt;
        return it->second;
    }

    /** @return the source line of the instruction at @p addr, or 0. */
    int
    lineOf(Addr addr) const
    {
        if (addr < textBase || (addr - textBase) % kInstrBytes != 0)
            return 0;
        size_t idx = (addr - textBase) / kInstrBytes;
        return idx < lineNos.size() ? lineNos[idx] : 0;
    }

    /** @return address one past the last text instruction. */
    Addr
    textEnd() const
    {
        return textBase + Addr(code.size()) * kInstrBytes;
    }

    /** Static instruction count. */
    size_t numInstructions() const { return code.size(); }
};

} // namespace msim

#endif // MSIM_PROGRAM_PROGRAM_HH
