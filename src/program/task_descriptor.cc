#include "program/task_descriptor.hh"

#include <sstream>

namespace msim {

namespace {

const char *
specName(TargetSpec spec)
{
    switch (spec) {
      case TargetSpec::kNormal:
        return "normal";
      case TargetSpec::kLoop:
        return "loop";
      case TargetSpec::kCall:
        return "call";
      case TargetSpec::kReturn:
        return "ret";
    }
    return "?";
}

} // namespace

std::string
TaskDescriptor::toString() const
{
    std::ostringstream os;
    os << "task@0x" << std::hex << start << std::dec
       << " create={" << createMask.toString() << "} targets=[";
    bool first = true;
    for (const auto &t : targets) {
        if (!first)
            os << ", ";
        first = false;
        os << "0x" << std::hex << t.addr << std::dec
           << ":" << specName(t.spec);
        if (t.spec == TargetSpec::kCall)
            os << ":ret=0x" << std::hex << t.returnTo << std::dec;
    }
    os << "]";
    return os.str();
}

} // namespace msim
