#include "arb/arb.hh"

#include <algorithm>

#include "common/logging.hh"

namespace msim {

Arb::Arb(StatGroup &stats, MainMemory &mem, const Params &params,
         Tracer *tracer)
    : stats_(stats), mem_(mem), params_(params), tracer_(tracer),
      banks_(params.numBanks)
{
    fatalIf(params.numBanks == 0, "ARB needs at least one bank");
    fatalIf(params.entriesPerBank == 0, "ARB needs at least one entry");
    for (Bank &bank : banks_)
        bank.reserve(params.entriesPerBank);
}

Arb::TaskRecord *
Arb::findRecord(Entry &entry, TaskSeq seq, bool create, bool *created)
{
    auto it = std::lower_bound(
        entry.records.begin(), entry.records.end(), seq,
        [](const TaskRecord &r, TaskSeq s) { return r.seq < s; });
    if (it != entry.records.end() && it->seq == seq)
        return &*it;
    if (!create)
        return nullptr;
    TaskRecord rec;
    rec.seq = seq;
    if (created)
        *created = true;
    return &*entry.records.insert(it, rec);
}

bool
Arb::hasSpaceFor(TaskSeq seq, Addr addr, unsigned size, bool is_load,
                 bool is_head) const
{
    if (is_load && is_head)
        return true;  // head loads never allocate
    bool ok = true;
    forGranules(
        addr, size, [&](Addr g, unsigned, unsigned) {
            const Bank &bank = banks_[bankOf(g)];
            auto it = bank.find(g);
            if (it != bank.end()) {
                // Existing entry: a new record costs nothing (entries
                // are counted per granule, as in the ARB paper where
                // one row holds all stages' bits for one address).
                (void)seq;
                return;
            }
            if (is_head && !is_load)
                return;  // unbuffered head store, no allocation
            if (bank.size() >= params_.entriesPerBank)
                ok = false;
        });
    return ok;
}

std::uint64_t
Arb::load(TaskSeq seq, Addr addr, unsigned size, bool is_head)
{
    panicIf(size == 0 || size > 8, "Arb::load bad size ", size);
    // Start from committed memory, then patch in speculative bytes.
    std::uint64_t value = mem_.read(addr, size);
    auto *bytes = reinterpret_cast<std::uint8_t *>(&value);

    forGranules(addr, size, [&](Addr g, unsigned lo, unsigned hi) {
        Bank &bank = banks_[bankOf(g)];
        auto it = bank.find(g);
        Entry *entry = it != bank.end() ? &it->second : nullptr;

        for (unsigned b = lo; b < hi; ++b) {
            // Overall byte index within the loaded value.
            unsigned vi = unsigned(g + b - addr);
            bool from_own_store = false;
            if (entry) {
                // Nearest store at or before seq, newest first.
                for (auto rit = entry->records.rbegin();
                     rit != entry->records.rend(); ++rit) {
                    if (rit->seq > seq)
                        continue;
                    if (rit->storeMask & (1u << b)) {
                        bytes[vi] = rit->bytes[b];
                        from_own_store = rit->seq == seq;
                        break;
                    }
                }
            }
            // Record the load bit: the byte came from outside this
            // task, so an earlier task storing it later violates the
            // dependence. Head loads cannot be violated.
            if (!is_head && !from_own_store) {
                if (!entry) {
                    panicIf(bank.size() >= params_.entriesPerBank,
                            "ARB bank overflow on load; call "
                            "hasSpaceFor first");
                    entry = &bank[g];
                    it = bank.find(g);
                }
                bool created = false;
                TaskRecord *rec = findRecord(*entry, seq, true, &created);
                if (created)
                    touched_[seq].push_back(g);
                rec->loadMask |= std::uint8_t(1u << b);
            }
        }
    });
    stats_.add("loads");
    return value;
}

std::optional<TaskSeq>
Arb::store(TaskSeq seq, Addr addr, unsigned size, std::uint64_t value,
           bool is_head)
{
    panicIf(size == 0 || size > 8, "Arb::store bad size ", size);
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
    std::optional<TaskSeq> violator;

    forGranules(addr, size, [&](Addr g, unsigned lo, unsigned hi) {
        Bank &bank = banks_[bankOf(g)];
        auto it = bank.find(g);
        Entry *entry = it != bank.end() ? &it->second : nullptr;

        const std::uint8_t store_mask =
            std::uint8_t(((1u << (hi - lo)) - 1u) << lo);

        // Violation check: the earliest later task that loaded any of
        // these bytes without an intervening store covering them.
        if (entry) {
            std::uint8_t unshadowed = store_mask;
            for (const TaskRecord &rec : entry->records) {
                if (rec.seq <= seq)
                    continue;
                if (rec.loadMask & unshadowed) {
                    if (!violator || rec.seq < *violator)
                        violator = rec.seq;
                    break;  // records are in seq order; first hit wins
                }
                // This later task stored some bytes before any still
                // later task loaded them; those bytes are shadowed.
                unshadowed &= std::uint8_t(~rec.storeMask);
                if (!unshadowed)
                    break;
            }
        }

        // Buffer or write through.
        bool buffered = false;
        if (entry) {
            TaskRecord *own = findRecord(*entry, seq, false);
            if (own && own->storeMask) {
                // Keep ordering with our earlier speculative bytes.
                for (unsigned b = lo; b < hi; ++b) {
                    own->bytes[b] = bytes[g + b - addr];
                    own->storeMask |= std::uint8_t(1u << b);
                }
                buffered = true;
            }
        }
        if (!buffered) {
            if (is_head) {
                // Non-speculative: write committed memory directly.
                for (unsigned b = lo; b < hi; ++b)
                    mem_.write(g + b, bytes[g + b - addr], 1);
            } else {
                if (!entry) {
                    panicIf(bank.size() >= params_.entriesPerBank,
                            "ARB bank overflow on store; call "
                            "hasSpaceFor first");
                    entry = &bank[g];
                }
                bool created = false;
                TaskRecord *rec = findRecord(*entry, seq, true, &created);
                if (created)
                    touched_[seq].push_back(g);
                for (unsigned b = lo; b < hi; ++b) {
                    rec->bytes[b] = bytes[g + b - addr];
                    rec->storeMask |= std::uint8_t(1u << b);
                }
            }
        }
    });

    stats_.add("stores");
    if (violator) {
        stats_.add("violations");
        stats_.addToDist("violationsByBank",
                         "bank" + std::to_string(bankOf(addr)));
        if (tracer_ && tracer_->wants(TraceCat::kArb)) {
            tracer_->instant(TraceCat::kArb, "violation",
                             tracer_->now(), kTidArb, "addr", addr,
                             "violated_seq", *violator);
        }
    }
    return violator;
}

void
Arb::commit(TaskSeq seq)
{
    auto tit = touched_.find(seq);
    if (tit == touched_.end())
        return;  // the task never allocated a record
    for (Addr g : tit->second) {
        Bank &bank = banks_[bankOf(g)];
        auto it = bank.find(g);
        panicIf(it == bank.end(),
                "ARB commit: touched granule has no entry");
        Entry &entry = it->second;
        auto rit = std::find_if(
            entry.records.begin(), entry.records.end(),
            [&](const TaskRecord &r) { return r.seq == seq; });
        panicIf(rit == entry.records.end(),
                "ARB commit: touched granule has no record");
        panicIf(rit != entry.records.begin(),
                "ARB commit out of task order");
        if (rit->storeMask) {
            for (unsigned b = 0; b < kGranule; ++b) {
                if (rit->storeMask & (1u << b))
                    mem_.write(g + b, rit->bytes[b], 1);
            }
            stats_.add("committedStores");
        }
        entry.records.erase(rit);
        if (entry.records.empty())
            bank.erase(it);
    }
    touched_.erase(tit);
}

void
Arb::squash(TaskSeq seq)
{
    auto tit = touched_.find(seq);
    if (tit == touched_.end())
        return;  // the task never allocated a record
    std::uint64_t squashedStores = 0;
    std::uint64_t squashedLoads = 0;
    for (Addr g : tit->second) {
        Bank &bank = banks_[bankOf(g)];
        auto it = bank.find(g);
        panicIf(it == bank.end(),
                "ARB squash: touched granule has no entry");
        Entry &entry = it->second;
        auto rit = std::find_if(
            entry.records.begin(), entry.records.end(),
            [&](const TaskRecord &r) { return r.seq == seq; });
        panicIf(rit == entry.records.end(),
                "ARB squash: touched granule has no record");
        if (rit->storeMask) {
            stats_.add("squashedStores");
            ++squashedStores;
        }
        if (rit->loadMask)
            ++squashedLoads;
        entry.records.erase(rit);
        if (entry.records.empty())
            bank.erase(it);
    }
    if (squashedStores)
        stats_.addToDist("squashedRecords", "store", squashedStores);
    if (squashedLoads)
        stats_.addToDist("squashedRecords", "load", squashedLoads);
    if (tracer_ && tracer_->wants(TraceCat::kArb)) {
        tracer_->instant(TraceCat::kArb, "task_squash", tracer_->now(),
                         kTidArb, "seq", seq, "granules",
                         std::uint64_t(tit->second.size()));
    }
    touched_.erase(tit);
}

size_t
Arb::totalEntries() const
{
    size_t n = 0;
    for (const Bank &bank : banks_)
        n += bank.size();
    return n;
}

void
Arb::clear()
{
    for (Bank &bank : banks_)
        bank.clear();
    touched_.clear();
}

} // namespace msim
