/**
 * @file
 * The Address Resolution Buffer (ARB), paper section 2.3 and
 * Franklin & Sohi [3].
 *
 * The ARB holds the speculative memory operations of the active
 * tasks. Stores performed by speculative tasks are buffered here and
 * update the data cache (functionally: main memory) only when the
 * task commits. Loads search the ARB for the nearest logically
 * preceding store to the same bytes; bytes not found come from
 * committed memory. Per-task load and store byte masks detect memory
 * dependence violations: when a logically earlier task stores to
 * bytes that a logically later task already loaded (with no
 * intervening store by a task in between), the later task and all its
 * successors must be squashed.
 *
 * The ARB also renames memory: two tasks may store to the same
 * address (e.g. the same stack frame of parallel calls to the same
 * function) and each task's loads see its own values, exactly as the
 * paper requires for executing multiple function calls in parallel.
 *
 * Entries are organized per data cache bank (256 entries per bank in
 * the paper's configuration) at an 8-byte granule. When a bank fills,
 * the processor either squashes the latest tasks to reclaim space or
 * stalls all units but the head (both policies from section 2.3);
 * that policy decision lives in the core, driven by hasSpaceFor().
 *
 * Task order is the numeric order of TaskSeq values. The head task is
 * non-speculative: its loads do not set load bits (nothing earlier
 * can violate them) and its stores may write memory directly when the
 * granule holds none of its own speculative bytes.
 */

#ifndef MSIM_ARB_ARB_HH
#define MSIM_ARB_ARB_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/main_memory.hh"
#include "trace/tracer.hh"

namespace msim {

/** The Address Resolution Buffer. */
class Arb
{
  public:
    struct Params
    {
        unsigned numBanks = 8;
        size_t blockBytes = 64;        //!< must match the data banks
        unsigned entriesPerBank = 256;
    };

    Arb(StatGroup &stats, MainMemory &mem, const Params &params,
        Tracer *tracer = nullptr);

    /**
     * Would a load/store of @p size bytes at @p addr by task @p seq
     * fit in the ARB? Head loads never allocate; head stores allocate
     * only when the granule already holds the head's own bytes.
     */
    bool hasSpaceFor(TaskSeq seq, Addr addr, unsigned size, bool is_load,
                     bool is_head) const;

    /**
     * Perform a load: record load bits (unless head) and return the
     * value, taking each byte from the nearest logically preceding
     * store (own task first, then predecessors, then memory).
     */
    std::uint64_t load(TaskSeq seq, Addr addr, unsigned size,
                       bool is_head);

    /**
     * Perform a store: buffer the bytes (or write memory directly for
     * an unbuffered head store) and check for memory dependence
     * violations.
     *
     * @return the sequence number of the earliest violating task
     *         (that task and all after it must be squashed), or
     *         std::nullopt when no violation occurred.
     */
    std::optional<TaskSeq> store(TaskSeq seq, Addr addr, unsigned size,
                                 std::uint64_t value, bool is_head);

    /**
     * Commit a task: flush its buffered stores to memory and release
     * its entries. Must be called in task order.
     */
    void commit(TaskSeq seq);

    /** Squash a task: discard its load bits and buffered stores. */
    void squash(TaskSeq seq);

    /** @return the bank an address maps to (block interleaved). */
    unsigned
    bankOf(Addr addr) const
    {
        return unsigned(addr / Addr(params_.blockBytes)) %
               params_.numBanks;
    }

    /** @return the number of live entries in @p bank. */
    size_t
    entriesInBank(unsigned bank) const
    {
        return banks_[bank].size();
    }

    /** @return total live entries across banks. */
    size_t totalEntries() const;

    /** Drop all state (used between runs). */
    void clear();

  private:
    /** Per-task byte masks and store data for one 8-byte granule. */
    struct TaskRecord
    {
        TaskSeq seq = 0;
        std::uint8_t loadMask = 0;   //!< bytes loaded from outside
        std::uint8_t storeMask = 0;  //!< bytes stored speculatively
        std::uint8_t bytes[8] = {};
    };

    /** One granule entry: records sorted by ascending seq. */
    struct Entry
    {
        std::vector<TaskRecord> records;
    };

    using Bank = std::unordered_map<Addr, Entry>;

    static constexpr Addr kGranule = 8;

    StatGroup &stats_;
    MainMemory &mem_;
    Params params_;
    Tracer *tracer_ = nullptr;
    std::vector<Bank> banks_;

    /**
     * Granules each live task has a record in, so commit and squash
     * visit exactly the task's own entries instead of scanning every
     * bank. A granule appears at most once per task: a record is
     * created at most once per (seq, granule) and TaskSeq values are
     * never reused.
     */
    std::unordered_map<TaskSeq, std::vector<Addr>> touched_;

    /**
     * Find (or conditionally create) the record for seq in entry.
     * Sets @p created when a record was inserted.
     */
    static TaskRecord *findRecord(Entry &entry, TaskSeq seq, bool create,
                                  bool *created = nullptr);

    /** Visit the granules an access covers. */
    template <typename Fn>
    void
    forGranules(Addr addr, unsigned size, Fn &&fn) const
    {
        Addr first = addr & ~(kGranule - 1);
        Addr last = (addr + size - 1) & ~(kGranule - 1);
        for (Addr g = first; g <= last; g += kGranule) {
            unsigned lo = g < addr ? unsigned(addr - g) : 0;
            unsigned hi_excl = g + kGranule > addr + size
                                   ? unsigned(addr + size - g)
                                   : unsigned(kGranule);
            // Byte range [lo, hi_excl) of this granule participates;
            // byte i of the granule corresponds to overall byte
            // (g + i - addr) of the access.
            fn(g, lo, hi_excl);
        }
    }
};

} // namespace msim

#endif // MSIM_ARB_ARB_HH
