#include "asm/assembler.hh"

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/verifier.hh"
#include "asm/lexer.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"
#include "isa/registers.hh"

namespace msim::assembler {

namespace {

using isa::Format;
using isa::InstClass;
using isa::Instruction;
using isa::Opcode;
using isa::StopKind;
using isa::TagBits;

/** A symbolic or literal expression: symbol + addend, or literal. */
struct Expr
{
    bool hasSymbol = false;
    std::string symbol;
    std::int64_t addend = 0;

    static Expr
    literal(std::int64_t v)
    {
        Expr e;
        e.addend = v;
        return e;
    }
};

/** How a ProtoInst's expression maps onto the instruction. */
enum class ImmRole : std::uint8_t {
    kNone,        //!< no expression operand
    kImm,         //!< plain immediate
    kShamt,       //!< shift amount
    kBranch,      //!< branch target address
    kJump,        //!< jump target address
    kHi16,        //!< (value >> 16) & 0xffff (lui of la/li)
    kLo16,        //!< value & 0xffff (ori of la/li)
    kHiAdj16,     //!< ((value + 0x8000) >> 16) & 0xffff
    kLoSigned16,  //!< sign-extended low half (pairs with kHiAdj16)
};

/** An instruction awaiting symbol resolution. */
struct ProtoInst
{
    Opcode op = Opcode::kNop;
    RegIndex rd = kNoReg;
    RegIndex rs = kNoReg;
    RegIndex rt = kNoReg;
    RegIndex rel2 = kNoReg;
    Expr expr;
    ImmRole role = ImmRole::kNone;
    TagBits tags;
    int lineNo = 0;
};

/** A .word/.half/.byte data cell awaiting symbol resolution. */
struct DataFixup
{
    size_t offset;   //!< byte offset within the data image
    unsigned size;   //!< 1, 2 or 4 bytes
    Expr expr;
    int lineNo = 0;
};

/** A declared successor target of a .task block. */
struct TargetDecl
{
    TargetSpec spec = TargetSpec::kNormal;
    std::string label;     //!< empty for ret targets
    std::string retLabel;  //!< continuation for call targets
    int lineNo = 0;
};

/** A .task block awaiting symbol resolution. */
struct TaskDecl
{
    std::string label;
    std::vector<TargetDecl> targets;
    RegMask createMask;
    int lineNo = 0;
};

class Assembler
{
  public:
    Assembler(const std::string &source, const AsmOptions &opts)
        : source_(source), opts_(opts)
    {
    }

    Program run();

  private:
    enum class Section { kText, kData };

    [[noreturn]] void
    err(int line_no, const std::string &msg) const
    {
        fatal(opts_.fileName, ":", line_no, ": ", msg);
    }

    // --- pass 1 -----------------------------------------------------
    void passOne();
    bool lineEnabled(std::vector<Token> &toks, int line_no) const;
    void handleLabel(const std::string &name, int line_no);
    void handleDirective(const std::vector<Token> &toks, int line_no);

    // Instruction-parsing helpers.
    TagBits takeTags(std::vector<Token> &toks, int line_no) const;
    Expr parseExpr(const std::vector<Token> &toks, size_t &pos,
                   int line_no) const;
    RegIndex needReg(const std::vector<Token> &toks, size_t &pos,
                     int line_no) const;
    void needComma(const std::vector<Token> &toks, size_t &pos,
                   int line_no) const;
    bool atEnd(const std::vector<Token> &toks, size_t pos) const;
    void emit(ProtoInst pi, int line_no);
    void emitLoadImm(RegIndex rd, const Expr &e, TagBits tags,
                     int line_no);
    void parseRealInstruction(Opcode op, const std::vector<Token> &toks,
                              size_t pos, TagBits tags, int line_no);
    bool parsePseudo(const std::string &mnemonic,
                     const std::vector<Token> &toks, size_t pos,
                     TagBits tags, int line_no);

    // Data emission helpers.
    void dataBytes(const void *p, size_t n);
    void alignData(unsigned alignment);

    // --- pass 2 -----------------------------------------------------
    void passTwo(Program &prog);
    std::int64_t evalExpr(const Expr &e, int line_no) const;
    Addr labelAddr(const std::string &name, int line_no) const;

    // --- state ------------------------------------------------------
    const std::string &source_;
    const AsmOptions &opts_;

    Section section_ = Section::kText;
    Addr textLc_ = kTextBase;            //!< text location counter
    std::vector<ProtoInst> protos_;
    std::vector<std::uint8_t> dataImage_;
    std::vector<DataFixup> dataFixups_;
    std::map<std::string, Addr> symbols_;
    std::vector<TaskDecl> tasks_;
    bool inTask_ = false;
    std::string entryLabel_;
};

bool
Assembler::atEnd(const std::vector<Token> &toks, size_t pos) const
{
    return pos >= toks.size();
}

bool
Assembler::lineEnabled(std::vector<Token> &toks, int line_no) const
{
    while (!toks.empty() && toks.front().kind == TokKind::kAt) {
        const std::string &p = toks.front().text;
        bool enabled;
        if (p == "@ms") {
            enabled = opts_.multiscalar;
        } else if (p == "@sc") {
            enabled = !opts_.multiscalar;
        } else if (p.rfind("@def(", 0) == 0 && p.back() == ')') {
            enabled = opts_.defines.count(p.substr(5, p.size() - 6)) > 0;
        } else if (p.rfind("@ndef(", 0) == 0 && p.back() == ')') {
            enabled = opts_.defines.count(p.substr(6, p.size() - 7)) == 0;
        } else {
            err(line_no, "unknown mode prefix '" + p + "'");
        }
        if (!enabled)
            return false;
        toks.erase(toks.begin());
    }
    return true;
}

void
Assembler::handleLabel(const std::string &name, int line_no)
{
    if (symbols_.count(name))
        err(line_no, "duplicate label '" + name + "'");
    symbols_[name] = section_ == Section::kText
                         ? textLc_
                         : Addr(kDataBase + dataImage_.size());
}

void
Assembler::dataBytes(const void *p, size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    dataImage_.insert(dataImage_.end(), b, b + n);
}

void
Assembler::alignData(unsigned alignment)
{
    while (dataImage_.size() % alignment != 0)
        dataImage_.push_back(0);
}

TagBits
Assembler::takeTags(std::vector<Token> &toks, int line_no) const
{
    TagBits tags;
    while (!toks.empty() && toks.back().kind == TokKind::kTag) {
        const std::string &t = toks.back().text;
        if (!opts_.multiscalar) {
            toks.pop_back();
            continue;
        }
        if (t == "!f") {
            tags.forward = true;
        } else {
            if (tags.stop != StopKind::kNone)
                err(line_no, "multiple stop tags");
            if (t == "!s")
                tags.stop = StopKind::kAlways;
            else if (t == "!st")
                tags.stop = StopKind::kIfTaken;
            else if (t == "!sn")
                tags.stop = StopKind::kIfNotTaken;
        }
        toks.pop_back();
    }
    return tags;
}

Expr
Assembler::parseExpr(const std::vector<Token> &toks, size_t &pos,
                     int line_no) const
{
    if (atEnd(toks, pos))
        err(line_no, "expected expression");
    Expr e;
    bool neg = false;
    if (toks[pos].kind == TokKind::kMinus) {
        neg = true;
        ++pos;
        if (atEnd(toks, pos))
            err(line_no, "expected expression after '-'");
    }
    const Token &t = toks[pos];
    if (t.kind == TokKind::kNumber) {
        e.addend = parseInt(t, line_no, opts_.fileName);
        if (neg)
            e.addend = -e.addend;
        ++pos;
    } else if (t.kind == TokKind::kIdent && !neg) {
        e.hasSymbol = true;
        e.symbol = t.text;
        ++pos;
    } else {
        err(line_no, "expected expression, got '" + t.text + "'");
    }
    // Optional +N / -N suffix.
    while (!atEnd(toks, pos) && (toks[pos].kind == TokKind::kPlus ||
                                 toks[pos].kind == TokKind::kMinus)) {
        bool minus = toks[pos].kind == TokKind::kMinus;
        ++pos;
        if (atEnd(toks, pos) || toks[pos].kind != TokKind::kNumber)
            err(line_no, "expected number in expression");
        std::int64_t v = parseInt(toks[pos], line_no, opts_.fileName);
        e.addend += minus ? -v : v;
        ++pos;
    }
    return e;
}

RegIndex
Assembler::needReg(const std::vector<Token> &toks, size_t &pos,
                   int line_no) const
{
    if (atEnd(toks, pos) || toks[pos].kind != TokKind::kReg)
        err(line_no, "expected register");
    return toks[pos++].reg;
}

void
Assembler::needComma(const std::vector<Token> &toks, size_t &pos,
                     int line_no) const
{
    if (atEnd(toks, pos) || toks[pos].kind != TokKind::kComma)
        err(line_no, "expected ','");
    ++pos;
}

void
Assembler::emit(ProtoInst pi, int line_no)
{
    pi.lineNo = line_no;
    protos_.push_back(std::move(pi));
    textLc_ += kInstrBytes;
}

void
Assembler::emitLoadImm(RegIndex rd, const Expr &e, TagBits tags,
                       int line_no)
{
    if (!e.hasSymbol) {
        const std::int64_t v = e.addend;
        if (v >= isa::kMinImm16 && v <= isa::kMaxImm16) {
            ProtoInst pi;
            pi.op = Opcode::kAddiu;
            pi.rd = rd;
            pi.rs = isa::intReg(isa::kRegZero);
            pi.expr = e;
            pi.role = ImmRole::kImm;
            pi.tags = tags;
            emit(pi, line_no);
            return;
        }
        if (v >= 0 && v <= std::int64_t(isa::kMaxUImm16)) {
            ProtoInst pi;
            pi.op = Opcode::kOri;
            pi.rd = rd;
            pi.rs = isa::intReg(isa::kRegZero);
            pi.expr = e;
            pi.role = ImmRole::kImm;
            pi.tags = tags;
            emit(pi, line_no);
            return;
        }
    }
    ProtoInst hi;
    hi.op = Opcode::kLui;
    hi.rd = rd;
    hi.expr = e;
    hi.role = ImmRole::kHi16;
    emit(hi, line_no);
    ProtoInst lo;
    lo.op = Opcode::kOri;
    lo.rd = rd;
    lo.rs = rd;
    lo.expr = e;
    lo.role = ImmRole::kLo16;
    lo.tags = tags;
    emit(lo, line_no);
}

void
Assembler::parseRealInstruction(Opcode op, const std::vector<Token> &toks,
                                size_t pos, TagBits tags, int line_no)
{
    const isa::OpInfo &info = isa::opInfo(op);
    ProtoInst pi;
    pi.op = op;
    pi.tags = tags;

    auto finish = [&] {
        if (!atEnd(toks, pos))
            err(line_no, "trailing operands");
        emit(pi, line_no);
    };

    switch (info.format) {
      case Format::kR3:
        pi.rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        // Standard assembler convenience: a register-form mnemonic
        // with an immediate third operand becomes the immediate form
        // (the paper's Figure 4 writes "addu $20, $20, 16").
        if (!atEnd(toks, pos) && toks[pos].kind != TokKind::kReg) {
            Expr e = parseExpr(toks, pos, line_no);
            bool negate = false;
            switch (op) {
              case Opcode::kAdd:
                pi.op = Opcode::kAddi;
                break;
              case Opcode::kAddu:
                pi.op = Opcode::kAddiu;
                break;
              case Opcode::kSub:
                pi.op = Opcode::kAddi;
                negate = true;
                break;
              case Opcode::kSubu:
                pi.op = Opcode::kAddiu;
                negate = true;
                break;
              case Opcode::kAnd:
                pi.op = Opcode::kAndi;
                break;
              case Opcode::kOr:
                pi.op = Opcode::kOri;
                break;
              case Opcode::kXor:
                pi.op = Opcode::kXori;
                break;
              case Opcode::kSlt:
                pi.op = Opcode::kSlti;
                break;
              case Opcode::kSltu:
                pi.op = Opcode::kSltiu;
                break;
              case Opcode::kMul:
              case Opcode::kDiv:
              case Opcode::kRem:
              case Opcode::kNor: {
                // No immediate form: load into $at first.
                emitLoadImm(isa::intReg(isa::kRegAt), e, TagBits{},
                            line_no);
                pi.rt = isa::intReg(isa::kRegAt);
                finish();
                return;
              }
              default:
                err(line_no, std::string(info.mnemonic) +
                                 " needs a register operand");
            }
            if (negate) {
                if (e.hasSymbol)
                    err(line_no, "sub with symbolic immediate");
                e.addend = -e.addend;
            }
            pi.expr = e;
            pi.role = ImmRole::kImm;
            finish();
            return;
        }
        pi.rt = needReg(toks, pos, line_no);
        finish();
        return;
      case Format::kR2:
        pi.rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.rs = needReg(toks, pos, line_no);
        finish();
        return;
      case Format::kRI:
        pi.rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kImm;
        finish();
        return;
      case Format::kSh:
        pi.rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kShamt;
        finish();
        return;
      case Format::kLui:
        pi.rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kImm;
        finish();
        return;
      case Format::kLS: {
        RegIndex data = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        bool is_load = info.cls == InstClass::kLoad;
        if (is_load)
            pi.rd = data;
        else
            pi.rt = data;
        // Forms: expr(base) | (base) | expr  (absolute; expands).
        Expr off = Expr::literal(0);
        bool have_expr = false;
        if (!atEnd(toks, pos) && toks[pos].kind != TokKind::kLParen) {
            off = parseExpr(toks, pos, line_no);
            have_expr = true;
        }
        if (!atEnd(toks, pos) && toks[pos].kind == TokKind::kLParen) {
            ++pos;
            pi.rs = needReg(toks, pos, line_no);
            if (atEnd(toks, pos) || toks[pos].kind != TokKind::kRParen)
                err(line_no, "expected ')'");
            ++pos;
            pi.expr = off;
            pi.role = ImmRole::kImm;
            finish();
            return;
        }
        if (!have_expr)
            err(line_no, "expected address operand");
        // Absolute form: lui $at, %hiadj; op data, %lo($at).
        ProtoInst hi;
        hi.op = Opcode::kLui;
        hi.rd = isa::intReg(isa::kRegAt);
        hi.expr = off;
        hi.role = ImmRole::kHiAdj16;
        emit(hi, line_no);
        pi.rs = isa::intReg(isa::kRegAt);
        pi.expr = off;
        pi.role = ImmRole::kLoSigned16;
        finish();
        return;
      }
      case Format::kBr2:
        pi.rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.rt = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kBranch;
        finish();
        return;
      case Format::kBr1:
        pi.rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kBranch;
        finish();
        return;
      case Format::kJ:
        pi.expr = parseExpr(toks, pos, line_no);
        pi.role = ImmRole::kJump;
        if (op == Opcode::kJal)
            pi.rd = isa::intReg(isa::kRegRa);
        finish();
        return;
      case Format::kJr:
        pi.rs = needReg(toks, pos, line_no);
        finish();
        return;
      case Format::kJalr:
        pi.rd = needReg(toks, pos, line_no);
        if (!atEnd(toks, pos)) {
            needComma(toks, pos, line_no);
            pi.rs = needReg(toks, pos, line_no);
        } else {
            // One-operand form: jalr rs (link in $ra).
            pi.rs = pi.rd;
            pi.rd = isa::intReg(isa::kRegRa);
        }
        finish();
        return;
      case Format::kRel: {
        // Gather the full register list, then split in pairs.
        std::vector<RegIndex> regs;
        regs.push_back(needReg(toks, pos, line_no));
        while (!atEnd(toks, pos)) {
            needComma(toks, pos, line_no);
            regs.push_back(needReg(toks, pos, line_no));
        }
        for (size_t i = 0; i < regs.size(); i += 2) {
            ProtoInst r;
            r.op = Opcode::kRelease;
            r.rs = regs[i];
            r.rel2 = i + 1 < regs.size() ? regs[i + 1] : kNoReg;
            if (i + 2 >= regs.size())
                r.tags = tags;
            emit(r, line_no);
        }
        return;
      }
      case Format::kNone:
        finish();
        return;
    }
    panic("parseRealInstruction: bad format");
}

bool
Assembler::parsePseudo(const std::string &mnemonic,
                       const std::vector<Token> &toks, size_t pos,
                       TagBits tags, int line_no)
{
    const RegIndex at = isa::intReg(isa::kRegAt);
    const RegIndex zero = isa::intReg(isa::kRegZero);

    auto finish_check = [&] {
        if (!atEnd(toks, pos))
            err(line_no, "trailing operands");
    };

    if (mnemonic == "li" || mnemonic == "la") {
        RegIndex rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        Expr e = parseExpr(toks, pos, line_no);
        finish_check();
        if (mnemonic == "la" && !e.hasSymbol)
            err(line_no, "la needs a symbolic address");
        emitLoadImm(rd, e, tags, line_no);
        return true;
    }

    if (mnemonic == "move") {
        RegIndex rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        RegIndex rs = needReg(toks, pos, line_no);
        finish_check();
        ProtoInst pi;
        pi.op = Opcode::kAddu;
        pi.rd = rd;
        pi.rs = rs;
        pi.rt = zero;
        pi.tags = tags;
        emit(pi, line_no);
        return true;
    }

    if (mnemonic == "neg" || mnemonic == "not") {
        RegIndex rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        RegIndex rs = needReg(toks, pos, line_no);
        finish_check();
        ProtoInst pi;
        if (mnemonic == "neg") {
            pi.op = Opcode::kSubu;
            pi.rd = rd;
            pi.rs = zero;
            pi.rt = rs;
        } else {
            pi.op = Opcode::kNor;
            pi.rd = rd;
            pi.rs = rs;
            pi.rt = zero;
        }
        pi.tags = tags;
        emit(pi, line_no);
        return true;
    }

    if (mnemonic == "subi") {
        RegIndex rd = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        RegIndex rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        Expr e = parseExpr(toks, pos, line_no);
        finish_check();
        if (e.hasSymbol)
            err(line_no, "subi needs a literal immediate");
        e.addend = -e.addend;
        ProtoInst pi;
        pi.op = Opcode::kAddiu;
        pi.rd = rd;
        pi.rs = rs;
        pi.expr = e;
        pi.role = ImmRole::kImm;
        pi.tags = tags;
        emit(pi, line_no);
        return true;
    }

    if (mnemonic == "b") {
        Expr e = parseExpr(toks, pos, line_no);
        finish_check();
        ProtoInst pi;
        pi.op = Opcode::kBeq;
        pi.rs = zero;
        pi.rt = zero;
        pi.expr = e;
        pi.role = ImmRole::kBranch;
        pi.tags = tags;
        emit(pi, line_no);
        return true;
    }

    if (mnemonic == "beqz" || mnemonic == "bnez") {
        RegIndex rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        Expr e = parseExpr(toks, pos, line_no);
        finish_check();
        ProtoInst pi;
        pi.op = mnemonic == "beqz" ? Opcode::kBeq : Opcode::kBne;
        pi.rs = rs;
        pi.rt = zero;
        pi.expr = e;
        pi.role = ImmRole::kBranch;
        pi.tags = tags;
        emit(pi, line_no);
        return true;
    }

    if (mnemonic == "bgt" || mnemonic == "blt" || mnemonic == "bge" ||
        mnemonic == "ble") {
        RegIndex rs = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        RegIndex rt = needReg(toks, pos, line_no);
        needComma(toks, pos, line_no);
        Expr e = parseExpr(toks, pos, line_no);
        finish_check();
        ProtoInst cmp;
        cmp.op = Opcode::kSlt;
        cmp.rd = at;
        // bgt: rs > rt  <=> rt < rs   -> slt at, rt, rs; bne
        // blt: rs < rt               -> slt at, rs, rt; bne
        // bge: rs >= rt <=> !(rs<rt) -> slt at, rs, rt; beq
        // ble: rs <= rt <=> !(rt<rs) -> slt at, rt, rs; beq
        bool swap = mnemonic == "bgt" || mnemonic == "ble";
        cmp.rs = swap ? rt : rs;
        cmp.rt = swap ? rs : rt;
        emit(cmp, line_no);
        ProtoInst br;
        br.op = (mnemonic == "bgt" || mnemonic == "blt") ? Opcode::kBne
                                                         : Opcode::kBeq;
        br.rs = at;
        br.rt = zero;
        br.expr = e;
        br.role = ImmRole::kBranch;
        br.tags = tags;
        emit(br, line_no);
        return true;
    }

    return false;
}

void
Assembler::handleDirective(const std::vector<Token> &toks, int line_no)
{
    const std::string &d = toks[0].text;
    size_t pos = 1;

    auto need_ident = [&]() -> std::string {
        if (atEnd(toks, pos) || toks[pos].kind != TokKind::kIdent)
            err(line_no, d + " expects an identifier");
        return toks[pos++].text;
    };

    if (d == ".text") {
        section_ = Section::kText;
        return;
    }
    if (d == ".data") {
        section_ = Section::kData;
        return;
    }
    if (d == ".global" || d == ".globl") {
        need_ident();
        return;  // informational only
    }
    if (d == ".entry") {
        entryLabel_ = need_ident();
        return;
    }

    if (d == ".task") {
        if (!opts_.multiscalar) {
            inTask_ = true;  // still must consume until .endtask
            return;
        }
        fatalIf(inTask_, opts_.fileName, ":", line_no, ": nested .task");
        TaskDecl td;
        td.label = need_ident();
        td.lineNo = line_no;
        tasks_.push_back(std::move(td));
        inTask_ = true;
        return;
    }
    if (d == ".endtask") {
        fatalIf(!inTask_, opts_.fileName, ":", line_no,
                ": .endtask without .task");
        inTask_ = false;
        return;
    }
    if (d == ".targets") {
        if (!opts_.multiscalar)
            return;
        fatalIf(!inTask_, opts_.fileName, ":", line_no,
                ": .targets outside .task");
        TaskDecl &td = tasks_.back();
        bool first = true;
        while (!atEnd(toks, pos)) {
            if (!first)
                needComma(toks, pos, line_no);
            first = false;
            TargetDecl t;
            t.lineNo = line_no;
            std::string name = need_ident();
            if (name == "ret") {
                t.spec = TargetSpec::kReturn;
            } else {
                t.label = name;
                if (!atEnd(toks, pos) &&
                    toks[pos].kind == TokKind::kColon) {
                    ++pos;
                    std::string spec = need_ident();
                    if (spec == "loop") {
                        t.spec = TargetSpec::kLoop;
                    } else if (spec == "call") {
                        t.spec = TargetSpec::kCall;
                        if (atEnd(toks, pos) ||
                            toks[pos].kind != TokKind::kColon)
                            err(line_no, "call target needs :RETLABEL");
                        ++pos;
                        t.retLabel = need_ident();
                    } else if (spec == "norm") {
                        t.spec = TargetSpec::kNormal;
                    } else {
                        err(line_no, "bad target spec '" + spec + "'");
                    }
                }
            }
            td.targets.push_back(std::move(t));
        }
        fatalIf(td.targets.size() > kMaxTaskTargets,
                opts_.fileName, ":", line_no, ": more than ",
                kMaxTaskTargets, " task targets");
        return;
    }
    if (d == ".create") {
        if (!opts_.multiscalar)
            return;
        fatalIf(!inTask_, opts_.fileName, ":", line_no,
                ": .create outside .task");
        TaskDecl &td = tasks_.back();
        bool first = true;
        while (!atEnd(toks, pos)) {
            if (!first)
                needComma(toks, pos, line_no);
            first = false;
            if (toks[pos].kind != TokKind::kReg)
                err(line_no, ".create expects registers");
            td.createMask.set(toks[pos++].reg);
        }
        return;
    }

    // Data directives below.
    fatalIf(section_ != Section::kData && d != ".org" && d != ".align" &&
                d != ".space",
            opts_.fileName, ":", line_no, ": ", d, " outside .data");

    if (d == ".org") {
        Expr e = parseExpr(toks, pos, line_no);
        fatalIf(e.hasSymbol, opts_.fileName, ":", line_no,
                ": .org needs a literal");
        Addr target = Addr(e.addend);
        if (section_ == Section::kData) {
            fatalIf(target < kDataBase + dataImage_.size(),
                    opts_.fileName, ":", line_no, ": .org moves backwards");
            dataImage_.resize(target - kDataBase, 0);
        } else {
            fatalIf(target < textLc_, opts_.fileName, ":", line_no,
                    ": .org moves backwards");
            while (textLc_ < target) {
                ProtoInst pi;
                pi.op = Opcode::kNop;
                emit(pi, line_no);
            }
        }
        return;
    }
    if (d == ".align") {
        Expr e = parseExpr(toks, pos, line_no);
        fatalIf(e.hasSymbol || e.addend < 0 || e.addend > 12,
                opts_.fileName, ":", line_no, ": bad .align");
        if (section_ == Section::kData)
            alignData(1u << e.addend);
        return;
    }
    if (d == ".space") {
        Expr e = parseExpr(toks, pos, line_no);
        fatalIf(e.hasSymbol || e.addend < 0,
                opts_.fileName, ":", line_no, ": bad .space");
        if (section_ == Section::kData)
            dataImage_.insert(dataImage_.end(), size_t(e.addend), 0);
        return;
    }
    if (d == ".word" || d == ".half" || d == ".byte") {
        // No implicit alignment: a label bound before this directive
        // must name the data, so use .align explicitly when needed.
        unsigned size = d == ".word" ? 4 : d == ".half" ? 2 : 1;
        bool first = true;
        while (!atEnd(toks, pos)) {
            if (!first)
                needComma(toks, pos, line_no);
            first = false;
            Expr e = parseExpr(toks, pos, line_no);
            if (e.hasSymbol) {
                dataFixups_.push_back(
                    {dataImage_.size(), size, e, line_no});
                std::uint32_t zero32 = 0;
                dataBytes(&zero32, size);
            } else {
                std::uint32_t v = std::uint32_t(e.addend);
                dataBytes(&v, size);
            }
        }
        return;
    }
    if (d == ".double" || d == ".float") {
        unsigned size = d == ".double" ? 8 : 4;
        bool first = true;
        while (!atEnd(toks, pos)) {
            if (!first)
                needComma(toks, pos, line_no);
            first = false;
            bool neg = false;
            if (toks[pos].kind == TokKind::kMinus) {
                neg = true;
                ++pos;
            }
            if (atEnd(toks, pos) || toks[pos].kind != TokKind::kNumber)
                err(line_no, d + " expects numbers");
            double v = parseFloat(toks[pos++], line_no, opts_.fileName);
            if (neg)
                v = -v;
            if (size == 8) {
                dataBytes(&v, 8);
            } else {
                float f = float(v);
                dataBytes(&f, 4);
            }
        }
        return;
    }
    if (d == ".asciiz" || d == ".ascii") {
        if (atEnd(toks, pos) || toks[pos].kind != TokKind::kString)
            err(line_no, d + " expects a string");
        const std::string &s = toks[pos++].text;
        dataBytes(s.data(), s.size());
        if (d == ".asciiz")
            dataImage_.push_back(0);
        return;
    }

    err(line_no, "unknown directive '" + d + "'");
}

void
Assembler::passOne()
{
    std::istringstream in(source_);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto toks = tokenizeLine(line, line_no, opts_.fileName);
        if (toks.empty())
            continue;
        if (!lineEnabled(toks, line_no))
            continue;
        if (toks.empty())
            continue;

        // Leading labels: IDENT ':'.
        while (toks.size() >= 2 && toks[0].kind == TokKind::kIdent &&
               toks[1].kind == TokKind::kColon) {
            handleLabel(toks[0].text, line_no);
            toks.erase(toks.begin(), toks.begin() + 2);
        }
        if (toks.empty())
            continue;

        if (toks[0].kind == TokKind::kDirective) {
            handleDirective(toks, line_no);
            continue;
        }
        if (toks[0].kind != TokKind::kIdent)
            err(line_no, "expected instruction or directive");

        // In scalar mode a .task body may contain directives we are
        // skipping, but instructions are always assembled.
        fatalIf(section_ != Section::kText, opts_.fileName, ":", line_no,
                ": instruction outside .text");
        TagBits tags = takeTags(toks, line_no);
        const std::string &mnemonic = toks[0].text;
        if (auto op = isa::parseMnemonic(mnemonic)) {
            parseRealInstruction(*op, toks, 1, tags, line_no);
        } else if (!parsePseudo(mnemonic, toks, 1, tags, line_no)) {
            err(line_no, "unknown instruction '" + mnemonic + "'");
        }
    }
    fatalIf(inTask_, opts_.fileName, ": unterminated .task block");
}

std::int64_t
Assembler::evalExpr(const Expr &e, int line_no) const
{
    if (!e.hasSymbol)
        return e.addend;
    auto it = symbols_.find(e.symbol);
    if (it == symbols_.end())
        err(line_no, "undefined symbol '" + e.symbol + "'");
    return std::int64_t(it->second) + e.addend;
}

Addr
Assembler::labelAddr(const std::string &name, int line_no) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        err(line_no, "undefined label '" + name + "'");
    return it->second;
}

void
Assembler::passTwo(Program &prog)
{
    prog.textBase = kTextBase;
    prog.symbols = symbols_;
    prog.sourceName = opts_.fileName;

    // Finalize instructions.
    Addr pc = kTextBase;
    for (const ProtoInst &pi : protos_) {
        Instruction inst;
        inst.op = pi.op;
        inst.rd = pi.rd;
        inst.rs = pi.rs;
        inst.rt = pi.rt;
        inst.rel2 = pi.rel2;
        inst.tags = pi.tags;
        std::int64_t v = 0;
        if (pi.role != ImmRole::kNone)
            v = evalExpr(pi.expr, pi.lineNo);
        switch (pi.role) {
          case ImmRole::kNone:
            break;
          case ImmRole::kImm:
            inst.imm = std::int32_t(v);
            break;
          case ImmRole::kShamt:
            fatalIf(v < 0 || v > 31, opts_.fileName, ":", pi.lineNo,
                    ": shift amount out of range");
            inst.imm = std::int32_t(v);
            break;
          case ImmRole::kBranch:
          case ImmRole::kJump:
            inst.target = Addr(v);
            break;
          case ImmRole::kHi16:
            inst.imm = std::int32_t((std::uint64_t(v) >> 16) & 0xffff);
            break;
          case ImmRole::kLo16:
            inst.imm = std::int32_t(std::uint64_t(v) & 0xffff);
            break;
          case ImmRole::kHiAdj16:
            inst.imm = std::int32_t(
                ((std::uint64_t(v) + 0x8000) >> 16) & 0xffff);
            break;
          case ImmRole::kLoSigned16:
            inst.imm = std::int32_t(std::int16_t(std::uint64_t(v) &
                                                 0xffff));
            break;
        }
        // Encode (validates field ranges) and keep the binary image.
        Word word = isa::encode(inst, pc);
        prog.textBytes.push_back(std::uint8_t(word & 0xff));
        prog.textBytes.push_back(std::uint8_t((word >> 8) & 0xff));
        prog.textBytes.push_back(std::uint8_t((word >> 16) & 0xff));
        prog.textBytes.push_back(std::uint8_t((word >> 24) & 0xff));
        prog.code.push_back(inst);
        prog.lineNos.push_back(pi.lineNo);
        pc += kInstrBytes;
    }

    // Data fixups.
    for (const DataFixup &f : dataFixups_) {
        std::int64_t v = evalExpr(f.expr, f.lineNo);
        std::uint32_t u = std::uint32_t(v);
        std::memcpy(dataImage_.data() + f.offset, &u, f.size);
    }
    if (!dataImage_.empty())
        prog.data.push_back({kDataBase, std::move(dataImage_)});
    prog.heapStart =
        Addr((kDataBase + (prog.data.empty()
                               ? 0
                               : prog.data[0].bytes.size()) + 15) & ~15u);

    // Task descriptors.
    for (const TaskDecl &td : tasks_) {
        TaskDescriptor desc;
        desc.start = labelAddr(td.label, td.lineNo);
        fatalIf(desc.start < kTextBase || desc.start >= prog.textEnd(),
                opts_.fileName, ":", td.lineNo,
                ": task start is not in .text");
        desc.createMask = td.createMask;
        desc.lineNo = td.lineNo;
        for (const TargetDecl &t : td.targets) {
            TaskTarget tt;
            tt.spec = t.spec;
            if (t.spec != TargetSpec::kReturn)
                tt.addr = labelAddr(t.label, t.lineNo);
            if (t.spec == TargetSpec::kCall)
                tt.returnTo = labelAddr(t.retLabel, t.lineNo);
            desc.targets.push_back(tt);
        }
        fatalIf(prog.tasks.count(desc.start) > 0,
                opts_.fileName, ":", td.lineNo,
                ": duplicate task descriptor for '", td.label, "'");
        prog.tasks[desc.start] = std::move(desc);
    }

    // Entry point.
    if (!entryLabel_.empty()) {
        prog.entry = labelAddr(entryLabel_, 0);
    } else if (auto it = symbols_.find("main"); it != symbols_.end()) {
        prog.entry = it->second;
    } else {
        prog.entry = kTextBase;
    }
}

Program
Assembler::run()
{
    passOne();
    Program prog;
    passTwo(prog);
    return prog;
}

} // namespace

Program
assemble(const std::string &source, const AsmOptions &opts)
{
    Assembler assembler(source, opts);
    Program prog = assembler.run();
    if (opts.strict && opts.multiscalar) {
        const analysis::AnnotationVerifier verifier(prog);
        const analysis::AnalysisReport report = verifier.verify();
        fatalIf(report.hasErrors(),
                "strict annotation verification failed:\n",
                report.toText());
    }
    return prog;
}

} // namespace msim::assembler
