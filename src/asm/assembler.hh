/**
 * @file
 * The msim two-pass assembler.
 *
 * Accepts MIPS-flavored assembly extended with the multiscalar
 * annotations of paper section 2.2:
 *
 *  - task descriptors:
 *        .task LABEL
 *        .targets OUTER:loop, OUTERFALLOUT
 *        .create $4, $8, $17, $20, $23
 *        .endtask
 *    Target specs: plain (normal), ":loop", ":call:RETLABEL" (pushes
 *    RETLABEL on the return address stack), and the bare token "ret"
 *    (successor is popped from the return address stack).
 *
 *  - tag bits as instruction suffixes: !f (forward), !s (stop
 *    always), !st (stop if taken), !sn (stop if not taken).
 *
 *  - the "release r1[, r2]" instruction; longer register lists are
 *    split into multiple release instructions.
 *
 *  - conditional assembly: a line prefixed "@ms" is assembled only in
 *    multiscalar mode, "@sc" only in scalar mode, "@def(NAME)" /
 *    "@ndef(NAME)" only when NAME is (not) defined. This lets one
 *    workload source produce both the scalar and the multiscalar
 *    binary, reproducing the Table 2 instruction count deltas.
 *
 * Pseudo-instructions: li, la, move, b, beqz, bnez, bgt, blt, bge,
 * ble, neg, not, subi, and absolute-address loads/stores
 * ("lw $4, label"). Tags attach to the last instruction of an
 * expansion.
 */

#ifndef MSIM_ASM_ASSEMBLER_HH
#define MSIM_ASM_ASSEMBLER_HH

#include <set>
#include <string>

#include "program/program.hh"

namespace msim::assembler {

/** Assembly options. */
struct AsmOptions
{
    /** Assemble multiscalar annotations (false = scalar binary). */
    bool multiscalar = true;
    /** Symbols for @def()/@ndef() conditional lines. */
    std::set<std::string> defines;
    /** File name used in diagnostics. */
    std::string fileName = "<asm>";
    /**
     * Strict mode: after assembly, run the static annotation
     * verifier (src/analysis/) and throw FatalError when it reports
     * any error (stale-value mask holes, premature forwards,
     * uses of undefined values). Warnings pass. Only meaningful for
     * multiscalar programs; ignored when multiscalar is false.
     */
    bool strict = false;
};

/**
 * Assemble a complete program from source text.
 *
 * Throws FatalError with a file:line diagnostic on any error.
 */
Program assemble(const std::string &source, const AsmOptions &opts = {});

} // namespace msim::assembler

#endif // MSIM_ASM_ASSEMBLER_HH
