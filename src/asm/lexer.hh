/**
 * @file
 * Line lexer for msim assembly source.
 *
 * Assembly is line oriented. Each line is tokenized into labels,
 * mnemonics/directives, registers, numbers, strings, punctuation and
 * multiscalar tag annotations (!f, !s, !st, !sn). Comments start with
 * '#' and run to end of line. Lines may start with mode prefixes
 * (@ms, @sc, @def(NAME), @ndef(NAME)) which the assembler uses for
 * conditional assembly; the lexer surfaces them as kAt tokens.
 */

#ifndef MSIM_ASM_LEXER_HH
#define MSIM_ASM_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace msim::assembler {

/** Token kinds produced by the lexer. */
enum class TokKind : std::uint8_t {
    kIdent,      //!< identifier / mnemonic (may contain '.')
    kDirective,  //!< .word, .task, ... (leading '.')
    kReg,        //!< $n / $name / $fn
    kNumber,     //!< integer or float literal (raw text kept)
    kString,     //!< "..." (value has escapes resolved)
    kComma,
    kLParen,
    kRParen,
    kColon,
    kPlus,
    kMinus,
    kTag,        //!< !f / !s / !st / !sn
    kAt,         //!< @ms / @sc / @def(NAME) / @ndef(NAME)
};

/** One token. */
struct Token
{
    TokKind kind;
    /** Raw text (identifier name, number text, string value, ...). */
    std::string text;
    /** Unified register index for kReg tokens. */
    RegIndex reg = kNoReg;
    /** Column for diagnostics. */
    int column = 0;
};

/**
 * Tokenize one line of assembly.
 *
 * @param line The source line (no trailing newline required).
 * @param line_no 1-based line number, used in error messages.
 * @param file File name for error messages.
 * @return the token list (comments stripped).
 *
 * Throws FatalError on malformed input (bad register, unterminated
 * string, stray character).
 */
std::vector<Token> tokenizeLine(const std::string &line, int line_no,
                                const std::string &file);

/** Parse a kNumber token's text as a signed 64-bit integer. */
std::int64_t parseInt(const Token &tok, int line_no,
                      const std::string &file);

/** Parse a kNumber token's text as a double. */
double parseFloat(const Token &tok, int line_no, const std::string &file);

} // namespace msim::assembler

#endif // MSIM_ASM_LEXER_HH
