#include "asm/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace msim::assembler {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

[[noreturn]] void
lexError(const std::string &file, int line_no, int col,
         const std::string &msg)
{
    fatal(file, ":", line_no, ":", col + 1, ": ", msg);
}

} // namespace

std::vector<Token>
tokenizeLine(const std::string &line, int line_no, const std::string &file)
{
    std::vector<Token> toks;
    size_t i = 0;
    const size_t n = line.size();

    auto push = [&](TokKind kind, std::string text, int col) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.column = col;
        toks.push_back(std::move(t));
    };

    while (i < n) {
        char c = line[i];
        int col = int(i);
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#')
            break;  // comment

        if (c == '@') {
            // Mode prefix: @ms / @sc / @def(NAME) / @ndef(NAME).
            size_t j = i + 1;
            while (j < n && (isIdentChar(line[j]) || line[j] == '(' ||
                             line[j] == ')'))
                ++j;
            push(TokKind::kAt, line.substr(i, j - i), col);
            i = j;
            continue;
        }

        if (c == '!') {
            size_t j = i + 1;
            while (j < n && std::isalpha(static_cast<unsigned char>(line[j])))
                ++j;
            std::string tag = line.substr(i, j - i);
            if (tag != "!f" && tag != "!s" && tag != "!st" && tag != "!sn")
                lexError(file, line_no, col, "unknown tag '" + tag + "'");
            push(TokKind::kTag, tag, col);
            i = j;
            continue;
        }

        if (c == '$') {
            size_t j = i + 1;
            while (j < n && (std::isalnum(static_cast<unsigned char>(
                                 line[j])) ||
                             line[j] == '_'))
                ++j;
            std::string name = line.substr(i, j - i);
            auto reg = isa::parseRegName(name);
            if (!reg)
                lexError(file, line_no, col,
                         "bad register name '" + name + "'");
            Token t;
            t.kind = TokKind::kReg;
            t.text = name;
            t.reg = *reg;
            t.column = col;
            toks.push_back(std::move(t));
            i = j;
            continue;
        }

        if (c == '.') {
            // Directive (only if followed by a letter).
            if (i + 1 < n && isIdentStart(line[i + 1])) {
                size_t j = i + 1;
                while (j < n && isIdentChar(line[j]))
                    ++j;
                push(TokKind::kDirective, line.substr(i, j - i), col);
                i = j;
                continue;
            }
            lexError(file, line_no, col, "stray '.'");
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            // Number: integer (dec/hex) or float. Capture a maximal
            // run of number-ish characters.
            size_t j = i;
            bool hex = (c == '0' && i + 1 < n &&
                        (line[i + 1] == 'x' || line[i + 1] == 'X'));
            if (hex)
                j = i + 2;
            while (j < n) {
                char d = line[j];
                bool ok = std::isdigit(static_cast<unsigned char>(d));
                if (hex) {
                    ok = ok || std::isxdigit(static_cast<unsigned char>(d));
                } else {
                    ok = ok || d == '.' || d == 'e' || d == 'E';
                    if ((d == '+' || d == '-') && j > i &&
                        (line[j - 1] == 'e' || line[j - 1] == 'E'))
                        ok = true;
                }
                if (!ok)
                    break;
                ++j;
            }
            push(TokKind::kNumber, line.substr(i, j - i), col);
            i = j;
            continue;
        }

        if (c == '\'') {
            // Character literal -> number token with decimal text.
            size_t j = i + 1;
            if (j >= n)
                lexError(file, line_no, col, "unterminated char literal");
            char v = line[j];
            if (v == '\\') {
                ++j;
                if (j >= n)
                    lexError(file, line_no, col,
                             "unterminated char literal");
                switch (line[j]) {
                  case 'n': v = '\n'; break;
                  case 't': v = '\t'; break;
                  case '0': v = '\0'; break;
                  case '\\': v = '\\'; break;
                  case '\'': v = '\''; break;
                  default:
                    lexError(file, line_no, col, "bad escape");
                }
            }
            ++j;
            if (j >= n || line[j] != '\'')
                lexError(file, line_no, col, "unterminated char literal");
            push(TokKind::kNumber, std::to_string(int(v)), col);
            i = j + 1;
            continue;
        }

        if (c == '"') {
            std::string value;
            size_t j = i + 1;
            while (j < n && line[j] != '"') {
                char v = line[j];
                if (v == '\\') {
                    ++j;
                    if (j >= n)
                        break;
                    switch (line[j]) {
                      case 'n': v = '\n'; break;
                      case 't': v = '\t'; break;
                      case '0': v = '\0'; break;
                      case '\\': v = '\\'; break;
                      case '"': v = '"'; break;
                      default:
                        lexError(file, line_no, int(j), "bad escape");
                    }
                }
                value.push_back(v);
                ++j;
            }
            if (j >= n)
                lexError(file, line_no, col, "unterminated string");
            push(TokKind::kString, value, col);
            i = j + 1;
            continue;
        }

        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentChar(line[j]))
                ++j;
            push(TokKind::kIdent, line.substr(i, j - i), col);
            i = j;
            continue;
        }

        switch (c) {
          case ',':
            push(TokKind::kComma, ",", col);
            break;
          case '(':
            push(TokKind::kLParen, "(", col);
            break;
          case ')':
            push(TokKind::kRParen, ")", col);
            break;
          case ':':
            push(TokKind::kColon, ":", col);
            break;
          case '+':
            push(TokKind::kPlus, "+", col);
            break;
          case '-':
            push(TokKind::kMinus, "-", col);
            break;
          default:
            lexError(file, line_no, col,
                     std::string("stray character '") + c + "'");
        }
        ++i;
    }
    return toks;
}

std::int64_t
parseInt(const Token &tok, int line_no, const std::string &file)
{
    fatalIf(tok.kind != TokKind::kNumber,
            file, ":", line_no, ": expected integer, got '", tok.text, "'");
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(tok.text.c_str(), &end, 0);
    fatalIf(end == tok.text.c_str() || *end != '\0' || errno != 0,
            file, ":", line_no, ": bad integer '", tok.text, "'");
    return v;
}

double
parseFloat(const Token &tok, int line_no, const std::string &file)
{
    fatalIf(tok.kind != TokKind::kNumber,
            file, ":", line_no, ": expected float, got '", tok.text, "'");
    char *end = nullptr;
    double v = std::strtod(tok.text.c_str(), &end);
    fatalIf(end == tok.text.c_str() || *end != '\0',
            file, ":", line_no, ": bad float '", tok.text, "'");
    return v;
}

} // namespace msim::assembler
