/**
 * @file
 * Functional backing store: a sparse, paged, little-endian memory.
 *
 * Timing is modeled separately (MemoryBus, Cache); MainMemory only
 * holds values. Reads of never-written locations return zero, which
 * gives deterministic runs.
 */

#ifndef MSIM_MEM_MAIN_MEMORY_HH
#define MSIM_MEM_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace msim {

class Program;

/** Sparse functional memory. */
class MainMemory
{
  public:
    /** Read @p size bytes (1-8) starting at @p addr, little endian. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes (1-8) of @p value at @p addr. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Bulk copy into memory. */
    void writeBytes(Addr addr, const std::uint8_t *data, size_t n);

    /** Bulk copy out of memory. */
    void readBytes(Addr addr, std::uint8_t *data, size_t n) const;

    /** Read a NUL-terminated string (bounded at 64 KiB). */
    std::string readString(Addr addr) const;

    /** Load a program image (text bytes + data segments). */
    void loadProgram(const Program &prog);

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr size_t kPageBytes = size_t(1) << kPageShift;

    using Page = std::array<std::uint8_t, kPageBytes>;

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    Page &pageFor(Addr addr);
    const Page *pageIfPresent(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace msim

#endif // MSIM_MEM_MAIN_MEMORY_HH
