/**
 * @file
 * The shared, unified L2 cache between the L1s and the memory bus.
 *
 * Like every cache in the simulator this is a call-time timing model:
 * it holds tags, not data, and an access returns the cycle the block
 * is available. The L2 is banked (block-interleaved, one new access
 * per bank per cycle), set-associative with true LRU, write-back with
 * dirty eviction, and non-blocking: each bank owns a small file of
 * MSHRs tracking in-flight fills. A primary miss allocates an MSHR
 * and fetches the block over the bus; a secondary miss to a block
 * already in flight merges with the outstanding MSHR and waits for
 * the same fill; when a bank's MSHRs are all busy the access stalls
 * until the earliest fill retires its MSHR.
 *
 * Three inclusion policies are modeled (paper-era hierarchies used
 * all three; see DESIGN.md):
 *   - inclusive: every L1 line is also an L2 line. L2 fills allocate;
 *     evicting an L2 line back-invalidates the L1 copies (a dirty L1
 *     copy folds into the victim writeback).
 *   - exclusive: a block lives in the L1s or the L2, never both. An
 *     L2 read hit hands the block up and invalidates it; fills on L2
 *     misses bypass allocation; L1 victims (clean or dirty) are
 *     allocated on the way down (victim caching).
 *   - nine (non-inclusive non-exclusive): fills allocate, evictions
 *     do not touch the L1s; no invariant is maintained.
 */

#ifndef MSIM_MEM_L2_CACHE_HH
#define MSIM_MEM_L2_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/mem_level.hh"
#include "trace/tracer.hh"

namespace msim {

/** How the L2 relates to the L1 contents above it. */
enum class L2Inclusion
{
    kInclusive,
    kExclusive,
    kNine,
};

/** Geometry and policy of the shared L2 (msim-shape-v1 "l2" block). */
struct L2Params
{
    std::size_t sizeBytes = 256 * 1024;
    unsigned assoc = 8;
    std::size_t blockBytes = 64;
    unsigned hitLatency = 6;
    unsigned numBanks = 4;
    unsigned mshrsPerBank = 8;
    L2Inclusion inclusion = L2Inclusion::kNine;
};

/** The shared L2 timing model (sits behind the MemLevel seam). */
class L2Cache : public MemLevel
{
  public:
    /**
     * Upstream back-invalidation hook (inclusive policy): invalidate
     * every L1 copy of the block at global address @p addr and
     * return true when any copy was dirty. Registered by the
     * processor after the L1s exist.
     */
    using BackInvalidate = std::function<bool(Addr addr)>;

    L2Cache(StatGroup &stats, MemoryBus &bus, const L2Params &params,
            Tracer *tracer = nullptr);

    /** Install the inclusive-policy back-invalidation hook. */
    void
    setBackInvalidate(BackInvalidate fn)
    {
        backInvalidate_ = std::move(fn);
    }

    // --- MemLevel -----------------------------------------------------
    Cycle fetchBlock(Cycle now, Addr addr, unsigned words) override;
    Cycle writebackBlock(Cycle now, Addr addr, unsigned words) override;
    void cleanEviction(Cycle now, Addr addr, unsigned words) override;
    Cycle nextEventCycle(Cycle now) const override;

    // --- debug / test accessors --------------------------------------
    /** @return true when the block at @p addr is present. */
    bool probe(Addr addr) const;
    /** @return true when the block at @p addr is present and dirty. */
    bool probeDirty(Addr addr) const;
    /** @return the number of valid lines (all banks). */
    std::size_t validLines() const;

    unsigned hitLatency() const { return params_.hitLatency; }
    const L2Params &params() const { return params_; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;        //!< bank-local block number
        Addr memBlock = 0;   //!< global block number
        std::uint64_t lru = 0;
    };

    /** An in-flight fill occupying an MSHR. */
    struct Mshr
    {
        Addr memBlock = 0;
        Cycle readyAt = 0;
    };

    struct Bank
    {
        std::vector<Way> ways;    //!< sets * assoc
        std::vector<Mshr> mshrs;
        Cycle busyUntil = 0;
    };

    unsigned bankOf(Addr block) const { return unsigned(block) % params_.numBanks; }
    /** Grant the bank to an access (1/cycle pipelining). */
    Cycle grantBank(Bank &bank, Cycle now);
    Way *lookup(Bank &bank, Addr local_block);
    const Way *lookup(const Bank &bank, Addr local_block) const;
    /** Merge with an in-flight fill of @p mem_block, if any. */
    const Mshr *findMshr(const Bank &bank, Addr mem_block) const;
    /**
     * Claim an MSHR for a primary miss granted at @p grant; when the
     * bank's file is full, stall until the earliest in-flight fill
     * frees its entry. @return the (possibly delayed) start cycle.
     */
    Cycle allocMshr(Bank &bank, Cycle grant);
    /**
     * Pick and evict a victim way in @p set (invalid first, else
     * LRU). Dirty victims (or inclusive victims with a dirty L1
     * copy) write back over the bus first. @return the cycle the
     * frame is free, and the victim way via @p way_out.
     */
    Cycle evictFor(Bank &bank, std::size_t set, Cycle start,
                   Way **way_out);
    void install(Way &way, Addr local_block, Addr mem_block,
                 bool dirty);

    StatGroup &stats_;
    MemoryBus &bus_;
    L2Params params_;
    Tracer *tracer_ = nullptr;
    BackInvalidate backInvalidate_;
    std::vector<Bank> banks_;
    std::size_t setsPerBank_ = 0;
    std::uint64_t lruClock_ = 0;
};

} // namespace msim

#endif // MSIM_MEM_L2_CACHE_HH
