/**
 * @file
 * The single split-transaction memory bus shared by all caches.
 *
 * Paper section 5.1: "All memory requests are handled by a single
 * 4-word split transaction memory bus. Each memory access requires a
 * 10 cycle access latency for the first 4 words and 1 cycle for each
 * additional 4 words." Requests are serviced in arrival order; a
 * request arriving while the bus is busy queues behind it ("plus any
 * bus contention" in the cache miss penalty).
 */

#ifndef MSIM_MEM_BUS_HH
#define MSIM_MEM_BUS_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/tracer.hh"

namespace msim {

/** Timing model of the shared memory bus. */
class MemoryBus
{
  public:
    struct Params
    {
        unsigned firstBeatLatency = 10;  //!< cycles for the first 4 words
        unsigned extraBeatLatency = 1;   //!< per additional 4 words
        unsigned beatWords = 4;          //!< words per beat
    };

    explicit MemoryBus(StatGroup &stats) : MemoryBus(stats, Params{}) {}

    MemoryBus(StatGroup &stats, const Params &params,
              Tracer *tracer = nullptr)
        : stats_(stats), params_(params), tracer_(tracer)
    {
    }

    /**
     * Request a transfer of @p words 32-bit words starting no earlier
     * than cycle @p now.
     *
     * @return the cycle at which the data is available.
     */
    Cycle
    request(Cycle now, unsigned words)
    {
        unsigned beats = (words + params_.beatWords - 1) /
                         params_.beatWords;
        if (beats == 0)
            beats = 1;
        Cycle start = now > busFreeAt_ ? now : busFreeAt_;
        Cycle service = params_.firstBeatLatency +
                        (beats - 1) * params_.extraBeatLatency;
        Cycle done = start + service;
        stats_.add("requests");
        stats_.add("words", words);
        stats_.add("busyCycles", service);
        if (start > now)
            stats_.add("contentionCycles", start - now);
        busFreeAt_ = done;
        if (tracer_ && tracer_->wants(TraceCat::kBus)) {
            tracer_->complete(TraceCat::kBus, "xfer", start, service,
                              kTidBus, "words", words);
        }
        return done;
    }

    /** @return the cycle at which the bus next becomes free. */
    Cycle freeAt() const { return busFreeAt_; }

    /** Reset the timing state (not the statistics). */
    void reset() { busFreeAt_ = 0; }

  private:
    StatGroup &stats_;
    Params params_;
    Tracer *tracer_;
    Cycle busFreeAt_ = 0;
};

} // namespace msim

#endif // MSIM_MEM_BUS_HH
