/**
 * @file
 * The interface between an L1 cache and whatever sits below it.
 *
 * The memory system is a stack of call-time timing models: an L1
 * miss asks the next level for a block and gets back the cycle the
 * data arrives. Historically the next level was always the MemoryBus;
 * the optional shared L2 (src/mem/l2_cache.hh) slots in behind the
 * same interface. BusMemLevel is the degenerate adapter that turns
 * the interface calls into the exact MemoryBus::request sequence the
 * L1s issued before the L2 existed, so an L2-disabled machine is
 * bit-identical to the historical one.
 */

#ifndef MSIM_MEM_MEM_LEVEL_HH
#define MSIM_MEM_MEM_LEVEL_HH

#include "common/types.hh"
#include "mem/bus.hh"

namespace msim {

/** Downstream side of an L1 cache: the L2 or the raw memory bus. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Fetch the block containing @p addr (an L1 miss).
     *
     * @param now Cycle the request leaves the L1.
     * @param addr Global (memory) byte address of the access.
     * @param words Transfer size in 32-bit words (the L1 block).
     * @return the cycle the block arrives at the L1.
     */
    virtual Cycle fetchBlock(Cycle now, Addr addr, unsigned words) = 0;

    /**
     * Write back a dirty L1 victim block.
     *
     * @param now Cycle the writeback leaves the L1.
     * @param addr Global byte address of the victim block.
     * @param words Transfer size in 32-bit words.
     * @return the cycle the transfer completes (the L1 serializes a
     *         dirty writeback before the demand fetch, as before).
     */
    virtual Cycle writebackBlock(Cycle now, Addr addr,
                                 unsigned words) = 0;

    /**
     * Notify that a *clean* L1 victim was dropped. Timing-free for
     * the L1; an exclusive L2 allocates the block (victim caching),
     * every other configuration ignores it.
     */
    virtual void cleanEviction(Cycle now, Addr addr, unsigned words)
    {
        (void)now;
        (void)addr;
        (void)words;
    }

    /**
     * The earliest cycle strictly after @p now at which this level
     * has a scheduled completion (an in-flight MSHR fill), or
     * kCycleNever. Side-effect free; feeds fast-forward quiescence.
     */
    virtual Cycle
    nextEventCycle(Cycle now) const
    {
        (void)now;
        return kCycleNever;
    }
};

/**
 * The no-L2 adapter: forwards fetches and writebacks straight to the
 * shared memory bus with the same call order and arguments the L1s
 * used before the MemLevel seam existed (bit-identical timing).
 */
class BusMemLevel : public MemLevel
{
  public:
    explicit BusMemLevel(MemoryBus &bus) : bus_(bus) {}

    Cycle
    fetchBlock(Cycle now, Addr, unsigned words) override
    {
        return bus_.request(now, words);
    }

    Cycle
    writebackBlock(Cycle now, Addr, unsigned words) override
    {
        return bus_.request(now, words);
    }

  private:
    MemoryBus &bus_;
};

} // namespace msim

#endif // MSIM_MEM_MEM_LEVEL_HH
