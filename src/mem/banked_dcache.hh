/**
 * @file
 * The banked data cache behind the crossbar (paper Figure 1).
 *
 * A multiscalar processor with N units has 2N interleaved data banks,
 * each an 8 KB direct-mapped cache with 64-byte blocks. A crossbar
 * connects units to banks; each bank accepts one new access per cycle
 * and conflicting accesses queue (oldest first). Hits take 2 cycles
 * in multiscalar configurations and 1 cycle in the scalar baseline.
 * Misses go to the next memory level — the shared bus, or the shared
 * L2 when one is configured.
 */

#ifndef MSIM_MEM_BANKED_DCACHE_HH
#define MSIM_MEM_BANKED_DCACHE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace msim {

/** Crossbar-connected, interleaved data cache banks. */
class BankedDataCache
{
  public:
    struct Params
    {
        unsigned numBanks = 8;
        size_t bankSizeBytes = 8 * 1024;
        size_t blockBytes = 64;
        unsigned hitLatency = 2;
    };

    BankedDataCache(StatRegistry &stats, MemLevel &next,
                    const Params &params, Tracer *tracer = nullptr)
        : params_(params), bankBusyUntil_(params.numBanks, 0),
          tracer_(tracer)
    {
        init(stats, next);
    }

    /** Convenience: banks wired straight to the memory bus. */
    BankedDataCache(StatRegistry &stats, MemoryBus &bus,
                    const Params &params, Tracer *tracer = nullptr)
        : ownedNext_(std::make_unique<BusMemLevel>(bus)),
          params_(params), bankBusyUntil_(params.numBanks, 0),
          tracer_(tracer)
    {
        init(stats, *ownedNext_);
    }

    /** @return the bank index an address maps to (block interleave). */
    unsigned
    bankOf(Addr addr) const
    {
        return unsigned(addr / Addr(params_.blockBytes)) %
               params_.numBanks;
    }

    /**
     * Access the data cache through the crossbar.
     *
     * @param now Cycle the access is presented to the crossbar.
     * @param addr Byte address.
     * @param write True for stores.
     * @return the cycle the access completes.
     */
    Cycle
    access(Cycle now, Addr addr, bool write)
    {
        const unsigned bank = bankOf(addr);
        Cycle grant = now;
        if (bankBusyUntil_[bank] > grant) {
            grant = bankBusyUntil_[bank];
            xbarStats_->add("conflictCycles", grant - now);
            if (tracer_ && tracer_->wants(TraceCat::kCache)) {
                tracer_->instant(TraceCat::kCache, "bank_conflict", now,
                                 kTidDcacheBase + bank, "wait",
                                 grant - now);
            }
        }
        // Banks are pipelined: they accept one access per cycle.
        bankBusyUntil_[bank] = grant + 1;
        xbarStats_->add("accesses");
        return banks_[bank]->access(grant, bankLocalAddr(addr), write,
                                    addr);
    }

    /**
     * Translate a global address into the bank's local address space:
     * with block interleaving, consecutive blocks of one bank are
     * numBanks blocks apart globally, so the bank indexes (and tags)
     * its own block sequence, using its full capacity.
     */
    Addr
    bankLocalAddr(Addr addr) const
    {
        const Addr block = addr / Addr(params_.blockBytes);
        const Addr offset = addr % Addr(params_.blockBytes);
        return (block / params_.numBanks) * Addr(params_.blockBytes) +
               offset;
    }

    /**
     * Drop the block at global address @p addr from its bank, if
     * present (L2 back-invalidation). @return true when dirty.
     */
    bool
    invalidateBlock(Addr addr)
    {
        return banks_[bankOf(addr)]->invalidateBlock(
            bankLocalAddr(addr));
    }

    /** Reset crossbar arbitration state (not tags or statistics). */
    void
    resetTiming()
    {
        std::fill(bankBusyUntil_.begin(), bankBusyUntil_.end(), 0);
    }

    unsigned numBanks() const { return params_.numBanks; }
    unsigned hitLatency() const { return params_.hitLatency; }

  private:
    void
    init(StatRegistry &stats, MemLevel &next)
    {
        fatalIf(params_.numBanks == 0, "need at least one data bank");
        for (unsigned b = 0; b < params_.numBanks; ++b) {
            auto &group = stats.group("dcache" + std::to_string(b));
            banks_.push_back(std::make_unique<Cache>(
                group, next,
                Cache::Params{params_.bankSizeBytes,
                              params_.blockBytes,
                              params_.hitLatency},
                tracer_, kTidDcacheBase + b));
        }
        xbarStats_ = &stats.group("crossbar");
    }

    /** Only set by the MemoryBus convenience constructor. */
    std::unique_ptr<MemLevel> ownedNext_;
    Params params_;
    std::vector<std::unique_ptr<Cache>> banks_;
    std::vector<Cycle> bankBusyUntil_;
    StatGroup *xbarStats_;
    Tracer *tracer_ = nullptr;
};

} // namespace msim

#endif // MSIM_MEM_BANKED_DCACHE_HH
