/**
 * @file
 * A direct-mapped, write-back, write-allocate cache timing model.
 *
 * Used both as the 32 KB per-unit instruction cache and as the 8 KB
 * data cache banks (paper section 5.1). The cache holds no data; it
 * tracks tags and returns ready cycles. Misses fetch a full block
 * from the next memory level — the shared MemoryBus (10+3 cycles for
 * 64-byte blocks, plus any bus contention) or the optional shared L2
 * — and dirty victims write back first. Accesses are non-blocking: a
 * miss does not prevent later accesses from being timed (the
 * pipelines enforce their own ordering).
 *
 * The cache indexes by a *local* address (the banked data cache
 * compacts its interleaved slice; see BankedDataCache::bankLocalAddr)
 * but every line remembers the *global* block it holds so downstream
 * traffic — victim writebacks, L2 fills, back-invalidations — uses
 * real memory addresses.
 */

#ifndef MSIM_MEM_CACHE_HH
#define MSIM_MEM_CACHE_HH

#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "mem/mem_level.hh"
#include "trace/tracer.hh"

namespace msim {

/** Direct-mapped cache timing model. */
class Cache
{
  public:
    struct Params
    {
        size_t sizeBytes = 32 * 1024;
        size_t blockBytes = 64;
        unsigned hitLatency = 1;
    };

    Cache(StatGroup &stats, MemLevel &next, const Params &params,
          Tracer *tracer = nullptr, std::uint32_t trace_tid = 0)
        : stats_(stats), next_(&next), params_(params), tracer_(tracer),
          traceTid_(trace_tid)
    {
        checkGeometry();
    }

    /** Convenience: a cache wired straight to the memory bus. */
    Cache(StatGroup &stats, MemoryBus &bus, const Params &params,
          Tracer *tracer = nullptr, std::uint32_t trace_tid = 0)
        : ownedNext_(std::make_unique<BusMemLevel>(bus)),
          stats_(stats), next_(ownedNext_.get()), params_(params),
          tracer_(tracer), traceTid_(trace_tid)
    {
        checkGeometry();
    }

    /**
     * Access the cache.
     *
     * @param now Cycle the access starts.
     * @param addr Byte address in this cache's (local) address space.
     * @param write True for stores (marks the line dirty).
     * @param mem_addr Global memory byte address of the same access
     *        (defaults to @p addr when the spaces coincide).
     * @return the cycle the data is ready (hit: now + hitLatency).
     */
    Cycle
    access(Cycle now, Addr addr, bool write, Addr mem_addr)
    {
        const Addr block = addr / Addr(params_.blockBytes);
        const size_t index = size_t(block) & (numBlocks_ - 1);
        Line &line = lines_[index];

        if (line.valid && line.tag == block) {
            stats_.add(write ? "writeHits" : "readHits");
            if (write)
                line.dirty = true;
            return now + params_.hitLatency;
        }

        stats_.add(write ? "writeMisses" : "readMisses");
        if (tracer_ && tracer_->wants(TraceCat::kCache)) {
            tracer_->instant(TraceCat::kCache,
                             write ? "write_miss" : "read_miss", now,
                             traceTid_, "addr", addr);
        }
        const unsigned block_words = unsigned(params_.blockBytes / 4);
        const Addr victim_addr =
            line.memBlock * Addr(params_.blockBytes);
        Cycle start = now;
        if (line.valid && line.dirty) {
            stats_.add("writebacks");
            start = next_->writebackBlock(now, victim_addr,
                                          block_words);
        } else if (line.valid) {
            next_->cleanEviction(now, victim_addr, block_words);
        }
        Cycle ready = next_->fetchBlock(start, mem_addr, block_words) +
                      params_.hitLatency;
        line.valid = true;
        line.dirty = write;
        line.tag = block;
        line.memBlock = mem_addr / Addr(params_.blockBytes);
        return ready;
    }

    Cycle
    access(Cycle now, Addr addr, bool write)
    {
        return access(now, addr, write, addr);
    }

    /** @return true when @p addr currently hits. */
    bool
    probe(Addr addr) const
    {
        const Addr block = addr / Addr(params_.blockBytes);
        const Line &line = lines_[size_t(block) & (numBlocks_ - 1)];
        return line.valid && line.tag == block;
    }

    /**
     * Drop the line holding local address @p addr, if present
     * (L2 back-invalidation; timing model only, costs no cycles).
     *
     * @return true when the dropped line was dirty.
     */
    bool
    invalidateBlock(Addr addr)
    {
        const Addr block = addr / Addr(params_.blockBytes);
        Line &line = lines_[size_t(block) & (numBlocks_ - 1)];
        if (!line.valid || line.tag != block)
            return false;
        const bool dirty = line.dirty;
        line = Line{};
        return dirty;
    }

    /** Invalidate all lines (drops dirty data; timing model only). */
    void
    invalidateAll()
    {
        for (auto &line : lines_)
            line = Line{};
    }

    unsigned hitLatency() const { return params_.hitLatency; }
    size_t blockBytes() const { return params_.blockBytes; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;       //!< local block number
        Addr memBlock = 0;  //!< global block number held
    };

    void
    checkGeometry()
    {
        fatalIf(params_.sizeBytes == 0 || params_.blockBytes == 0 ||
                    params_.sizeBytes % params_.blockBytes != 0,
                "bad cache geometry");
        numBlocks_ = params_.sizeBytes / params_.blockBytes;
        fatalIf((numBlocks_ & (numBlocks_ - 1)) != 0 ||
                    (params_.blockBytes & (params_.blockBytes - 1)) != 0,
                "cache geometry must be a power of two");
        lines_.resize(numBlocks_);
    }

    /** Only set by the MemoryBus convenience constructor. */
    std::unique_ptr<MemLevel> ownedNext_;
    StatGroup &stats_;
    MemLevel *next_;
    Params params_;
    Tracer *tracer_ = nullptr;
    std::uint32_t traceTid_ = 0;
    size_t numBlocks_ = 0;
    std::vector<Line> lines_;
};

} // namespace msim

#endif // MSIM_MEM_CACHE_HH
