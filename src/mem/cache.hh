/**
 * @file
 * A direct-mapped, write-back, write-allocate cache timing model.
 *
 * Used both as the 32 KB per-unit instruction cache and as the 8 KB
 * data cache banks (paper section 5.1). The cache holds no data; it
 * tracks tags and returns ready cycles. Misses fetch a full block
 * over the shared MemoryBus (10+3 cycles for 64-byte blocks, plus any
 * bus contention); dirty victims write back first. Accesses are
 * non-blocking: a miss does not prevent later accesses from being
 * timed (the pipelines enforce their own ordering).
 */

#ifndef MSIM_MEM_CACHE_HH
#define MSIM_MEM_CACHE_HH

#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/bus.hh"
#include "trace/tracer.hh"

namespace msim {

/** Direct-mapped cache timing model. */
class Cache
{
  public:
    struct Params
    {
        size_t sizeBytes = 32 * 1024;
        size_t blockBytes = 64;
        unsigned hitLatency = 1;
    };

    Cache(StatGroup &stats, MemoryBus &bus, const Params &params,
          Tracer *tracer = nullptr, std::uint32_t trace_tid = 0)
        : stats_(stats), bus_(bus), params_(params), tracer_(tracer),
          traceTid_(trace_tid)
    {
        fatalIf(params.sizeBytes == 0 || params.blockBytes == 0 ||
                    params.sizeBytes % params.blockBytes != 0,
                "bad cache geometry");
        numBlocks_ = params.sizeBytes / params.blockBytes;
        fatalIf((numBlocks_ & (numBlocks_ - 1)) != 0 ||
                    (params.blockBytes & (params.blockBytes - 1)) != 0,
                "cache geometry must be a power of two");
        lines_.resize(numBlocks_);
    }

    /**
     * Access the cache.
     *
     * @param now Cycle the access starts.
     * @param addr Byte address.
     * @param write True for stores (marks the line dirty).
     * @return the cycle the data is ready (hit: now + hitLatency).
     */
    Cycle
    access(Cycle now, Addr addr, bool write)
    {
        const Addr block = addr / Addr(params_.blockBytes);
        const size_t index = size_t(block) & (numBlocks_ - 1);
        Line &line = lines_[index];

        if (line.valid && line.tag == block) {
            stats_.add(write ? "writeHits" : "readHits");
            if (write)
                line.dirty = true;
            return now + params_.hitLatency;
        }

        stats_.add(write ? "writeMisses" : "readMisses");
        if (tracer_ && tracer_->wants(TraceCat::kCache)) {
            tracer_->instant(TraceCat::kCache,
                             write ? "write_miss" : "read_miss", now,
                             traceTid_, "addr", addr);
        }
        const unsigned block_words = unsigned(params_.blockBytes / 4);
        Cycle start = now;
        if (line.valid && line.dirty) {
            stats_.add("writebacks");
            start = bus_.request(now, block_words);
        }
        Cycle ready = bus_.request(start, block_words) +
                      params_.hitLatency;
        line.valid = true;
        line.dirty = write;
        line.tag = block;
        return ready;
    }

    /** @return true when @p addr currently hits. */
    bool
    probe(Addr addr) const
    {
        const Addr block = addr / Addr(params_.blockBytes);
        const Line &line = lines_[size_t(block) & (numBlocks_ - 1)];
        return line.valid && line.tag == block;
    }

    /** Invalidate all lines (drops dirty data; timing model only). */
    void
    invalidateAll()
    {
        for (auto &line : lines_)
            line = Line{};
    }

    unsigned hitLatency() const { return params_.hitLatency; }
    size_t blockBytes() const { return params_.blockBytes; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
    };

    StatGroup &stats_;
    MemoryBus &bus_;
    Params params_;
    Tracer *tracer_ = nullptr;
    std::uint32_t traceTid_ = 0;
    size_t numBlocks_ = 0;
    std::vector<Line> lines_;
};

} // namespace msim

#endif // MSIM_MEM_CACHE_HH
