#include "mem/main_memory.hh"

#include "common/logging.hh"
#include "program/program.hh"

namespace msim {

MainMemory::Page &
MainMemory::pageFor(Addr addr)
{
    Addr key = addr >> kPageShift;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const MainMemory::Page *
MainMemory::pageIfPresent(Addr addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t
MainMemory::readByte(Addr addr) const
{
    const Page *page = pageIfPresent(addr);
    return page ? (*page)[addr & (kPageBytes - 1)] : 0;
}

void
MainMemory::writeByte(Addr addr, std::uint8_t value)
{
    pageFor(addr)[addr & (kPageBytes - 1)] = value;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    panicIf(size == 0 || size > 8, "MainMemory::read bad size ", size);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return value;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    panicIf(size == 0 || size > 8, "MainMemory::write bad size ", size);
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, std::uint8_t((value >> (8 * i)) & 0xff));
}

void
MainMemory::writeBytes(Addr addr, const std::uint8_t *data, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        writeByte(addr + Addr(i), data[i]);
}

void
MainMemory::readBytes(Addr addr, std::uint8_t *data, size_t n) const
{
    for (size_t i = 0; i < n; ++i)
        data[i] = readByte(addr + Addr(i));
}

std::string
MainMemory::readString(Addr addr) const
{
    std::string s;
    for (size_t i = 0; i < 65536; ++i) {
        char c = char(readByte(addr + Addr(i)));
        if (c == '\0')
            break;
        s.push_back(c);
    }
    return s;
}

void
MainMemory::loadProgram(const Program &prog)
{
    if (!prog.textBytes.empty())
        writeBytes(prog.textBase, prog.textBytes.data(),
                   prog.textBytes.size());
    for (const DataSegment &seg : prog.data) {
        if (!seg.bytes.empty())
            writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
    }
}

} // namespace msim
