#include "mem/l2_cache.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_event.hh"

namespace msim {

L2Cache::L2Cache(StatGroup &stats, MemoryBus &bus,
                 const L2Params &params, Tracer *tracer)
    : stats_(stats), bus_(bus), params_(params), tracer_(tracer)
{
    fatalIf(params.numBanks == 0, "L2 needs at least one bank");
    fatalIf(params.assoc == 0, "L2 needs at least one way");
    fatalIf(params.mshrsPerBank == 0, "L2 needs at least one MSHR");
    fatalIf(params.sizeBytes == 0 || params.blockBytes == 0 ||
                params.sizeBytes % params.numBanks != 0,
            "bad L2 geometry");
    const std::size_t bank_bytes = params.sizeBytes / params.numBanks;
    fatalIf(bank_bytes % (params.blockBytes * params.assoc) != 0,
            "L2 bank capacity must hold a whole number of sets");
    setsPerBank_ = bank_bytes / (params.blockBytes * params.assoc);
    fatalIf((setsPerBank_ & (setsPerBank_ - 1)) != 0 ||
                (params.blockBytes & (params.blockBytes - 1)) != 0,
            "L2 geometry must be a power of two");
    banks_.resize(params.numBanks);
    for (Bank &bank : banks_)
        bank.ways.resize(setsPerBank_ * params.assoc);
}

Cycle
L2Cache::grantBank(Bank &bank, Cycle now)
{
    Cycle grant = now;
    if (bank.busyUntil > grant) {
        stats_.add("bankConflictCycles", bank.busyUntil - grant);
        grant = bank.busyUntil;
    }
    bank.busyUntil = grant + 1;
    return grant;
}

L2Cache::Way *
L2Cache::lookup(Bank &bank, Addr local_block)
{
    const std::size_t set = std::size_t(local_block) & (setsPerBank_ - 1);
    Way *base = &bank.ways[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == local_block)
            return &base[w];
    }
    return nullptr;
}

const L2Cache::Way *
L2Cache::lookup(const Bank &bank, Addr local_block) const
{
    return const_cast<L2Cache *>(this)->lookup(
        const_cast<Bank &>(bank), local_block);
}

const L2Cache::Mshr *
L2Cache::findMshr(const Bank &bank, Addr mem_block) const
{
    for (const Mshr &m : bank.mshrs) {
        if (m.memBlock == mem_block)
            return &m;
    }
    return nullptr;
}

Cycle
L2Cache::allocMshr(Bank &bank, Cycle grant)
{
    auto retire = [&bank](Cycle now) {
        bank.mshrs.erase(
            std::remove_if(bank.mshrs.begin(), bank.mshrs.end(),
                           [now](const Mshr &m) {
                               return m.readyAt <= now;
                           }),
            bank.mshrs.end());
    };
    retire(grant);
    if (bank.mshrs.size() >= params_.mshrsPerBank) {
        // All MSHRs are busy: the access stalls at the bank until
        // the earliest in-flight fill completes and frees its entry.
        const auto earliest = std::min_element(
            bank.mshrs.begin(), bank.mshrs.end(),
            [](const Mshr &a, const Mshr &b) {
                return a.readyAt < b.readyAt;
            });
        const Cycle freed = earliest->readyAt;
        stats_.add("mshrStalls");
        stats_.add("mshrStallCycles", freed - grant);
        if (tracer_ && tracer_->wants(TraceCat::kCache)) {
            tracer_->instant(TraceCat::kCache, "l2_mshr_full", grant,
                             kTidL2Base, "wait", freed - grant);
        }
        bank.busyUntil = std::max(bank.busyUntil, freed + 1);
        retire(freed);
        return freed;
    }
    return grant;
}

Cycle
L2Cache::evictFor(Bank &bank, std::size_t set, Cycle start,
                  Way **way_out)
{
    Way *base = &bank.ways[set * params_.assoc];
    Way *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            *way_out = &base[w];
            return start;
        }
        if (victim == nullptr || base[w].lru < victim->lru)
            victim = &base[w];
    }
    stats_.add("evictions");
    bool dirty = victim->dirty;
    if (params_.inclusion == L2Inclusion::kInclusive &&
        backInvalidate_) {
        // The L1 copies must go when the L2 line goes; a dirty L1
        // copy folds its data into this victim's writeback.
        if (backInvalidate_(victim->memBlock * Addr(params_.blockBytes)))
            dirty = true;
        stats_.add("backInvalidations");
    }
    if (dirty) {
        stats_.add("writebacks");
        start = bus_.request(start,
                             unsigned(params_.blockBytes / 4));
    }
    victim->valid = false;
    *way_out = victim;
    return start;
}

void
L2Cache::install(Way &way, Addr local_block, Addr mem_block, bool dirty)
{
    way.valid = true;
    way.dirty = dirty;
    way.tag = local_block;
    way.memBlock = mem_block;
    way.lru = ++lruClock_;
}

Cycle
L2Cache::fetchBlock(Cycle now, Addr addr, unsigned words)
{
    (void)words;
    const Addr mem_block = addr / Addr(params_.blockBytes);
    const Addr local_block = mem_block / params_.numBanks;
    Bank &bank = banks_[bankOf(mem_block)];
    const Cycle grant = grantBank(bank, now);

    if (Way *way = lookup(bank, local_block)) {
        way->lru = ++lruClock_;
        Cycle ready = grant + params_.hitLatency;
        if (const Mshr *m = findMshr(bank, mem_block);
            m != nullptr && m->readyAt > grant) {
            // Secondary miss: the block is already being filled;
            // ride the outstanding MSHR instead of a new request.
            stats_.add("mshrMerges");
            ready = std::max(ready, m->readyAt + params_.hitLatency);
        } else {
            stats_.add("readHits");
        }
        if (params_.inclusion == L2Inclusion::kExclusive) {
            // The block moves up: hand it to the L1 and drop it
            // here. A dirty copy is flushed to memory in the
            // background (the response is not delayed).
            if (way->dirty) {
                stats_.add("writebacks");
                bus_.request(grant, unsigned(params_.blockBytes / 4));
            }
            way->valid = false;
            stats_.add("exclusiveSupplies");
        }
        return ready;
    }

    if (const Mshr *m = findMshr(bank, mem_block);
        m != nullptr && m->readyAt > grant) {
        // Secondary miss without a resident line (exclusive never
        // allocates on fill; other policies can evict a line whose
        // fill is still in flight): merge with the outstanding MSHR.
        stats_.add("mshrMerges");
        return std::max(grant, m->readyAt) + params_.hitLatency;
    }

    stats_.add("readMisses");
    if (tracer_ && tracer_->wants(TraceCat::kCache)) {
        tracer_->instant(TraceCat::kCache, "l2_read_miss", now,
                         kTidL2Base, "addr", addr);
    }
    Cycle start = allocMshr(bank, grant);
    if (params_.inclusion != L2Inclusion::kExclusive) {
        const std::size_t set =
            std::size_t(local_block) & (setsPerBank_ - 1);
        Way *way = nullptr;
        start = evictFor(bank, set, start, &way);
        const Cycle done =
            bus_.request(start, unsigned(params_.blockBytes / 4));
        install(*way, local_block, mem_block, /*dirty=*/false);
        bank.mshrs.push_back(Mshr{mem_block, done});
        return done + params_.hitLatency;
    }
    // Exclusive: the fill goes straight up without allocating.
    const Cycle done =
        bus_.request(start, unsigned(params_.blockBytes / 4));
    bank.mshrs.push_back(Mshr{mem_block, done});
    return done + params_.hitLatency;
}

Cycle
L2Cache::writebackBlock(Cycle now, Addr addr, unsigned words)
{
    (void)words;
    const Addr mem_block = addr / Addr(params_.blockBytes);
    const Addr local_block = mem_block / params_.numBanks;
    Bank &bank = banks_[bankOf(mem_block)];
    const Cycle grant = grantBank(bank, now);

    if (Way *way = lookup(bank, local_block)) {
        stats_.add("writeHits");
        way->dirty = true;
        way->lru = ++lruClock_;
        return grant + params_.hitLatency;
    }

    // An L1 victim carries the whole block, so a writeback miss
    // allocates without fetching from memory (no MSHR needed).
    stats_.add("writeMisses");
    const std::size_t set = std::size_t(local_block) & (setsPerBank_ - 1);
    Way *way = nullptr;
    const Cycle start = evictFor(bank, set, grant, &way);
    install(*way, local_block, mem_block, /*dirty=*/true);
    return start + params_.hitLatency;
}

void
L2Cache::cleanEviction(Cycle now, Addr addr, unsigned words)
{
    (void)words;
    if (params_.inclusion != L2Inclusion::kExclusive)
        return;
    // Victim caching: a clean L1 victim is allocated on the way out
    // so the next miss to it hits the L2 instead of memory.
    const Addr mem_block = addr / Addr(params_.blockBytes);
    const Addr local_block = mem_block / params_.numBanks;
    Bank &bank = banks_[bankOf(mem_block)];
    const Cycle grant = grantBank(bank, now);
    if (Way *way = lookup(bank, local_block)) {
        way->lru = ++lruClock_;
        return;
    }
    stats_.add("victimAllocations");
    const std::size_t set = std::size_t(local_block) & (setsPerBank_ - 1);
    Way *way = nullptr;
    (void)evictFor(bank, set, grant, &way);
    install(*way, local_block, mem_block, /*dirty=*/false);
}

Cycle
L2Cache::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const Bank &bank : banks_) {
        for (const Mshr &m : bank.mshrs) {
            if (m.readyAt > now && m.readyAt < next)
                next = m.readyAt;
        }
    }
    return next;
}

bool
L2Cache::probe(Addr addr) const
{
    const Addr mem_block = addr / Addr(params_.blockBytes);
    const Bank &bank = banks_[bankOf(mem_block)];
    return lookup(bank, mem_block / params_.numBanks) != nullptr;
}

bool
L2Cache::probeDirty(Addr addr) const
{
    const Addr mem_block = addr / Addr(params_.blockBytes);
    const Bank &bank = banks_[bankOf(mem_block)];
    const Way *way = lookup(bank, mem_block / params_.numBanks);
    return way != nullptr && way->dirty;
}

std::size_t
L2Cache::validLines() const
{
    std::size_t n = 0;
    for (const Bank &bank : banks_) {
        for (const Way &way : bank.ways)
            n += way.valid ? 1 : 0;
    }
    return n;
}

} // namespace msim
