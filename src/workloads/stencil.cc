/**
 * @file
 * stencil: a 2-D five-point smoothing pass over a word grid,
 * out[r][c] = (4*in[r][c] + north + south + west + east) >> 3.
 *
 * The sharing pattern is the interesting part: each row task streams
 * its own row plus the rows above and below, so consecutive tasks
 * re-read each other's input rows. With only per-bank L1s that reuse
 * is partly wasted across banks; a shared L2 turns the neighbour-row
 * re-reads into cheap hits. Multiscalar structure: one task per
 * interior row with the row pointer forwarded at the top; output
 * rows are disjoint, so tasks never conflict in the ARB.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kCols = 128;           // 512-byte rows
constexpr unsigned kInteriorPerScale = 30;

const char *const kSource = R"(
# ---- stencil: five-point smoothing, one task per row ----
        .data
NROWS:  .word 0                   # number of interior rows
GRIN:   .space 32768
GROUT:  .space 32768
        .text

main:
        la   $20, GRIN
        addu $20, $20, 512    !f  # $20 = first interior row
        lw   $9, NROWS
        sll  $9, $9, 9            # rows * 512 bytes
        addu $21, $20, $9     !f  # $21 = one past last interior row
        la   $22, GROUT
        la   $11, GRIN
        subu $22, $22, $11    !f  # $22 = out - in displacement
        li   $16, 0           !f  # checksum of the output grid
@ms     b    STROW            !s

@ms .task main
@ms .targets STROW
@ms .create $16, $20, $21, $22
@ms .endtask

@ms .task STROW
@ms .targets STROW:loop, STDONE
@ms .create $16, $20
@ms .endtask

STROW:
        addu $20, $20, 512    !f  # row pointer, forwarded early
        subu $8, $20, 512         # this row's base
        addu $9, $8, 4            # first interior column
        addu $10, $8, 508         # one past last interior column
        li   $11, 0               # row checksum
STCOL:
        lw   $12, 0($9)           # centre
        sll  $12, $12, 2          # 4 * centre
        lw   $13, -512($9)        # north
        addu $12, $12, $13
        lw   $13, 512($9)         # south
        addu $12, $12, $13
        lw   $13, -4($9)          # west
        addu $12, $12, $13
        lw   $13, 4($9)           # east
        addu $12, $12, $13
        srl  $12, $12, 3
        addu $13, $9, $22
        sw   $12, 0($13)          # out[r][c]
        addu $11, $11, $12
        addu $9, $9, 4
        bne  $9, $10, STCOL
        addu $16, $16, $11    !f
        bne  $20, $21, STROW  !s

@ms .task STDONE
@ms .endtask
STDONE:
        move $4, $16
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

Workload
makeStencil(unsigned scale)
{
    fatalIf(scale > 2, "stencil grid supports scale <= 2");
    Workload w;
    w.name = "stencil";
    w.description = "five-point word-grid smoothing, one task per row";
    w.source = kSource;

    const unsigned interior = kInteriorPerScale * scale;
    const unsigned rows = interior + 2;
    Rng rng(271828);
    std::vector<std::uint32_t> in(rows * kCols);
    for (auto &v : in)
        v = std::uint32_t(rng.next());

    // Golden model: interior points only, all arithmetic mod 2^32.
    std::uint32_t sum = 0;
    for (unsigned r = 1; r <= interior; ++r)
        for (unsigned c = 1; c + 1 < kCols; ++c) {
            const std::uint32_t v =
                (4u * in[r * kCols + c] + in[(r - 1) * kCols + c] +
                 in[(r + 1) * kCols + c] + in[r * kCols + c - 1] +
                 in[r * kCols + c + 1]) >>
                3;
            sum += v;
        }

    w.init = [in, interior, rows](MainMemory &mem,
                                  const Program &prog) {
        mem.write(*prog.symbol("NROWS"), interior, 4);
        const Addr gb = *prog.symbol("GRIN");
        for (unsigned i = 0; i < rows * kCols; ++i)
            mem.write(gb + Addr(4 * i), in[i], 4);
    };

    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
