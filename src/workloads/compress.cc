/**
 * @file
 * compress analogue. The paper: "in compress all time is spent in a
 * single (big) loop... bound by a recurrence (getting the index into
 * the hash table) that results in a long critical path through the
 * entire program. The problem is further aggravated by the huge size
 * of the hash table, which results in a high rate of cache misses."
 *
 * This is an LZW-style encoder: for each input byte, hash
 * (prev_code, char) into a 4096-entry open-addressed table; on a hit
 * the pair becomes the new prefix code, on a miss the pair is
 * inserted and the previous code is emitted into a checksum. A task
 * is one input byte. The prefix code is a loop-carried value computed
 * at the *end* of the task, so tasks serialize on it — reproducing
 * compress's small multiscalar speedup — and the 32 KB table thrashes
 * the 8 KB data banks.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kBytesPerScale = 6000;

const char *const kSource = R"(
# ---- compress: LZW-style hash loop with a code recurrence ----
        .data
NBYTES: .word 0
INPUT:  .space 12288
        .align 3
HTAB:   .space 32768              # 4096 entries x {key, code}
        .text

main:
        la   $20, INPUT       !f
        lw   $9, NBYTES
        addu $21, $20, $9     !f  # end of input
        la   $18, HTAB        !f
        li   $16, 0           !f  # prev code
        li   $17, 256         !f  # next free code
        li   $19, 0           !f  # output checksum
@ms     b    CLOOP            !s

@ms .task main
@ms .targets CLOOP
@ms .create $16, $17, $18, $19, $20, $21
@ms .endtask

@ms .task CLOOP
@ms .targets CLOOP:loop, CDONE
@ms .create $16, $17, $19, $20
@ms .endtask

CLOOP:
        addu $20, $20, 1      !f  # input pointer, forwarded early
        lbu  $8, -1($20)          # c
        sll  $9, $16, 8
        addu $9, $9, $8
        addu $9, $9, 1            # key = prev<<8 | c, nonzero
        li   $10, 40503
        mul  $10, $9, $10
        srl  $10, $10, 8
        andi $10, $10, 4095       # h = hash(key)
CPROBE:
        sll  $11, $10, 3
        addu $11, $11, $18        # &htab[h]
        lw   $12, 0($11)
        beq  $12, $9, CHIT
        beq  $12, $0, CMISS
        addu $10, $10, 1
        andi $10, $10, 4095
        b    CPROBE
CHIT:
        lw   $16, 4($11)      !f  # prev = code of the pair
@ms     release $17, $19
        b    CNEXT
CMISS:
        slti $14, $17, 4000       # table capacity guard
        beq  $14, $0, CFULL
        sw   $9, 0($11)           # insert pair
        sw   $17, 4($11)
        addu $17, $17, 1      !f  # free code counter
        b    CEMIT
CFULL:
@ms     release $17               # no insertion when full
CEMIT:
        mul  $13, $19, 31
        addu $19, $13, $16    !f  # emit prev into the checksum
        move $16, $8          !f  # prev = c
CNEXT:
        bne  $20, $21, CLOOP  !s

@ms .task CDONE
@ms .endtask
CDONE:
        mul  $13, $19, 31
        addu $19, $13, $16        # emit the final code
        move $4, $19
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeCompress(unsigned scale)
{
    fatalIf(scale > 2, "compress workload supports scale <= 2");
    Workload w;
    w.name = "compress";
    w.description = "LZW-style hash loop, one task per input byte";
    w.source = kSource;

    // Skewed text so that pair matches actually occur.
    const unsigned nbytes = kBytesPerScale * scale;
    std::vector<std::uint8_t> input(nbytes);
    Rng rng(990);
    for (unsigned i = 0; i < nbytes; ++i)
        input[i] = std::uint8_t('a' + rng.below(6));

    w.init = [input, nbytes](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NBYTES"), nbytes, 4);
        mem.writeBytes(*prog.symbol("INPUT"), input.data(),
                       input.size());
    };

    // Golden model.
    std::vector<std::uint32_t> key(4096, 0), code(4096, 0);
    std::uint32_t prev = 0, free_code = 256, checksum = 0;
    for (std::uint8_t c : input) {
        const std::uint32_t k = (prev << 8) + c + 1;
        std::uint32_t h = ((k * 40503u) >> 8) & 4095u;
        while (key[h] != 0 && key[h] != k)
            h = (h + 1) & 4095u;
        if (key[h] == k) {
            prev = code[h];
        } else {
            if (free_code < 4000) {
                key[h] = k;
                code[h] = free_code++;
            }
            checksum = checksum * 31 + prev;
            prev = c;
        }
    }
    checksum = checksum * 31 + prev;
    w.expected = std::to_string(std::int32_t(checksum)) + "\n";
    return w;
}

} // namespace msim::workloads
