/**
 * @file
 * The paper's running example (Figure 3): repeatedly take a symbol
 * from a buffer and run down a linked list looking for a match; call
 * process() (bump a per-symbol counter) on a hit, addlist() on a
 * miss. A task is one complete search (one outer-loop iteration),
 * annotated as in Figure 4.
 *
 * The paper's input: "16 tokens, each appearing 450 times". Scale 1
 * reproduces exactly that (7200 searches). After startup, additions
 * become infrequent and iterations are dynamically independent except
 * for (a) concurrent searches of the same symbol (process() store vs.
 * a later task's load — a genuine memory order squash) and (b) list
 * insertions, both discussed in section 2.3.
 *
 * Multiscalar notes (the paper's own optimizations, section 3.2.2):
 * the loop induction variable ($20) is updated and forwarded at the
 * top of the task, with the body using a -4 displacement. The default
 * build carries Figure 4's conservative create mask
 * {$4,$8,$17,$20,$23} with explicit releases (+4.3% dynamic
 * instructions, the paper reports +4.2%); define OPTMASK for the
 * dead-register-analysis variant whose create mask is just {$20}
 * (section 2.2's optimization).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kTokens = 16;
constexpr unsigned kRepeats = 450;

const char *const kSource = R"(
# ---- example: linked-list symbol search (paper Figures 3 and 4) ----
        .data
LISTHD:   .word 0
LISTTAIL: .word 0
POOLPTR:  .word POOL
NSYM:     .word 0                 # host-poked: number of symbols
BUFFER:   .space 57600            # symbol buffer (host-poked)
POOL:     .space 4096             # node pool: {ele, count, next} x 12B
        .text

main:
        la   $20, BUFFER      !f
        lw   $9, NSYM
        sll  $9, $9, 2
        addu $16, $20, $9     !f  # $16 = buffer end
@ms     b    OUTER            !s

@ms .task main
@ms .targets OUTER
@ms .create $16, $20
@ms .endtask

@ms .task OUTER
@ms .targets OUTER:loop, OUTERFALLOUT
@ms .create $20
@ms @ndef(OPTMASK) .create $4, $8, $17, $23
@ms .endtask

OUTER:
        addu $20, $20, 4      !f  # advance induction variable early
        lw   $23, -4($20)         # symbol = SYMVAL(buffer[indx])
        lw   $17, LISTHD          # list = listhd
        beq  $17, $0, INNERFALLOUT
INNER:
        lw   $8, 0($17)           # LELE(list)
        bne  $8, $23, SKIPCALL
        move $4, $17
        jal  process              # symbol found: process the entry
        b    INNERFALLOUT
SKIPCALL:
        lw   $17, 8($17)          # list = LNEXT(list)
        bne  $17, $0, INNER
INNERFALLOUT:
@ms @ndef(OPTMASK) release $8, $17
        bne  $17, $0, SKIPINNER
        move $4, $23
        jal  addlist              # symbol not found: append it
SKIPINNER:
@ms @ndef(OPTMASK) release $4, $23
        bne  $20, $16, OUTER  !s

@ms .task OUTERFALLOUT
@ms .endtask
OUTERFALLOUT:
        # checksum: sum of ele*count over the list, plus node count
        lw   $17, LISTHD
        move $8, $0
EPLOOP: beq  $17, $0, EPDONE
        lw   $9, 0($17)
        lw   $10, 4($17)
        mul  $11, $9, $10
        addu $8, $8, $11
        addu $8, $8, 1
        lw   $17, 8($17)
        b    EPLOOP
EPDONE:
        move $4, $8
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit

# process(list): LCOUNT(list)++
process:
        lw   $9, 4($4)
        addu $9, $9, 1
        sw   $9, 4($4)
        jr   $31

# addlist(symbol): append a node {symbol, 1, 0} at the tail
addlist:
        lw   $9, POOLPTR
        addu $10, $9, 12
        sw   $10, POOLPTR
        sw   $4, 0($9)
        li   $11, 1
        sw   $11, 4($9)
        sw   $0, 8($9)
        lw   $12, LISTTAIL
        beq  $12, $0, ADDEMPTY
        sw   $9, 8($12)
        sw   $9, LISTTAIL
        jr   $31
ADDEMPTY:
        sw   $9, LISTHD
        sw   $9, LISTTAIL
        jr   $31
)";

} // namespace

Workload
makeExample(unsigned scale)
{
    Workload w;
    w.name = "example";
    w.description =
        "linked-list symbol search (paper Figure 3), one task per "
        "search";
    w.source = kSource;

    fatalIf(scale > 2, "example workload buffer supports scale <= 2");
    const unsigned nsym = kTokens * kRepeats * scale;
    // Deterministic token stream: each of the 16 tokens appears
    // (450 * scale) times, order shuffled.
    std::vector<std::int32_t> symbols;
    symbols.reserve(nsym);
    for (unsigned t = 0; t < kTokens; ++t) {
        for (unsigned r = 0; r < kRepeats * scale; ++r)
            symbols.push_back(std::int32_t(100 + t * 7));
    }
    Rng rng(12345);
    for (size_t i = symbols.size(); i > 1; --i)
        std::swap(symbols[i - 1], symbols[rng.below(i)]);

    w.init = [symbols, nsym](MainMemory &mem, const Program &prog) {
        const Addr nsym_addr = *prog.symbol("NSYM");
        const Addr buf = *prog.symbol("BUFFER");
        mem.write(nsym_addr, nsym, 4);
        for (size_t i = 0; i < symbols.size(); ++i)
            mem.write(buf + Addr(4 * i),
                      std::uint32_t(symbols[i]), 4);
    };

    // Golden model.
    struct Node
    {
        std::int32_t ele;
        std::uint32_t count;
    };
    std::vector<Node> list;
    for (std::int32_t s : symbols) {
        bool found = false;
        for (auto &n : list) {
            if (n.ele == s) {
                ++n.count;
                found = true;
                break;
            }
        }
        if (!found)
            list.push_back({s, 1});
    }
    std::uint32_t sum = 0;
    for (const auto &n : list)
        sum += std::uint32_t(n.ele) * n.count + 1;
    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
