/**
 * @file
 * tomcatv analogue (SPECfp92). The paper: "nearly all time is spent
 * in a loop whose iterations are independent. Accordingly, we achieve
 * good speedup for 4-unit and 8-unit multiscalar processors. The
 * higher-issue configurations are stymied because of the contention
 * on the cache to memory bus."
 *
 * A 5-point stencil relaxation over a 36x36 double grid, double
 * buffered. A task is one interior row: the row pointer is forwarded
 * at the top and the rows of a sweep are fully independent (they read
 * the previous sweep's grid), so speedup tracks unit count. Each cell
 * uses DP adds, multiplies, and a divide, exercising the Table 1
 * floating point latencies, and the 20 KB of grid traffic exercises
 * the banked caches and shared bus.
 */

#include "workloads/workload.hh"

#include <cstring>

#include "common/logging.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kN = 36;           //!< grid dimension
constexpr unsigned kRowBytes = kN * 8;
constexpr unsigned kSweepsPerScale = 6;

const char *const kSource = R"(
# ---- tomcatv: 5-point stencil relaxation, one task per row ----
        .data
CONSTS:  .double 0.25, 3.0
NSWEEPS: .word 0
        .align 3
GRIDA:  .space 10368              # 36x36 doubles (host-poked)
GRIDB:  .space 10368              # starts zeroed
        .text

main:
        la   $8, CONSTS
        ldc1 $f20, 0($8)      !f  # 0.25
        ldc1 $f21, 8($8)      !f  # 3.0
        la   $16, GRIDA       !f  # source grid
        la   $17, GRIDB       !f  # destination grid
        lw   $18, NSWEEPS     !f
@ms     b    SWEEP            !s

@ms .task main
@ms .targets SWEEP
@ms .create $16, $17, $18, $f20, $f21
@ms .endtask

@ms .task SWEEP
@ms .targets ROW
@ms .create $19, $20, $21
@ms .endtask
SWEEP:
        addu $20, $17, 288    !f  # dst row 1
        subu $19, $16, $17    !f  # src - dst displacement
        li   $9, 10080
        addu $21, $17, $9     !f  # dst row 35 (loop bound)
@ms     b    ROW              !s

@ms .task ROW
@ms .targets ROW:loop, SWEEPEND
@ms .create $20
@ms .endtask
ROW:
        addu $20, $20, 288    !f  # next dst row, forwarded early
        subu $8, $20, 288         # this dst row
        addu $10, $8, 8           # dst col 1
        addu $11, $8, 280         # dst col 35 (exclusive)
ROWCOL:
        addu $12, $10, $19        # src cell
        ldc1 $f0, -288($12)       # north
        ldc1 $f1, 288($12)        # south
        ldc1 $f2, -8($12)         # west
        ldc1 $f3, 8($12)          # east
        ldc1 $f4, 0($12)          # center
        add.d $f0, $f0, $f1
        add.d $f2, $f2, $f3
        add.d $f0, $f0, $f2
        mul.d $f0, $f0, $f20      # average of the neighbors
        div.d $f5, $f4, $f21      # damped center contribution
        add.d $f0, $f0, $f5
        sdc1 $f0, 0($10)
        addu $10, $10, 8
        bne  $10, $11, ROWCOL
        bne  $20, $21, ROW    !s

@ms .task SWEEPEND
@ms .targets SWEEP, TDONE
@ms .create $16, $17, $18
@ms .endtask
SWEEPEND:
        move $9, $16              # swap the grids
        move $16, $17         !f
        move $17, $9          !f
        subu $18, $18, 1      !f
        bne  $18, $0, SWEEP   !s

@ms .task TDONE
@ms .endtask
TDONE:
        # checksum: truncate 1000 * sum of all cells of the last grid
        move $8, $16
        li   $9, 10368
        addu $9, $8, $9
        cvt.d.w $f0, $0           # 0.0
TSUM:
        ldc1 $f1, 0($8)
        add.d $f0, $f0, $f1
        addu $8, $8, 8
        bne  $8, $9, TSUM
        li   $10, 1000
        cvt.d.w $f2, $10
        mul.d $f0, $f0, $f2
        cvt.w.d $4, $f0
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeTomcatv(unsigned scale)
{
    fatalIf(scale > 4, "tomcatv workload supports scale <= 4");
    Workload w;
    w.name = "tomcatv";
    w.description = "stencil relaxation, one independent task per row";
    w.source = kSource;

    const unsigned nsweeps = kSweepsPerScale * scale;
    // Deterministic initial grid in [0, 1).
    std::vector<double> grid(size_t(kN) * kN);
    for (unsigned i = 0; i < kN; ++i) {
        for (unsigned j = 0; j < kN; ++j)
            grid[size_t(i) * kN + j] =
                double((i * 31 + j * 17 + 7) % 101) / 101.0;
    }

    w.init = [grid, nsweeps](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NSWEEPS"), nsweeps, 4);
        const Addr base = *prog.symbol("GRIDA");
        for (size_t i = 0; i < grid.size(); ++i) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(double));
            std::memcpy(&bits, &grid[i], 8);
            mem.write(base + Addr(8 * i), bits, 8);
        }
    };

    // Golden model (same op order as the assembly).
    std::vector<double> src = grid, dst(grid.size(), 0.0);
    for (unsigned s = 0; s < nsweeps; ++s) {
        for (unsigned i = 1; i < kN - 1; ++i) {
            for (unsigned j = 1; j < kN - 1; ++j) {
                const double n = src[size_t(i - 1) * kN + j];
                const double so = src[size_t(i + 1) * kN + j];
                const double we = src[size_t(i) * kN + j - 1];
                const double e = src[size_t(i) * kN + j + 1];
                const double c = src[size_t(i) * kN + j];
                dst[size_t(i) * kN + j] =
                    ((n + so) + (we + e)) * 0.25 + c / 3.0;
            }
        }
        std::swap(src, dst);
    }
    double sum = 0.0;
    for (double v : src)
        sum += v;
    w.expected =
        std::to_string(std::int32_t(sum * 1000.0)) + "\n";
    return w;
}

} // namespace msim::workloads
