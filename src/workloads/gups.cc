/**
 * @file
 * gups: giga-updates-per-second analogue — random read-modify-write
 * updates through a precomputed index stream.
 *
 * Each update loads a random word of a 32 KB table, adds a constant,
 * and stores it back, so the access stream has no spatial or temporal
 * locality and every level of the hierarchy sees near-worst-case hit
 * rates. Multiscalar structure: one task applies a 64-update chunk;
 * chunks are speculatively parallel and the ARB catches the (rare,
 * deterministic) cases where two in-flight chunks touch the same
 * word, so the committed result is always the sequential one.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kTableWords = 8192; // 32 KB table
constexpr unsigned kUpdatesPerScale = 4096;

const char *const kSource = R"(
# ---- gups: random read-modify-write updates ----
        .data
NUPD:   .word 0
IDX:    .space 32768              # byte offsets into TABLE
TABLE:  .space 32768
        .text

main:
        la   $20, IDX         !f
        lw   $9, NUPD
        sll  $9, $9, 2
        addu $21, $20, $9     !f  # $21 = end of index stream
        la   $22, TABLE       !f
        li   $16, 0           !f  # checksum of updated values
@ms     b    GUPS             !s

@ms .task main
@ms .targets GUPS
@ms .create $16, $20, $21, $22
@ms .endtask

@ms .task GUPS
@ms .targets GUPS:loop, GDONE
@ms .create $16, $20
@ms .endtask

GUPS:
        addu $20, $20, 256    !f  # chunk of 64 indices, forwarded
        subu $8, $20, 256
        li   $11, 0               # chunk checksum
GUPD:
        lw   $9, 0($8)            # byte offset into the table
        addu $9, $9, $22
        lw   $10, 0($9)
        addu $10, $10, 12345      # the update
        sw   $10, 0($9)
        addu $11, $11, $10
        addu $8, $8, 4
        bne  $8, $20, GUPD
        addu $16, $16, $11    !f
        bne  $20, $21, GUPS   !s

@ms .task GDONE
@ms .endtask
GDONE:
        move $4, $16
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

Workload
makeGups(unsigned scale)
{
    fatalIf(scale > 2, "gups index stream supports scale <= 2");
    Workload w;
    w.name = "gups";
    w.description = "random table updates, one task per 64-update "
                    "chunk";
    w.source = kSource;

    const unsigned nupd = kUpdatesPerScale * scale;
    Rng rng(16061);
    std::vector<std::uint32_t> table(kTableWords);
    for (auto &t : table)
        t = std::uint32_t(rng.next());
    std::vector<std::uint32_t> idx(nupd);
    for (auto &i : idx)
        i = std::uint32_t(rng.below(kTableWords)) * 4;

    // Golden model: sequential replay, summing each updated value.
    std::vector<std::uint32_t> shadow = table;
    std::uint32_t sum = 0;
    for (unsigned i = 0; i < nupd; ++i) {
        std::uint32_t &word = shadow[idx[i] / 4];
        word += 12345u;
        sum += word;
    }

    w.init = [table, idx, nupd](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NUPD"), nupd, 4);
        const Addr tb = *prog.symbol("TABLE");
        for (unsigned i = 0; i < kTableWords; ++i)
            mem.write(tb + Addr(4 * i), table[i], 4);
        const Addr ib = *prog.symbol("IDX");
        for (unsigned i = 0; i < nupd; ++i)
            mem.write(ib + Addr(4 * i), idx[i], 4);
    };

    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
