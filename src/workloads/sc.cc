/**
 * @file
 * sc analogue (the spreadsheet from SPECint92). The paper: RealEvalAll
 * visits every cell and calls the expensive recursive RealEvalOne for
 * the non-empty ones; "since RealEvalOne executes for hundreds of
 * cycles, the load imbalance between the work at each cell is
 * enormous. Accordingly, we restructured the RealEvalOne loop to
 * build a work list of the cells to be evaluated and to call
 * RealEvalOne for each of the cells on the work list."
 *
 * A cell's formula is a binary expression tree evaluated by a
 * recursive function (the suppressed call of the paper). Recursion
 * uses the regular stack: concurrent tasks reuse the same stack
 * addresses and rely on the ARB's memory renaming, exactly the
 * parallel-function-call scenario of section 2.3.
 *
 * Two variants from one source:
 *  - default: the paper's restructured work-list loop (a task per
 *    non-empty cell, good load balance);
 *  - define SCGRID: the original loop over all (mostly empty) cells,
 *    for the load-balancing ablation.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kCellsPerScale = 1600;  //!< 40x40 sheet
constexpr unsigned kFillPermille = 150;    //!< ~15% non-empty

const char *const kSource = R"(
# ---- sc: recursive cell evaluation over a work list ----
        .data
NWL:    .word 0                   # work list length
NCELLS: .word 0                   # grid size (SCGRID variant)
WLIST:  .space 2048               # host-poked root pointers
GRID:   .space 12800              # host-poked roots or 0 (empty)
NODES:  .space 196608             # host-poked expression trees
                                  # (sized for scale 2)
        .text

main:
        li   $19, 0           !f  # evaluation checksum
@ndef(SCGRID) la   $20, WLIST !f
@ndef(SCGRID) lw   $9, NWL
@def(SCGRID)  la   $20, GRID  !f
@def(SCGRID)  lw   $9, NCELLS
        sll  $9, $9, 2
        addu $21, $20, $9     !f
@ms     b    SCLOOP           !s

@ms .task main
@ms .targets SCLOOP
@ms .create $19, $20, $21
@ms .endtask

@ms .task SCLOOP
@ms .targets SCLOOP:loop, SCDONE
@ms .create $19, $20
@ms .endtask

SCLOOP:
        addu $20, $20, 4      !f  # next entry, forwarded early
        lw   $4, -4($20)          # expression root (0 = empty cell)
@def(SCGRID)  beq  $4, $0, SCSKIP
        jal  EVAL                 # suppressed recursive call
        mul  $9, $19, 13
        addu $19, $9, $2      !f
@ndef(SCGRID) bne  $20, $21, SCLOOP !s
@def(SCGRID)  b    SCNEXT
@def(SCGRID) SCSKIP:
@ms @def(SCGRID) release $19
@def(SCGRID) SCNEXT:
@def(SCGRID)  bne  $20, $21, SCLOOP !s

@ms .task SCDONE
@ms .endtask
SCDONE:
        move $4, $19
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall

# EVAL(node $4) -> $2. Node: {op, left, right}; op 0 = leaf(left).
EVAL:
        lw   $8, 0($4)
        bne  $8, $0, EVALIN
        lw   $2, 4($4)
        jr   $31
EVALIN:
        subu $29, $29, 12
        sw   $31, 0($29)
        sw   $17, 4($29)
        sw   $4, 8($29)
        lw   $4, 4($4)            # left subtree
        jal  EVAL
        move $17, $2
        lw   $4, 8($29)
        lw   $4, 8($4)            # right subtree
        jal  EVAL
        lw   $4, 8($29)
        lw   $8, 0($4)
        li   $9, 1
        beq  $8, $9, EADD
        li   $9, 2
        beq  $8, $9, EMUL
        subu $2, $17, $2          # op 3: subtract
        b    ERET
EADD:
        addu $2, $17, $2
        b    ERET
EMUL:
        mul  $2, $17, $2
ERET:
        lw   $31, 0($29)
        lw   $17, 4($29)
        addu $29, $29, 12
        jr   $31
)";

/** Host-side expression tree builder mirrored by the golden model. */
struct TreeBuilder
{
    std::vector<std::uint32_t> nodes;  // triples {op, a, b}
    Addr base;

    explicit TreeBuilder(Addr node_base) : base(node_base) {}

    /** @return the simulated address of the built node. */
    Addr
    build(Rng &rng, unsigned depth)
    {
        const size_t idx = nodes.size();
        nodes.resize(idx + 3);
        const Addr addr = base + Addr(4 * idx);
        if (depth == 0 || rng.below(4) == 0) {
            nodes[idx] = 0;  // leaf
            nodes[idx + 1] = std::uint32_t(rng.range(-50, 50));
            nodes[idx + 2] = 0;
        } else {
            const std::uint32_t op = 1 + std::uint32_t(rng.below(3));
            nodes[idx] = op;
            // Children are built after the slot is reserved.
            const Addr l = build(rng, depth - 1);
            const Addr r = build(rng, depth - 1);
            nodes[idx + 1] = l;
            nodes[idx + 2] = r;
        }
        return addr;
    }

    /** Evaluate a tree the way the simulated EVAL does. */
    std::int32_t
    eval(Addr addr) const
    {
        const size_t idx = (addr - base) / 4;
        const std::uint32_t op = nodes[idx];
        if (op == 0)
            return std::int32_t(nodes[idx + 1]);
        const std::int32_t l = eval(nodes[idx + 1]);
        const std::int32_t r = eval(nodes[idx + 2]);
        switch (op) {
          case 1:
            return l + r;
          case 2:
            return std::int32_t(std::int64_t(l) * r);
          default:
            return l - r;
        }
    }
};

} // namespace

Workload
makeSc(unsigned scale)
{
    fatalIf(scale > 2, "sc workload supports scale <= 2");
    Workload w;
    w.name = "sc";
    w.description =
        "recursive spreadsheet evaluation over a work list "
        "(define SCGRID for the unbalanced original)";
    w.source = kSource;

    const unsigned ncells = kCellsPerScale * scale;
    // Node addresses depend on the program layout; NODES is at a
    // fixed symbol, so precompute relative to 0 and rebase in init.
    Rng rng(2025);
    TreeBuilder trees(0);
    std::vector<Addr> grid(ncells, 0);
    std::vector<Addr> wlist;
    for (unsigned c = 0; c < ncells; ++c) {
        if (rng.below(1000) < kFillPermille) {
            const unsigned depth = 2 + unsigned(rng.below(5));
            grid[c] = trees.build(rng, depth) + 4;  // +4: 0 = empty
            wlist.push_back(grid[c]);
        }
    }
    fatalIf(trees.nodes.size() * 4 > 196608,
            "sc expression pool overflow");
    fatalIf(wlist.size() * 4 > 2048, "sc work list overflow");

    w.init = [trees, grid, wlist](MainMemory &mem, const Program &prog) {
        const Addr nodes = *prog.symbol("NODES");
        // Trees were built with base 0 and offset +4; rebase all
        // child pointers and roots to the real NODES address.
        std::vector<std::uint32_t> fixed = trees.nodes;
        for (size_t i = 0; i < fixed.size(); i += 3) {
            if (fixed[i] != 0) {
                fixed[i + 1] += nodes - 4 + 4;  // child address
                fixed[i + 2] += nodes - 4 + 4;
            }
        }
        for (size_t i = 0; i < fixed.size(); ++i)
            mem.write(nodes + Addr(4 * i), fixed[i], 4);
        const Addr g = *prog.symbol("GRID");
        for (size_t i = 0; i < grid.size(); ++i) {
            const Addr root =
                grid[i] ? grid[i] - 4 + nodes : 0;
            mem.write(g + Addr(4 * i), root, 4);
        }
        const Addr wl = *prog.symbol("WLIST");
        for (size_t i = 0; i < wlist.size(); ++i)
            mem.write(wl + Addr(4 * i), wlist[i] - 4 + nodes, 4);
        mem.write(*prog.symbol("NWL"),
                  std::uint32_t(wlist.size()), 4);
        mem.write(*prog.symbol("NCELLS"),
                  std::uint32_t(grid.size()), 4);
    };

    // Golden model: evaluate in work-list order (same as grid order).
    // Unsigned accumulator — the guest wraps with `mul`, and signed
    // overflow would be UB here.
    std::uint32_t acc = 0;
    for (Addr root : wlist)
        acc = acc * 13 + std::uint32_t(trees.eval(root - 4));
    w.expected = std::to_string(std::int32_t(acc)) + "\n";
    return w;
}

} // namespace msim::workloads
