/**
 * @file
 * wc analogue (GNU textutils wc, used as a benchmark by the IMPACT
 * group and in the paper's suite): count lines and words in a text
 * buffer.
 *
 * Multiscalar structure: a task processes one fixed 256-byte chunk.
 * The chunk pointer is a simple induction variable updated and
 * forwarded at the top of the task, so chunk scans run in parallel.
 * The in-word flag crossing a chunk boundary and the accumulated
 * line/word counts are consumed late and produced late, so they
 * pipeline between tasks without serializing the scans. Word counts
 * are computed locally as space-to-nonspace transitions, with a
 * boundary fix-up at the end of the task (subtract one if the chunk
 * starts inside a word continued from the previous chunk).
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kChunk = 256;
constexpr unsigned kChunksPerScale = 96;

const char *const kSource = R"(
# ---- wc: line/word count over fixed-size chunks ----
        .data
NBYTES: .word 0                   # host-poked: text size (chunk mult.)
TEXT:   .space 49152              # host-poked text
        .text

main:
        la   $20, TEXT        !f
        lw   $9, NBYTES
        addu $21, $20, $9     !f  # $21 = end of text
        li   $17, 0           !f  # nlines
        li   $18, 0           !f  # inword (carried across chunks)
        li   $19, 0           !f  # nwords
@ms     b    WCLOOP           !s

@ms .task main
@ms .targets WCLOOP
@ms .create $17, $18, $19, $20, $21
@ms .endtask

@ms .task WCLOOP
@ms .targets WCLOOP:loop, WCDONE
@ms .create $17, $18, $19, $20
@ms .endtask

WCLOOP:
@ms @def(EARLYV) beq $20, $21, WCEXITV
                                  # EARLYV: test the loop exit at the
                                  # top of the task so a mispredicted
                                  # extra iteration is recognized
                                  # within a few cycles instead of
                                  # after a whole chunk scan
                                  # (section 3.1.2)
        addu $20, $20, 256    !f  # chunk pointer, forwarded early
        subu $8, $20, 256         # $8 = scan pointer
        li   $9, 0                # local words
        li   $10, 0               # local lines
        li   $11, 0               # local inword
WCCHAR:
        lbu  $12, 0($8)
        addu $8, $8, 1
        li   $13, 10
        beq  $12, $13, WCNL       # newline
        slt  $13, $12, 33
        bne  $13, $0, WCSEP       # c < 33: separator
        bne  $11, $0, WCNEXT      # already in a word
        addu $9, $9, 1            # space -> nonspace transition
        li   $11, 1
        b    WCNEXT
WCNL:
        addu $10, $10, 1
WCSEP:
        li   $11, 0
WCNEXT:
        bne  $8, $20, WCCHAR
        # Boundary fix-up: if the chunk starts mid-word (previous
        # chunk ended in a word and our first char is a word char),
        # the transition we counted at position 0 was not a new word.
        subu $12, $20, 256
        lbu  $12, 0($12)
        slt  $13, $12, 33
        bne  $13, $0, WCMERGE     # first char is a separator: no fix
        beq  $18, $0, WCMERGE     # previous chunk ended outside words
        subu $9, $9, 1
WCMERGE:
        addu $19, $19, $9     !f  # nwords  (late accumulate, forward)
        addu $17, $17, $10    !f  # nlines
        move $18, $11         !f  # carry the in-word flag
@ndef(EARLYV) bne  $20, $21, WCLOOP !s
@sc @def(EARLYV)  bne  $20, $21, WCLOOP
@ms @def(EARLYV)  b    WCLOOP     !s
@ms @def(EARLYV) WCEXITV:
                                  # EARLYV early exit: nothing has
                                  # been accumulated yet, so release
                                  # the carried counters as-is
@ms @def(EARLYV) release $17, $18
@ms @def(EARLYV) release $19, $20
@ms @def(EARLYV) b    WCDONE      !s

@ms .task WCDONE
@ms .endtask
WCDONE:
        move $4, $17
        li   $2, 1
        syscall                   # print line count
        li   $4, 32
        li   $2, 11
        syscall                   # space
        move $4, $19
        li   $2, 1
        syscall                   # print word count
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeWc(unsigned scale)
{
    fatalIf(scale > 2, "wc workload buffer supports scale <= 2");
    Workload w;
    w.name = "wc";
    w.description = "line/word count, one task per 256-byte chunk";
    w.source = kSource;

    // Deterministic pseudo-text: words of 1-9 letters separated by
    // spaces and newlines.
    const unsigned nbytes = kChunk * kChunksPerScale * scale;
    std::vector<std::uint8_t> text(nbytes, ' ');
    Rng rng(777);
    size_t i = 0;
    while (i < nbytes) {
        const unsigned wl = 1 + unsigned(rng.below(9));
        for (unsigned k = 0; k < wl && i < nbytes; ++k)
            text[i++] = std::uint8_t('a' + rng.below(26));
        if (i < nbytes)
            text[i++] = rng.below(8) == 0 ? '\n' : ' ';
    }

    w.init = [text, nbytes](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NBYTES"), nbytes, 4);
        mem.writeBytes(*prog.symbol("TEXT"), text.data(), text.size());
    };

    // Golden model (mirrors the simulated algorithm: c < 33 is a
    // separator, '\n' also counts a line).
    unsigned lines = 0, words = 0;
    bool inword = false;
    for (std::uint8_t c : text) {
        if (c == '\n') {
            ++lines;
            inword = false;
        } else if (c < 33) {
            inword = false;
        } else if (!inword) {
            ++words;
            inword = true;
        }
    }
    w.expected = std::to_string(lines) + " " + std::to_string(words) +
                 "\n";
    return w;
}

} // namespace msim::workloads
