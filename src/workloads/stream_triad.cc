/**
 * @file
 * stream_triad: the STREAM triad kernel a[i] = b[i] + 3*c[i] over
 * integer word arrays.
 *
 * Three streams (two read, one written) sweep arrays that together
 * outgrow the aggregate L1, so steady state is bandwidth-bound: every
 * block is fetched once, the output stream generates dirty evictions,
 * and nothing is reused. Multiscalar structure: one task computes a
 * 256-word chunk with the chunk pointer forwarded at the top, so the
 * chunks' miss streams overlap — the measure of how much memory-level
 * parallelism the hierarchy (bus alone vs. non-blocking L2 banks)
 * can sustain.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kWordsPerScale = 6144; // 24 KB per array per scale

const char *const kSource = R"(
# ---- stream_triad: a[i] = b[i] + 3*c[i] over word streams ----
        .data
NWORDS: .word 0
BUFA:   .space 49152
BUFB:   .space 49152
BUFC:   .space 49152
        .text

main:
        la   $20, BUFA        !f
        lw   $9, NWORDS
        sll  $9, $9, 2
        addu $21, $20, $9     !f  # $21 = end of A
        la   $22, BUFB
        subu $22, $22, $20    !f  # $22 = B - A displacement
        la   $23, BUFC
        subu $23, $23, $20    !f  # $23 = C - A displacement
        li   $16, 0           !f  # checksum of the output stream
@ms     b    TRIAD            !s

@ms .task main
@ms .targets TRIAD
@ms .create $16, $20, $21, $22, $23
@ms .endtask

@ms .task TRIAD
@ms .targets TRIAD:loop, TRDONE
@ms .create $16, $20
@ms .endtask

TRIAD:
        addu $20, $20, 1024   !f  # chunk pointer (256 words)
        subu $8, $20, 1024        # scan pointer into A
        li   $11, 0               # chunk checksum
TRWORD:
        addu $9, $8, $22
        lw   $9, 0($9)            # b[i]
        addu $10, $8, $23
        lw   $10, 0($10)          # c[i]
        sll  $12, $10, 1
        addu $10, $10, $12        # 3*c[i]
        addu $9, $9, $10
        sw   $9, 0($8)            # a[i]
        addu $11, $11, $9
        addu $8, $8, 4
        bne  $8, $20, TRWORD
        addu $16, $16, $11    !f
        bne  $20, $21, TRIAD  !s

@ms .task TRDONE
@ms .endtask
TRDONE:
        move $4, $16
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

Workload
makeTriad(unsigned scale)
{
    fatalIf(scale > 2, "stream_triad arrays support scale <= 2");
    Workload w;
    w.name = "stream_triad";
    w.description = "integer STREAM triad, one task per 256-word chunk";
    w.source = kSource;

    const unsigned nwords = kWordsPerScale * scale;
    Rng rng(424243);
    std::vector<std::uint32_t> b(nwords), c(nwords);
    for (unsigned i = 0; i < nwords; ++i) {
        b[i] = std::uint32_t(rng.next());
        c[i] = std::uint32_t(rng.next());
    }

    // Golden model: the sum of the output stream, mod 2^32.
    std::uint32_t sum = 0;
    for (unsigned i = 0; i < nwords; ++i)
        sum += b[i] + 3u * c[i];

    w.init = [b, c, nwords](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NWORDS"), nwords, 4);
        const Addr bb = *prog.symbol("BUFB");
        const Addr cb = *prog.symbol("BUFC");
        for (unsigned i = 0; i < nwords; ++i) {
            mem.write(bb + Addr(4 * i), b[i], 4);
            mem.write(cb + Addr(4 * i), c[i], 4);
        }
    };

    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
