/**
 * @file
 * espresso analogue. The paper: "the top function in espresso is
 * massive_count (37% of instructions). massive_count has two main
 * loops. In both cases, the loop body is a task... In the first loop,
 * each iteration executes a variable number of instructions (cycles
 * are lost due to load balance). In the second loop (which contains a
 * nested loop), an iteration of the outer loop includes all the
 * iterations of the inner loop (the task partitioning needed a manual
 * hint to select this granularity)."
 *
 * Loop 1: for every word of a cover, strip set bits one at a time
 * (variable-length inner while loop -> load imbalance between tasks).
 * Loop 2: for every row of a matrix, a full inner reduction loop is
 * one task. Both accumulate into registers consumed late.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kWordsPerScale = 2048;   //!< loop 1 elements
constexpr unsigned kRowsPerScale = 96;      //!< loop 2 rows
constexpr unsigned kCols = 48;              //!< loop 2 columns

const char *const kSource = R"(
# ---- espresso: massive_count's two counting loops ----
        .data
NWORDS: .word 0
NROWS:  .word 0
COVER:  .space 16384              # loop 1 input words
MATRIX: .space 73728              # loop 2 rows x 48 words
        .text

main:
        la   $20, COVER       !f
        lw   $9, NWORDS
        sll  $9, $9, 2
        addu $21, $20, $9     !f  # end of cover
        li   $19, 0           !f  # bit-count accumulator
@ms     b    L1               !s

@ms .task main
@ms .targets L1
@ms .create $19, $20, $21
@ms .endtask

@ms .task L1
@ms .targets L1:loop, L1DONE
@ms .create $19, $20
@ms .endtask

L1:
        addu $20, $20, 4      !f  # element pointer, forwarded early
        lw   $8, -4($20)          # w = cover word
        li   $9, 0                # local bit count
L1BIT:
        beq  $8, $0, L1ACC        # strip set bits one at a time:
        subu $10, $8, 1           #   w &= w - 1
        and  $8, $8, $10
        addu $9, $9, 1
        b    L1BIT
L1ACC:
        # weighted accumulate (position-sensitive so order matters)
        mul  $11, $19, 5
        addu $19, $11, $9     !f
        bne  $20, $21, L1     !s

@ms .task L1DONE
@ms .targets L2
@ms .create $17, $19, $20, $21
@ms .endtask
L1DONE:
        la   $20, MATRIX      !f
        lw   $9, NROWS
        mul  $9, $9, 192          # 48 words per row
        addu $21, $20, $9     !f  # end of matrix
        move $17, $19         !f  # carry loop-1 result
        li   $19, 0           !f
@ms     b    L2               !s

@ms .task L2
@ms .targets L2:loop, L2DONE
@ms .create $19, $20
@ms .endtask

L2:
        addu $20, $20, 192    !f  # row pointer, forwarded early
        subu $8, $20, 192         # column scan pointer
        li   $9, 0                # local row reduction
L2COL:
        lw   $10, 0($8)
        sra  $11, $10, 16
        addu $9, $9, $11          # high-half contribution
        andi $11, $10, 255
        xor  $9, $9, $11          # low-byte mix
        addu $8, $8, 4
        bne  $8, $20, L2COL
        mul  $11, $19, 7
        addu $19, $11, $9     !f
        bne  $20, $21, L2     !s

@ms .task L2DONE
@ms .endtask
L2DONE:
        addu $4, $19, $17         # combine both loop results
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeEspresso(unsigned scale)
{
    fatalIf(scale > 2, "espresso workload supports scale <= 2");
    Workload w;
    w.name = "espresso";
    w.description = "massive_count's two loops (variable-length and "
                    "nested tasks)";
    w.source = kSource;

    const unsigned nwords = kWordsPerScale * scale;
    const unsigned nrows = kRowsPerScale * scale;
    std::vector<std::uint32_t> cover(nwords);
    std::vector<std::uint32_t> matrix(size_t(nrows) * kCols);
    Rng rng(1331);
    for (auto &v : cover) {
        // Popcounts from 0 to ~24: strongly variable task lengths.
        const unsigned bits = unsigned(rng.below(25));
        std::uint32_t x = 0;
        for (unsigned b = 0; b < bits; ++b)
            x |= std::uint32_t(1) << rng.below(32);
        v = x;
    }
    for (auto &v : matrix)
        v = std::uint32_t(rng.next());

    w.init = [cover, matrix, nwords, nrows](MainMemory &mem,
                                            const Program &prog) {
        mem.write(*prog.symbol("NWORDS"), nwords, 4);
        mem.write(*prog.symbol("NROWS"), nrows, 4);
        Addr c = *prog.symbol("COVER");
        for (size_t i = 0; i < cover.size(); ++i)
            mem.write(c + Addr(4 * i), cover[i], 4);
        Addr m = *prog.symbol("MATRIX");
        for (size_t i = 0; i < matrix.size(); ++i)
            mem.write(m + Addr(4 * i), matrix[i], 4);
    };

    // Golden model.
    std::uint32_t acc1 = 0;
    for (std::uint32_t v : cover) {
        std::uint32_t n = 0, x = v;
        while (x) {
            x &= x - 1;
            ++n;
        }
        acc1 = acc1 * 5 + n;
    }
    std::uint32_t acc2 = 0;
    for (unsigned r = 0; r < nrows; ++r) {
        std::uint32_t red = 0;
        for (unsigned cidx = 0; cidx < kCols; ++cidx) {
            const std::uint32_t v = matrix[size_t(r) * kCols + cidx];
            red += std::uint32_t(std::int32_t(v) >> 16);
            red ^= v & 255u;
        }
        acc2 = acc2 * 7 + red;
    }
    w.expected =
        std::to_string(std::int32_t(acc2 + acc1)) + "\n";
    return w;
}

} // namespace msim::workloads
