/**
 * @file
 * pointer_chase: dependent loads over a randomly permuted node pool.
 *
 * A table of 8-byte nodes {next, payload} is linked into one long
 * random cycle (Sattolo shuffle), so every step of a walk is a
 * data-dependent load to an unpredictable block — the classic
 * latency-bound memory pattern that no L1 can help with once the
 * pool outgrows it. Multiscalar structure: one task walks one chain
 * of 64 steps from its own seed node; the seed-array pointer is
 * forwarded at the top so independent chains overlap, turning serial
 * miss latency into overlapped misses (the memory-latency-tolerance
 * case the shared L2's MSHRs exist for).
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kNodesPerScale = 12288; // 96 KB of nodes per scale
constexpr unsigned kChainsPerScale = 192;
constexpr unsigned kSteps = 64;

const char *const kSource = R"(
# ---- pointer_chase: dependent loads over a random cycle ----
        .data
NSEEDS: .word 0
SEEDS:  .space 2048               # chain start addresses
TABLE:  .space 196608             # node pool: {next, payload} pairs
        .text

main:
        la   $20, SEEDS       !f
        lw   $9, NSEEDS
        sll  $9, $9, 2
        addu $21, $20, $9     !f  # $21 = end of seed array
        li   $16, 0           !f  # payload checksum
@ms     b    CHASE            !s

@ms .task main
@ms .targets CHASE
@ms .create $16, $20, $21
@ms .endtask

@ms .task CHASE
@ms .targets CHASE:loop, CHDONE
@ms .create $16, $20
@ms .endtask

CHASE:
        addu $20, $20, 4      !f  # seed pointer, forwarded early
        lw   $8, -4($20)          # chain head node address
        li   $9, 64               # steps per chain
CHSTEP:
        lw   $8, 0($8)            # node = node->next (dependent load)
        subu $9, $9, 1
        bgtz $9, CHSTEP
        lw   $10, 4($8)           # payload of the final node
        addu $16, $16, $10    !f
        bne  $20, $21, CHASE  !s

@ms .task CHDONE
@ms .endtask
CHDONE:
        move $4, $16
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

Workload
makeChase(unsigned scale)
{
    fatalIf(scale > 2, "pointer_chase node pool supports scale <= 2");
    Workload w;
    w.name = "pointer_chase";
    w.description = "dependent-load chains over a random cycle, "
                    "one task per 64-step chain";
    w.source = kSource;

    const unsigned nodes = kNodesPerScale * scale;
    const unsigned nseeds = kChainsPerScale * scale;

    // Sattolo's shuffle links the pool into a single cycle, so a walk
    // from any seed keeps visiting fresh, unpredictable blocks.
    Rng rng(86028157);
    std::vector<std::uint32_t> next(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        next[i] = i;
    for (unsigned i = nodes - 1; i > 0; --i)
        std::swap(next[i], next[rng.below(i)]);
    std::vector<std::uint32_t> seeds(nseeds);
    for (auto &s : seeds)
        s = std::uint32_t(rng.below(nodes));

    // Golden model: walk each chain and sum the final payloads.
    std::uint32_t sum = 0;
    for (unsigned c = 0; c < nseeds; ++c) {
        std::uint32_t idx = seeds[c];
        for (unsigned s = 0; s < kSteps; ++s)
            idx = next[idx];
        sum += idx * 2654435761u;
    }

    w.init = [next, seeds, nodes, nseeds](MainMemory &mem,
                                          const Program &prog) {
        const Addr table = *prog.symbol("TABLE");
        for (unsigned i = 0; i < nodes; ++i) {
            mem.write(table + Addr(8 * i), table + Addr(8 * next[i]),
                      4);
            mem.write(table + Addr(8 * i) + 4, i * 2654435761u, 4);
        }
        const Addr sd = *prog.symbol("SEEDS");
        for (unsigned i = 0; i < nseeds; ++i)
            mem.write(sd + Addr(4 * i), table + Addr(8 * seeds[i]), 4);
        mem.write(*prog.symbol("NSEEDS"), nseeds, 4);
    };

    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
