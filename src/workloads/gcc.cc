/**
 * @file
 * gcc analogue. The paper: gcc "distributes execution time uniformly
 * across a great deal of code... for the task partitioning that we
 * use currently, squashes (both prediction and memory order) result
 * in near-sequential execution of the important tasks. Accordingly,
 * the overheads in our multiscalar execution result in a slow down in
 * some cases."
 *
 * An IR-walking pass: a stream of small operations dispatched through
 * a branchy handler chain. Handlers read-modify-write a small set of
 * global counters (file/buffer pointers and counters in the paper's
 * terms — "typically these variables have their address taken, and
 * therefore cannot be register allocated"), so concurrent tasks
 * violate memory order constantly; a data-dependent side path makes
 * the successor task hard to predict. The result is the paper's
 * near-serial behaviour where the multiscalar overheads show.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kOpsPerScale = 4000;

const char *const kSource = R"(
# ---- gcc: branchy op dispatch over shared global state ----
        .data
NOPS:   .word 0
GLOBS:  .space 32                 # eight global counters
OPS:    .space 64512              # {code, operand} pairs, host-poked
        .text

main:
        la   $20, OPS         !f
        lw   $9, NOPS
        sll  $9, $9, 3
        addu $21, $20, $9     !f
        la   $22, GLOBS       !f
        li   $19, 0           !f  # checksum
@def(SYNC) li $23, 0          !f  # register copy of the hot global
@ms     b    GLOOP            !s

@ms .task main
@ms .targets GLOOP
@ms .create $19, $20, $21, $22
@ms @def(SYNC) .create $23
@ms .endtask

@ms .task GLOOP
@ms .targets GLOOP:loop, GSPECIAL, GDONE
@ms .create $19, $20
@ms @def(SYNC) .create $23
@ms .endtask

GLOOP:
        addu $20, $20, 8      !f  # op pointer, forwarded early
        lw   $8, -8($20)          # code
        lw   $9, -4($20)          # operand
@ndef(SYNC) lw   $14, 0($22)      # hot global read *early* in the
                                  # task: the paper's memory-order
                                  # squash scenario (section 3.1.1)
@ms @def(SYNC) move $14, $23      # SYNC variant: the global travels
                                  # in a register instead (the fix
                                  # section 3.1.1 proposes)
@sc @def(SYNC) lw  $14, 0($22)
        # branchy dispatch chain (gcc-style unpredictable control)
        li   $10, 3
        slt  $11, $8, $10
        beq  $11, $0, GHI
        beq  $8, $0, G0
        li   $10, 1
        beq  $8, $10, G1
        # code 2: G[2] -= operand
        lw   $11, 8($22)
        subu $11, $11, $9
        sw   $11, 8($22)
        b    GACC
G0:     # G[0] += operand
        lw   $11, 0($22)
        addu $11, $11, $9
        sw   $11, 0($22)
        b    GACC
G1:     # G[1] ^= operand
        lw   $11, 4($22)
        xor  $11, $11, $9
        sw   $11, 4($22)
        b    GACC
GHI:
        li   $10, 5
        slt  $11, $8, $10
        beq  $11, $0, GTOP
        li   $10, 3
        beq  $8, $10, G3
        # code 4: G[4] += G[3] (cross-global dependence)
        lw   $11, 12($22)
        lw   $12, 16($22)
        addu $12, $12, $11
        sw   $12, 16($22)
        b    GACC
G3:     # G[3] = G[3]*5 + operand
        lw   $11, 12($22)
        mul  $11, $11, 5
        addu $11, $11, $9
        sw   $11, 12($22)
        b    GACC
GTOP:
        li   $10, 7
        beq  $8, $10, GSPEC       # code 7: special side path
        # codes 5, 6: G[code] rotated mix
        sll  $12, $8, 2
        addu $12, $12, $22
        lw   $11, 0($12)
        srl  $13, $11, 3
        xor  $11, $13, $9
        sw   $11, 0($12)
GACC:
        addu $12, $14, $9         # every op updates the hot global
        sw   $12, 0($22)          # (paper: "file and buffer pointers
                                  # and counters")
@ms @def(SYNC) move $23, $12  !f  # SYNC: forward the new value
        mul  $13, $19, 3
        addu $19, $13, $14    !f  # fold the early global read
        bne  $20, $21, GLOOP  !st # loop back ends the task
        b    GDONE            !s  # stream exhausted

GSPEC:
        # leave the main loop through a different task: the
        # sequencer's prediction for GLOOP becomes data dependent.
@ms     release $19
@ms @def(SYNC) release $23
        b    GSPECIAL         !s

@ms .task GSPECIAL
@ms .targets GLOOP, GDONE
@ms .create $19
@ms @def(SYNC) .create $23
@ms .endtask
GSPECIAL:
        # rebalance pass over all eight globals
        lw   $8, 28($22)
        li   $9, 0
        li   $10, 8
GSPLOOP:
        sll  $11, $9, 2
        addu $11, $11, $22
        lw   $12, 0($11)
        addu $8, $8, $12
        addu $9, $9, 1
        bne  $9, $10, GSPLOOP
        sw   $8, 28($22)
        mul  $13, $19, 3
        addu $19, $13, $8     !f
@ms @def(SYNC) release $23
        bne  $20, $21, GLOOP  !st
        b    GDONE            !s

@ms .task GDONE
@ms .endtask
GDONE:
        # fold the globals into the checksum
        li   $9, 0
        li   $10, 8
GFOLD:
        sll  $11, $9, 2
        addu $11, $11, $22
        lw   $12, 0($11)
        mul  $13, $19, 3
        addu $19, $13, $12
        addu $9, $9, 1
        bne  $9, $10, GFOLD
        move $4, $19
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeGcc(unsigned scale)
{
    fatalIf(scale > 2, "gcc workload supports scale <= 2");
    Workload w;
    w.name = "gcc";
    w.description =
        "branchy op dispatch with shared global state (near-serial)";
    w.source = kSource;

    const unsigned nops = kOpsPerScale * scale;
    std::vector<std::uint32_t> ops(size_t(nops) * 2);
    Rng rng(31415);
    for (unsigned i = 0; i < nops; ++i) {
        // Skewed, pattern-free code distribution; code 7 ~ 6%.
        const std::uint64_t r = rng.below(100);
        std::uint32_t code;
        if (r < 22)
            code = 0;
        else if (r < 40)
            code = 1;
        else if (r < 55)
            code = 2;
        else if (r < 70)
            code = 3;
        else if (r < 82)
            code = 4;
        else if (r < 89)
            code = 5;
        else if (r < 94)
            code = 6;
        else
            code = 7;
        ops[size_t(i) * 2] = code;
        ops[size_t(i) * 2 + 1] = std::uint32_t(rng.below(1000));
    }

    w.init = [ops, nops](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NOPS"), nops, 4);
        const Addr base = *prog.symbol("OPS");
        for (size_t i = 0; i < ops.size(); ++i)
            mem.write(base + Addr(4 * i), ops[i], 4);
    };

    // Golden model.
    std::uint32_t g[8] = {};
    std::uint32_t acc = 0;
    for (unsigned i = 0; i < nops; ++i) {
        const std::uint32_t code = ops[size_t(i) * 2];
        const std::uint32_t operand = ops[size_t(i) * 2 + 1];
        const std::uint32_t g0_before = g[0];
        switch (code) {
          case 0:
            g[0] += operand;
            break;
          case 1:
            g[1] ^= operand;
            break;
          case 2:
            g[2] -= operand;
            break;
          case 3:
            g[3] = g[3] * 5 + operand;
            break;
          case 4:
            g[4] += g[3];
            break;
          case 5:
          case 6:
            g[code] = (g[code] >> 3) ^ operand;
            break;
          case 7: {
            std::uint32_t s = g[7];
            for (unsigned k = 0; k < 8; ++k)
                s += g[k];
            g[7] = s;
            acc = acc * 3 + s;
            break;
          }
        }
        if (code != 7) {
            g[0] = g0_before + operand;
            acc = acc * 3 + g0_before;
        }
    }
    for (unsigned k = 0; k < 8; ++k)
        acc = acc * 3 + g[k];
    w.expected = std::to_string(std::int32_t(acc)) + "\n";
    return w;
}

} // namespace msim::workloads
