/**
 * @file
 * The benchmark workloads.
 *
 * Each workload is a multiscalar assembly program (with @ms/@sc
 * conditional lines so one source yields both the scalar and the
 * multiscalar binary, exactly like the paper's single multiscalar
 * binary per benchmark), an input (host-poked memory and/or the
 * syscall-5 integer stream), and the expected output computed by a
 * host-side golden model. Simulated output must match the golden
 * model bit for bit in every configuration — that is the master
 * correctness check of the whole simulator.
 *
 * The ten workloads mirror the paper's benchmark set (section 5.2):
 * analogues of compress, eqntott, espresso, gcc, sc, xlisp (SPECint92
 * structure), tomcatv (SPECfp92), cmp and wc (GNU utilities), and the
 * linked-list example of Figure 3.
 */

#ifndef MSIM_WORKLOADS_WORKLOAD_HH
#define MSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mem/main_memory.hh"
#include "program/program.hh"

namespace msim::workloads {

/** A ready-to-run benchmark. */
struct Workload
{
    std::string name;
    std::string description;
    /** Assembly source (assemble with multiscalar=true or false). */
    std::string source;
    /** Integer stream consumed by syscall 5. */
    std::deque<std::int32_t> input;
    /** Host-side data initialization (after program load). */
    std::function<void(MainMemory &, const Program &)> init;
    /** Expected program output (host golden model). */
    std::string expected;
};

/** Factory signature; scale > 0 scales the input size (1 = default). */
using WorkloadFactory = Workload (*)(unsigned scale);

/** All registered workloads by name. */
const std::map<std::string, WorkloadFactory> &registry();

/** Build a workload by name (fatal on unknown names). */
Workload get(const std::string &name, unsigned scale = 1);

// Individual factories.
Workload makeExample(unsigned scale);
Workload makeWc(unsigned scale);
Workload makeCmp(unsigned scale);
Workload makeTomcatv(unsigned scale);
Workload makeEqntott(unsigned scale);
Workload makeCompress(unsigned scale);
Workload makeEspresso(unsigned scale);
Workload makeSc(unsigned scale);
Workload makeGcc(unsigned scale);
Workload makeXlisp(unsigned scale);
// Cache-stress family (memory-hierarchy studies).
Workload makeChase(unsigned scale);
Workload makeTriad(unsigned scale);
Workload makeGups(unsigned scale);
Workload makeStencil(unsigned scale);
Workload makeThrash(unsigned scale);

} // namespace msim::workloads

#endif // MSIM_WORKLOADS_WORKLOAD_HH
