/**
 * @file
 * eqntott analogue. The paper: "most (85%) of the instructions in
 * eqntott are in the cmppt function, which is dominated by a loop.
 * The compiler automatically encompasses the entire loop body into a
 * task, allowing multiple iterations of the loop to execute in
 * parallel."
 *
 * cmppt compares two product terms (vectors of 2-bit values) and
 * returns -1/0/1. Here an outer loop compares consecutive pairs of
 * terms from a table (as qsort does inside eqntott) and accumulates
 * an order statistic. A task is one cmppt call: the pair pointer is
 * forwarded at the top, and the accumulator is consumed/produced at
 * the bottom, so comparisons run in parallel. The inner comparison
 * loop usually runs to a data-dependent early exit, giving mildly
 * variable task lengths.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kTermWords = 16;  //!< words per product term
constexpr unsigned kPairsPerScale = 1600;

const char *const kSource = R"(
# ---- eqntott: cmppt loop, one task per term comparison ----
        .data
NPAIRS: .word 0
TERMS:  .space 204864             # (pairs+1) * 16 words, host-poked
                                  # (sized for scale 2: 3201 terms)
        .text

main:
        la   $20, TERMS       !f
        lw   $9, NPAIRS
        sll  $9, $9, 6            # 64 bytes per term
        addu $21, $20, $9     !f  # end pointer (last pair start)
        li   $19, 0           !f  # order statistic accumulator
@ms     b    CMPPT            !s

@ms .task main
@ms .targets CMPPT
@ms .create $19, $20, $21
@ms .endtask

@ms .task CMPPT
@ms .targets CMPPT:loop, CMPDONE
@ms .create $19, $20
@ms .endtask

CMPPT:
        addu $20, $20, 64     !f  # next pair, forwarded early
        subu $8, $20, 64          # a = this term
        move $9, $20              # b = next term
        addu $10, $8, 64          # end of a
        li   $11, 0               # result
CMPW:
        lw   $12, 0($8)
        lw   $13, 0($9)
        beq  $12, $13, CMPNEXT
        slt  $14, $12, $13
        bne  $14, $0, CMPLT
        li   $11, 1
        b    CMPOUT
CMPLT:
        li   $11, -1
        b    CMPOUT
CMPNEXT:
        addu $8, $8, 4
        addu $9, $9, 4
        bne  $8, $10, CMPW
CMPOUT:
        # accumulate: stat = stat*3 + (result+1)  (order-sensitive)
        mul  $15, $19, 3
        addu $15, $15, $11
        addu $19, $15, 1      !f
        bne  $20, $21, CMPPT  !s

@ms .task CMPDONE
@ms .endtask
CMPDONE:
        move $4, $19
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeEqntott(unsigned scale)
{
    fatalIf(scale > 2, "eqntott workload supports scale <= 2");
    fatalIf((kPairsPerScale * scale + 1) * kTermWords * 4 > 204864,
            "eqntott TERMS pool overflow");
    Workload w;
    w.name = "eqntott";
    w.description = "cmppt-style term comparisons, one task per pair";
    w.source = kSource;

    const unsigned npairs = kPairsPerScale * scale;
    const unsigned nterms = npairs + 1;
    // Terms share long common prefixes (cmppt usually scans several
    // words before deciding), with deterministic divergence points.
    std::vector<std::uint32_t> terms(size_t(nterms) * kTermWords);
    Rng rng(4242);
    for (unsigned t = 0; t < nterms; ++t) {
        const unsigned diverge = 2 + unsigned(rng.below(kTermWords - 2));
        for (unsigned i = 0; i < kTermWords; ++i) {
            std::uint32_t base = 0x22222222u;  // common prefix value
            terms[size_t(t) * kTermWords + i] =
                i < diverge ? base : std::uint32_t(rng.below(4));
        }
    }

    w.init = [terms, npairs](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NPAIRS"), npairs, 4);
        const Addr base = *prog.symbol("TERMS");
        for (size_t i = 0; i < terms.size(); ++i)
            mem.write(base + Addr(4 * i), terms[i], 4);
    };

    // Golden model.
    // Unsigned accumulator: the guest computes this with wrapping
    // `mul`, and int32 overflow is UB on the host (at -O2 the
    // optimizer really does miscompile it).
    std::uint32_t stat = 0;
    for (unsigned p = 0; p < npairs; ++p) {
        const std::uint32_t *a = &terms[size_t(p) * kTermWords];
        const std::uint32_t *b = a + kTermWords;
        std::int32_t res = 0;
        for (unsigned i = 0; i < kTermWords; ++i) {
            if (a[i] != b[i]) {
                res = std::int32_t(a[i]) < std::int32_t(b[i]) ? -1 : 1;
                break;
            }
        }
        stat = stat * 3 + std::uint32_t(res + 1);
    }
    w.expected = std::to_string(std::int32_t(stat)) + "\n";
    return w;
}

} // namespace msim::workloads
