#include "workloads/workload.hh"

#include "common/logging.hh"

namespace msim::workloads {

const std::map<std::string, WorkloadFactory> &
registry()
{
    // Workloads are added here as they are brought up; the
    // correctness test sweeps everything in this table.
    static const std::map<std::string, WorkloadFactory> table = {
        {"example", &makeExample},
        {"wc", &makeWc},
        {"cmp", &makeCmp},
        {"eqntott", &makeEqntott},
        {"compress", &makeCompress},
        {"espresso", &makeEspresso},
        {"tomcatv", &makeTomcatv},
        {"sc", &makeSc},
        {"gcc", &makeGcc},
        {"xlisp", &makeXlisp},
        {"pointer_chase", &makeChase},
        {"stream_triad", &makeTriad},
        {"gups", &makeGups},
        {"stencil", &makeStencil},
        {"thrash", &makeThrash},
    };
    return table;
}

Workload
get(const std::string &name, unsigned scale)
{
    auto it = registry().find(name);
    fatalIf(it == registry().end(), "unknown workload '", name, "'");
    fatalIf(scale == 0, "workload scale must be positive");
    return it->second(scale);
}

} // namespace msim::workloads
