/**
 * @file
 * cmp analogue (GNU diffutils cmp, part of the paper's suite):
 * compare two buffers byte by byte and report the first difference.
 *
 * Multiscalar structure: one task compares a 256-byte chunk; the
 * chunk pointer is forwarded at the top so chunk comparisons overlap.
 * A difference exits through the second task target. The buffers
 * differ only near the end (cmp on nearly identical files, the
 * interesting case), so almost the whole input is compared in
 * parallel — the paper reports cmp's best-in-suite speedups.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kChunk = 256;
constexpr unsigned kChunksPerScale = 80;

const char *const kSource = R"(
# ---- cmp: byte compare over fixed-size chunks ----
        .data
NBYTES: .word 0
BUFA:   .space 40960
        .space 192                # skew B so A[x]/B[x] avoid mapping
                                  # to the same direct-mapped set
BUFB:   .space 40960
        .text

main:
        la   $20, BUFA        !f
        lw   $9, NBYTES
        addu $21, $20, $9     !f  # $21 = end of A
        la   $22, BUFB
        subu $22, $22, $20    !f  # $22 = B - A displacement
        li   $16, 0           !f  # first-difference offset (0 = none)
@ms     b    CMPLOOP          !s

@ms .task main
@ms .targets CMPLOOP
@ms .create $16, $20, $21, $22
@ms .endtask

@ms .task CMPLOOP
@ms .targets CMPLOOP:loop, CMPDIFF, CMPEQ
@ms .create $16, $20
@ms .endtask

CMPLOOP:
        addu $20, $20, 256    !f  # chunk pointer, forwarded early
        subu $8, $20, 256         # scan pointer into A
CMPBYTE:
        lbu  $9, 0($8)
        addu $10, $8, $22
        lbu  $10, 0($10)
        bne  $9, $10, CMPFOUND
        addu $8, $8, 1
        bne  $8, $20, CMPBYTE
@ms     release $16               # chunk equal: $16 stays unchanged
        bne  $20, $21, CMPLOOP !s # fall through: buffers are equal

@ms .task CMPEQ
@ms .endtask
CMPEQ:
        li   $4, 0
        b    CMPPRINT
CMPFOUND:
        la   $9, BUFA
        subu $16, $8, $9      !f  # difference offset
        b    CMPDIFF          !s

@ms .task CMPDIFF
@ms .endtask
CMPDIFF:
        addu $4, $16, 1           # cmp reports 1-based position
CMPPRINT:
        li   $2, 1
        syscall                   # print position (0 = identical)
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall
)";

} // namespace

Workload
makeCmp(unsigned scale)
{
    fatalIf(scale > 2, "cmp workload buffers support scale <= 2");
    Workload w;
    w.name = "cmp";
    w.description = "byte compare, one task per 256-byte chunk";
    w.source = kSource;

    const unsigned nbytes = kChunk * kChunksPerScale * scale;
    std::vector<std::uint8_t> a(nbytes), b(nbytes);
    for (unsigned i = 0; i < nbytes; ++i)
        a[i] = b[i] = std::uint8_t('A' + (i * 131) % 53);
    // One difference late in the buffer.
    const unsigned diff = nbytes - kChunk / 2;
    b[diff] = std::uint8_t(a[diff] + 1);

    w.init = [a, b, nbytes](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NBYTES"), nbytes, 4);
        mem.writeBytes(*prog.symbol("BUFA"), a.data(), a.size());
        mem.writeBytes(*prog.symbol("BUFB"), b.data(), b.size());
    };

    w.expected = std::to_string(diff + 1) + "\n";
    return w;
}

} // namespace msim::workloads
