/**
 * @file
 * thrash: repeated block-stride sweeps over a buffer larger than the
 * aggregate L1 capacity.
 *
 * Each pass touches one word per 64-byte block of a 96 KB buffer, so
 * with 64 KB of total L1 every pass after the first still misses L1
 * on (nearly) every access — pure capacity thrash. A shared L2 that
 * holds the buffer converts passes 2..N from bus-latency-bound to
 * L2-hit-bound, which makes this the cleanest single-number probe of
 * the L2's latency benefit. Multiscalar structure: the pass/chunk
 * schedule is a precomputed pointer list (so the induction variable
 * forwards trivially); one task sweeps one 16 KB chunk.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kBufBytes = 98304;  // 96 KB buffer
constexpr unsigned kChunkBytes = 16384;
constexpr unsigned kPassesPerScale = 3;

const char *const kSource = R"(
# ---- thrash: block-stride sweeps over a 96 KB buffer ----
        .data
NCHUNKS: .word 0
CHUNKS: .space 512                # chunk base addresses, pass-major
BUF:    .space 98304
        .text

main:
        la   $20, CHUNKS      !f
        lw   $9, NCHUNKS
        sll  $9, $9, 2
        addu $21, $20, $9     !f  # $21 = end of chunk list
        li   $16, 0           !f  # checksum
@ms     b    THRASH           !s

@ms .task main
@ms .targets THRASH
@ms .create $16, $20, $21
@ms .endtask

@ms .task THRASH
@ms .targets THRASH:loop, THDONE
@ms .create $16, $20
@ms .endtask

THRASH:
        addu $20, $20, 4      !f  # chunk pointer, forwarded early
        lw   $8, -4($20)          # chunk base address
        addu $9, $8, 16384        # chunk end
        li   $11, 0               # chunk checksum
THBLK:
        lw   $10, 0($8)           # one word per 64-byte block
        addu $11, $11, $10
        addu $8, $8, 64
        bne  $8, $9, THBLK
        addu $16, $16, $11    !f
        bne  $20, $21, THRASH !s

@ms .task THDONE
@ms .endtask
THDONE:
        move $4, $16
        li   $2, 1
        syscall                   # print checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

Workload
makeThrash(unsigned scale)
{
    fatalIf(scale > 4, "thrash chunk list supports scale <= 4");
    Workload w;
    w.name = "thrash";
    w.description = "repeated block-stride sweeps over 96 KB, one "
                    "task per 16 KB chunk";
    w.source = kSource;

    const unsigned chunks_per_pass = kBufBytes / kChunkBytes;
    const unsigned nchunks = chunks_per_pass * kPassesPerScale * scale;
    Rng rng(600851);
    std::vector<std::uint32_t> buf(kBufBytes / 4);
    for (auto &v : buf)
        v = std::uint32_t(rng.next());

    // Golden model: each pass re-reads the same one-word-per-block
    // sample of the buffer.
    std::uint32_t pass_sum = 0;
    for (unsigned i = 0; i < kBufBytes / 4; i += 16)
        pass_sum += buf[i];
    const std::uint32_t sum =
        pass_sum * std::uint32_t(kPassesPerScale * scale);

    w.init = [buf, nchunks, chunks_per_pass](MainMemory &mem,
                                             const Program &prog) {
        mem.write(*prog.symbol("NCHUNKS"), nchunks, 4);
        const Addr bb = *prog.symbol("BUF");
        for (unsigned i = 0; i < buf.size(); ++i)
            mem.write(bb + Addr(4 * i), buf[i], 4);
        const Addr cb = *prog.symbol("CHUNKS");
        for (unsigned i = 0; i < nchunks; ++i)
            mem.write(cb + Addr(4 * i),
                      bb + Addr((i % chunks_per_pass) * kChunkBytes),
                      4);
    };

    w.expected = std::to_string(std::int32_t(sum)) + "\n";
    return w;
}

} // namespace msim::workloads
