/**
 * @file
 * xlisp analogue (SPECint92 li, run on 6 queens in the paper; we use
 * 7 queens for a longer run). The search is a recursive tree walk —
 * lisp-style, every recursive step allocates a cons cell from a
 * shared heap pointer. That allocation is a read-modify-write on one
 * global, so concurrent tasks violate memory order almost every time:
 * the paper's observation that xlisp's tasks run near-sequentially
 * (with the multiscalar overheads then showing as a slowdown) falls
 * out of the allocation behaviour. Tasks are the first-row branches
 * of the search, so there are few of them and they are unbalanced.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"

namespace msim::workloads {

namespace {

constexpr unsigned kQueens = 7;

const char *const kSource = R"(
# ---- xlisp: recursive n-queens with cons allocation ----
        .data
NQ:     .word 0                   # board size (host-poked)
HEAPP:  .word HEAP                # cons allocation pointer
HEAP:   .space 131072
        .text

main:
        lw   $24, NQ          !f  # N
        li   $9, 1
        sllv $25, $9, $24
        subu $25, $25, 1      !f  # full column mask
        li   $19, 0           !f  # checksum
        li   $20, 0           !f  # first-row column index
@ms     b    XQLOOP           !s

@ms .task main
@ms .targets XQLOOP
@ms .create $19, $20, $24, $25
@ms .endtask

@ms .task XQLOOP
@ms .targets XQLOOP:loop, XQDONE
@ms .create $19, $20
@ms .endtask

XQLOOP:
        addu $20, $20, 1      !f  # next first-row column
        subu $8, $20, 1
        li   $9, 1
        sllv $12, $9, $8          # first queen bit
        move $4, $12              # cols
        sll  $5, $12, 1           # left diagonals
        srl  $6, $12, 1           # right diagonals
        jal  SOLVE
        mul  $9, $19, 3
        addu $19, $9, $2      !f
        bne  $20, $24, XQLOOP !s

@ms .task XQDONE
@ms .endtask
XQDONE:
        lw   $8, HEAPP            # include allocation count
        la   $9, HEAP
        subu $8, $8, $9
        srl  $8, $8, 3
        addu $4, $19, $8
        li   $2, 1
        syscall
        li   $4, 10
        li   $2, 11
        syscall
        li   $2, 10
        syscall

# SOLVE(cols $4, ld $5, rd $6) -> solution count $2
SOLVE:
        beq  $4, $25, QFOUND
        # allocate a cons cell for this node (serializing global)
        lw   $9, HEAPP
        addu $10, $9, 8
        sw   $10, HEAPP
        sw   $4, 0($9)
        sw   $5, 4($9)
        or   $11, $4, $5
        or   $11, $11, $6
        nor  $11, $11, $0
        and  $11, $11, $25        # free positions
        beq  $11, $0, QDEAD
        subu $29, $29, 24
        sw   $31, 0($29)
        sw   $16, 4($29)
        sw   $17, 8($29)
        sw   $4, 12($29)
        sw   $5, 16($29)
        sw   $6, 20($29)
        move $16, $11             # remaining free bits
        li   $17, 0               # local count
QTRY:
        subu $12, $0, $16
        and  $12, $12, $16        # lowest free bit
        xor  $16, $16, $12
        lw   $4, 12($29)
        or   $4, $4, $12
        lw   $5, 16($29)
        or   $5, $5, $12
        sll  $5, $5, 1
        lw   $6, 20($29)
        or   $6, $6, $12
        srl  $6, $6, 1
        jal  SOLVE
        addu $17, $17, $2
        bne  $16, $0, QTRY
        move $2, $17
        lw   $31, 0($29)
        lw   $16, 4($29)
        lw   $17, 8($29)
        addu $29, $29, 24
        jr   $31
QDEAD:
        li   $2, 0
        jr   $31
QFOUND:
        li   $2, 1
        jr   $31
)";

/** Host-side solver mirroring SOLVE (also counts allocations). */
std::uint32_t
solve(std::uint32_t cols, std::uint32_t ld, std::uint32_t rd,
      std::uint32_t full, std::uint64_t &allocs)
{
    if (cols == full)
        return 1;
    ++allocs;
    std::uint32_t free_bits = ~(cols | ld | rd) & full;
    if (free_bits == 0)
        return 0;
    std::uint32_t count = 0;
    while (free_bits) {
        const std::uint32_t bit = free_bits & (0u - free_bits);
        free_bits ^= bit;
        count += solve(cols | bit, ((ld | bit) << 1),
                       ((rd | bit) >> 1), full, allocs);
    }
    return count;
}

} // namespace

Workload
makeXlisp(unsigned scale)
{
    // Board size grows with scale; the allocation-count guard below
    // keeps the simulated heap inside the static HEAP pool (n = 10
    // would need ~280 KB).
    fatalIf(scale > 3, "xlisp workload supports scale <= 3");
    Workload w;
    w.name = "xlisp";
    w.description =
        "recursive n-queens with serializing cons allocation";
    w.source = kSource;

    const unsigned n = kQueens + (scale - 1);
    w.init = [n](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NQ"), n, 4);
    };

    // Golden model.
    const std::uint32_t full = (1u << n) - 1;
    std::uint64_t allocs = 0;
    std::uint32_t acc = 0;
    for (unsigned c = 0; c < n; ++c) {
        const std::uint32_t bit = 1u << c;
        acc = acc * 3 +
              solve(bit, bit << 1, bit >> 1, full, allocs);
    }
    fatalIf(allocs * 8 > 131072, "xlisp heap overflow");
    w.expected =
        std::to_string(std::int32_t(acc + std::uint32_t(allocs))) +
        "\n";
    return w;
}

} // namespace msim::workloads
