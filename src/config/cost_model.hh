/**
 * @file
 * A deterministic hardware-cost proxy for design-space exploration.
 *
 * The explorer (bench_explore, msim-explore) ranks machine shapes by
 * speedup *and* by how much silicon they would plausibly spend; the
 * Pareto frontier over (cost, speedup) is the deliverable. Real area
 * models are out of scope — this is an explicit, fixed formula in
 * "KB-equivalents" (1.0 ≈ one kilobyte of SRAM) so that points are
 * comparable across runs and the frontier is reproducible. The
 * constants are documented in DESIGN.md ("Machine shapes and the
 * design-space explorer") and must only change together with that
 * section.
 */

#ifndef MSIM_CONFIG_COST_MODEL_HH
#define MSIM_CONFIG_COST_MODEL_HH

#include "core/ms_config.hh"

namespace msim::config {

/** Cost of one processing unit's pipeline (no caches). */
double puCostProxy(const PuConfig &pu);

/**
 * Total cost proxy of a multiscalar machine shape: pipelines,
 * per-unit icaches, data cache banks plus crossbar ports, ARB
 * storage, ring bandwidth (faster rings cost more), and the task
 * prediction hardware. Deterministic pure function of the config.
 */
double hardwareCostProxy(const MsConfig &ms);

} // namespace msim::config

#endif // MSIM_CONFIG_COST_MODEL_HH
