#include "config/machine_shape.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

namespace msim::config {

namespace {

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw ConfigError(path, why);
}

std::string
joinPath(const std::string &prefix, const std::string &key)
{
    return prefix.empty() ? key : prefix + "." + key;
}

std::uint64_t
requireUint(const json::Value &v, const std::string &path,
            std::uint64_t min, std::uint64_t max)
{
    if (!v.isNumber() || v.asDouble() < 0 ||
        double(v.asInt()) != v.asDouble())
        fail(path, "must be a non-negative integer");
    const std::uint64_t u = std::uint64_t(v.asInt());
    if (u < min || u > max)
        fail(path, "must be in [" + std::to_string(min) + ", " +
                       std::to_string(max) + "], got " +
                       std::to_string(u));
    return u;
}

bool
requireBool(const json::Value &v, const std::string &path)
{
    if (!v.isBool())
        fail(path, "must be a boolean");
    return v.asBool();
}

std::string
requireString(const json::Value &v, const std::string &path)
{
    if (!v.isString())
        fail(path, "must be a string");
    return v.asString();
}

using FieldHandler =
    std::function<void(const json::Value &, const std::string &)>;

/**
 * Walk one JSON object, dispatching each entry to its handler.
 * Unknown keys fail with their dotted path (plus a hint when the key
 * belongs to the other machine kind), duplicates always fail.
 */
void
walkObject(const json::Value &v, const std::string &prefix,
           const std::map<std::string, FieldHandler> &fields,
           const std::map<std::string, std::string> &hints = {})
{
    if (!v.isObject())
        fail(prefix.empty() ? "(document)" : prefix,
             "must be a JSON object");
    std::set<std::string> seen;
    for (const auto &[key, value] : v.entries()) {
        const std::string path = joinPath(prefix, key);
        if (!seen.insert(key).second)
            fail(path, "duplicate key");
        const auto it = fields.find(key);
        if (it == fields.end()) {
            const auto hint = hints.find(key);
            fail(path, hint != hints.end()
                           ? "unknown key (" + hint->second + ")"
                           : "unknown key");
        }
        it->second(value, path);
    }
}

std::map<std::string, FieldHandler>
puFields(PuConfig &pu)
{
    return {
        {"issue_width",
         [&pu](const json::Value &v, const std::string &p) {
             pu.issueWidth = unsigned(requireUint(v, p, 1, 16));
         }},
        {"out_of_order",
         [&pu](const json::Value &v, const std::string &p) {
             pu.outOfOrder = requireBool(v, p);
         }},
        {"window_size",
         [&pu](const json::Value &v, const std::string &p) {
             pu.windowSize = unsigned(requireUint(v, p, 1, 1024));
         }},
        {"fetch_buffer_size",
         [&pu](const json::Value &v, const std::string &p) {
             pu.fetchBufferSize = unsigned(requireUint(v, p, 1, 1024));
         }},
        {"intra_branch_predict",
         [&pu](const json::Value &v, const std::string &p) {
             pu.intraBranchPredict = requireBool(v, p);
         }},
        {"branch_predictor_entries",
         [&pu](const json::Value &v, const std::string &p) {
             pu.branchPredictorEntries =
                 unsigned(requireUint(v, p, 1, 1u << 20));
         }},
    };
}

FieldHandler
cacheHandler(Cache::Params &cache)
{
    return [&cache](const json::Value &v, const std::string &p) {
        walkObject(
            v, p,
            {
                {"size_bytes",
                 [&cache](const json::Value &f, const std::string &fp) {
                     cache.sizeBytes =
                         std::size_t(requireUint(f, fp, 1, 1u << 30));
                 }},
                {"block_bytes",
                 [&cache](const json::Value &f, const std::string &fp) {
                     cache.blockBytes =
                         std::size_t(requireUint(f, fp, 1, 1u << 20));
                 }},
                {"hit_latency",
                 [&cache](const json::Value &f, const std::string &fp) {
                     cache.hitLatency =
                         unsigned(requireUint(f, fp, 0, 1024));
                 }},
            });
    };
}

/**
 * The "l2" key: null disables the shared L2 (the default machine),
 * an object configures it. Writes through @p l2 (an optional owned
 * by MsConfig or ScalarConfig).
 */
FieldHandler
l2Handler(std::optional<L2Params> &l2)
{
    return [&l2](const json::Value &v, const std::string &p) {
        if (v.isNull()) {
            l2.reset();
            return;
        }
        l2.emplace();
        L2Params &params = *l2;
        walkObject(
            v, p,
            {
                {"size_bytes",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.sizeBytes =
                         std::size_t(requireUint(f, fp, 1, 1u << 30));
                 }},
                {"assoc",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.assoc = unsigned(requireUint(f, fp, 1, 64));
                 }},
                {"block_bytes",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.blockBytes =
                         std::size_t(requireUint(f, fp, 1, 1u << 20));
                 }},
                {"hit_latency",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.hitLatency =
                         unsigned(requireUint(f, fp, 0, 1024));
                 }},
                {"num_banks",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.numBanks =
                         unsigned(requireUint(f, fp, 1, 64));
                 }},
                {"mshrs_per_bank",
                 [&params](const json::Value &f, const std::string &fp) {
                     params.mshrsPerBank =
                         unsigned(requireUint(f, fp, 1, 1024));
                 }},
                {"inclusion",
                 [&params](const json::Value &f, const std::string &fp) {
                     const std::string s = requireString(f, fp);
                     if (s == "inclusive")
                         params.inclusion = L2Inclusion::kInclusive;
                     else if (s == "exclusive")
                         params.inclusion = L2Inclusion::kExclusive;
                     else if (s == "nine")
                         params.inclusion = L2Inclusion::kNine;
                     else
                         fail(fp, "must be \"inclusive\", "
                                  "\"exclusive\" or \"nine\", got \"" +
                                      s + "\"");
                 }},
            },
            {{"bank_size_bytes",
              "the L2 is sized by size_bytes split over num_banks"}});
    };
}

FieldHandler
busHandler(MemoryBus::Params &bus)
{
    return [&bus](const json::Value &v, const std::string &p) {
        walkObject(
            v, p,
            {
                {"first_beat_latency",
                 [&bus](const json::Value &f, const std::string &fp) {
                     bus.firstBeatLatency =
                         unsigned(requireUint(f, fp, 1, 4096));
                 }},
                {"extra_beat_latency",
                 [&bus](const json::Value &f, const std::string &fp) {
                     bus.extraBeatLatency =
                         unsigned(requireUint(f, fp, 0, 4096));
                 }},
                {"beat_words",
                 [&bus](const json::Value &f, const std::string &fp) {
                     bus.beatWords =
                         unsigned(requireUint(f, fp, 1, 64));
                 }},
            });
    };
}

void
parseMultiscalar(const json::Value &doc, MachineShape &shape)
{
    MsConfig &ms = shape.ms;
    std::map<std::string, FieldHandler> fields = {
        {"schema", [](const json::Value &, const std::string &) {}},
        {"name", [](const json::Value &, const std::string &) {}},
        {"multiscalar",
         [](const json::Value &, const std::string &) {}},
        {"units",
         [&ms](const json::Value &v, const std::string &p) {
             ms.numUnits = unsigned(requireUint(v, p, 1, 64));
         }},
        {"pu",
         [&ms](const json::Value &v, const std::string &p) {
             walkObject(v, p, puFields(ms.pu));
         }},
        {"ring_hop_latency",
         [&ms](const json::Value &v, const std::string &p) {
             ms.ringHopLatency = unsigned(requireUint(v, p, 0, 64));
         }},
        {"icache", cacheHandler(ms.icache)},
        {"dcache",
         [&ms](const json::Value &v, const std::string &p) {
             walkObject(
                 v, p,
                 {
                     {"num_banks",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          // 0 is the documented defaulting marker:
                          // "use 2 × units" (MsConfig::effectiveBanks).
                          ms.numBanks =
                              unsigned(requireUint(f, fp, 0, 1024));
                      }},
                     {"bank_size_bytes",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.bankSizeBytes = std::size_t(
                              requireUint(f, fp, 1, 1u << 30));
                      }},
                     {"block_bytes",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.blockBytes = std::size_t(
                              requireUint(f, fp, 1, 1u << 20));
                      }},
                     {"hit_latency",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.dcacheHitLatency =
                              unsigned(requireUint(f, fp, 0, 1024));
                      }},
                 },
                 {{"size_bytes",
                   "multiscalar data banks use num_banks and "
                   "bank_size_bytes"}});
         }},
        {"arb",
         [&ms](const json::Value &v, const std::string &p) {
             walkObject(
                 v, p,
                 {
                     {"entries_per_bank",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.arbEntriesPerBank = unsigned(
                              requireUint(f, fp, 1, 1u << 20));
                      }},
                     {"full_policy",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          const std::string s = requireString(f, fp);
                          if (s == "squash")
                              ms.arbFullPolicy = ArbFullPolicy::kSquash;
                          else if (s == "stall")
                              ms.arbFullPolicy = ArbFullPolicy::kStall;
                          else
                              fail(fp, "must be \"squash\" or "
                                       "\"stall\", got \"" + s + "\"");
                      }},
                 });
         }},
        {"predictor",
         [&ms](const json::Value &v, const std::string &p) {
             walkObject(
                 v, p,
                 {
                     {"kind",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          const std::string s = requireString(f, fp);
                          if (s != "pas" && s != "last" &&
                              s != "static")
                              fail(fp, "must be \"pas\", \"last\" or "
                                       "\"static\", got \"" + s +
                                       "\"");
                          ms.predictor = s;
                      }},
                     {"ras_entries",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.rasEntries = unsigned(
                              requireUint(f, fp, 1, 1u << 16));
                      }},
                     {"descriptor_cache_entries",
                      [&ms](const json::Value &f,
                            const std::string &fp) {
                          ms.descCacheEntries = unsigned(
                              requireUint(f, fp, 1, 1u << 20));
                      }},
                 });
         }},
        {"l2", l2Handler(ms.l2)},
        {"bus", busHandler(ms.bus)},
    };
    const std::map<std::string, std::string> hints = {
        {"mshrs_per_bank", "belongs in the l2 block"},
        {"inclusion", "belongs in the l2 block"},
    };
    walkObject(doc, "", fields, hints);
}

void
parseScalar(const json::Value &doc, MachineShape &shape)
{
    ScalarConfig &sc = shape.scalar;
    std::map<std::string, FieldHandler> fields = {
        {"schema", [](const json::Value &, const std::string &) {}},
        {"name", [](const json::Value &, const std::string &) {}},
        {"multiscalar",
         [](const json::Value &, const std::string &) {}},
        {"pu",
         [&sc](const json::Value &v, const std::string &p) {
             walkObject(v, p, puFields(sc.pu));
         }},
        {"icache", cacheHandler(sc.icache)},
        {"dcache", cacheHandler(sc.dcache)},
        {"l2", l2Handler(sc.l2)},
        {"bus", busHandler(sc.bus)},
    };
    const std::map<std::string, std::string> hints = {
        {"units", "scalar shapes model a single unit"},
        {"ring_hop_latency", "scalar shapes have no forwarding ring"},
        {"arb", "scalar shapes have no ARB"},
        {"predictor", "scalar shapes have no task predictor"},
        {"mshrs_per_bank", "belongs in the l2 block"},
        {"inclusion", "belongs in the l2 block"},
    };
    walkObject(doc, "", fields, hints);
}

json::Value
puToJson(const PuConfig &pu)
{
    json::Value v = json::Value::object();
    v.set("issue_width", json::Value(pu.issueWidth));
    v.set("out_of_order", json::Value(pu.outOfOrder));
    v.set("window_size", json::Value(pu.windowSize));
    v.set("fetch_buffer_size", json::Value(pu.fetchBufferSize));
    v.set("intra_branch_predict",
          json::Value(pu.intraBranchPredict));
    v.set("branch_predictor_entries",
          json::Value(pu.branchPredictorEntries));
    return v;
}

json::Value
cacheToJson(const Cache::Params &cache)
{
    json::Value v = json::Value::object();
    v.set("size_bytes", json::Value(std::uint64_t(cache.sizeBytes)));
    v.set("block_bytes", json::Value(std::uint64_t(cache.blockBytes)));
    v.set("hit_latency", json::Value(cache.hitLatency));
    return v;
}

json::Value
l2ToJson(const std::optional<L2Params> &l2)
{
    if (!l2)
        return json::Value(nullptr);
    json::Value v = json::Value::object();
    v.set("size_bytes", json::Value(std::uint64_t(l2->sizeBytes)));
    v.set("assoc", json::Value(l2->assoc));
    v.set("block_bytes", json::Value(std::uint64_t(l2->blockBytes)));
    v.set("hit_latency", json::Value(l2->hitLatency));
    v.set("num_banks", json::Value(l2->numBanks));
    v.set("mshrs_per_bank", json::Value(l2->mshrsPerBank));
    const char *inclusion = "nine";
    if (l2->inclusion == L2Inclusion::kInclusive)
        inclusion = "inclusive";
    else if (l2->inclusion == L2Inclusion::kExclusive)
        inclusion = "exclusive";
    v.set("inclusion", json::Value(inclusion));
    return v;
}

json::Value
busToJson(const MemoryBus::Params &bus)
{
    json::Value v = json::Value::object();
    v.set("first_beat_latency", json::Value(bus.firstBeatLatency));
    v.set("extra_beat_latency", json::Value(bus.extraBeatLatency));
    v.set("beat_words", json::Value(bus.beatWords));
    return v;
}

} // namespace

MachineShape
shapeFromJson(const json::Value &doc)
{
    if (!doc.isObject())
        fail("(document)", "a machine shape must be a JSON object");

    MachineShape shape;
    if (const json::Value *schema = doc.find("schema")) {
        const std::string s = requireString(*schema, "schema");
        if (s != kShapeSchema)
            fail("schema", std::string("expected \"") + kShapeSchema +
                               "\", got \"" + s + "\"");
    }
    if (const json::Value *name = doc.find("name"))
        shape.name = requireString(*name, "name");
    if (const json::Value *ms = doc.find("multiscalar"))
        shape.multiscalar = requireBool(*ms, "multiscalar");

    if (shape.multiscalar) {
        parseMultiscalar(doc, shape);
        try {
            shape.ms.validate();
        } catch (const ConfigError &) {
            throw;
        } catch (const FatalError &e) {
            fail("", e.what());
        }
    } else {
        parseScalar(doc, shape);
        try {
            shape.scalar.validate();
        } catch (const ConfigError &) {
            throw;
        } catch (const FatalError &e) {
            fail("", e.what());
        }
    }
    return shape;
}

json::Value
shapeToJson(const MachineShape &shape)
{
    json::Value v = json::Value::object();
    v.set("schema", json::Value(kShapeSchema));
    if (!shape.name.empty())
        v.set("name", json::Value(shape.name));
    v.set("multiscalar", json::Value(shape.multiscalar));
    if (shape.multiscalar) {
        const MsConfig &ms = shape.ms;
        v.set("units", json::Value(ms.numUnits));
        v.set("pu", puToJson(ms.pu));
        v.set("ring_hop_latency", json::Value(ms.ringHopLatency));
        v.set("icache", cacheToJson(ms.icache));
        json::Value dcache = json::Value::object();
        dcache.set("num_banks", json::Value(ms.numBanks));
        dcache.set("bank_size_bytes",
                   json::Value(std::uint64_t(ms.bankSizeBytes)));
        dcache.set("block_bytes",
                   json::Value(std::uint64_t(ms.blockBytes)));
        dcache.set("hit_latency", json::Value(ms.dcacheHitLatency));
        v.set("dcache", std::move(dcache));
        json::Value arb = json::Value::object();
        arb.set("entries_per_bank",
                json::Value(ms.arbEntriesPerBank));
        arb.set("full_policy",
                json::Value(ms.arbFullPolicy == ArbFullPolicy::kSquash
                                ? "squash"
                                : "stall"));
        v.set("arb", std::move(arb));
        json::Value pred = json::Value::object();
        pred.set("kind", json::Value(ms.predictor));
        pred.set("ras_entries", json::Value(ms.rasEntries));
        pred.set("descriptor_cache_entries",
                 json::Value(ms.descCacheEntries));
        v.set("predictor", std::move(pred));
        v.set("l2", l2ToJson(ms.l2));
        v.set("bus", busToJson(ms.bus));
    } else {
        const ScalarConfig &sc = shape.scalar;
        v.set("pu", puToJson(sc.pu));
        v.set("icache", cacheToJson(sc.icache));
        v.set("dcache", cacheToJson(sc.dcache));
        v.set("l2", l2ToJson(sc.l2));
        v.set("bus", busToJson(sc.bus));
    }
    return v;
}

MachineShape
parseShape(const std::string &text)
{
    json::Value doc;
    try {
        doc = json::Value::parse(text);
    } catch (const json::ParseError &e) {
        fail("(document)", e.what());
    }
    return shapeFromJson(doc);
}

MachineShape
loadShapeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fail("(document)", "cannot open shape file '" + path + "'");
    std::stringstream ss;
    ss << in.rdbuf();
    try {
        return parseShape(ss.str());
    } catch (const ConfigError &e) {
        // Re-anchor the diagnostic on the file.
        throw ConfigError(e.path, "in " + path + ": " + e.reason);
    }
}

bool
shapeEquals(const MachineShape &a, const MachineShape &b)
{
    return shapeToJson(a).dump() == shapeToJson(b).dump();
}

std::string
shapeDir()
{
    if (const char *env = std::getenv("MSIM_SHAPE_DIR"))
        if (*env != '\0')
            return env;
#ifdef MSIM_SHAPE_DIR_DEFAULT
    return MSIM_SHAPE_DIR_DEFAULT;
#else
    return "shapes";
#endif
}

std::vector<std::string>
listShapeNames()
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(shapeDir(), ec)) {
        if (entry.path().extension() == ".json")
            names.push_back(entry.path().stem().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

const MachineShape &
resolveShape(const std::string &name_or_path)
{
    static std::mutex mutex;
    static std::map<std::string, MachineShape> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(name_or_path);
    if (it != cache.end())
        return it->second;

    const bool is_path =
        name_or_path.find('/') != std::string::npos ||
        (name_or_path.size() > 5 &&
         name_or_path.compare(name_or_path.size() - 5, 5, ".json") ==
             0);
    std::string path = name_or_path;
    if (!is_path) {
        path = shapeDir() + "/" + name_or_path + ".json";
        if (!std::filesystem::exists(path)) {
            std::string known;
            for (const std::string &n : listShapeNames())
                known += (known.empty() ? "" : ", ") + n;
            fail("(document)",
                 "unknown shape preset '" + name_or_path +
                     "' (no " + path + "; available: " +
                     (known.empty() ? "none" : known) + ")");
        }
    }
    return cache.emplace(name_or_path, loadShapeFile(path))
        .first->second;
}

void
applyShape(RunSpec &spec, const MachineShape &shape)
{
    spec.multiscalar = shape.multiscalar;
    if (shape.multiscalar)
        spec.ms = shape.ms;
    else
        spec.scalar = shape.scalar;
}

RunSpec
toRunSpec(const MachineShape &shape)
{
    RunSpec spec;
    applyShape(spec, shape);
    return spec;
}

RunSpec
specForShape(const std::string &name_or_path)
{
    return toRunSpec(resolveShape(name_or_path));
}

std::vector<ShapeLint>
lintShapeDir()
{
    std::vector<ShapeLint> out;
    for (const std::string &name : listShapeNames()) {
        ShapeLint lint;
        lint.file = shapeDir() + "/" + name + ".json";
        lint.name = name;
        try {
            const MachineShape shape = loadShapeFile(lint.file);
            if (shape.name != name) {
                lint.error = "shape name \"" + shape.name +
                             "\" does not match file basename \"" +
                             name + "\"";
            } else {
                // Round-trip identity: parse → serialize → parse.
                const MachineShape again =
                    parseShape(shapeToJson(shape).dump());
                if (!shapeEquals(shape, again))
                    lint.error = "canonical round-trip is not the "
                                 "identity";
            }
        } catch (const FatalError &e) {
            lint.error = e.what();
        }
        out.push_back(std::move(lint));
    }
    return out;
}

} // namespace msim::config
